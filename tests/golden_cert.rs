//! Golden certificates for the trusted checker — the adversarial half
//! of Theorem 3.5's certificate story. Five hand-forged certificates,
//! one per tampering class, must each be rejected with a pinned
//! structured reason; the §2.2 path-chain and introduction employee
//! queries get pinned *accepted* certificates; and the FP reachability
//! iteration trace is pinned byte-for-byte. Every value here is a
//! golden — a checker or producer change that moves one must move the
//! pinned line with it, on purpose.
//!
//! The forgeries are written out as literal certificate text, not
//! derived by mutating an emitted certificate: the checker must reject
//! them on replay evidence alone, with zero reference to any producer.

use bvq_cert::{check_text, CheckRequest, CheckedAnswer, Reject};
use bvq_datalog::parse_program;
use bvq_logic::parser::{parse_eso, parse_query};
use bvq_logic::{patterns, Query, Var};
use bvq_optimizer::to_bounded_query;
use bvq_relation::{Database, Tuple};
use bvq_workload::employee::{employee_database, employee_scy_query, EmployeeConfig};

/// The four-node directed path 0 → 1 → 2 → 3 every forgery replays on.
fn path4() -> Database {
    Database::builder(4)
        .relation("E", 2, (0..3).map(|i| Tuple::from_slice(&[i, i + 1])))
        .build()
}

const REACH_QUERY: &str = "(x1) [lfp S(x1) . (x1 = 0) | exists x2. (S(x2) & E(x2, x1))](x1)";
const TC_PROGRAM: &str = "T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).";
const TWO_COLOR: &str =
    "exists2 C/1. forall x1. forall x2. (~E(x1,x2) | ((C(x1) & ~C(x2)) | (~C(x1) & C(x2))))";

fn reject_of(db: &Database, req: &CheckRequest, cert: &str) -> Reject {
    match check_text(db, req, cert) {
        Err(r) => r,
        Ok(a) => panic!("forged certificate was ACCEPTED: {a:?}\n{cert}"),
    }
}

/// Forgery 1 — tampered iteration delta. The honest trace reaches
/// 0, 1, 2, 3 in path order; this one claims 2 is reachable while the
/// chain only holds {0}: no justification `2 ∈ φ({0})` exists, and the
/// checker must say exactly that.
#[test]
fn forged_iteration_delta_is_unjustified() {
    let db = path4();
    let q = parse_query(REACH_QUERY).unwrap();
    let forged = "bvqcert 1 fp\n\
                  claim rows 1 4\n\
                  row 0\nrow 1\nrow 2\nrow 3\n\
                  begin 0\n\
                  step 0 +0\n\
                  step 0 +2\n\
                  step 0 +1\n\
                  step 0 +3\n\
                  conv 0\n\
                  end\n";
    let r = reject_of(&db, &CheckRequest::Query(&q), forged);
    assert_eq!(r.code(), "unjustified", "{r}");
    assert_eq!(
        r,
        Reject::Unjustified {
            fix: 0,
            tuple: Tuple::from_slice(&[2]),
        }
    );
}

/// Forgery 2 — truncated derivation tree. The claim lists all six
/// closure tuples but the tree stops before deriving ⟨0,3⟩; the
/// saturation sweep must notice the rule still fires. (The round count
/// is adjusted to the truncated tree's depth, so the *only* flaw is
/// the missing derivation.)
#[test]
fn truncated_derivation_tree_is_incomplete() {
    let db = path4();
    let p = parse_program(TC_PROGRAM).unwrap();
    let forged = "bvqcert 1 datalog\n\
                  claim rows 2 6\n\
                  row 0,1\nrow 0,2\nrow 0,3\nrow 1,2\nrow 1,3\nrow 2,3\n\
                  rounds 2\n\
                  step 0 0,1 : 0,1\n\
                  step 0 1,2 : 1,2\n\
                  step 0 2,3 : 2,3\n\
                  step 1 1,3 : 1,2 2,3\n\
                  step 1 0,2 : 0,1 1,2\n\
                  end\n";
    let req = CheckRequest::Datalog {
        program: &p,
        output: "T",
    };
    let r = reject_of(&db, &req, forged);
    assert_eq!(r.code(), "incomplete_derivation", "{r}");
    assert_eq!(
        r,
        Reject::IncompleteDerivation {
            rule: 1,
            tuple: Tuple::from_slice(&[0, 3]),
        }
    );
}

/// Forgery 3 — a premise at a non-derived tuple. The ⟨0,3⟩ step leans
/// on ⟨0,2⟩ *before* any step derives it, and ⟨0,2⟩ is not an EDB
/// fact; forward references are not evidence.
#[test]
fn premise_at_non_derived_tuple_is_rejected() {
    let db = path4();
    let p = parse_program(TC_PROGRAM).unwrap();
    let forged = "bvqcert 1 datalog\n\
                  claim rows 2 6\n\
                  row 0,1\nrow 0,2\nrow 0,3\nrow 1,2\nrow 1,3\nrow 2,3\n\
                  rounds 3\n\
                  step 0 0,1 : 0,1\n\
                  step 0 1,2 : 1,2\n\
                  step 0 2,3 : 2,3\n\
                  step 1 1,3 : 1,2 2,3\n\
                  step 1 0,3 : 0,2 2,3\n\
                  step 1 0,2 : 0,1 1,2\n\
                  end\n";
    let req = CheckRequest::Datalog {
        program: &p,
        output: "T",
    };
    let r = reject_of(&db, &req, forged);
    assert_eq!(r.code(), "underived_premise", "{r}");
    assert_eq!(
        r,
        Reject::UnderivedPremise {
            step: 4,
            tuple: Tuple::from_slice(&[0, 2]),
        }
    );
}

/// Forgery 4 — a witness violating a conjunct. `C = {1, 2}` colors the
/// adjacent nodes 1 and 2 identically (both uncolored on 0–1's side,
/// both colored across 1–2), so the 2-coloring body fails and the
/// claimed `true` has no witness.
#[test]
fn witness_violating_a_conjunct_is_rejected() {
    let db = path4();
    let e = parse_eso(TWO_COLOR).unwrap();
    let forged = "bvqcert 1 eso\n\
                  claim bool true\n\
                  witness C 1 2\n\
                  row 1\nrow 2\n\
                  end\n";
    let r = reject_of(&db, &CheckRequest::Eso(&e), forged);
    assert_eq!(r.code(), "witness_violation", "{r}");
    assert_eq!(r, Reject::WitnessViolation);
}

/// Forgery 5 — an off-by-one round count. The derivation tree is the
/// honest one (depth 3), but the header claims 4 rounds; the depth
/// recount must refuse the padding.
#[test]
fn off_by_one_round_count_is_a_round_mismatch() {
    let db = path4();
    let p = parse_program(TC_PROGRAM).unwrap();
    let forged = "bvqcert 1 datalog\n\
                  claim rows 2 6\n\
                  row 0,1\nrow 0,2\nrow 0,3\nrow 1,2\nrow 1,3\nrow 2,3\n\
                  rounds 4\n\
                  step 0 0,1 : 0,1\n\
                  step 0 1,2 : 1,2\n\
                  step 0 2,3 : 2,3\n\
                  step 1 1,3 : 1,2 2,3\n\
                  step 1 0,2 : 0,1 1,2\n\
                  step 1 0,3 : 0,2 2,3\n\
                  end\n";
    let req = CheckRequest::Datalog {
        program: &p,
        output: "T",
    };
    let r = reject_of(&db, &req, forged);
    assert_eq!(r.code(), "round_mismatch", "{r}");
}

/// The honest FP reachability iteration trace, pinned byte-for-byte:
/// the producer's encoding is part of the wire contract the replica
/// protocol and the repro files depend on.
#[test]
fn fp_reach_trace_golden() {
    let db = path4();
    let q = parse_query(REACH_QUERY).unwrap();
    let cert = bvq_core::certgen::certify_query(&db, &q).expect("reach certifies");
    let encoded = cert.encode();
    assert_eq!(
        encoded,
        "bvqcert 1 fp\n\
         claim rows 1 4\n\
         row 0\nrow 1\nrow 2\nrow 3\n\
         begin 0\n\
         step 0 +0\n\
         step 0 +1\n\
         step 0 +2\n\
         step 0 +3\n\
         conv 0\n\
         end\n"
    );
    match check_text(&db, &CheckRequest::Query(&q), &encoded) {
        Ok(CheckedAnswer::Rows(rel)) => assert_eq!(rel.len(), 4),
        other => panic!("golden trace not accepted: {other:?}"),
    }
}

/// §2.2 / Table 2: the path-chain query — pinned accepted certificate.
/// The naive path-of-length-3 query is pure FO, so its certificate is
/// all claim and no trace; the checker verifies each claimed row by
/// direct membership.
#[test]
fn paper_path_chain_golden() {
    let db = path4();
    let q = Query::new(vec![Var(0), Var(1)], patterns::path_naive(3));
    let cert = bvq_core::certgen::certify_query(&db, &q).expect("path chain certifies");
    let encoded = cert.encode();
    assert_eq!(
        encoded,
        "bvqcert 1 fp\n\
         claim rows 2 1\n\
         row 0,3\n\
         end\n",
        "the length-3 path on a 4-node path is exactly ⟨0,3⟩"
    );
    match check_text(&db, &CheckRequest::Query(&q), &encoded) {
        Ok(CheckedAnswer::Rows(rel)) => {
            assert_eq!(rel.sorted(), vec![Tuple::from_slice(&[0, 3])]);
        }
        other => panic!("golden path-chain certificate not accepted: {other:?}"),
    }
    // And the claim is not taken on faith: overstating it by one
    // fabricated row must flip the verdict.
    let inflated = "bvqcert 1 fp\n\
                    claim rows 2 2\n\
                    row 0,3\nrow 1,3\n\
                    end\n";
    let r = reject_of(&db, &CheckRequest::Query(&q), inflated);
    assert_eq!(r.code(), "claim_mismatch", "{r}");
}

/// The introduction's employee/manager example — pinned accepted
/// certificate for the bounded-variable form of the acyclic query, on
/// the same seeded database the analysis goldens use.
#[test]
fn employee_query_golden() {
    // A reduced instance of the analysis goldens' database: the
    // membership replay is per-row, and a debug build cannot afford 60
    // claimed rows over a 76-element domain.
    let cfg = EmployeeConfig {
        employees: 18,
        departments: 3,
        salary_levels: 5,
    };
    let db = employee_database(cfg, 11);
    let (q, _k) = to_bounded_query(&employee_scy_query()).expect("employee query is bounded");
    let cert = bvq_core::certgen::certify_query(&db, &q).expect("employee query certifies");
    let encoded = cert.encode();
    let rows = match check_text(&db, &CheckRequest::Query(&q), &encoded) {
        Ok(CheckedAnswer::Rows(rel)) => rel,
        other => panic!("employee certificate not accepted: {other:?}"),
    };
    // Pinned on (the reduced config, seed 11): the certified answer is
    // the direct answer.
    let direct =
        bvq_server::exec::execute(&db, &bvq_server::exec::ExecRequest::query(q.to_string()))
            .expect("employee query evaluates");
    match direct.answer {
        bvq_server::exec::Answer::Rows(rel) => {
            assert_eq!(rows.sorted(), rel.sorted());
            assert_eq!(rows.len(), 18, "pinned answer size for seed 11");
        }
        other => panic!("employee query answered {other:?}"),
    }
}
