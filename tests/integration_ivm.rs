//! End-to-end tests for mutable databases and standing queries over
//! loopback TCP: mutations advance epochs and push delta frames to
//! subscribers, pinned snapshots stay immutable, the result cache is
//! delta-keyed on referenced relations, admission control lints
//! subscriptions, and FO subscriptions fall back to re-evaluate-and-diff.

use std::sync::atomic::Ordering::Relaxed;

use bvq_relation::parse_database;
use bvq_server::{Client, Json, Server, ServerConfig, ServerHandle};

const DB_TEXT: &str = "domain 6\nrel E/2\n0 1\n1 2\n2 3\n3 4\n4 5\nend\nrel P/1\n3\nend";

const DATALOG_TC: &str = "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).";
const FO_QUERY: &str = "(x1) exists x2. (E(x1,x2) & P(x2))";

fn start_server(cfg: ServerConfig) -> ServerHandle {
    let handle = Server::start(cfg).expect("bind loopback");
    handle.load_db("g", parse_database(DB_TEXT).expect("parse db"));
    handle
}

fn default_server() -> ServerHandle {
    start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    })
}

/// The full write path over one connection: subscribe to a transitive
/// closure, mutate, observe the pushed delta frame — while a snapshot
/// pinned before the mutation keeps reading the old epoch.
#[test]
fn mutations_push_delta_frames_while_snapshots_stay_pinned() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();

    let ack = c.subscribe_datalog("g", DATALOG_TC, "T").unwrap();
    assert!(Client::is_ok(&ack), "{ack}");
    assert_eq!(ack.get("strategy").and_then(Json::as_str), Some("dred"));
    // TC of the 6-path: 5+4+3+2+1.
    assert_eq!(ack.get("count").and_then(Json::as_u64), Some(15));
    let sub = ack.get("sub").and_then(Json::as_u64).unwrap();

    // Pin the pre-mutation epoch, the way an admitted job does.
    let pin = handle.db_snapshot("g").expect("snapshot");
    assert_eq!(pin.epoch, 0);

    // Closing the cycle makes every pair reachable: 36 tuples, +21.
    let resp = c.insert("g", "E", &[5, 0]).unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    assert_eq!(resp.get("epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(resp.get("added").and_then(Json::as_u64), Some(1));
    assert_eq!(resp.get("notified").and_then(Json::as_u64), Some(1));

    let (epoch, add, del) = c.recv_delta(sub).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(add.len(), 21);
    assert!(del.is_empty());

    // The pinned snapshot still reads the old epoch's relations.
    assert_eq!(pin.epoch, 0);
    assert_eq!(pin.db.relation_by_name("E").unwrap().len(), 5);
    assert_eq!(handle.db_snapshot("g").unwrap().epoch, 1);

    // Re-inserting an existing tuple nets to nothing: no epoch, no frame.
    let resp = c.insert("g", "E", &[5, 0]).unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    assert_eq!(resp.get("epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(resp.get("notified").and_then(Json::as_u64), Some(0));

    // Deleting the cycle edge removes exactly what the insert added.
    let resp = c.delete("g", "E", &[5, 0]).unwrap();
    assert_eq!(resp.get("epoch").and_then(Json::as_u64), Some(2));
    let (epoch, add, del) = c.recv_delta(sub).unwrap();
    assert_eq!(epoch, 2);
    assert!(add.is_empty());
    assert_eq!(del.len(), 21);

    let resp = c.subscriptions().unwrap();
    let subs = resp.get("subscriptions").and_then(Json::as_arr).unwrap();
    assert_eq!(subs.len(), 1);
    assert_eq!(subs[0].get("updates").and_then(Json::as_u64), Some(2));
    assert_eq!(subs[0].get("rows").and_then(Json::as_u64), Some(15));
    assert_eq!(subs[0].get("added").and_then(Json::as_u64), Some(21));
    assert_eq!(subs[0].get("removed").and_then(Json::as_u64), Some(21));
    handle.shutdown();
}

/// The result cache is keyed on per-relation dependency fingerprints:
/// mutating a relation a cached query never reads keeps the entry warm;
/// mutating a referenced relation evicts it.
#[test]
fn result_cache_survives_unrelated_mutations() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    let q = "(x1) P(x1)";

    let first = c.eval("g", q).unwrap();
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(first.get("count").and_then(Json::as_u64), Some(1));

    // E is not referenced by the query — the cache entry stays valid.
    assert!(Client::is_ok(&c.insert("g", "E", &[5, 0]).unwrap()));
    let hits_before = handle.stats().result_hits.load(Relaxed);
    let second = c.eval("g", q).unwrap();
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)), "{second}");
    assert!(handle.stats().result_hits.load(Relaxed) > hits_before);

    // P is referenced — the same query misses and sees the new tuple.
    assert!(Client::is_ok(&c.insert("g", "P", &[0]).unwrap()));
    let third = c.eval("g", q).unwrap();
    assert_eq!(third.get("cached"), Some(&Json::Bool(false)), "{third}");
    assert_eq!(third.get("count").and_then(Json::as_u64), Some(2));
    handle.shutdown();
}

/// With `admission: true`, subscribing an error-level query is rejected
/// with a structured `lint_error` before anything is installed; a clean
/// subscription on the same connection still goes through.
#[test]
fn admission_lints_subscriptions() {
    let mut handle = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        admission: true,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(handle.addr()).unwrap();

    let resp = c.subscribe_eval("g", "(x1) ~P(x1)").unwrap();
    assert_eq!(Client::error_code(&resp), Some("lint_error"));
    assert!(handle.stats().admission_rejected.load(Relaxed) >= 1);
    let resp = c.subscriptions().unwrap();
    assert!(resp
        .get("subscriptions")
        .and_then(Json::as_arr)
        .unwrap()
        .is_empty());

    let ack = c.subscribe_eval("g", FO_QUERY).unwrap();
    assert!(Client::is_ok(&ack), "{ack}");
    handle.shutdown();
}

/// FO subscriptions have no delta semantics and maintain by
/// re-evaluate-and-diff: the ack says so, relevant mutations produce
/// diffs (counted as fallbacks), and mutations to relations the query
/// never reads skip the re-evaluation entirely.
#[test]
fn fo_subscriptions_fall_back_to_rediff() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();

    let ack = c.subscribe_eval("g", FO_QUERY).unwrap();
    assert!(Client::is_ok(&ack), "{ack}");
    assert_eq!(ack.get("strategy").and_then(Json::as_str), Some("rediff"));
    // Only 1 has an edge into P = {3}... the 6-path gives exactly ⟨2⟩.
    assert_eq!(ack.get("count").and_then(Json::as_u64), Some(1));
    let sub = ack.get("sub").and_then(Json::as_u64).unwrap();

    // Marking 1 as P makes 0 an answer: E(0,1) & P(1).
    let resp = c.insert("g", "P", &[1]).unwrap();
    assert_eq!(resp.get("notified").and_then(Json::as_u64), Some(1));
    let (epoch, add, del) = c.recv_delta(sub).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(add, vec![vec![0]]);
    assert!(del.is_empty());

    let resp = c.subscriptions().unwrap();
    let subs = resp.get("subscriptions").and_then(Json::as_arr).unwrap();
    assert_eq!(subs[0].get("fallbacks").and_then(Json::as_u64), Some(1));
    assert_eq!(subs[0].get("updates").and_then(Json::as_u64), Some(1));
    handle.shutdown();
}

/// A batch whose mutations cancel out is a no-op: no epoch advance, no
/// frames. A mixed batch nets into one frame. Unsubscribing stops the
/// stream, and unknown ids answer `unknown_sub`.
#[test]
fn batches_net_out_and_unsubscribe_stops_the_stream() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    let ack = c.subscribe_datalog("g", DATALOG_TC, "T").unwrap();
    let sub = ack.get("sub").and_then(Json::as_u64).unwrap();

    // Insert and delete of the same tuple cancel inside one batch.
    let resp = c
        .batch("g", &[("E", &[5, 0], false), ("E", &[5, 0], true)])
        .unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    assert_eq!(resp.get("epoch").and_then(Json::as_u64), Some(0));
    assert_eq!(resp.get("added").and_then(Json::as_u64), Some(0));
    assert_eq!(resp.get("notified").and_then(Json::as_u64), Some(0));

    // An invalid mutation rejects the whole batch atomically.
    let resp = c
        .batch("g", &[("E", &[0, 5], false), ("Zap", &[0], false)])
        .unwrap();
    assert_eq!(Client::error_code(&resp), Some("mutation_error"));
    assert_eq!(
        handle.db_snapshot("g").unwrap().epoch,
        0,
        "rejected batches must not advance the epoch"
    );

    // A real batch lands as one epoch and one frame.
    let resp = c
        .batch("g", &[("E", &[5, 0], false), ("E", &[0, 1], true)])
        .unwrap();
    assert_eq!(resp.get("epoch").and_then(Json::as_u64), Some(1));
    let (epoch, _add, del) = c.recv_delta(sub).unwrap();
    assert_eq!(epoch, 1);
    // Dropping E(0,1) loses at minimum T(0,1) itself.
    assert!(del.iter().any(|t| t == &vec![0, 1]));

    assert!(Client::is_ok(&c.unsubscribe(sub).unwrap()));
    let resp = c.unsubscribe(sub).unwrap();
    assert_eq!(Client::error_code(&resp), Some("unknown_sub"));
    // Further mutations notify nobody.
    let resp = c.insert("g", "E", &[0, 1]).unwrap();
    assert_eq!(resp.get("notified").and_then(Json::as_u64), Some(0));
    handle.shutdown();
}
