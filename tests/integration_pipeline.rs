//! Cross-crate integration: the full pipelines the paper describes, wired
//! end to end.
//!
//! * parse → validate → evaluate across all four languages on one shared
//!   database;
//! * μ-calculus → FP² → certificates;
//! * Datalog → FP translation → bounded evaluation;
//! * conjunctive query → four plans → identical answers.

use bvq_core::{
    BoundedEvaluator, CertifiedChecker, EsoEvaluator, FpEvaluator, NaiveEvaluator, PfpEvaluator,
};
use bvq_datalog::{eval_seminaive, to_fp_formula, AtomTerm, Program};
use bvq_logic::parser::{parse_eso, parse_query};
use bvq_logic::{Query, Var};
use bvq_mucalc::{check_states, parse_mu, to_fp2, CheckStrategy, Kripke};
use bvq_optimizer::{eval_eliminated, eval_yannakakis, greedy_order, ConjunctiveQuery, CqTerm};
use bvq_relation::Database;

fn shared_db() -> Database {
    Database::builder(7)
        .relation("E", 2, [[0u32, 1], [1, 2], [2, 3], [3, 4], [4, 2], [5, 6]])
        .relation("P", 1, [[2u32], [4], [6]])
        .build()
}

#[test]
fn four_languages_one_database() {
    let db = shared_db();

    // FO²: nodes with a P-successor.
    let fo = parse_query("(x1) exists x2. (E(x1,x2) & P(x2))").unwrap();
    let (fo_ans, _) = BoundedEvaluator::new(&db, 2).eval_query(&fo).unwrap();
    assert_eq!(
        fo_ans.sorted().iter().map(|t| t[0]).collect::<Vec<_>>(),
        vec![1, 3, 4, 5]
    );

    // FP²: nodes reaching node 3.
    let fp = parse_query("(x1) [lfp S(x1). (x1 = 3 | exists x2. (E(x1,x2) & S(x2)))](x1)").unwrap();
    let (fp_ans, _) = FpEvaluator::new(&db, 2).eval_query(&fp).unwrap();
    assert_eq!(
        fp_ans.sorted().iter().map(|t| t[0]).collect::<Vec<_>>(),
        vec![0, 1, 2, 3, 4]
    );

    // ESO²: a 2-colouring (bipartiteness) of the symmetric closure exists?
    // The 3-cycle 2→3→4→2 makes it odd — unsatisfiable.
    let eso = parse_eso(
        "exists2 C/1. forall x1. forall x2. \
         ((E(x1,x2) | E(x2,x1)) -> ((C(x1) & ~C(x2)) | (~C(x1) & C(x2))))",
    )
    .unwrap();
    assert!(!EsoEvaluator::new(&db, 2).check(&eso, &[], &[]).unwrap());

    // PFP²: same reachability through a partial fixpoint.
    let pfp = parse_query("(x1) [pfp S(x1). (S(x1) | x1 = 3 | exists x2. (E(x1,x2) & S(x2)))](x1)")
        .unwrap();
    let (pfp_ans, _) = PfpEvaluator::new(&db, 2).eval_query(&pfp).unwrap();
    assert_eq!(pfp_ans.sorted(), fp_ans.sorted());

    // Naive evaluation agrees on the FO query.
    let (naive_ans, _) = NaiveEvaluator::new(&db).eval_query(&fo).unwrap();
    assert_eq!(naive_ans.sorted(), fo_ans.sorted());
}

#[test]
fn mucalc_fp2_certificates_roundtrip() {
    // The state graph of shared_db as a Kripke structure with p = P.
    let db = shared_db();
    let k = Kripke::from_database(&db);
    // AG(p → EF p): from every reachable state, P states can recur…
    let f = parse_mu("nu Z. ((P -> mu Y. (P | <>Y)) & []Z)").unwrap();
    let direct = check_states(&k, &f, CheckStrategy::Naive).unwrap();
    let q = Query::new(vec![Var(0)], to_fp2(&f).unwrap());
    let (rel, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
    assert_eq!(
        direct.iter().collect::<Vec<_>>(),
        rel.sorted()
            .iter()
            .map(|t| t[0] as usize)
            .collect::<Vec<_>>()
    );
    let checker = CertifiedChecker::new(&db, 2);
    for s in 0..7u32 {
        let (member, _, _) = checker.decide(&q, &[s]).unwrap();
        assert_eq!(member, direct.contains(s as usize), "state {s}");
    }
}

#[test]
fn datalog_translation_agrees_with_fp_engine() {
    use AtomTerm::Var as V;
    let db = shared_db();
    // Reachability to P-nodes: Good(x) :- P(x); Good(x) :- E(x,y), Good(y).
    let prog = Program::new().rule("Good", &[0], &[("P", &[V(0)])]).rule(
        "Good",
        &[0],
        &[("E", &[V(0), V(1)]), ("Good", &[V(1)])],
    );
    let datalog = eval_seminaive(&prog, &db).unwrap();
    let f = to_fp_formula(&prog).unwrap();
    assert!(f.width() <= 2);
    let q = Query::new(vec![Var(0)], f);
    let (fp, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
    assert_eq!(datalog.get("Good").unwrap().sorted(), fp.sorted());
}

#[test]
fn cq_plans_and_fo_evaluator_agree() {
    use CqTerm::Var as V;
    let db = shared_db();
    let cq = ConjunctiveQuery::new(&[0, 2])
        .atom("E", &[V(0), V(1)])
        .atom("E", &[V(1), V(2)])
        .atom("P", &[V(2)]);
    let (naive, _) = cq.eval_naive_plan(&db).unwrap();
    let (cross, _) = cq.eval_cross_product_plan(&db).unwrap();
    let (yann, _) = eval_yannakakis(&cq, &db).unwrap();
    let order = greedy_order(&cq);
    let (elim, _) = eval_eliminated(&cq, &db, &order).unwrap();
    assert_eq!(naive.sorted(), cross.sorted());
    assert_eq!(naive.sorted(), yann.sorted());
    assert_eq!(naive.sorted(), elim.sorted());
    // And via the FO evaluator on the CQ's formula form.
    let q = cq.to_fo_query();
    let (fo, _) = BoundedEvaluator::new(&db, q.formula.width())
        .eval_query(&q)
        .unwrap();
    assert_eq!(naive.sorted(), fo.sorted());
}
