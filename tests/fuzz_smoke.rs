//! Integration smoke tests for the `bvq-fuzz` subsystem: a clean
//! differential run per language (server oracles included), the
//! mutation sanity check with its shrink-quality floor, the
//! intermediate-arity sweep backing Proposition 3.1, the
//! database-fingerprint insertion-order regression, and a fault
//! injection round.

use bvq_fuzz::oracle::Mutation;
use bvq_fuzz::{case_rng, gen_case, run_fault_injection, run_fuzz, Lang};
use bvq_fuzz::{driver::FuzzConfig, gen::CaseKind};
use bvq_relation::{Database, Relation, Tuple};
use bvq_server::exec::{execute, ExecRequest};

/// Every language fuzzes clean against the full oracle set — including
/// the live-server round trips — on a fixed seed.
#[test]
fn fuzz_smoke_all_languages_clean() {
    let cfg = FuzzConfig {
        cases: 25,
        seed: bvq_fuzz::parse_seed("0xBVQ5"),
        seed_text: "0xBVQ5".into(),
        with_server: true,
        ..FuzzConfig::default()
    };
    let outcome = run_fuzz(&cfg).expect("harness runs");
    assert!(
        outcome.ok(),
        "divergences on a clean build: {:#?}",
        outcome.failures
    );
    for s in &outcome.summaries {
        assert_eq!(s.cases, 25, "{} ran short", s.lang);
        assert!(s.checks >= 25, "{} barely checked anything", s.lang);
    }
}

/// The harness's own sanity check: corrupting the reference side must
/// produce a failure, and the shrinker must deliver a *small* repro —
/// at most 6 database tuples and 5 formula nodes.
#[test]
fn mutation_sanity_check_shrinks_to_a_tiny_repro() {
    let cfg = FuzzConfig {
        cases: 40,
        seed: 2024,
        seed_text: "2024".into(),
        langs: vec![Lang::Fo],
        with_server: false,
        mutation: Some(Mutation::DropRow),
        ..FuzzConfig::default()
    };
    let outcome = run_fuzz(&cfg).expect("harness runs");
    assert!(!outcome.ok(), "a mutated reference must be caught");
    let f = &outcome.failures[0];
    assert!(
        f.repro.case.tuples() <= 6,
        "repro db has {} tuples (want <= 6):\n{}",
        f.repro.case.tuples(),
        f.repro_text
    );
    assert!(
        f.repro.case.nodes() <= 5,
        "repro formula has {} nodes (want <= 5):\n{}",
        f.repro.case.nodes(),
        f.repro_text
    );
    // The written artifact is replayable: it parses back to the same
    // case and carries the provenance fields.
    let parsed = bvq_fuzz::parse_repro(&f.repro_text).expect("repro parses");
    assert_eq!(parsed.seed, "2024");
    assert_eq!(parsed.oracle, f.divergence.oracle);
    assert_eq!(parsed.case.text(), f.repro.case.text());
}

/// `Database::fingerprint` is a function of the database's *content*:
/// inserting the same tuples in a different order must not change it.
#[test]
fn fingerprint_ignores_tuple_insertion_order() {
    let tuples: &[[u32; 2]] = &[[0, 1], [1, 2], [2, 3], [3, 0], [1, 3]];
    let build = |order: &[usize]| {
        let mut rel = Relation::new(2);
        for &i in order {
            rel.insert(Tuple::from(tuples[i].to_vec()));
        }
        let mut db = Database::new(5);
        db.add_relation("E", rel).unwrap();
        let mut p = Relation::new(1);
        for &i in order {
            p.insert(Tuple::from(vec![tuples[i][0]]));
        }
        db.add_relation("P", p).unwrap();
        db
    };
    let forward = build(&[0, 1, 2, 3, 4]);
    let permuted = build(&[3, 1, 4, 0, 2]);
    let reversed = build(&[4, 3, 2, 1, 0]);
    assert_eq!(forward.fingerprint(), permuted.fingerprint());
    assert_eq!(forward.fingerprint(), reversed.fingerprint());
    // And it still distinguishes different content.
    let mut other = build(&[0, 1, 2, 3, 4]);
    other
        .relation_by_name("E")
        .map(|r| r.len())
        .expect("E exists");
    let mut extra = Relation::new(1);
    extra.insert(Tuple::from(vec![4u32]));
    other.add_relation("Q", extra).unwrap();
    assert_ne!(forward.fingerprint(), other.fingerprint());
}

/// Proposition 3.1: bottom-up `FO^k` evaluation only ever materializes
/// relations of arity at most `k`. Checked against the measured span
/// tree of a sweep of generated `FO^k` cases.
#[test]
fn intermediate_arity_stays_within_k_on_generated_cases() {
    fn walk(span: &bvq_relation::Span, k: usize, query: &str) {
        assert!(
            span.arity <= k,
            "span `{}` ({}) has arity {} > k = {k} in {query}",
            span.kind,
            span.detail,
            span.arity
        );
        for c in &span.children {
            walk(c, k, query);
        }
    }
    let mut traced = 0usize;
    for index in 0..60u64 {
        let case = gen_case(&mut case_rng(77, Lang::Fo, index), Lang::Fo);
        let CaseKind::Query(q) = &case.kind else {
            unreachable!("fo cases are queries")
        };
        let req = ExecRequest::query(q.to_string()).with_trace(true);
        let outcome = execute(&case.db, &req).expect("generated cases evaluate");
        let span = outcome.trace.expect("trace was requested");
        walk(&span, outcome.k, &q.to_string());
        traced += 1;
    }
    assert_eq!(traced, 60);
}

/// Acceptance gate for the width rewriter: 200+ generated queries per
/// query language pushed through the `rewritten-vs-original` oracle —
/// every certified rewrite must evaluate identically to its original,
/// and the analyzer must never emit a certificate its own validator
/// rejects. The sweep must actually exercise certificates (generated
/// formulas with reusable quantifier scopes are common enough that a
/// dry run means the oracle is wired wrong).
#[test]
fn rewritten_vs_original_holds_across_generated_sweep() {
    let mut cases = 0usize;
    let mut certified = 0usize;
    for lang in [Lang::Fo, Lang::Fp, Lang::Pfp] {
        for index in 0..75u64 {
            let case = gen_case(&mut case_rng(31_337, lang, index), lang);
            match bvq_fuzz::oracle::run_oracle(&case, "rewritten-vs-original", None, None, index) {
                Ok(c) => certified += c,
                Err(d) => panic!(
                    "{lang} case {index} diverged: {}\ncase: {}",
                    d.detail,
                    case.text()
                ),
            }
            cases += 1;
        }
    }
    assert!(cases >= 200, "sweep ran only {cases} cases");
    assert!(
        certified >= 1,
        "sweep never produced a certified rewrite — oracle is vacuous"
    );
}

/// One full fault-injection round: dropped streams, oversized and
/// truncated frames, deadline races — the pool must stay healthy.
#[test]
fn fault_injection_round_keeps_the_server_healthy() {
    let report = run_fault_injection(41, 1).expect("no protocol violations");
    assert_eq!(report.health_checks, 1);
    assert_eq!(report.oversized_rejections, 1);
    assert_eq!(report.deadline_races, 3);
}
