//! Cross-crate integration: the paper's quantitative claims as assertions
//! over real runs — the "intermediate results stay small" thesis, the
//! width analyses, and the Lemma 3.6 transform.

use bvq_core::{reduce_arity, BoundedEvaluator, CertifiedChecker, EsoEvaluator, NaiveEvaluator};
use bvq_logic::parser::parse_eso;
use bvq_logic::{patterns, Query, Term, Var};
use bvq_relation::Database;
use bvq_workload::formulas::cross_product_family;
use bvq_workload::graphs::{graph_db, GraphKind};

#[test]
fn bounded_evaluation_caps_intermediate_arity() {
    // The structural claim behind Table 2: whatever FO³ formula we run,
    // max intermediate arity is exactly k.
    let db = graph_db(GraphKind::Sparse(3), 20, 9);
    for seed in 0..10 {
        let f = bvq_workload::formulas::random_fo(3, 25, seed);
        let q = Query::new(vec![Var(0), Var(1), Var(2)], f);
        let (_, stats) = BoundedEvaluator::new(&db, 3).eval_query(&q).unwrap();
        assert_eq!(stats.max_arity, 3, "seed {seed}");
        assert!(stats.max_cardinality <= 20usize.pow(3));
    }
}

#[test]
fn naive_evaluation_arity_tracks_formula_width() {
    let db = graph_db(GraphKind::Sparse(3), 10, 9);
    for m in 2..6 {
        let q = Query::new(vec![Var(0)], cross_product_family(m));
        let (_, stats) = NaiveEvaluator::new(&db).eval_query(&q).unwrap();
        assert_eq!(stats.max_arity, m, "cross-product family width");
    }
}

#[test]
fn certificate_sizes_stay_polynomial() {
    // Theorem 3.5's "NP" needs polynomial-size certificates: check the
    // bound |cert| ≤ (iterations+1)·n^k across database sizes.
    for n in [6usize, 12, 24] {
        let db = graph_db(GraphKind::Path, n, 0);
        let q = Query::new(vec![Var(0)], patterns::reach_from_const(0));
        let checker = CertifiedChecker::new(&db, 2);
        let (cert, _) = checker.extract(&q).unwrap();
        let bound = (n + 2) * n * n;
        assert!(
            cert.size_tuples() <= bound,
            "n={n}: certificate {} > bound {bound}",
            cert.size_tuples()
        );
    }
}

#[test]
fn fairness_example_is_stable_across_evaluators() {
    // The §2.2 FP³ sentence over a graph with both a fair and an unfair
    // cycle: only the P-labelled cycle admits "no unfair path".
    //   unfair cycle: 0 ↔ 1 (no P); fair cycle: 2 ↔ 3 (both P); 4 → 0.
    let db = Database::builder(5)
        .relation("E", 2, [[0u32, 1], [1, 0], [2, 3], [3, 2], [4, 0]])
        .relation("P", 1, [[2u32], [3]])
        .build();
    for (u, expected) in [(0u32, false), (2, true), (4, false)] {
        let q = Query::sentence(patterns::fairness(Term::Const(u)));
        let (ans, _) = bvq_core::FpEvaluator::new(&db, 3).eval_query(&q).unwrap();
        assert_eq!(ans.as_boolean(), expected, "u = {u}");
        let checker = CertifiedChecker::new(&db, 3);
        let (member, _, _) = checker.decide(&q, &[]).unwrap();
        assert_eq!(member, expected, "certified, u = {u}");
    }
}

#[test]
fn lemma_3_6_transform_end_to_end() {
    // A 4-ary quantified relation with two patterns, as in the paper's own
    // Lemma 3.6 illustration (S(x1,x1,x2,x2) and S(x1,x2,x1,x2)).
    let eso = parse_eso(
        "exists2 S/4. (exists x1. exists x2. S(x1,x1,x2,x2) \
         & forall x1. ~S(x1,x2,x1,x2))",
    )
    .unwrap();
    assert_eq!(eso.max_rel_arity(), 4);
    let reduced = reduce_arity(&eso, 2).unwrap();
    assert!(reduced.max_rel_arity() <= 2);
    // Semantics preserved over several databases; note the formula has a
    // free variable x2, so evaluate as a unary query.
    for n in [2usize, 3] {
        let db = Database::builder(n).relation("P", 1, [[0u32]]).build();
        let ev = EsoEvaluator::new(&db, 2);
        let orig = ev.eval_query(&eso, &[Var(1)]).unwrap();
        let red = ev.eval_query(&reduced, &[Var(1)]).unwrap();
        assert_eq!(orig.sorted(), red.sorted(), "n = {n}");
    }
}

#[test]
fn naive_vs_bounded_gap_is_measurable() {
    // Not a timing assertion (CI-safe): compare materialised tuple counts.
    let db = graph_db(GraphKind::DensePercent(30), 12, 6);
    let naive_q = Query::new(vec![Var(0), Var(1)], patterns::path_naive(5));
    let bounded_q = Query::new(vec![Var(0), Var(1)], patterns::path_bounded(5));
    let (a1, s1) = NaiveEvaluator::new(&db).eval_query(&naive_q).unwrap();
    let (a2, s2) = BoundedEvaluator::new(&db, 3)
        .eval_query(&bounded_q)
        .unwrap();
    assert_eq!(a1.sorted(), a2.sorted());
    assert!(
        s1.max_cardinality > 4 * s2.max_cardinality,
        "naive {} vs bounded {}",
        s1.max_cardinality,
        s2.max_cardinality
    );
}
