//! Cross-crate integration: every lower-bound reduction checked against
//! its ground-truth solver on randomized instances (seeded, deterministic).

use bvq_core::{BoundedEvaluator, EsoEvaluator, PfpEvaluator};
use bvq_datalog::eval_seminaive;
use bvq_reductions::boolean_value::{bool_database, to_fo_sentence};
use bvq_reductions::qbf_to_pfp::{b0, to_pfp_query};
use bvq_reductions::sat_to_eso::to_eso_sentence;
use bvq_sat::{dpll, qbf, solver, BoolExpr};
use bvq_workload::instances::{random_3cnf, random_path_system, random_qbf};

#[test]
fn path_systems_reduction_on_random_instances() {
    for seed in 0..20 {
        let ps = random_path_system(6, 8, 1, seed);
        let db = ps.to_database();
        let expected = ps.solve_direct();
        // Datalog route.
        let out = eval_seminaive(&ps.to_datalog(), &db).unwrap();
        let datalog =
            ps.t.iter()
                .any(|&t| out.get("Reach").unwrap().contains(&[t]));
        assert_eq!(datalog, expected, "datalog disagrees on seed {seed}");
        // FO³ route (Proposition 3.2).
        let q = ps.to_fo3_query();
        assert_eq!(q.formula.width(), 3);
        let (ans, stats) = BoundedEvaluator::new(&db, 3).eval_query(&q).unwrap();
        assert_eq!(ans.as_boolean(), expected, "FO³ disagrees on seed {seed}");
        assert!(stats.max_arity <= 3);
    }
}

#[test]
fn sat_to_eso_on_random_instances() {
    let db = bool_database();
    for seed in 0..15 {
        let cnf = random_3cnf(6, 14 + (seed as usize % 12), seed);
        let expected = solver::solve(&cnf).is_sat();
        assert_eq!(
            dpll::solve(&cnf).is_sat(),
            expected,
            "solvers disagree, seed {seed}"
        );
        let eso = to_eso_sentence(&cnf);
        let got = EsoEvaluator::new(&db, 1).check(&eso, &[], &[]).unwrap();
        assert_eq!(got, expected, "ESO reduction disagrees on seed {seed}");
    }
}

#[test]
fn qbf_to_pfp_on_random_instances() {
    let db = b0();
    for seed in 0..12 {
        let instance = random_qbf(3 + (seed as usize % 2), 5, seed);
        let expected = qbf::solve(&instance);
        let query = to_pfp_query(&instance);
        assert!(query.formula.width() <= 2, "reduction must stay in PFP²");
        let (ans, _) = PfpEvaluator::new(&db, 2).eval_query(&query).unwrap();
        assert_eq!(
            ans.as_boolean(),
            expected,
            "PFP reduction disagrees on seed {seed}"
        );
    }
}

#[test]
fn boolean_value_reduction() {
    let db = bool_database();
    // A syntactically deep closed expression.
    let mut e = BoolExpr::Const(true);
    for i in 0..200 {
        e = if i % 3 == 0 {
            e.and(BoolExpr::Const(i % 2 == 0))
        } else if i % 3 == 1 {
            e.or(BoolExpr::Const(false))
        } else {
            e.not()
        };
    }
    let q = to_fo_sentence(&e);
    let (ans, _) = BoundedEvaluator::new(&db, 1).eval_query(&q).unwrap();
    assert_eq!(ans.as_boolean(), e.eval(&[]));
}
