//! Golden verdicts for the hypergraph analyzer: the paper's example
//! families (the §2.2/introduction queries behind Tables 1–3), the
//! shipped `examples/queries` corpus, the Yannakakis demonstration
//! queries, and the cyclic counterexamples. Every value here is pinned —
//! a change to the analyzer that moves a verdict must move a golden line
//! with it, on purpose.

use bvq_analysis::{analyze_query, validate};
use bvq_lint::{lint_datalog_text, lint_eso_text, LintConfig};
use bvq_logic::parser::parse_query;
use bvq_logic::{patterns, Query, Var};
use bvq_optimizer::{analyze_cq, eval_routed, Route};
use bvq_server::exec::{execute, ExecRequest};
use bvq_workload::employee::{
    employee_database, employee_query, employee_scy_query, EmployeeConfig,
};
use bvq_workload::graphs::{graph_db, GraphKind};

/// §2.2 / Table 2: the naive path-of-length-`n` query uses `n+1`
/// variables; the analyzer must certify it down to exactly `FO³` — the
/// same bound the paper's hand rewrite achieves — with a validator-
/// accepted certificate, and the certified rewrite must evaluate
/// identically to the original.
#[test]
fn paper_path_queries_certify_down_to_fo3() {
    let db = graph_db(GraphKind::Sparse(3), 9, 7);
    for n in 3..=8usize {
        let original = Query::new(vec![Var(0), Var(1)], patterns::path_naive(n));
        let a = analyze_query(&original);
        assert_eq!(a.width, n + 1, "path_naive({n}) syntactic width");
        assert_eq!(a.k_min, 3, "path_naive({n}) certified minimum width");
        assert_eq!(a.acyclic, Some(true), "a path chain is α-acyclic");
        assert_eq!(a.core_atoms, n);
        assert_eq!(a.max_bag, Some(3), "chain elimination bags are 3 wide");
        assert_eq!(a.certified, Some(true));
        let cert = a.certificate.expect("certified implies a certificate");
        assert_eq!(cert.k_min, 3);
        validate(&original.formula, &cert).expect("the shipped certificate re-validates");
        // The rewrite is sound on a real database. Only the small
        // instances are evaluated: the whole point of the rewrite is
        // that the *original* costs n^{n+1}, which a debug build cannot
        // afford past n = 4.
        if n <= 4 {
            let rewritten = Query::new(original.output.clone(), cert.rewritten);
            let lhs = execute(&db, &ExecRequest::query(original.to_string()))
                .expect("original evaluates")
                .answer;
            let rhs = execute(&db, &ExecRequest::query(rewritten.to_string()))
                .expect("rewrite evaluates")
                .answer;
            assert_eq!(lhs, rhs, "path_naive({n}) rewrite changed the answer");
        }
    }
}

/// The paper's already-bounded families are left alone: the `FO³`
/// path formula, the FP³ fairness sentence and FP² reachability carry no
/// conjunctive core (they use `=`/`∀`/fixpoints at the top) and no
/// certificate — the analyzer never "improves" what is already minimal.
#[test]
fn paper_bounded_families_are_already_minimal() {
    for n in 2..=8usize {
        let q = Query::new(vec![Var(0), Var(1)], patterns::path_bounded(n));
        let a = analyze_query(&q);
        assert_eq!((a.width, a.k_min), (3, 3), "path_bounded({n}) is FO³");
        assert_eq!(a.acyclic, None, "rebinding uses `=`: no conjunctive core");
        assert_eq!(a.certified, None);
    }
    let fairness = Query::new(vec![], patterns::fairness(bvq_logic::Term::Const(0)));
    let a = analyze_query(&fairness);
    assert_eq!((a.width, a.k_min, a.acyclic), (3, 3, None));
    let reach = Query::new(vec![Var(0)], patterns::reach_from_const(0));
    let a = analyze_query(&reach);
    assert_eq!((a.width, a.k_min, a.acyclic), (2, 2, None));
}

/// The shipped `examples/queries` corpus, verdict by verdict. The
/// committed examples are all width-minimal (no certificates), so the
/// CI analyze step can deny warnings over them.
#[test]
fn example_corpus_verdicts_are_pinned() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/queries");
    let read = |name: &str| std::fs::read_to_string(format!("{dir}/{name}")).expect("corpus file");
    // (file, width, k_min, acyclic, core_atoms)
    let golden = [
        ("neighbors.bvq", 2, 2, Some(true), 1),
        ("p_or_e.bvq", 2, 2, None, 0),
        ("path3.bvq", 3, 3, Some(true), 2),
        ("reachable.bvq", 2, 2, None, 0),
        ("sentence.bvq", 2, 2, None, 0),
    ];
    for (file, width, k_min, acyclic, core_atoms) in golden {
        let q = parse_query(read(file).trim()).expect(file);
        let a = analyze_query(&q);
        assert_eq!(a.width, width, "{file} width");
        assert_eq!(a.k_min, k_min, "{file} k_min");
        assert_eq!(a.acyclic, acyclic, "{file} acyclicity verdict");
        assert_eq!(a.core_atoms, core_atoms, "{file} core size");
        assert_eq!(a.certified, None, "{file} must ship width-minimal");
    }
    let cfg = LintConfig::default();
    let dl = lint_datalog_text(&read("tc.dl"), Some("T"), &cfg);
    assert_eq!(dl.width, 3, "tc.dl rule width");
    assert_eq!(dl.acyclic, Some(true), "tc.dl rule bodies are acyclic");
    let (errors, warnings, _, _) = dl.counts();
    assert_eq!((errors, warnings), (0, 0), "tc.dl lints clean");
    let eso = lint_eso_text(read("two_color.eso").trim(), &cfg);
    assert_eq!(eso.width, 2, "two_color.eso is ESO²");
    let (errors, warnings, _, _) = eso.counts();
    assert_eq!((errors, warnings), (0, 0), "two_color.eso lints clean");
}

/// The introduction's worked example: the acyclic employee/manager/
/// secretary core is *proven* α-acyclic and routed to Yannakakis; the
/// full query with the salary comparison closes a 6-cycle, is proven
/// cyclic, and still gets a certified `FO³` rewrite (the paper's
/// arity-≤-4 elimination plan, sharpened to 3 live variables).
#[test]
fn employee_example_routes_on_proven_acyclicity() {
    let db = employee_database(EmployeeConfig::default(), 11);

    let scy = employee_scy_query();
    let s = analyze_cq(&scy);
    assert!(s.acyclic, "the SCY core is α-acyclic");
    assert_eq!(s.max_bag, 3);
    let (_, _, route) = eval_routed(&scy, &db).expect("scy core evaluates");
    assert_eq!(route, Route::Yannakakis);

    let full = employee_query();
    let f = analyze_cq(&full);
    assert!(!f.acyclic, "LESS closes the 6-cycle");
    let (_, stats, route) = eval_routed(&full, &db).expect("full query evaluates");
    assert_eq!(route, Route::Elimination);
    assert!(
        stats.max_arity <= f.max_bag,
        "elimination stayed within the analyzed bag bound"
    );

    let a = analyze_query(&full.to_fo_query());
    assert_eq!(a.width, 6, "six variables in the naive form");
    assert_eq!(a.acyclic, Some(false));
    assert_eq!(a.max_bag, Some(3));
    assert_eq!(a.certified, Some(true));
    assert_eq!(a.k_min, 3, "certified down to three live variables");
}

/// The classic soundness trap: the triangle query is cyclic and must
/// never be claimed acyclic (GYO gets stuck on it) nor be "reduced"
/// below its true width.
#[test]
fn cyclic_triangle_is_never_claimed_acyclic() {
    let q = parse_query("() exists x1. exists x2. exists x3. (E(x1,x2) & E(x2,x3) & E(x3,x1))")
        .expect("triangle parses");
    let a = analyze_query(&q);
    assert_eq!(a.acyclic, Some(false), "triangle must be reported cyclic");
    assert_eq!(a.core_atoms, 3);
    assert_eq!(a.k_min, 3, "no width-2 rewrite exists for the triangle");
    assert_eq!(a.max_bag, Some(3));
    assert_eq!(a.certified, None, "no certificate may be emitted");
}
