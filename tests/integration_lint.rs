//! Integration tests for the static analyser: width-minimization
//! suggestions are *sound* (the rewritten formula evaluates identically
//! on real databases), the shipped example corpus lints clean, and the
//! workload generators produce formulas the linter classifies without
//! error-level findings where safety is guaranteed by construction.

use bvq_core::NaiveEvaluator;
use bvq_lint::{lint_datalog_text, lint_eso_text, lint_query, lint_query_text, LintConfig};
use bvq_logic::{parse, patterns, Query, Term};
use bvq_workload::formulas::random_fo;
use bvq_workload::graphs::{graph_db, GraphKind};

/// The workload generators emit formulas over `E/2` and `P/1`, matching
/// [`graph_db`]'s schema.
fn workload_cfg(n: usize) -> LintConfig {
    LintConfig {
        budget: None,
        domain_size: Some(n),
        schema: Some(vec![("E".to_string(), 2), ("P".to_string(), 1)]),
    }
}

/// Every `BVQ-W110` certified rewrite must be sound: the rewritten
/// width-k′ formula is logically equivalent, so it computes the same
/// answer as the original on every database. Checked by evaluating both
/// on a seeded spread of graph shapes — and the rewritten text must
/// itself parse back to a formula of the promised width.
#[test]
fn width_minimization_suggestions_are_sound() {
    let dbs = [
        graph_db(GraphKind::Path, 7, 1),
        graph_db(GraphKind::Cycle, 6, 3),
        graph_db(GraphKind::Sparse(3), 8, 5),
        graph_db(GraphKind::DensePercent(40), 6, 9),
    ];
    let mut suggested = 0;
    for seed in 0..60u64 {
        let f = random_fo(4, 12, seed);
        let outputs = f.free_vars();
        let q = Query::new(outputs.clone(), f);
        let report = lint_query(&q, None, &workload_cfg(8));
        let Some(rewritten) = &report.rewritten else {
            continue;
        };
        suggested += 1;
        let k2 = report.min_width.expect("a rewriting implies min_width");
        assert!(k2 < report.width, "seed {seed}: k′ must strictly drop");
        let g = parse(rewritten)
            .unwrap_or_else(|e| panic!("seed {seed}: rewritten text must re-parse: {e}"));
        assert!(
            g.width() <= k2,
            "seed {seed}: rewritten width {} > promised k′ = {k2}",
            g.width()
        );
        let q2 = Query::new(outputs.clone(), g);
        for (i, db) in dbs.iter().enumerate() {
            let (orig, _) = NaiveEvaluator::new(db).eval_query(&q).unwrap();
            let (min, _) = NaiveEvaluator::new(db).eval_query(&q2).unwrap();
            assert_eq!(
                orig.sorted(),
                min.sorted(),
                "seed {seed}, db {i}: the width-{k2} rewriting changed the answer"
            );
        }
    }
    assert!(
        suggested >= 5,
        "the sweep is vacuous: only {suggested} suggestions fired"
    );
}

/// The shipped `examples/queries/` corpus lints completely clean —
/// zero errors *and* zero warnings — against the `examples/path.db`
/// schema. This mirrors the CI step `bvq lint examples/path.db
/// examples/queries --deny warnings`.
#[test]
fn example_corpus_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let db_text = std::fs::read_to_string(root.join("path.db")).expect("examples/path.db");
    let db = bvq_relation::parse_database(&db_text).expect("parse path.db");
    let cfg = LintConfig {
        budget: None,
        domain_size: Some(db.domain_size()),
        schema: Some(
            db.schema()
                .iter()
                .map(|(_, name, arity)| (name.to_string(), arity))
                .collect(),
        ),
    };
    let mut linted = 0;
    let mut files: Vec<_> = std::fs::read_dir(root.join("queries"))
        .expect("examples/queries")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    for path in files {
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        let report = match ext {
            "bvq" => lint_query_text(text.trim(), &cfg),
            "eso" => lint_eso_text(text.trim(), &cfg),
            "dl" => lint_datalog_text(&text, None, &cfg),
            _ => continue,
        };
        linted += 1;
        assert!(
            !report.has_errors() && !report.has_warnings(),
            "{}: {:#?}",
            path.display(),
            report.diagnostics
        );
    }
    assert!(linted >= 7, "corpus shrank: only {linted} files linted");
}

/// The paper's named pattern formulas are range-restricted by
/// construction, so the linter must report them error-free (warnings
/// like vacuous quantifiers are acceptable; unsafety is not).
#[test]
fn pattern_formulas_lint_error_free() {
    let cfg = workload_cfg(8);
    let cases: Vec<(&str, Query)> = vec![
        (
            "reach_from_const",
            Query::new(
                patterns::reach_from_const(0).free_vars(),
                patterns::reach_from_const(0),
            ),
        ),
        (
            "fairness",
            Query::sentence(patterns::fairness(Term::Const(0))),
        ),
        (
            "path_naive",
            Query::new(patterns::path_naive(4).free_vars(), patterns::path_naive(4)),
        ),
        (
            "path_bounded",
            Query::new(
                patterns::path_bounded(4).free_vars(),
                patterns::path_bounded(4),
            ),
        ),
    ];
    for (name, q) in cases {
        let report = lint_query(&q, None, &cfg);
        assert!(
            !report.has_errors(),
            "pattern `{name}` must be error-free: {:#?}",
            report.diagnostics
        );
        assert!(report.fragment.is_some(), "pattern `{name}` classifies");
    }
}

/// Linting is classification, not evaluation: random FP programs with
/// deep fixpoint nesting lint in well under the time any evaluation
/// would take, and the fragment matches the formula's actual shape.
#[test]
fn random_formulas_classify_consistently() {
    for seed in 0..30u64 {
        let f = random_fo(3, 15, seed);
        let fo = f.is_first_order();
        let q = Query::new(f.free_vars(), f);
        let report = lint_query(&q, None, &workload_cfg(8));
        let frag = report.fragment.expect("random formulas classify");
        assert!(fo, "random_fo emits FO only");
        use bvq_lint::Fragment::*;
        assert!(
            matches!(frag, Fo | Cq | AcyclicCq),
            "seed {seed}: FO formula classified as {frag:?}"
        );
        assert!(report.width >= 1 && report.width <= 4, "seed {seed}");
        assert_eq!(report.bound, Some(8u128.pow(report.width as u32)));
    }
}
