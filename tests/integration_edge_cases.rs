//! Cross-crate edge cases: tiny domains, arity-0 relations, deeply nested
//! operators, and the degenerate corners every module must agree on.

use bvq_core::{
    fo_k_equivalent, BoundedEvaluator, CertifiedChecker, FpEvaluator, NaiveEvaluator, PfpEvaluator,
    TraceChecker,
};
use bvq_logic::parser::{parse, parse_query};
use bvq_logic::{Formula, Query, Term, Var};
use bvq_relation::{Database, Relation};

#[test]
fn singleton_domain() {
    // n = 1: every quantifier is trivial, every cylinder is {()}-ish.
    let db = Database::builder(1)
        .relation("E", 2, [[0u32, 0]])
        .relation("P", 1, Vec::<[u32; 1]>::new())
        .build();
    let q = parse_query("() forall x1. exists x2. E(x1,x2)").unwrap();
    for result in [
        BoundedEvaluator::new(&db, 2).eval_query(&q).unwrap().0,
        NaiveEvaluator::new(&db).eval_query(&q).unwrap().0,
    ] {
        assert!(result.as_boolean());
    }
    // Reachability on the self-loop.
    let r = parse_query("(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)").unwrap();
    assert_eq!(FpEvaluator::new(&db, 2).eval_query(&r).unwrap().0.len(), 1);
}

#[test]
fn empty_relations_everywhere() {
    let db = Database::builder(3)
        .relation_from("E", Relation::new(2))
        .relation_from("P", Relation::new(1))
        .build();
    // ∃ over an empty relation is false; ∀ is vacuously true.
    let q1 = parse_query("() exists x1. exists x2. E(x1,x2)").unwrap();
    let q2 = parse_query("() forall x1. forall x2. ~E(x1,x2)").unwrap();
    assert!(!BoundedEvaluator::new(&db, 2)
        .eval_query(&q1)
        .unwrap()
        .0
        .as_boolean());
    assert!(BoundedEvaluator::new(&db, 2)
        .eval_query(&q2)
        .unwrap()
        .0
        .as_boolean());
    // gfp over an empty edge relation is empty.
    let g = parse_query("(x1) [gfp S(x1). exists x2. (E(x1,x2) & S(x2))](x1)").unwrap();
    assert!(FpEvaluator::new(&db, 2)
        .eval_query(&g)
        .unwrap()
        .0
        .is_empty());
}

#[test]
fn deep_fixpoint_nesting_stays_consistent() {
    // Five nested alternating fixpoints, each depending on the previous.
    let x1 = Term::Var(Var(0));
    let mut f = Formula::atom("P", [x1]);
    for i in 0..5 {
        let name = format!("S{i}");
        let body = f.or(Formula::rel_var(&name, [x1]));
        f = if i % 2 == 0 {
            Formula::lfp(&name, vec![Var(0)], body, vec![x1])
        } else {
            Formula::gfp(&name, vec![Var(0)], body, vec![x1])
        };
    }
    assert!(f.validate_fp().is_ok());
    let db = Database::builder(4)
        .relation("E", 2, [[0u32, 1]])
        .relation("P", 1, [[2u32]])
        .build();
    let q = Query::new(vec![Var(0)], f);
    let el = FpEvaluator::new(&db, 1).eval_query(&q).unwrap().0;
    let naive = FpEvaluator::new(&db, 1)
        .with_strategy(bvq_core::FpStrategy::Naive)
        .eval_query(&q)
        .unwrap()
        .0;
    assert_eq!(el.sorted(), naive.sorted());
    // Certificates handle the nesting.
    let checker = CertifiedChecker::new(&db, 1);
    let trace = TraceChecker::new(&db, 1);
    for t in 0..4u32 {
        let (m1, _, _) = checker.decide(&q, &[t]).unwrap();
        assert_eq!(m1, el.contains(&[t]), "nested cert, t={t}");
        let (cert, _) = trace.extract(&q).unwrap();
        let (out, _) = trace.verify(&q, &cert, &[t]).unwrap();
        assert_eq!(
            out,
            bvq_core::VerifyOutcome::Valid {
                member: el.contains(&[t])
            },
            "trace cert, t={t}"
        );
    }
}

#[test]
fn minimize_width_on_hand_written_wide_formulas() {
    // A hand-written formula with gratuitous distinct variables.
    let f = parse("exists x4. exists x5. exists x6. ((E(x1,x4) & P(x4)) & (E(x5,x6) & P(x6)))")
        .unwrap();
    let slim = f.minimize_width().unwrap();
    assert!(slim.width() <= 3, "width {}", slim.width());
    let db = Database::builder(5)
        .relation("E", 2, [[0u32, 1], [1, 2], [3, 4]])
        .relation("P", 1, [[1u32], [4]])
        .build();
    let out = vec![Var(0)];
    let a = BoundedEvaluator::new(&db, f.width())
        .eval_query(&Query::new(out.clone(), f))
        .unwrap()
        .0;
    let b = BoundedEvaluator::new(&db, slim.width().max(1))
        .eval_query(&Query::new(out, slim))
        .unwrap()
        .0;
    assert_eq!(a.sorted(), b.sorted());
}

#[test]
fn pfp_with_nested_lfp_composes() {
    // PFP whose body contains an LFP: the engine recomputes the inner lfp
    // per PFP step.
    let db = Database::builder(4)
        .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
        .build();
    let q = parse_query(
        "(x1) [pfp T(x1). (T(x1) | [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1))](x1)",
    )
    .unwrap();
    let (r, _) = PfpEvaluator::new(&db, 2).eval_query(&q).unwrap();
    assert_eq!(
        r.len(),
        4,
        "inflationary wrapper of reachability = reachability"
    );
}

#[test]
fn pebble_game_matches_evaluator_on_labelled_paths() {
    // Paths with different labellings must be separated at k = 1 already
    // (different counts are invisible, but presence/absence is not).
    let a = Database::builder(3)
        .relation("E", 2, [[0u32, 1], [1, 2]])
        .relation("P", 1, [[1u32]])
        .build();
    let b = Database::builder(3)
        .relation("E", 2, [[0u32, 1], [1, 2]])
        .relation_from("P", Relation::new(1))
        .build();
    assert!(!fo_k_equivalent(&a, &b, 1).unwrap());
    // And identical structures of different presentation are equivalent.
    let c = Database::builder(3)
        .relation("E", 2, [[1u32, 2], [0, 1]])
        .relation("P", 1, [[1u32]])
        .build();
    assert!(fo_k_equivalent(&a, &c, 3).unwrap());
}

#[test]
fn query_output_permutations_and_repeats() {
    let db = Database::builder(3)
        .relation("E", 2, [[0u32, 1], [1, 2]])
        .build();
    // Outputs (x2, x1): transposed edge relation.
    let q = parse_query("(x2,x1) E(x1,x2)").unwrap();
    let (r, _) = BoundedEvaluator::new(&db, 2).eval_query(&q).unwrap();
    assert!(r.contains(&[1, 0]));
    assert!(r.contains(&[2, 1]));
    assert!(!r.contains(&[0, 1]));
    // Repeated outputs (x1, x1).
    let q2 = parse_query("(x1,x1) exists x2. E(x1,x2)").unwrap();
    let (r2, _) = BoundedEvaluator::new(&db, 2).eval_query(&q2).unwrap();
    assert!(r2.contains(&[0, 0]));
    assert!(r2.contains(&[1, 1]));
    assert_eq!(r2.len(), 2);
    // Naive evaluator agrees on both.
    for q in [&q, &q2] {
        let (n, _) = NaiveEvaluator::new(&db).eval_query(q).unwrap();
        let (b, _) = BoundedEvaluator::new(&db, 2).eval_query(q).unwrap();
        assert_eq!(n.sorted(), b.sorted());
    }
}
