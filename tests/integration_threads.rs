//! Thread-count independence: every evaluator must return tuple-for-tuple
//! identical answers (and identical statistics) whether it runs on 1, 2,
//! or 4 worker threads. All parallel merges in the engine are set unions
//! of results computed from disjoint partitions, so these are exact
//! equalities, not approximations.

use bvq_core::{BoundedEvaluator, FpEvaluator, NaiveEvaluator, PfpEvaluator};
use bvq_datalog::{eval_naive_with, eval_seminaive_with};
use bvq_logic::{patterns, Query, Var};
use bvq_mucalc::{parse_mu, to_fp2};
use bvq_optimizer::to_bounded_query;
use bvq_relation::{Database, EvalConfig, EvalStats, Relation};
use bvq_workload::employee::{employee_database, employee_scy_query, EmployeeConfig};
use bvq_workload::formulas::{random_fo, random_fp};
use bvq_workload::graphs::{graph_db, GraphKind};
use bvq_workload::instances::random_path_system;
use bvq_workload::kripke_gen::random_kripke;

const THREADS: [usize; 3] = [1, 2, 4];

/// Runs `eval` under each thread count and asserts all outcomes equal the
/// single-threaded one.
fn assert_thread_independent(label: &str, eval: impl Fn(EvalConfig) -> (Relation, EvalStats)) {
    let (base_rel, base_stats) = eval(EvalConfig::sequential());
    for t in THREADS {
        let (rel, stats) = eval(EvalConfig::with_threads(t));
        assert_eq!(
            rel.sorted(),
            base_rel.sorted(),
            "{label}: answers differ at {t} threads"
        );
        assert_eq!(stats, base_stats, "{label}: stats differ at {t} threads");
    }
}

#[test]
fn fo_answers_identical_across_thread_counts() {
    let db = graph_db(GraphKind::Sparse(3), 24, 7);
    for seed in 0..6 {
        let f = random_fo(3, 25, seed);
        let q = Query::new(vec![Var(0), Var(1), Var(2)], f);
        assert_thread_independent(&format!("FO seed {seed}"), |cfg| {
            BoundedEvaluator::new(&db, 3)
                .with_config(cfg)
                .eval_query(&q)
                .unwrap()
        });
        assert_thread_independent(&format!("naive FO seed {seed}"), |cfg| {
            NaiveEvaluator::new(&db)
                .with_config(cfg)
                .eval_query(&q)
                .unwrap()
        });
    }
}

#[test]
fn fp_answers_identical_across_thread_counts() {
    let db = graph_db(GraphKind::Sparse(2), 30, 11);
    let reach = Query::new(vec![Var(0)], patterns::reach_from_const(0));
    assert_thread_independent("FP reach", |cfg| {
        FpEvaluator::new(&db, 2)
            .with_config(cfg)
            .eval_query(&reach)
            .unwrap()
    });
    for seed in 0..4 {
        let f = random_fp(3, 12, 2, seed);
        let q = Query::new(vec![Var(0)], f);
        assert_thread_independent(&format!("FP seed {seed}"), |cfg| {
            PfpEvaluator::new(&db, 3)
                .with_config(cfg)
                .eval_query(&q)
                .unwrap()
        });
    }
}

#[test]
fn kripke_model_checking_identical_across_thread_counts() {
    // μ-calculus checking through the FP² translation over a seeded
    // Kripke structure: "some path visits p infinitely often".
    let k = random_kripke(48, 3, 41);
    let db = k.to_database();
    let f = parse_mu("nu Z. mu Y. <>((p & Z) | Y)").unwrap();
    let q = Query::new(vec![Var(0)], to_fp2(&f).unwrap());
    assert_thread_independent("Kripke FP²", |cfg| {
        FpEvaluator::new(&db, 2)
            .with_config(cfg)
            .eval_query(&q)
            .unwrap()
    });
}

#[test]
fn employee_query_identical_across_thread_counts() {
    // The acyclic core of the paper's introduction query through the
    // bounded-width plan (the full query is cyclic, so it has no join tree).
    let cfg = EmployeeConfig {
        employees: 14,
        departments: 3,
        salary_levels: 4,
    };
    let db = employee_database(cfg, 42);
    let (q, k) = to_bounded_query(&employee_scy_query()).unwrap();
    assert_thread_independent("employee query", |c| {
        BoundedEvaluator::new(&db, k)
            .with_config(c)
            .eval_query(&q)
            .unwrap()
    });
}

#[test]
fn datalog_identical_across_thread_counts() {
    // Path Systems as Datalog (Proposition 3.2's source problem), both
    // evaluation strategies. Stats must match too: worker-local recorders
    // are merged in rule order.
    let ps = random_path_system(60, 400, 3, 5);
    let db = ps.to_database();
    let prog = ps.to_datalog();
    for eval in [eval_naive_with, eval_seminaive_with] {
        let base = eval(&prog, &db, &EvalConfig::sequential()).unwrap();
        for t in THREADS {
            let out = eval(&prog, &db, &EvalConfig::with_threads(t)).unwrap();
            assert_eq!(out.idb.len(), base.idb.len());
            for ((p, r), (bp, br)) in out.idb.iter().zip(base.idb.iter()) {
                assert_eq!(p, bp);
                assert_eq!(r.sorted(), br.sorted(), "IDB {p} differs at {t} threads");
            }
            assert_eq!(out.stats, base.stats, "stats differ at {t} threads");
        }
    }
}

#[test]
fn empty_relations_are_thread_safe() {
    // Databases whose relations are all empty exercise the zero-length
    // partitioning paths of every kernel.
    let db = Database::builder(8)
        .relation("E", 2, Vec::<[u32; 2]>::new())
        .relation("P", 1, Vec::<[u32; 1]>::new())
        .build();
    let q = Query::new(vec![Var(0)], random_fo(2, 15, 3));
    assert_thread_independent("empty FO", |cfg| {
        BoundedEvaluator::new(&db, 2)
            .with_config(cfg)
            .eval_query(&q)
            .unwrap()
    });
    let reach = Query::new(vec![Var(0)], patterns::reach_from_const(0));
    assert_thread_independent("empty FP", |cfg| {
        FpEvaluator::new(&db, 2)
            .with_config(cfg)
            .eval_query(&reach)
            .unwrap()
    });
}

#[test]
fn trace_structure_identical_across_thread_counts() {
    // The span trees recorded by `--trace` must have bit-identical
    // structural content (kinds, details, arities, cardinalities, round
    // indices — everything except wall times) at every thread count:
    // per-worker buffers merge in chunk order, never arrival order.
    let db = graph_db(GraphKind::Sparse(3), 24, 7);

    // FO^3 under the bounded evaluator.
    let fo = Query::new(vec![Var(0), Var(1), Var(2)], random_fo(3, 25, 2));
    let base = BoundedEvaluator::new(&db, 3)
        .with_config(EvalConfig::sequential().with_trace(true))
        .eval_query_traced(&fo)
        .unwrap()
        .trace
        .expect("trace enabled");
    for t in THREADS {
        let trace = BoundedEvaluator::new(&db, 3)
            .with_config(EvalConfig::with_threads(t).with_trace(true))
            .eval_query_traced(&fo)
            .unwrap()
            .trace
            .expect("trace enabled");
        assert!(
            trace.same_structure(&base),
            "FO trace structure differs at {t} threads:\n{}\nvs\n{}",
            trace.structure(),
            base.structure()
        );
    }

    // FP^2 reachability: fixpoint rounds carry round indices, which are
    // part of the structural content and must also be stable.
    let reach = Query::new(vec![Var(0)], patterns::reach_from_const(0));
    let base = FpEvaluator::new(&db, 2)
        .with_config(EvalConfig::sequential().with_trace(true))
        .eval_query_traced(&reach)
        .unwrap()
        .trace
        .expect("trace enabled");
    for t in THREADS {
        let trace = FpEvaluator::new(&db, 2)
            .with_config(EvalConfig::with_threads(t).with_trace(true))
            .eval_query_traced(&reach)
            .unwrap()
            .trace
            .expect("trace enabled");
        assert!(
            trace.same_structure(&base),
            "FP trace structure differs at {t} threads:\n{}\nvs\n{}",
            trace.structure(),
            base.structure()
        );
    }

    // Datalog, both strategies: per-round per-rule spans.
    let ps = random_path_system(40, 200, 3, 5);
    let pdb = ps.to_database();
    let prog = ps.to_datalog();
    for eval in [eval_naive_with, eval_seminaive_with] {
        let base = eval(&prog, &pdb, &EvalConfig::sequential().with_trace(true))
            .unwrap()
            .trace
            .expect("trace enabled");
        for t in THREADS {
            let trace = eval(&prog, &pdb, &EvalConfig::with_threads(t).with_trace(true))
                .unwrap()
                .trace
                .expect("trace enabled");
            assert!(
                trace.same_structure(&base),
                "Datalog trace structure differs at {t} threads:\n{}\nvs\n{}",
                trace.structure(),
                base.structure()
            );
        }
    }
}

#[test]
fn untraced_runs_record_no_spans() {
    // The disabled tracer is the common path; it must stay span-free so
    // the overhead budget (see benches/trace_overhead.rs) holds.
    let db = graph_db(GraphKind::Sparse(3), 16, 7);
    let q = Query::new(vec![Var(0)], random_fo(2, 15, 1));
    let out = BoundedEvaluator::new(&db, 2)
        .with_config(EvalConfig::sequential())
        .eval_query_traced(&q)
        .unwrap();
    assert!(out.trace.is_none());
}

#[test]
fn domains_smaller_than_thread_count_are_thread_safe() {
    // More workers than domain elements: chunk_ranges must degrade to
    // fewer, non-empty chunks without dropping or duplicating points.
    for n in [1usize, 2, 3] {
        let db = graph_db(GraphKind::Cycle, n, 0);
        let q = Query::new(vec![Var(0)], patterns::reach_from_const(0));
        let (base, _) = FpEvaluator::new(&db, 2)
            .with_config(EvalConfig::sequential())
            .eval_query(&q)
            .unwrap();
        for t in [2usize, 8, 16] {
            let (rel, _) = FpEvaluator::new(&db, 2)
                .with_config(EvalConfig::with_threads(t))
                .eval_query(&q)
                .unwrap();
            assert_eq!(rel.sorted(), base.sorted(), "n={n}, threads={t}");
        }
    }
}
