//! Compiled-vs-interpreted integration: the bytecode executor and the
//! Datalog rule kernels must agree with the AST-walking engines on a
//! seeded generator corpus across all four languages, honor deadlines
//! and thread counts, surface their listings through `explain`, and the
//! bench regression gate must actually fail on an injected slowdown.

use bvq_cli::{gate, BENCH_SCHEMA};
use bvq_fuzz::{gen_case, CaseKind, Lang};
use bvq_prng::Rng;
use bvq_server::exec::{execute, explain, Answer, CompileMode, EvalOptions, ExecRequest};
use bvq_server::{Json, RunError};

fn base_request(kind: &CaseKind) -> ExecRequest {
    match kind {
        CaseKind::Query(q) => ExecRequest::query(q.to_string()),
        CaseKind::Datalog(p, out) => ExecRequest::datalog(p.to_text(), out.clone()),
    }
}

fn with_mode(req: &ExecRequest, mode: CompileMode) -> ExecRequest {
    req.clone().with_opts(EvalOptions {
        compile: mode,
        ..EvalOptions::default()
    })
}

/// Normalizes an outcome for equality: rows sorted, errors by code.
fn norm(db: &bvq_relation::Database, req: &ExecRequest) -> Result<String, String> {
    match execute(db, req) {
        Ok(out) => Ok(match out.answer {
            Answer::Boolean(b) => format!("bool {b}"),
            Answer::Rows(rel) => format!("{:?}", rel.sorted()),
            Answer::Text(t) => format!("text {t}"),
        }),
        Err(e) => Err(e.code().to_string()),
    }
}

#[test]
fn compiled_agrees_with_interpreted_across_generator_corpus() {
    // ≥ 200 cases: 55 seeds × 4 languages.
    let per_lang = 55u64;
    let mut checked = 0u64;
    for lang in Lang::all() {
        for i in 0..per_lang {
            let case = gen_case(&mut Rng::seed_from_u64(0xC0_55 + i), lang);
            let req = base_request(&case.kind);
            let off = norm(&case.db, &with_mode(&req, CompileMode::Off));
            let on = norm(&case.db, &with_mode(&req, CompileMode::On));
            assert_eq!(off, on, "{lang} seed {i} diverged\ncase: {}", case.text());
            checked += 1;
        }
    }
    assert!(checked >= 200, "corpus too small: {checked}");
}

#[test]
fn compiled_deadline_aborts_inside_fixpoint_loops() {
    let db = bvq_relation::parse_database(
        "domain 24\nrel E/2\n0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 8\nend",
    )
    .unwrap();
    let mut req =
        ExecRequest::query("(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)");
    req.opts.compile = CompileMode::On;
    req.opts.deadline = Some(std::time::Instant::now());
    let err = execute(&db, &req).unwrap_err();
    assert_eq!(err.code(), "deadline_exceeded");
    assert!(matches!(err, RunError::Eval(_)));
    // Datalog kernels abort between rounds too.
    let mut req = ExecRequest::datalog("T(x,y) :- E(x,y).\nT(x,z) :- T(x,y), E(y,z).", "T");
    req.opts.deadline = Some(std::time::Instant::now());
    let err = execute(&db, &req).unwrap_err();
    assert_eq!(err.code(), "deadline_exceeded");
}

#[test]
fn compiled_executor_is_thread_count_independent() {
    for lang in Lang::all() {
        for i in 0..10u64 {
            let case = gen_case(&mut Rng::seed_from_u64(0x7EAD + i), lang);
            let req = base_request(&case.kind);
            let mut one = with_mode(&req, CompileMode::On);
            one.opts.threads = Some(1);
            let mut many = with_mode(&req, CompileMode::On);
            many.opts.threads = Some(4);
            assert_eq!(
                norm(&case.db, &one),
                norm(&case.db, &many),
                "{lang} seed {i} thread-dependent\ncase: {}",
                case.text()
            );
        }
    }
}

#[test]
fn explain_surfaces_bytecode_and_cost() {
    let db = bvq_relation::parse_database("domain 6\nrel E/2\n0 1\n1 2\n2 3\nend").unwrap();
    let req = ExecRequest::query("(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)");
    let report = explain(&db, &req, false).unwrap();
    let bc = report.bytecode.expect("fixpoint query lowers");
    assert!(bc.contains(";; bytecode"), "{bc}");
    assert!(bc.contains("entry:"), "{bc}");
    assert!(report.cost.iter().any(|l| l.starts_with("cost:")));
    assert!(
        report.engine == "interpreted" || report.engine.starts_with("compiled ("),
        "{}",
        report.engine
    );
}

#[test]
fn bench_gate_fails_on_injected_2x_slowdown() {
    let file = |ns: u64| {
        Json::parse(&format!(
            "{{\"schema\":\"{BENCH_SCHEMA}\",\"seed\":0,\"smoke\":true,\"nproc\":1,\
             \"overhead_only\":true,\"metrics\":{{\"fp_reach_compiled_ns\":{ns},\
             \"server_warm_qps\":100}}}}"
        ))
        .unwrap()
    };
    let baseline = file(1_000_000);
    let slowed = file(2_000_000);
    let report = gate(&baseline, &slowed, 25);
    assert!(report.failed(), "{}", report.render());
    assert!(report.render().contains("REGRESSED"));
    // And the same numbers pass when unchanged.
    assert!(!gate(&baseline, &baseline, 25).failed());
}
