//! End-to-end tests for the bvq query server over loopback TCP:
//! concurrent clients across languages agree with direct evaluation,
//! caches hit on repeats, structured errors never kill a connection,
//! deadlines abort between fixpoint rounds, the bounded queue sheds
//! load, and graceful shutdown drains in-flight work.

use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

use bvq_relation::parse_database;
use bvq_server::{run_eval, Client, EvalOptions, Json, Server, ServerConfig, ServerHandle};
use bvq_workload::graphs::{graph_db, GraphKind};

const DB_TEXT: &str = "domain 6\nrel E/2\n0 1\n1 2\n2 3\n3 4\n4 5\nend\nrel P/1\n3\nend";

const FO_QUERY: &str = "(x1) exists x2. (E(x1,x2) & P(x2))";
const FP_QUERY: &str = "(x1) [lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)";
const DATALOG_TC: &str = "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).";

fn start_server(cfg: ServerConfig) -> ServerHandle {
    let handle = Server::start(cfg).expect("bind loopback");
    handle.load_db("g", parse_database(DB_TEXT).expect("parse db"));
    handle
}

fn default_server() -> ServerHandle {
    start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    })
}

fn rows_of(resp: &Json) -> Vec<Vec<u64>> {
    resp.get("rows")
        .and_then(Json::as_arr)
        .expect("rows")
        .iter()
        .map(|r| {
            r.as_arr()
                .unwrap()
                .iter()
                .filter_map(Json::as_u64)
                .collect()
        })
        .collect()
}

/// ≥ 8 concurrent clients mixing FO^k, FP^k and Datalog queries get
/// exactly the answers direct evaluation computes.
#[test]
fn concurrent_clients_agree_with_direct_eval() {
    let db = parse_database(DB_TEXT).unwrap();
    // Direct answers, via the same front-end the CLI uses.
    let direct_fo = run_eval(&db, FO_QUERY, &EvalOptions::default()).unwrap();
    let direct_fp = run_eval(&db, FP_QUERY, &EvalOptions::default()).unwrap();
    assert!(direct_fo.contains("⟨2⟩"));

    let mut handle = default_server();
    let addr = handle.addr();
    let (direct_fo, direct_fp) = (&direct_fo, &direct_fp);
    std::thread::scope(|s| {
        for i in 0..9 {
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for _ in 0..5 {
                    match i % 3 {
                        0 => {
                            let resp = c.eval("g", FO_QUERY).expect("fo");
                            assert!(Client::is_ok(&resp), "{resp}");
                            // run_eval reported exactly one answer ⟨2⟩.
                            assert_eq!(rows_of(&resp), vec![vec![2]], "vs: {direct_fo}");
                        }
                        1 => {
                            let resp = c.eval("g", FP_QUERY).expect("fp");
                            assert!(Client::is_ok(&resp), "{resp}");
                            // Reachability from 0 on the 6-path: everything.
                            let rows = rows_of(&resp);
                            assert_eq!(rows.len(), 6, "vs: {direct_fp}");
                            assert_eq!(resp.get("language"), Some(&Json::str("FP")));
                        }
                        _ => {
                            let resp = c.datalog("g", DATALOG_TC, "T").expect("datalog");
                            assert!(Client::is_ok(&resp), "{resp}");
                            // Transitive closure of the 6-path: 5+4+3+2+1.
                            assert_eq!(resp.get("count").and_then(Json::as_u64), Some(15));
                        }
                    }
                }
            });
        }
    });
    handle.shutdown();
}

/// Repeating a query raises the cache-hit counters, and the repeated
/// answer is byte-identical and flagged `cached`.
#[test]
fn repeated_queries_hit_the_caches() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();

    let first = c.eval("g", FP_QUERY).unwrap();
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
    let hits_before = handle.stats().result_hits.load(Relaxed);
    let plan_hits_before = handle.stats().plan_hits.load(Relaxed);

    let second = c.eval("g", FP_QUERY).unwrap();
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(rows_of(&first), rows_of(&second));
    assert!(handle.stats().result_hits.load(Relaxed) > hits_before);
    assert!(handle.stats().plan_hits.load(Relaxed) > plan_hits_before);

    // The stats op sees the same counters.
    let stats = c.stats().unwrap();
    assert!(stats.get("result_hits").and_then(Json::as_u64).unwrap() >= 1);
    handle.shutdown();
}

/// Two databases loaded from identical text share result-cache entries:
/// the key is the structural fingerprint, not the name.
#[test]
fn identical_databases_share_cached_results() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    assert!(Client::is_ok(&c.load_db("g2", DB_TEXT).unwrap()));
    let on_g = c.eval("g", FO_QUERY).unwrap();
    assert_eq!(on_g.get("cached"), Some(&Json::Bool(false)));
    let on_g2 = c.eval("g2", FO_QUERY).unwrap();
    assert_eq!(on_g2.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(rows_of(&on_g), rows_of(&on_g2));
    handle.shutdown();
}

/// Malformed JSON and unknown databases get structured errors and the
/// connection keeps serving.
#[test]
fn structured_errors_do_not_kill_the_connection() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();

    c.send_line("{{{ not json").unwrap();
    let resp = c.recv().unwrap();
    assert_eq!(Client::error_code(&resp), Some("bad_request"));

    let resp = c.eval("missing", FO_QUERY).unwrap();
    assert_eq!(Client::error_code(&resp), Some("unknown_db"));

    let resp = c.eval("g", "(x1) E(x1").unwrap();
    assert_eq!(Client::error_code(&resp), Some("parse_error"));

    let resp = c.call_op("eval", vec![("db", Json::str("g"))]).unwrap();
    assert_eq!(Client::error_code(&resp), Some("bad_request"));

    let resp = c.call_op("frobnicate", vec![]).unwrap();
    assert_eq!(Client::error_code(&resp), Some("unknown_op"));

    // After five straight errors the connection still works.
    assert!(c.ping().unwrap());
    let resp = c.eval("g", FO_QUERY).unwrap();
    assert!(Client::is_ok(&resp));
    handle.shutdown();
}

/// An expired deadline aborts between fixpoint rounds with the
/// `deadline_exceeded` code (and no partial answer is cached).
#[test]
fn deadlines_abort_fixpoint_queries() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    let resp = c
        .eval_with("g", FP_QUERY, vec![("deadline_ms", Json::num(0))])
        .unwrap();
    assert_eq!(Client::error_code(&resp), Some("deadline_exceeded"));
    // The aborted run cached nothing: the next run is a fresh miss…
    let resp = c.eval("g", FP_QUERY).unwrap();
    assert!(Client::is_ok(&resp));
    assert_eq!(resp.get("cached"), Some(&Json::Bool(false)));
    assert!(handle.stats().deadline_exceeded.load(Relaxed) >= 1);
    handle.shutdown();
}

/// A burst of 10× the queue capacity against a single busy worker is
/// shed with `overloaded`; admitted requests still complete.
#[test]
fn bounded_queue_sheds_load_under_burst() {
    let queue = 3;
    let mut handle = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: queue,
        debug_ops: true,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut sleeper = Client::connect(addr).unwrap();
    sleeper
        .send(Client::request(
            "debug_sleep",
            vec![("millis", Json::num(400))],
        ))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let burst = 10 * queue;
    let mut clients: Vec<Client> = (0..burst).map(|_| Client::connect(addr).unwrap()).collect();
    for c in &mut clients {
        c.send(Client::request(
            "eval",
            vec![("db", Json::str("g")), ("query", Json::str(FO_QUERY))],
        ))
        .unwrap();
    }
    let mut shed = 0;
    let mut served = 0;
    for c in &mut clients {
        let resp = c.recv().unwrap();
        match Client::error_code(&resp) {
            Some("overloaded") => shed += 1,
            None if Client::is_ok(&resp) => served += 1,
            other => panic!("unexpected response {other:?}: {resp}"),
        }
    }
    assert!(sleeper.recv().is_ok());
    assert!(shed > 0, "a 10x burst must shed ({served} served)");
    assert!(served > 0, "admitted requests must complete ({shed} shed)");
    assert_eq!(shed + served, burst);
    assert!(handle.stats().overloaded.load(Relaxed) as usize >= shed);
    // Control-plane ops stayed responsive throughout.
    assert!(Client::connect(addr).unwrap().ping().unwrap());
    handle.shutdown();
}

/// Graceful shutdown: the `shutdown` response arrives only after
/// in-flight work drained, and that work still gets its answer.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let handle = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        debug_ops: true,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let mut slow = Client::connect(addr).unwrap();
    slow.send(Client::request(
        "debug_sleep",
        vec![("millis", Json::num(300))],
    ))
    .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut admin = Client::connect(addr).unwrap();
    let resp = admin.shutdown().unwrap();
    assert!(Client::is_ok(&resp));
    // The in-flight sleep completed and delivered its response.
    let resp = slow.recv().unwrap();
    assert!(Client::is_ok(&resp));
    assert_eq!(resp.get("slept_ms").and_then(Json::as_u64), Some(300));
    // New compute work after shutdown is refused in a structured way.
    let resp = admin.eval("g", FO_QUERY).unwrap();
    assert_eq!(Client::error_code(&resp), Some("shutting_down"));
    handle.wait();
}

/// Streaming mode returns the same tuples as the materialized response,
/// row by row.
#[test]
fn streaming_matches_materialized_rows() {
    let mut handle = default_server();
    handle.load_db("big", graph_db(GraphKind::Sparse(3), 60, 17));
    let mut c = Client::connect(handle.addr()).unwrap();
    let q = "(x1) exists x2. E(x1,x2)";
    let materialized = c.eval("big", q).unwrap();
    let (header, rows, footer) = c.eval_stream("big", q).unwrap();
    assert!(Client::is_ok(&header));
    assert_eq!(header.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(rows_of(&materialized), rows);
    assert_eq!(
        footer.get("count").and_then(Json::as_u64),
        Some(rows.len() as u64)
    );
    handle.shutdown();
}

/// The `lint` op round-trips over the wire: classification, Tables 1–3
/// cells, and diagnostics — with zero evaluation (no result-cache
/// traffic, no rows).
#[test]
fn lint_over_the_wire() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    // ping advertises the capability.
    c.send_line(r#"{"op":"ping"}"#).unwrap();
    let caps = c.recv().unwrap().to_string_compact();
    assert!(caps.contains("\"lint\"") && caps.contains("\"admission\""));

    let misses_before = handle.stats().result_misses.load(Relaxed);
    let resp = c.lint("g", FP_QUERY).unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    let lint = resp.get("lint").expect("lint payload");
    assert_eq!(lint.get("language").and_then(Json::as_str), Some("FP^2"));
    assert_eq!(
        lint.get("data_complexity").and_then(Json::as_str),
        Some("PTIME-complete")
    );
    assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(0));
    assert!(resp.get("rows").is_none(), "lint never evaluates");
    assert_eq!(
        handle.stats().result_misses.load(Relaxed),
        misses_before,
        "lint must not touch the result cache"
    );

    // A broken query comes back ok:true with the diagnostic inline.
    let resp = c.lint("g", "(x1) Zap(x1)").unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    let lint = resp.get("lint").expect("lint payload");
    assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(1));
    let diags = lint.get("diagnostics").and_then(Json::as_arr).unwrap();
    assert_eq!(
        diags[0].get("code").and_then(Json::as_str),
        Some("BVQ-E008")
    );
    handle.shutdown();
}

/// With `admission: true`, error-level queries are rejected before the
/// worker pool; clean queries and the `lint` op itself still pass.
#[test]
fn admission_control_rejects_before_the_queue() {
    let mut handle = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        admission: true,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(handle.addr()).unwrap();
    let resp = c.eval("g", FO_QUERY).unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    let resp = c.eval("g", "(x1) ~P(x1)").unwrap();
    assert_eq!(Client::error_code(&resp), Some("admission_rejected"));
    // The lint op explains the rejection without tripping admission.
    let resp = c.lint("g", "(x1) ~P(x1)").unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    assert!(handle.stats().admission_rejected.load(Relaxed) >= 1);
    let stats = c.stats().unwrap();
    assert!(stats.get("admission_rejected").and_then(Json::as_u64) >= Some(1));
    handle.shutdown();
}

/// Schema mismatches fail with a structured `schema_error` at dispatch,
/// before any evaluation.
#[test]
fn schema_errors_are_structured_over_the_wire() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    let resp = c.eval("g", "(x1) Zap(x1)").unwrap();
    assert_eq!(Client::error_code(&resp), Some("schema_error"));
    let resp = c.eval("g", "(x1) E(x1)").unwrap();
    assert_eq!(Client::error_code(&resp), Some("schema_error"));
    let resp = c.datalog("g", "T(x) :- Zap(x).", "T").unwrap();
    assert_eq!(Client::error_code(&resp), Some("schema_error"));
    // The connection survives and valid work still runs.
    let resp = c.eval("g", FO_QUERY).unwrap();
    assert!(Client::is_ok(&resp));
    handle.shutdown();
}

/// ESO sentences evaluate over the wire with witness output.
#[test]
fn eso_over_the_wire() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    let resp = c
        .eso("g", "exists2 S/1. forall x1. (S(x1) <-> ~P(x1))")
        .unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    let text = resp.get("text").and_then(Json::as_str).unwrap();
    assert!(text.contains("sentence: true"));
    assert!(text.contains("witness S"));
    assert_eq!(resp.get("language"), Some(&Json::str("ESO")));
    handle.shutdown();
}

/// An *empty* database — relations declared, zero tuples — answers
/// every language with clean empty (or false) results, not errors.
#[test]
fn empty_database_answers_cleanly_in_every_language() {
    let mut handle = default_server();
    handle.load_db(
        "empty",
        parse_database("domain 4\nrel E/2\nend\nrel P/1\nend").unwrap(),
    );
    let mut c = Client::connect(handle.addr()).unwrap();

    let resp = c.eval("empty", FO_QUERY).unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    assert!(rows_of(&resp).is_empty());

    // The FP query still holds at the seeded constant 0.
    let resp = c.eval("empty", FP_QUERY).unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    assert_eq!(rows_of(&resp), vec![vec![0]]);

    let resp = c.datalog("empty", DATALOG_TC, "T").unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    assert!(rows_of(&resp).is_empty());
    handle.shutdown();
}

/// 0-ary (boolean) queries come back as a structured `boolean` field in
/// both materialized and streaming form — never a row set, never a hang.
#[test]
fn boolean_queries_answer_structurally_over_the_wire() {
    let mut handle = default_server();
    let mut c = Client::connect(handle.addr()).unwrap();
    for (sentence, want) in [
        ("() exists x1. P(x1)", true),
        ("() exists x1. (P(x1) & E(x1,x1))", false),
    ] {
        let resp = c.eval("g", sentence).unwrap();
        assert!(Client::is_ok(&resp), "{resp}");
        assert_eq!(resp.get("boolean"), Some(&Json::Bool(want)), "{resp}");
        assert!(resp.get("rows").is_none(), "boolean answers carry no rows");

        // Streaming a sentence degenerates to the same single object.
        let (header, rows, _footer) = c.eval_stream("g", sentence).unwrap();
        assert!(Client::is_ok(&header), "{header}");
        assert_eq!(header.get("boolean"), Some(&Json::Bool(want)));
        assert!(rows.is_empty());
    }
    handle.shutdown();
}

/// Deadlines expiring exactly on the between-rounds check (budget ≈ one
/// fixpoint round) still produce a structured response — `ok` or
/// `deadline_exceeded`, never a hang — and the connection keeps serving.
#[test]
fn deadline_on_the_round_boundary_stays_structured() {
    let mut handle = default_server();
    handle.load_db("big", graph_db(GraphKind::Sparse(2), 400, 23));
    let mut c = Client::connect(handle.addr()).unwrap();
    for deadline_ms in [0u64, 1, 2, 3] {
        let resp = c
            .eval_with(
                "big",
                FP_QUERY,
                vec![
                    ("deadline_ms", Json::num(deadline_ms)),
                    ("no_cache", Json::Bool(true)),
                ],
            )
            .unwrap();
        let ok = Client::is_ok(&resp);
        assert!(
            ok || Client::error_code(&resp) == Some("deadline_exceeded"),
            "deadline_ms={deadline_ms} answered {resp}"
        );
    }
    // The worker survived every race.
    assert!(c.ping().unwrap());
    let resp = c.eval("g", FO_QUERY).unwrap();
    assert!(Client::is_ok(&resp));
    handle.shutdown();
}

/// Frames longer than `max_frame_bytes` are drained and rejected with
/// a structured `bad_request`; the same connection keeps serving.
#[test]
fn oversized_frames_get_a_structured_rejection() {
    let mut handle = start_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(handle.addr()).unwrap();
    let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "y".repeat(4096));
    c.send_line(&huge).unwrap();
    let resp = c.recv().unwrap();
    assert_eq!(Client::error_code(&resp), Some("bad_request"));
    // Under the cap passes; the connection is still healthy.
    assert!(c.ping().unwrap());
    let resp = c.eval("g", FO_QUERY).unwrap();
    assert!(Client::is_ok(&resp), "{resp}");
    handle.shutdown();
}
