//! # bvq-fuzz
//!
//! Differential and metamorphic testing for the bounded-variable query
//! engines. The paper's results are *equivalence* claims — bottom-up
//! `FO^k` evaluation agrees with the naive evaluator (Proposition 3.1),
//! the Datalog engines agree with the `FP` translation (Proposition
//! 3.2), parallel evaluation agrees with sequential, and the query
//! server agrees with direct evaluation — so every theorem doubles as
//! an executable oracle over *generated* inputs, in the spirit of
//! Csmith/SQLancer-style engine testing.
//!
//! The pipeline:
//!
//! 1. [`gen`] — seeded generators ([`bvq_prng::Rng`]) for databases
//!    (path / grid / random / scale-free edge shapes plus unary and
//!    binary satellite relations) and for well-formed `FO^k` / `FP^k` /
//!    `PFP^k` queries and positive range-restricted Datalog programs.
//!    Everything generated passes `bvq-lint` *by construction*; the
//!    driver asserts it.
//! 2. [`oracle`] — each case runs through every applicable evaluator
//!    pair (naive vs bounded, seminaive vs naive Datalog vs the FP
//!    translation, `threads=1` vs `threads=N`, direct [`execute`] vs a
//!    live server round-trip in materialized and streaming form, cold
//!    vs cached) and the results must be set-equal.
//! 3. [`metamorphic`] — result-preserving rewrites (double negation,
//!    adjacent-∃ reorder, conjunct shuffle, `minimize_width`, domain
//!    renaming) must not change the answer.
//! 4. [`shrink`] — a greedy minimizer drops tuples, rules and formula
//!    nodes and shrinks the domain while the divergence persists.
//! 5. [`repro`] — failing cases render to a seed-stamped text file that
//!    `bvq fuzz --repro FILE` replays.
//! 6. [`fault`] — server fault injection: dropped connections
//!    mid-stream, oversized and truncated frames, deadline races; the
//!    pool must answer with structured errors and never wedge.
//!
//! [`execute`]: bvq_server::exec::execute

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod fault;
pub mod gen;
pub mod metamorphic;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use driver::{run_fuzz, FailureReport, FuzzConfig, FuzzOutcome, LangSummary};
pub use fault::{run_fault_injection, FaultReport};
pub use gen::{gen_case, gen_db, Case, CaseKind};
pub use oracle::{check_case, Divergence, Mutation, ServerOracle};
pub use repro::{parse_repro, render_repro, Repro};
pub use shrink::shrink_case;

use bvq_prng::Rng;

/// The query languages the fuzzer covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lang {
    /// First-order queries, `FO^k`.
    Fo,
    /// Least-fixpoint queries, `FP^k`.
    Fp,
    /// Partial-fixpoint queries, `PFP^k`.
    Pfp,
    /// Positive range-restricted Datalog programs.
    Datalog,
}

impl Lang {
    /// All languages, in the order reports print them.
    pub fn all() -> [Lang; 4] {
        [Lang::Fo, Lang::Fp, Lang::Pfp, Lang::Datalog]
    }

    /// The lowercase label used by `--filter`, repro files and reports.
    pub fn label(self) -> &'static str {
        match self {
            Lang::Fo => "fo",
            Lang::Fp => "fp",
            Lang::Pfp => "pfp",
            Lang::Datalog => "datalog",
        }
    }

    /// Parses a `--filter` / repro-file label.
    pub fn parse(s: &str) -> Option<Lang> {
        match s.to_ascii_lowercase().as_str() {
            "fo" => Some(Lang::Fo),
            "fp" => Some(Lang::Fp),
            "pfp" => Some(Lang::Pfp),
            "datalog" => Some(Lang::Datalog),
            _ => None,
        }
    }
}

impl std::fmt::Display for Lang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parses a `--seed` argument. Accepts decimal (`42`), hex (`0x2a`),
/// and — so seeds like CI's `0xBVQ5` are usable verbatim — any other
/// string, which is hashed (FNV-1a) to a deterministic 64-bit seed.
pub fn parse_seed(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The per-case RNG: a deterministic function of the run seed, the
/// language, and the case index, so any single case can be regenerated
/// without replaying the run up to it.
pub fn case_rng(seed: u64, lang: Lang, index: u64) -> Rng {
    let tag = match lang {
        Lang::Fo => 0x01,
        Lang::Fp => 0x02,
        Lang::Pfp => 0x03,
        Lang::Datalog => 0x04,
    };
    Rng::seed_from_u64(
        seed ^ (tag as u64).wrapping_mul(0x9e3779b97f4a7c15)
            ^ index.wrapping_mul(0xd1b54a32d192ed03),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing_accepts_decimal_hex_and_arbitrary_strings() {
        assert_eq!(parse_seed("42"), 42);
        assert_eq!(parse_seed("0x2a"), 42);
        assert_eq!(parse_seed("0X2A"), 42);
        // Not valid hex (`V` is no hex digit) — hashed, but stable.
        assert_eq!(parse_seed("0xBVQ5"), parse_seed("0xBVQ5"));
        assert_ne!(parse_seed("0xBVQ5"), parse_seed("0xBVQ6"));
    }

    #[test]
    fn case_rngs_are_independent_per_lang_and_index() {
        let a = case_rng(1, Lang::Fo, 0).next_u64();
        let b = case_rng(1, Lang::Fp, 0).next_u64();
        let c = case_rng(1, Lang::Fo, 1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, case_rng(1, Lang::Fo, 0).next_u64());
    }
}
