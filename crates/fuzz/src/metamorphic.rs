//! Result-preserving rewrites for the metamorphic oracle layer.
//!
//! Each rewrite maps a query (or program) to one with provably the same
//! answer on every database; the oracle evaluates both and asserts the
//! answers are set-equal. A disagreement implicates the *evaluator*,
//! not the case.

use bvq_datalog::{AtomTerm, Program};
use bvq_logic::{Formula, Query, Term};
use bvq_prng::Rng;
use bvq_relation::{Database, Elem, Relation, Tuple};

/// `φ ↦ ¬¬φ`. Built with raw constructors: the [`Formula::not`] helper
/// deliberately collapses double negations, which would turn this
/// rewrite into the identity.
pub fn double_negation(q: &Query) -> Query {
    let f = Formula::Not(Box::new(Formula::Not(Box::new(q.formula.clone()))));
    Query::new(q.output.clone(), f)
}

/// Flattens every conjunction chain and rebuilds it in a seeded random
/// order (`∧` is associative and commutative).
pub fn conjunct_shuffle(q: &Query, seed: u64) -> Query {
    let mut rng = Rng::seed_from_u64(seed);
    Query::new(q.output.clone(), shuffle(&q.formula, &mut rng))
}

fn shuffle(f: &Formula, rng: &mut Rng) -> Formula {
    match f {
        Formula::And(..) => {
            let mut conjuncts = Vec::new();
            flatten_and(f, rng, &mut conjuncts);
            rng.shuffle(&mut conjuncts);
            Formula::and_all(conjuncts)
        }
        Formula::Or(a, b) => shuffle(a, rng).or(shuffle(b, rng)),
        Formula::Not(g) => Formula::Not(Box::new(shuffle(g, rng))),
        Formula::Exists(v, g) => shuffle(g, rng).exists(*v),
        Formula::Forall(v, g) => shuffle(g, rng).forall(*v),
        Formula::Fix {
            kind,
            rel,
            bound,
            body,
            args,
        } => Formula::Fix {
            kind: *kind,
            rel: rel.clone(),
            bound: bound.clone(),
            body: Box::new(shuffle(body, rng)),
            args: args.clone(),
        },
        leaf => leaf.clone(),
    }
}

fn flatten_and(f: &Formula, rng: &mut Rng, out: &mut Vec<Formula>) {
    match f {
        Formula::And(a, b) => {
            flatten_and(a, rng, out);
            flatten_and(b, rng, out);
        }
        other => out.push(shuffle(other, rng)),
    }
}

/// Swaps the first adjacent pair of distinct existential quantifiers
/// (`∃v∃w.φ ↦ ∃w∃v.φ`); `None` when the formula has no such pair.
pub fn exists_reorder(q: &Query) -> Option<Query> {
    swap_exists(&q.formula).map(|f| Query::new(q.output.clone(), f))
}

fn swap_exists(f: &Formula) -> Option<Formula> {
    if let Formula::Exists(v, g) = f {
        if let Formula::Exists(w, h) = g.as_ref() {
            if v != w {
                return Some(h.as_ref().clone().exists(*v).exists(*w));
            }
        }
    }
    // Otherwise recurse into the first child that contains a pair.
    match f {
        Formula::Not(g) => swap_exists(g).map(|g| Formula::Not(Box::new(g))),
        Formula::And(a, b) => match swap_exists(a) {
            Some(a2) => Some(a2.and(b.as_ref().clone())),
            None => swap_exists(b).map(|b2| a.as_ref().clone().and(b2)),
        },
        Formula::Or(a, b) => match swap_exists(a) {
            Some(a2) => Some(a2.or(b.as_ref().clone())),
            None => swap_exists(b).map(|b2| a.as_ref().clone().or(b2)),
        },
        Formula::Exists(v, g) => swap_exists(g).map(|g2| g2.exists(*v)),
        Formula::Forall(v, g) => swap_exists(g).map(|g2| g2.forall(*v)),
        Formula::Fix {
            kind,
            rel,
            bound,
            body,
            args,
        } => swap_exists(body).map(|b2| Formula::Fix {
            kind: *kind,
            rel: rel.clone(),
            bound: bound.clone(),
            body: Box::new(b2),
            args: args.clone(),
        }),
        _ => None,
    }
}

/// The `minimize_width` rewrite, when it applies and actually changes
/// the formula.
pub fn minimized(q: &Query) -> Option<Query> {
    let slim = q.formula.minimize_width()?;
    if slim == q.formula {
        return None;
    }
    Some(Query::new(q.output.clone(), slim))
}

/// Applies a domain permutation to every tuple of every relation.
pub fn rename_db(db: &Database, perm: &[Elem]) -> Database {
    let mut out = Database::new(db.domain_size());
    for (id, name, arity) in db.schema().iter() {
        let mut rel = Relation::new(arity);
        for t in db.relation(id).iter() {
            let mapped: Vec<Elem> = t.as_slice().iter().map(|&e| perm[e as usize]).collect();
            rel.insert(Tuple::from(mapped));
        }
        out.add_relation(name, rel)
            .expect("permutation stays in domain");
    }
    out
}

/// Applies a domain permutation to every constant of a formula.
pub fn rename_query(q: &Query, perm: &[Elem]) -> Query {
    Query::new(q.output.clone(), rename_formula(&q.formula, perm))
}

fn rename_term(t: &Term, perm: &[Elem]) -> Term {
    match t {
        Term::Var(v) => Term::Var(*v),
        Term::Const(c) => Term::Const(perm[*c as usize]),
    }
}

fn rename_formula(f: &Formula, perm: &[Elem]) -> Formula {
    match f {
        Formula::Const(b) => Formula::Const(*b),
        Formula::Atom(a) => {
            let mut a2 = a.clone();
            a2.args = a.args.iter().map(|t| rename_term(t, perm)).collect();
            Formula::Atom(a2)
        }
        Formula::Eq(a, b) => Formula::Eq(rename_term(a, perm), rename_term(b, perm)),
        Formula::Not(g) => Formula::Not(Box::new(rename_formula(g, perm))),
        Formula::And(a, b) => rename_formula(a, perm).and(rename_formula(b, perm)),
        Formula::Or(a, b) => rename_formula(a, perm).or(rename_formula(b, perm)),
        Formula::Exists(v, g) => rename_formula(g, perm).exists(*v),
        Formula::Forall(v, g) => rename_formula(g, perm).forall(*v),
        Formula::Fix {
            kind,
            rel,
            bound,
            body,
            args,
        } => Formula::Fix {
            kind: *kind,
            rel: rel.clone(),
            bound: bound.clone(),
            body: Box::new(rename_formula(body, perm)),
            args: args.iter().map(|t| rename_term(t, perm)).collect(),
        },
    }
}

/// Applies a domain permutation to every constant of a program.
pub fn rename_program(p: &Program, perm: &[Elem]) -> Program {
    let mut out = p.clone();
    for r in &mut out.rules {
        for a in &mut r.body {
            for t in &mut a.args {
                if let AtomTerm::Const(c) = t {
                    *c = perm[*c as usize];
                }
            }
        }
    }
    out
}

/// A seeded permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<Elem> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut perm: Vec<Elem> = (0..n as Elem).collect();
    rng.shuffle(&mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_logic::Var;

    #[test]
    fn double_negation_is_not_collapsed() {
        let q = Query::new(vec![Var(0)], Formula::atom("P", [Term::Var(Var(0))]));
        let dn = double_negation(&q);
        assert!(matches!(dn.formula, Formula::Not(_)));
        assert_eq!(dn.formula.size(), q.formula.size() + 2);
    }

    #[test]
    fn exists_reorder_swaps_distinct_adjacent_quantifiers() {
        let inner = Formula::atom("E", [Term::Var(Var(0)), Term::Var(Var(1))]);
        let q = Query::sentence(inner.exists(Var(1)).exists(Var(0)));
        let r = exists_reorder(&q).expect("has an adjacent pair");
        let text = r.formula.to_string();
        assert!(text.starts_with("exists x2"), "got {text}");
    }

    #[test]
    fn conjunct_shuffle_preserves_the_multiset_of_conjuncts() {
        let a = Formula::atom("P", [Term::Var(Var(0))]);
        let b = Formula::atom("Q", [Term::Var(Var(0))]);
        let c = Formula::Eq(Term::Var(Var(0)), Term::Const(1));
        let q = Query::new(vec![Var(0)], a.clone().and(b.clone()).and(c.clone()));
        let s = conjunct_shuffle(&q, 3);
        let mut flat = Vec::new();
        fn collect(f: &Formula, out: &mut Vec<String>) {
            match f {
                Formula::And(x, y) => {
                    collect(x, out);
                    collect(y, out);
                }
                other => out.push(other.to_string()),
            }
        }
        collect(&s.formula, &mut flat);
        flat.sort();
        let mut want = vec![a.to_string(), b.to_string(), c.to_string()];
        want.sort();
        assert_eq!(flat, want);
    }
}
