//! Seed-stamped repro files.
//!
//! When a fuzz run finds (and shrinks) a divergence, it writes a
//! self-contained text file that `bvq fuzz --repro FILE` replays — the
//! case itself, not just the seed, so a repro survives generator
//! changes. Format (`#` lines are comments):
//!
//! ```text
//! # bvq-fuzz repro — replay with: bvq fuzz --repro FILE
//! seed 0xBVQ5
//! case 17
//! lang fo
//! oracle naive-vs-bounded
//! query (x1) P(x1) and exists x2 E(x1, x2)
//! db
//! domain 4
//! rel E 2
//! 0 1
//! ...
//! ```
//!
//! Datalog cases carry `program` (rules on one `.`-separated line) and
//! `output` lines instead of `query`. Everything after the `db` marker
//! is the database in the standard text format.

use bvq_datalog::parse_program;
use bvq_logic::parser::parse_query;
use bvq_relation::{parse_database, write_database};

use crate::gen::{Case, CaseKind};
use crate::Lang;

/// A parsed repro file: the case to replay plus its provenance.
#[derive(Clone, Debug)]
pub struct Repro {
    /// The case, exactly as shrunk.
    pub case: Case,
    /// The original run's `--seed`, verbatim.
    pub seed: String,
    /// The case index within that run.
    pub index: u64,
    /// The oracle pair that diverged.
    pub oracle: String,
}

/// Renders a repro file.
pub fn render_repro(repro: &Repro) -> String {
    let mut out = String::new();
    out.push_str("# bvq-fuzz repro — replay with: bvq fuzz --repro FILE\n");
    out.push_str(&format!("seed {}\n", repro.seed));
    out.push_str(&format!("case {}\n", repro.index));
    out.push_str(&format!("lang {}\n", repro.case.lang));
    out.push_str(&format!("oracle {}\n", repro.oracle));
    match &repro.case.kind {
        CaseKind::Query(q) => out.push_str(&format!("query {q}\n")),
        CaseKind::Datalog(p, target) => {
            let one_line = p.to_text().replace('\n', " ");
            out.push_str(&format!("program {}\n", one_line.trim_end()));
            out.push_str(&format!("output {target}\n"));
        }
    }
    out.push_str("db\n");
    out.push_str(&write_database(&repro.case.db));
    out
}

/// Parses a repro file back into a replayable case.
///
/// # Errors
/// Returns a human-readable message naming the missing or malformed
/// field.
pub fn parse_repro(text: &str) -> Result<Repro, String> {
    let mut seed = None;
    let mut index = None;
    let mut lang = None;
    let mut oracle = None;
    let mut query = None;
    let mut program = None;
    let mut output = None;
    let mut db_text = None;

    let mut lines = text.lines();
    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = match line.split_once(' ') {
            Some((k, r)) => (k, r.trim().to_string()),
            None => (line, String::new()),
        };
        match key {
            "seed" => seed = Some(rest),
            "case" => {
                index = Some(
                    rest.parse::<u64>()
                        .map_err(|_| format!("bad case index `{rest}`"))?,
                )
            }
            "lang" => {
                lang = Some(Lang::parse(&rest).ok_or_else(|| format!("unknown lang `{rest}`"))?)
            }
            "oracle" => oracle = Some(rest),
            "query" => query = Some(rest),
            "program" => program = Some(rest),
            "output" => output = Some(rest),
            "db" => {
                // Everything that remains is the database text.
                let rest_text: Vec<&str> = lines.collect();
                db_text = Some(rest_text.join("\n"));
                break;
            }
            other => return Err(format!("unknown repro field `{other}`")),
        }
    }

    let lang = lang.ok_or("repro file is missing the `lang` line")?;
    let db_text = db_text.ok_or("repro file is missing the `db` section")?;
    let db = parse_database(&db_text).map_err(|e| format!("bad db section: {e}"))?;
    let kind = match (query, program) {
        (Some(q), None) => CaseKind::Query(parse_query(&q).map_err(|e| format!("bad query: {e}"))?),
        (None, Some(p)) => {
            let prog = parse_program(&p).map_err(|e| format!("bad program: {e}"))?;
            let target = output.ok_or("datalog repro is missing the `output` line")?;
            CaseKind::Datalog(prog, target)
        }
        (Some(_), Some(_)) => return Err("repro has both `query` and `program`".into()),
        (None, None) => return Err("repro has neither `query` nor `program`".into()),
    };
    Ok(Repro {
        case: Case { lang, db, kind },
        seed: seed.unwrap_or_else(|| "0".into()),
        index: index.unwrap_or(0),
        oracle: oracle.unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use bvq_prng::Rng;

    #[test]
    fn every_language_round_trips_through_the_repro_format() {
        for lang in Lang::all() {
            for i in 0..10u64 {
                let case = gen_case(&mut Rng::seed_from_u64(900 + i), lang);
                let repro = Repro {
                    case: case.clone(),
                    seed: "0xBVQ5".into(),
                    index: i,
                    oracle: "naive-vs-bounded".into(),
                };
                let text = render_repro(&repro);
                let back =
                    parse_repro(&text).unwrap_or_else(|e| panic!("{lang} case {i}: {e}\n{text}"));
                assert_eq!(back.case.lang, lang);
                assert_eq!(back.seed, "0xBVQ5");
                assert_eq!(back.index, i);
                assert_eq!(back.oracle, "naive-vs-bounded");
                assert_eq!(back.case.text(), case.text(), "case text must survive");
                assert_eq!(
                    back.case.db.fingerprint(),
                    case.db.fingerprint(),
                    "database must survive"
                );
            }
        }
    }

    #[test]
    fn parse_errors_name_the_offending_field() {
        assert!(parse_repro("lang klingon\ndb\ndomain 1\n").is_err());
        assert!(parse_repro("query (x1) P(x1)\n")
            .unwrap_err()
            .contains("lang"));
        assert!(parse_repro("lang fo\nquery (x1) P(x1)\n")
            .unwrap_err()
            .contains("db"));
        assert!(parse_repro("lang fo\ndb\ndomain 1\n")
            .unwrap_err()
            .contains("query"));
    }
}
