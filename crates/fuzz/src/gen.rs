//! Seeded case generators: databases, bounded-variable queries, and
//! Datalog programs.
//!
//! Everything here is a pure function of the [`Rng`] it is handed, and
//! everything it emits is well-formed *by construction*:
//!
//! - Databases always carry the fixed fuzz schema `E/2, P/1, Q/1, R/2`
//!   (relations may be empty — empty relations are a coverage goal, not
//!   an accident), with every element inside the domain.
//! - `FO^k` formulas are built safe-range: every free variable is
//!   range-restricted in the sense `bvq-lint`'s E001 pass checks, and
//!   the query's output is exactly its free-variable set (E007).
//! - `FP^k` bodies use the fixpoint variable positively only (E002).
//! - Datalog rules have distinct-variable heads and are
//!   range-restricted (E004), so `Program::validate` accepts them.

use bvq_datalog::{AtomTerm, Program};
use bvq_logic::{Formula, Query, Term, Var};
use bvq_prng::Rng;
use bvq_relation::{Database, Elem, Relation, Tuple};
use bvq_workload::graphs::{edges, GraphKind};

use crate::Lang;

/// The unary relations of the fuzz schema.
pub const UNARY_RELS: [&str; 2] = ["P", "Q"];
/// The binary relations of the fuzz schema.
pub const BINARY_RELS: [&str; 2] = ["E", "R"];

/// What a generated case evaluates.
#[derive(Clone, Debug)]
pub enum CaseKind {
    /// An FO/FP/PFP query (sent as text through the printer, which
    /// guarantees parse/print round-trips).
    Query(Query),
    /// A Datalog program plus its output predicate.
    Datalog(Program, String),
}

/// One generated differential-testing case.
#[derive(Clone, Debug)]
pub struct Case {
    /// The language the case exercises.
    pub lang: Lang,
    /// The generated database.
    pub db: Database,
    /// The query or program.
    pub kind: CaseKind,
}

impl Case {
    /// The query/program as wire text (what the server receives).
    pub fn text(&self) -> String {
        match &self.kind {
            CaseKind::Query(q) => q.to_string(),
            CaseKind::Datalog(p, _) => p.to_text(),
        }
    }

    /// Total tuple count of the database (shrinker metric).
    pub fn tuples(&self) -> usize {
        self.db.total_tuples()
    }

    /// Formula AST size, or rule-atom count for Datalog (shrinker
    /// metric).
    pub fn nodes(&self) -> usize {
        match &self.kind {
            CaseKind::Query(q) => q.formula.size(),
            CaseKind::Datalog(p, _) => p.rules.iter().map(|r| 1 + r.body.len()).sum(),
        }
    }
}

/// Generates a database over the fuzz schema: an edge relation `E`
/// shaped as a path, grid, sparse-random or scale-free graph; a second
/// binary relation `R` (sparser); and unary relations `P` and `Q`
/// (possibly empty). Domain size 2–7 keeps whole-run wall clock low
/// while still exercising every evaluator path.
pub fn gen_db(rng: &mut Rng) -> Database {
    let n = rng.gen_range(2usize..8);
    let e = match rng.gen_range(0u32..4) {
        0 => edges(GraphKind::Path, n, rng.next_u64()),
        1 => edges(GraphKind::Grid, n, rng.next_u64()),
        2 => edges(GraphKind::Sparse(2), n, rng.next_u64()),
        _ => scale_free(rng, n),
    };
    let mut r = Relation::new(2);
    for _ in 0..rng.gen_range(0usize..n) {
        r.insert(Tuple::from_slice(&[
            rng.gen_range(0..n as Elem),
            rng.gen_range(0..n as Elem),
        ]));
    }
    let mut db = Database::new(n);
    db.add_relation("E", e).expect("in-domain edges");
    db.add_relation("R", r).expect("in-domain tuples");
    for name in UNARY_RELS {
        let mut rel = Relation::new(1);
        // `p = 0` sometimes: empty unary relations are a coverage goal.
        let p = *rng.choose(&[0.0, 0.2, 0.4, 0.6]);
        for v in 0..n {
            if rng.gen_bool(p) {
                rel.insert(Tuple::from_slice(&[v as Elem]));
            }
        }
        db.add_relation(name, rel).expect("in-domain labels");
    }
    db
}

/// A scale-free-ish edge shape by preferential attachment: each new
/// node attaches to an endpoint drawn from the multiset of all previous
/// endpoints, so high-degree nodes keep attracting edges.
fn scale_free(rng: &mut Rng, n: usize) -> Relation {
    let mut rel = Relation::new(2);
    let mut endpoints: Vec<Elem> = vec![0];
    for v in 1..n as Elem {
        let m = 1 + usize::from(rng.gen_bool(0.3));
        for _ in 0..m {
            let target = *rng.choose(&endpoints);
            rel.insert(Tuple::from_slice(&[v, target]));
            endpoints.push(target);
        }
        endpoints.push(v);
    }
    rel
}

/// Generates one case for `lang`, seeded entirely from `rng`.
pub fn gen_case(rng: &mut Rng, lang: Lang) -> Case {
    let db = gen_db(rng);
    let n = db.domain_size();
    let kind = match lang {
        Lang::Fo => CaseKind::Query(gen_fo_query(rng, n)),
        Lang::Fp => CaseKind::Query(gen_fix_query(rng, n, false)),
        Lang::Pfp => CaseKind::Query(gen_fix_query(rng, n, true)),
        Lang::Datalog => {
            let (p, out) = gen_datalog(rng, n);
            CaseKind::Datalog(p, out)
        }
    };
    Case { lang, db, kind }
}

/// A guard formula that range-restricts `v` (and only uses `v` free).
fn guard(rng: &mut Rng, n: usize, v: Var, pool: &mut Vec<Var>) -> Formula {
    match rng.gen_range(0u32..6) {
        0 | 1 => {
            let rel = *rng.choose(&UNARY_RELS);
            Formula::atom(rel, [Term::Var(v)])
        }
        2 => Formula::Eq(Term::Var(v), Term::Const(rng.gen_range(0..n as Elem))),
        _ => match pool.pop() {
            Some(w) => {
                let rel = *rng.choose(&BINARY_RELS);
                let args = if rng.gen_bool(0.5) {
                    [Term::Var(v), Term::Var(w)]
                } else {
                    [Term::Var(w), Term::Var(v)]
                };
                let g = Formula::atom(rel, args).exists(w);
                pool.push(w);
                g
            }
            None => {
                let rel = *rng.choose(&BINARY_RELS);
                Formula::atom(rel, [Term::Var(v), Term::Var(v)])
            }
        },
    }
}

/// An arbitrary (possibly unsafe in isolation) subformula over exactly
/// the variables in `avail` — it only ever appears conjoined with a
/// safe skeleton, so overall safety is preserved.
fn gen_extra(rng: &mut Rng, n: usize, depth: usize, avail: &[Var], pool: &mut Vec<Var>) -> Formula {
    if depth == 0 || avail.is_empty() {
        return match (rng.gen_range(0u32..5), avail.first()) {
            (_, None) | (0, _) => Formula::Const(rng.gen_bool(0.5)),
            (1, Some(&v)) => Formula::Eq(Term::Var(v), Term::Const(rng.gen_range(0..n as Elem))),
            (2, Some(_)) => {
                let a = *rng.choose(avail);
                let b = *rng.choose(avail);
                Formula::Eq(Term::Var(a), Term::Var(b))
            }
            (3, Some(_)) => {
                let rel = *rng.choose(&UNARY_RELS);
                Formula::atom(rel, [Term::Var(*rng.choose(avail))])
            }
            (_, Some(_)) => {
                let a = *rng.choose(avail);
                let b = *rng.choose(avail);
                let rel = *rng.choose(&BINARY_RELS);
                Formula::atom(rel, [Term::Var(a), Term::Var(b)])
            }
        };
    }
    match rng.gen_range(0u32..6) {
        0 => Formula::Not(Box::new(gen_extra(rng, n, depth - 1, avail, pool))),
        1 => {
            gen_extra(rng, n, depth - 1, avail, pool).and(gen_extra(rng, n, depth - 1, avail, pool))
        }
        2 => {
            gen_extra(rng, n, depth - 1, avail, pool).or(gen_extra(rng, n, depth - 1, avail, pool))
        }
        3 | 4 => match pool.pop() {
            Some(w) => {
                let mut inner: Vec<Var> = avail.to_vec();
                inner.push(w);
                let g = gen_extra(rng, n, depth - 1, &inner, pool);
                pool.push(w);
                if rng.gen_bool(0.5) {
                    g.exists(w)
                } else {
                    g.forall(w)
                }
            }
            None => gen_extra(rng, n, 0, avail, pool),
        },
        _ => gen_extra(rng, n, 0, avail, pool),
    }
}

/// A safe-range formula whose free variables are exactly `must`, each
/// range-restricted. `pool` holds the variable indices still available
/// for quantification (all `< k`).
fn gen_safe(rng: &mut Rng, n: usize, depth: usize, must: &[Var], pool: &mut Vec<Var>) -> Formula {
    if must.is_empty() {
        // Closed: quantify a fresh variable over a safe body.
        return match pool.pop() {
            Some(w) => {
                let body = gen_safe(rng, n, depth.saturating_sub(1), &[w], pool);
                pool.push(w);
                if rng.gen_bool(0.8) {
                    body.exists(w)
                } else {
                    body.forall(w)
                }
            }
            None => Formula::Const(rng.gen_bool(0.5)),
        };
    }
    if depth == 0 {
        return Formula::and_all(must.iter().map(|&v| guard(rng, n, v, pool)));
    }
    match rng.gen_range(0u32..6) {
        // Conjoin a safe skeleton with arbitrary extra structure.
        0 | 1 => {
            let skeleton = gen_safe(rng, n, depth - 1, must, pool);
            let extra = gen_extra(rng, n, depth - 1, must, pool);
            skeleton.and(extra)
        }
        // Disjunction: both branches restrict all of `must`.
        2 => gen_safe(rng, n, depth - 1, must, pool).or(gen_safe(rng, n, depth - 1, must, pool)),
        // Quantify a fresh variable that the body also restricts.
        3 if !pool.is_empty() => {
            let w = pool.pop().expect("checked nonempty");
            let mut inner: Vec<Var> = must.to_vec();
            inner.push(w);
            let body = gen_safe(rng, n, depth - 1, &inner, pool);
            pool.push(w);
            body.exists(w)
        }
        _ => Formula::and_all(must.iter().map(|&v| guard(rng, n, v, pool))),
    }
}

/// Generates a safe `FO^k` query, `k ≤ 3`; roughly one case in five is
/// a sentence (0-ary boolean query).
pub fn gen_fo_query(rng: &mut Rng, n: usize) -> Query {
    let k = rng.gen_range(2usize..4);
    let nout = if rng.gen_bool(0.2) {
        0
    } else {
        rng.gen_range(1usize..k.min(3))
    };
    let out: Vec<Var> = (0..nout as u32).map(Var).collect();
    let mut pool: Vec<Var> = (nout as u32..k as u32).map(Var).collect();
    let depth = rng.gen_range(1usize..4);
    let f = gen_safe(rng, n, depth, &out, &mut pool);
    Query::new(out, f)
}

/// Generates an `FP^k` (or, with `pfp`, a `PFP^k`) query: a fixpoint
/// whose body is `base ∨ step` where `step` applies the fixpoint
/// relation through an edge — the reachability shape Proposition 3.2
/// builds on — applied to output variables and/or constants. `PFP`
/// bodies may additionally use the fixpoint relation negatively.
pub fn gen_fix_query(rng: &mut Rng, n: usize, pfp: bool) -> Query {
    // S/1 over variable x1; x2, x3 stay for quantifiers (width 3).
    let bound = vec![Var(0)];
    let mut pool = vec![Var(1), Var(2)];
    let base_depth = rng.gen_range(0usize..2);
    let base = gen_safe(rng, n, base_depth, &bound, &mut pool);
    let w = Var(1);
    let rel = *rng.choose(&BINARY_RELS);
    let edge_args = if rng.gen_bool(0.7) {
        [Term::Var(w), Term::Var(Var(0))]
    } else {
        [Term::Var(Var(0)), Term::Var(w)]
    };
    let step = Formula::rel_var("S", [Term::Var(w)])
        .and(Formula::atom(rel, edge_args))
        .exists(w);
    let mut body = base.or(step);
    if pfp && rng.gen_bool(0.6) {
        // A non-monotone touch: only PFP may inspect S negatively.
        let probe = Formula::Not(Box::new(Formula::rel_var("S", [Term::Var(Var(0))])));
        body = body.and(probe.or(gen_extra(rng, n, 1, &bound, &mut pool)));
    }
    // Apply to an output variable or a constant; constants make the
    // whole query a sentence.
    let (args, out): (Vec<Term>, Vec<Var>) = if rng.gen_bool(0.25) {
        (vec![Term::Const(rng.gen_range(0..n as Elem))], Vec::new())
    } else {
        (vec![Term::Var(Var(0))], vec![Var(0)])
    };
    let fix = if pfp {
        Formula::pfp("S", bound, body, args)
    } else {
        Formula::lfp("S", bound, body, args)
    };
    Query::new(out, fix)
}

/// Generates a positive, range-restricted Datalog program over the fuzz
/// EDBs with IDB predicates `T` (output) and sometimes `U`, mixing
/// projection, join, closure and constant-seeded rules.
pub fn gen_datalog(rng: &mut Rng, n: usize) -> (Program, String) {
    let v = AtomTerm::Var;
    let c = |rng: &mut Rng| AtomTerm::Const(rng.gen_range(0..n as Elem));
    let t_arity = rng.gen_range(1usize..3);
    let mut p = Program::new();
    if t_arity == 1 {
        // Base rule(s).
        p = match rng.gen_range(0u32..3) {
            0 => p.rule("T", &[0], &[("P", &[v(0)])]),
            1 => p.rule("T", &[0], &[("E", &[v(0), v(1)])]),
            _ => {
                let k = c(rng);
                p.rule("T", &[0], &[("E", &[k, v(0)])])
            }
        };
        // Recursive step.
        if rng.gen_bool(0.8) {
            let rel = *rng.choose(&BINARY_RELS);
            p = if rng.gen_bool(0.5) {
                p.rule("T", &[0], &[("T", &[v(1)]), (rel, &[v(1), v(0)])])
            } else {
                p.rule("T", &[0], &[("T", &[v(1)]), (rel, &[v(0), v(1)])])
            };
        }
        // A second base or a filtered variant.
        if rng.gen_bool(0.4) {
            p = p.rule("T", &[0], &[("Q", &[v(0)])]);
        }
    } else {
        p = p.rule("T", &[0, 1], &[("E", &[v(0), v(1)])]);
        if rng.gen_bool(0.85) {
            p = p.rule("T", &[0, 1], &[("T", &[v(0), v(2)]), ("E", &[v(2), v(1)])]);
        }
        if rng.gen_bool(0.3) {
            p = p.rule("T", &[0, 1], &[("R", &[v(0), v(1)]), ("P", &[v(0)])]);
        }
    }
    // Optionally a dependent IDB; the output predicate stays `T` unless
    // `U` is chosen as output.
    let mut output = "T".to_string();
    if rng.gen_bool(0.3) {
        p = if t_arity == 1 {
            p.rule("U", &[0], &[("T", &[v(0)]), ("P", &[v(0)])])
        } else {
            p.rule("U", &[0], &[("T", &[v(0), v(1)])])
        };
        if rng.gen_bool(0.5) {
            output = "U".to_string();
        }
    }
    debug_assert!(p.validate().is_ok(), "generated program must validate");
    (p, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_lint::LintConfig;
    use bvq_server::exec::db_schema;

    fn lint_cfg(db: &Database) -> LintConfig {
        LintConfig {
            domain_size: Some(db.domain_size()),
            schema: Some(db_schema(db)),
            ..LintConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for lang in Lang::all() {
            let a = gen_case(&mut Rng::seed_from_u64(7), lang);
            let b = gen_case(&mut Rng::seed_from_u64(7), lang);
            assert_eq!(a.text(), b.text());
            assert_eq!(a.db.fingerprint(), b.db.fingerprint());
        }
    }

    #[test]
    fn generated_cases_are_lint_clean_by_construction() {
        for lang in Lang::all() {
            for i in 0..150u64 {
                let mut rng = Rng::seed_from_u64(1000 + i);
                let case = gen_case(&mut rng, lang);
                let cfg = lint_cfg(&case.db);
                let report = match &case.kind {
                    CaseKind::Query(q) => {
                        q.validate().expect("free vars are outputs");
                        bvq_lint::lint_query(q, None, &cfg)
                    }
                    CaseKind::Datalog(p, out) => {
                        p.validate().expect("program validates");
                        bvq_lint::lint_program(p, Some(out.as_str()), None, &cfg)
                    }
                };
                assert!(
                    !report.has_errors(),
                    "{lang} case {i} has lint errors:\n{}\ncase: {}",
                    report.render(),
                    case.text()
                );
            }
        }
    }

    #[test]
    fn generated_query_text_round_trips_through_the_parser() {
        for lang in [Lang::Fo, Lang::Fp, Lang::Pfp] {
            for i in 0..50u64 {
                let mut rng = Rng::seed_from_u64(i);
                let case = gen_case(&mut rng, lang);
                let text = case.text();
                let parsed = bvq_logic::parser::parse_query(&text).expect("printer output parses");
                assert_eq!(parsed.to_string(), text);
            }
        }
    }

    #[test]
    fn generated_widths_stay_bounded() {
        for i in 0..80u64 {
            let mut rng = Rng::seed_from_u64(i);
            let case = gen_case(&mut rng, Lang::Fo);
            if let CaseKind::Query(q) = &case.kind {
                assert!(
                    q.formula.width() <= 3,
                    "FO width blew past k: {}",
                    case.text()
                );
            }
        }
    }
}
