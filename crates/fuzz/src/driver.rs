//! The fuzz run driver: generate → lint-check → oracle → shrink →
//! repro, per language, with a per-language summary at the end.

use bvq_lint::{lint_program, lint_query, LintConfig};
use bvq_server::exec::db_schema;

use crate::gen::{gen_case, Case, CaseKind};
use crate::oracle::{check_case, run_oracle, Divergence, Mutation, ServerOracle};
use crate::repro::{render_repro, Repro};
use crate::shrink::shrink_case;
use crate::{case_rng, Lang};

/// A fuzz run's knobs; [`FuzzConfig::default`] matches
/// `bvq fuzz` with no flags.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Cases per language.
    pub cases: u64,
    /// The numeric run seed (see [`crate::parse_seed`]).
    pub seed: u64,
    /// The seed exactly as the user spelled it, for repro stamps.
    pub seed_text: String,
    /// The languages to cover.
    pub langs: Vec<Lang>,
    /// Whether to also run the server round-trip oracles (one loopback
    /// server for the whole run).
    pub with_server: bool,
    /// A deliberate reference-side corruption — the harness's own
    /// sanity check; every run with a mutation must fail.
    pub mutation: Option<Mutation>,
    /// Shrinker budget (candidate evaluations per failure).
    pub shrink_attempts: usize,
    /// Stop a language's run at its first divergence (the default);
    /// `false` keeps scanning and collects every failure.
    pub stop_on_failure: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            cases: 100,
            seed: 0,
            seed_text: "0".into(),
            langs: Lang::all().to_vec(),
            with_server: true,
            mutation: None,
            shrink_attempts: 600,
            stop_on_failure: true,
        }
    }
}

/// Per-language tallies.
#[derive(Clone, Debug)]
pub struct LangSummary {
    /// The language.
    pub lang: Lang,
    /// Cases generated and checked.
    pub cases: u64,
    /// Oracle comparisons performed.
    pub checks: usize,
    /// Divergences found.
    pub failures: usize,
}

/// One divergence, shrunk and rendered.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// The shrunk case plus provenance.
    pub repro: Repro,
    /// What disagreed.
    pub divergence: Divergence,
    /// The rendered repro file body.
    pub repro_text: String,
}

/// Everything a fuzz run produced.
#[derive(Clone, Debug, Default)]
pub struct FuzzOutcome {
    /// One summary per language run.
    pub summaries: Vec<LangSummary>,
    /// Every divergence found (shrunk).
    pub failures: Vec<FailureReport>,
}

impl FuzzOutcome {
    /// `true` when no oracle diverged.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Asserts the generator's contract: every emitted case passes
/// `bvq-lint` against its own database. A violation is a *generator*
/// bug and aborts the run — fuzzing with ill-formed inputs would only
/// produce noise.
fn assert_lint_clean(case: &Case) -> Result<(), String> {
    let cfg = LintConfig {
        budget: None,
        domain_size: Some(case.db.domain_size()),
        schema: Some(db_schema(&case.db)),
    };
    let report = match &case.kind {
        CaseKind::Query(q) => lint_query(q, None, &cfg),
        CaseKind::Datalog(p, out) => lint_program(p, Some(out), None, &cfg),
    };
    if report.has_errors() {
        return Err(format!(
            "generator emitted a case bvq-lint rejects ({:?}):\n{}",
            report
                .diagnostics
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>(),
            case.text()
        ));
    }
    Ok(())
}

/// Runs the whole differential campaign described by `cfg`.
///
/// # Errors
/// Returns an error only for harness problems (server refused to start,
/// generator emitted an ill-formed case); *divergences* are data, in
/// [`FuzzOutcome::failures`].
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzOutcome, String> {
    let mut server = if cfg.with_server {
        Some(ServerOracle::start().map_err(|e| format!("server oracle: {e}"))?)
    } else {
        None
    };
    let mut outcome = FuzzOutcome::default();

    for &lang in &cfg.langs {
        let mut summary = LangSummary {
            lang,
            cases: 0,
            checks: 0,
            failures: 0,
        };
        for index in 0..cfg.cases {
            let case = gen_case(&mut case_rng(cfg.seed, lang, index), lang);
            assert_lint_clean(&case)?;
            summary.cases += 1;
            let rewrite_seed = cfg.seed ^ index;
            let checked = check_case(&case, server.as_mut(), cfg.mutation, rewrite_seed);
            summary.checks += checked.checks;
            let Some(divergence) = checked.divergence else {
                continue;
            };
            summary.failures += 1;
            let shrunk = shrink_divergence(
                &case,
                &divergence,
                server.as_mut(),
                cfg.mutation,
                rewrite_seed,
                cfg.shrink_attempts,
            );
            let repro = Repro {
                case: shrunk,
                seed: cfg.seed_text.clone(),
                index,
                oracle: divergence.oracle.clone(),
            };
            let repro_text = render_repro(&repro);
            outcome.failures.push(FailureReport {
                repro,
                divergence,
                repro_text,
            });
            if cfg.stop_on_failure {
                break;
            }
        }
        outcome.summaries.push(summary);
    }

    if let Some(s) = server.as_mut() {
        s.shutdown();
    }
    Ok(outcome)
}

/// Minimizes a failing case by re-running just the divergent oracle.
fn shrink_divergence(
    case: &Case,
    divergence: &Divergence,
    mut server: Option<&mut ServerOracle>,
    mutation: Option<Mutation>,
    rewrite_seed: u64,
    attempts: usize,
) -> Case {
    let oracle = divergence.oracle.clone();
    let mut fails = |candidate: &Case| {
        run_oracle(
            candidate,
            &oracle,
            server.as_deref_mut(),
            mutation,
            rewrite_seed,
        )
        .is_err()
    };
    shrink_case(case, &mut fails, attempts)
}

/// Replays a parsed repro: re-runs its recorded oracle (or the full
/// oracle set when the file names none).
///
/// # Errors
/// Returns harness errors; a reproduced divergence is `Ok(Some(..))`.
pub fn run_repro(repro: &Repro, with_server: bool) -> Result<Option<Divergence>, String> {
    let mut server = if with_server {
        Some(ServerOracle::start().map_err(|e| format!("server oracle: {e}"))?)
    } else {
        None
    };
    let seed = crate::parse_seed(&repro.seed) ^ repro.index;
    let result = if repro.oracle.is_empty() {
        check_case(&repro.case, server.as_mut(), None, seed).divergence
    } else {
        run_oracle(&repro.case, &repro.oracle, server.as_mut(), None, seed).err()
    };
    if let Some(s) = server.as_mut() {
        s.shutdown();
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_clean_run_reports_no_failures() {
        let cfg = FuzzConfig {
            cases: 8,
            seed: 11,
            seed_text: "11".into(),
            with_server: false,
            ..FuzzConfig::default()
        };
        let out = run_fuzz(&cfg).expect("harness ok");
        assert!(out.ok(), "unexpected failures: {:?}", out.failures);
        assert_eq!(out.summaries.len(), 4);
        for s in &out.summaries {
            assert_eq!(s.cases, 8);
            assert!(s.checks > 0, "{} ran no checks", s.lang);
        }
    }

    #[test]
    fn a_mutated_run_fails_and_produces_a_small_repro() {
        let cfg = FuzzConfig {
            cases: 20,
            seed: 3,
            seed_text: "3".into(),
            langs: vec![Lang::Fo],
            with_server: false,
            mutation: Some(Mutation::DropRow),
            ..FuzzConfig::default()
        };
        let out = run_fuzz(&cfg).expect("harness ok");
        assert!(!out.ok(), "the mutation sanity check must fail");
        let failure = &out.failures[0];
        assert!(
            failure.repro.case.tuples() <= 6,
            "shrunk db still has {} tuples:\n{}",
            failure.repro.case.tuples(),
            failure.repro_text
        );
        assert!(
            failure.repro.case.nodes() <= 5,
            "shrunk formula still has {} nodes:\n{}",
            failure.repro.case.nodes(),
            failure.repro_text
        );
        // And the repro round-trips and still reproduces.
        let parsed = crate::parse_repro(&failure.repro_text).expect("repro parses");
        assert_eq!(parsed.oracle, failure.repro.oracle);
    }
}
