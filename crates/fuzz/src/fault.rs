//! Server fault injection.
//!
//! Starts a real loopback server with a deliberately small frame cap
//! and throws misbehaving clients at it: connections dropped mid-stream,
//! oversized and truncated (newline-less) frames, and deadline races on
//! fixpoint queries. After every round the server must still answer a
//! well-formed request — the worker pool must never wedge — and every
//! rejection must be a structured error, never a hang or a crash.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use bvq_relation::{write_database, Database, Tuple};
use bvq_server::{Client, Json, Server, ServerConfig, ServerHandle};

use crate::gen::{gen_case, Case, CaseKind};
use crate::{case_rng, Lang};

/// The frame cap the fault server runs with — small enough that the
/// oversized-frame scenario stays cheap.
const FAULT_FRAME_CAP: usize = 4096;

/// What a fault-injection run observed.
#[derive(Clone, Debug, Default)]
pub struct FaultReport {
    /// Streams started and abandoned mid-flight.
    pub dropped_streams: usize,
    /// Oversized frames answered with a structured `bad_request`.
    pub oversized_rejections: usize,
    /// Truncated (EOF before newline) frames survived.
    pub truncated_frames: usize,
    /// Deadline-raced evaluations (each ended in `ok` or
    /// `deadline_exceeded`).
    pub deadline_races: usize,
    /// Health probes that passed between scenarios.
    pub health_checks: usize,
}

/// Runs `rounds` rounds of fault injection against a fresh server.
///
/// # Errors
/// Returns a description of the first protocol violation: a missing or
/// unstructured error, a wedged pool, or an unexpected hang.
pub fn run_fault_injection(seed: u64, rounds: usize) -> Result<FaultReport, String> {
    let mut handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_frame_bytes: FAULT_FRAME_CAP,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;
    let addr = handle.addr();

    let connect =
        || -> Result<Client, String> { Client::connect(addr).map_err(|e| format!("connect: {e}")) };

    // One database and one query per language, generated like any other
    // fuzz case so faults hit realistic traffic.
    let fp_case: Case = gen_case(&mut case_rng(seed, Lang::Fp, 0), Lang::Fp);
    let fo_case: Case = gen_case(&mut case_rng(seed, Lang::Fo, 0), Lang::Fo);
    let fp_query = match &fp_case.kind {
        CaseKind::Query(q) => q.to_string(),
        CaseKind::Datalog(..) => unreachable!("fp cases are queries"),
    };
    let fo_query = match &fo_case.kind {
        CaseKind::Query(q) => q.to_string(),
        CaseKind::Datalog(..) => unreachable!("fo cases are queries"),
    };

    {
        let mut setup = connect()?;
        for (name, case) in [("fault_fp", &fp_case), ("fault_fo", &fo_case)] {
            let resp = setup
                .load_db(name, &write_database(&case.db))
                .map_err(|e| format!("load_db: {e}"))?;
            if !Client::is_ok(&resp) {
                return Err(format!("load_db rejected: {resp:?}"));
            }
        }
    }

    let mut report = FaultReport::default();
    for round in 0..rounds {
        // 1. Start a streaming evaluation, read only the header, and
        //    drop the connection. The worker must notice the dead
        //    socket and move on.
        {
            let mut c = connect()?;
            c.send(Client::request(
                "eval",
                vec![
                    ("db", Json::str("fault_fo")),
                    ("query", Json::str(&fo_query)),
                    ("stream", Json::Bool(true)),
                ],
            ))
            .map_err(|e| format!("round {round}: stream send: {e}"))?;
            let header = c
                .recv()
                .map_err(|e| format!("round {round}: stream header: {e}"))?;
            if !Client::is_ok(&header) && Client::error_code(&header).is_none() {
                return Err(format!(
                    "round {round}: unstructured stream header: {header:?}"
                ));
            }
            report.dropped_streams += 1;
            // `c` drops here with the stream unread.
        }

        // 2. An oversized frame must get a structured `bad_request` and
        //    the *same connection* must keep serving.
        {
            let mut c = connect()?;
            let huge = format!(
                "{{\"op\":\"ping\",\"pad\":\"{}\"}}",
                "x".repeat(FAULT_FRAME_CAP + 64)
            );
            c.send_line(&huge)
                .map_err(|e| format!("round {round}: oversized send: {e}"))?;
            let resp = c
                .recv()
                .map_err(|e| format!("round {round}: oversized recv: {e}"))?;
            match Client::error_code(&resp) {
                Some("bad_request") => report.oversized_rejections += 1,
                other => {
                    return Err(format!(
                        "round {round}: oversized frame answered {other:?}, want bad_request"
                    ))
                }
            }
            if !c
                .ping()
                .map_err(|e| format!("round {round}: post-oversize ping: {e}"))?
            {
                return Err(format!(
                    "round {round}: connection dead after oversized frame"
                ));
            }
        }

        // 3. A truncated frame — bytes, no newline, then EOF. The
        //    server must just close its side without taking a worker
        //    down.
        {
            let mut raw =
                TcpStream::connect(addr).map_err(|e| format!("round {round}: raw connect: {e}"))?;
            raw.write_all(b"{\"op\":\"ping\"")
                .map_err(|e| format!("round {round}: truncated write: {e}"))?;
            raw.shutdown(std::net::Shutdown::Write)
                .map_err(|e| format!("round {round}: raw shutdown: {e}"))?;
            report.truncated_frames += 1;
        }

        // 4. Deadline races: tiny budgets on a fixpoint query must end
        //    in a clean answer or `deadline_exceeded`, nothing else.
        {
            let mut c = connect()?;
            for deadline_ms in [0u64, 1, 2] {
                let resp = c
                    .eval_with(
                        "fault_fp",
                        &fp_query,
                        vec![
                            ("deadline_ms", Json::num(deadline_ms)),
                            ("no_cache", Json::Bool(true)),
                        ],
                    )
                    .map_err(|e| format!("round {round}: deadline eval: {e}"))?;
                let ok = Client::is_ok(&resp);
                let code = Client::error_code(&resp);
                if !ok && code != Some("deadline_exceeded") {
                    return Err(format!(
                        "round {round}: deadline_ms={deadline_ms} answered {code:?}"
                    ));
                }
                report.deadline_races += 1;
            }
        }

        // Health probe: a fresh client must get a real answer promptly.
        {
            let mut c = connect()?;
            if !c
                .ping()
                .map_err(|e| format!("round {round}: health ping: {e}"))?
            {
                return Err(format!("round {round}: health ping failed"));
            }
            let resp = c
                .eval("fault_fo", &fo_query)
                .map_err(|e| format!("round {round}: health eval: {e}"))?;
            if !Client::is_ok(&resp) {
                return Err(format!(
                    "round {round}: pool wedged? health eval answered {:?}",
                    Client::error_code(&resp)
                ));
            }
            report.health_checks += 1;
        }
    }

    // Give lingering half-closed sockets a beat, then shut down.
    std::thread::sleep(Duration::from_millis(10));
    handle.shutdown();
    Ok(report)
}

/// What a Byzantine-replica fault-injection run observed.
#[derive(Clone, Debug, Default)]
pub struct ByzantineReport {
    /// Forged certificates the trusted checker rejected.
    pub corrupted_rejections: usize,
    /// Stale-epoch certificates (replica data diverged from the
    /// coordinator) the checker rejected.
    pub stale_rejections: usize,
    /// Fan-out attempts that hit a connection-dropping replica and fell
    /// back locally.
    pub dropped_fallbacks: usize,
    /// Requests that were answered correctly despite the faults.
    pub health_checks: usize,
}

/// A fake replica: a raw TCP listener that answers every connection
/// with `response` (one line) — or drops the connection immediately
/// when `response` is `None`. Returns its address; the listener thread
/// exits after `conns` connections.
fn byzantine_replica(response: Option<String>, conns: usize) -> Result<String, String> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("byzantine bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("byzantine addr: {e}"))?
        .to_string();
    std::thread::spawn(move || {
        for _ in 0..conns {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            let Some(line) = &response else {
                continue; // drop without reading or writing
            };
            let mut buf = String::new();
            let _ = BufReader::new(stream.try_clone().expect("clone")).read_line(&mut buf);
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.write_all(b"\n");
        }
    });
    Ok(addr)
}

/// The path database the Byzantine scenarios evaluate on.
fn byzantine_db(n: u32) -> Database {
    Database::builder(n as usize)
        .relation(
            "E",
            2,
            (0..n.saturating_sub(1)).map(|i| Tuple::from_slice(&[i, i + 1])),
        )
        .build()
}

/// A transitive-closure probe, textually distinct per round (result
/// cache keys hash the raw query text, so leading spaces are enough to
/// make every round a cache miss that genuinely exercises fan-out).
fn probe_query(round: usize) -> String {
    format!(
        "{}(x1, x2) [lfp T(x1, x2) . E(x1, x2) | exists x3. (E(x1, x3) & T(x3, x2))](x1, x2)",
        " ".repeat(round)
    )
}

/// Reads a counter out of a `stats` response.
fn stat(resp: &Json, key: &str) -> u64 {
    resp.get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX)
}

/// Runs the three Byzantine-replica scenarios against fresh
/// coordinators: a replica returning forged certificates, a replica
/// whose database silently diverged from the coordinator (stale epoch),
/// and a replica dropping every connection mid-stream. In every case
/// the coordinator must reject or fall back, keep `cert_rejected` /
/// `replica_fallback` honest, never serve an unvalidated answer, and
/// keep answering correctly.
///
/// # Errors
/// Returns a description of the first violation.
pub fn run_byzantine_replicas(rounds: usize) -> Result<ByzantineReport, String> {
    let mut report = ByzantineReport::default();
    let db = byzantine_db(6);
    let correct = 15; // TC of a 6-node path: 5+4+3+2+1 edges

    let start_coordinator = |cfg: ServerConfig| -> Result<(ServerHandle, Client), String> {
        let handle = Server::start(cfg).map_err(|e| format!("coordinator start: {e}"))?;
        let mut client =
            Client::connect(handle.addr()).map_err(|e| format!("coordinator connect: {e}"))?;
        let resp = client
            .load_db("byz", &write_database(&db))
            .map_err(|e| format!("load_db: {e}"))?;
        if !Client::is_ok(&resp) {
            return Err(format!("load_db rejected: {resp:?}"));
        }
        Ok((handle, client))
    };
    let eval_count = |client: &mut Client, query: &str| -> Result<u64, String> {
        let resp = client
            .eval("byz", query)
            .map_err(|e| format!("eval: {e}"))?;
        if !Client::is_ok(&resp) {
            return Err(format!("eval rejected: {:?}", Client::error_code(&resp)));
        }
        Ok(resp.get("count").and_then(Json::as_u64).unwrap_or(0))
    };

    // Scenario 1: a replica that answers every request with a forged
    // certificate. Every round must be rejected by the trusted checker
    // and answered by local fallback — and the forgery takes no strikes
    // (the transport behaved), so the pool stays nominally healthy.
    {
        let forged = Json::obj([
            ("ok", Json::Bool(true)),
            (
                "certificate",
                Json::str("bvqcert 1 fp\nclaim bool true\nend\n"),
            ),
        ])
        .to_string_compact();
        let (mut handle, mut client) = start_coordinator(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            replica_timeout_ms: 2000,
            ..ServerConfig::default()
        })?;
        let fake = byzantine_replica(Some(forged), rounds + 1)?;
        let resp = client
            .register_replica(&fake)
            .map_err(|e| format!("register: {e}"))?;
        if !Client::is_ok(&resp) {
            return Err(format!("register rejected: {resp:?}"));
        }
        for round in 0..rounds {
            let count = eval_count(&mut client, &probe_query(round))?;
            if count != correct {
                return Err(format!(
                    "corrupted round {round}: served {count} rows, want {correct} — \
                     an unvalidated replica answer leaked"
                ));
            }
            report.health_checks += 1;
        }
        let stats = client.call_op("stats", vec![]).map_err(|e| e.to_string())?;
        let rejected = stat(&stats, "cert_rejected");
        if rejected != rounds as u64 {
            return Err(format!(
                "corrupted: cert_rejected = {rejected}, want {rounds}"
            ));
        }
        if stat(&stats, "replica_fallback") != rounds as u64 {
            return Err("corrupted: fallback count drifted".into());
        }
        if stat(&stats, "result_cache_certified") != 0 {
            return Err("corrupted: a rejected certificate was cached".into());
        }
        report.corrupted_rejections += rejected as usize;
        handle.shutdown();
    }

    // Scenario 2: a *real* replica whose database silently diverged
    // (stale epoch): the coordinator mutates its copy, the replica
    // keeps serving certificates for the old data. The checker replays
    // against the coordinator's own snapshot, so every stale answer is
    // rejected and recomputed locally.
    {
        let (mut coord, mut client) = start_coordinator(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServerConfig::default()
        })?;
        let mut replica = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            replica_of: Some(coord.addr().to_string()),
            ..ServerConfig::default()
        })
        .map_err(|e| format!("replica start: {e}"))?;
        // The replica loads the same database, then the coordinator
        // moves ahead by one edge: epochs and answers diverge.
        {
            let mut rc =
                Client::connect(replica.addr()).map_err(|e| format!("replica connect: {e}"))?;
            let resp = rc
                .load_db("byz", &write_database(&db))
                .map_err(|e| format!("replica load_db: {e}"))?;
            if !Client::is_ok(&resp) {
                return Err(format!("replica load_db rejected: {resp:?}"));
            }
        }
        for _ in 0..200 {
            let stats = client.call_op("stats", vec![]).map_err(|e| e.to_string())?;
            if stat(&stats, "replicas_healthy") == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let resp = client
            .insert("byz", "E", &[5, 0])
            .map_err(|e| format!("insert: {e}"))?;
        if !Client::is_ok(&resp) {
            return Err(format!("insert rejected: {resp:?}"));
        }
        // With the cycle edge 5→0 the closure is total: 36 rows.
        for round in 0..rounds {
            let count = eval_count(&mut client, &probe_query(round))?;
            if count != 36 {
                return Err(format!(
                    "stale round {round}: served {count} rows, want 36 — \
                     a stale-epoch replica answer leaked"
                ));
            }
            report.health_checks += 1;
        }
        let stats = client.call_op("stats", vec![]).map_err(|e| e.to_string())?;
        let rejected = stat(&stats, "cert_rejected");
        if rejected != rounds as u64 {
            return Err(format!("stale: cert_rejected = {rejected}, want {rounds}"));
        }
        report.stale_rejections += rejected as usize;
        let mut rc =
            Client::connect(replica.addr()).map_err(|e| format!("replica connect: {e}"))?;
        let _ = rc.shutdown();
        replica.shutdown();
        coord.shutdown();
    }

    // Scenario 3: a replica that accepts and immediately drops every
    // connection. Each failed exchange takes a strike; after the third
    // the replica is quarantined and fan-out stops, but the coordinator
    // answers every request locally throughout.
    {
        let (mut handle, mut client) = start_coordinator(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            replica_timeout_ms: 200,
            ..ServerConfig::default()
        })?;
        let fake = byzantine_replica(None, rounds + 4)?;
        let resp = client
            .register_replica(&fake)
            .map_err(|e| format!("register: {e}"))?;
        if !Client::is_ok(&resp) {
            return Err(format!("register rejected: {resp:?}"));
        }
        for round in 0..rounds.max(4) {
            let count = eval_count(&mut client, &probe_query(round))?;
            if count != correct {
                return Err(format!("dropped round {round}: served {count} rows"));
            }
            report.health_checks += 1;
        }
        let stats = client.call_op("stats", vec![]).map_err(|e| e.to_string())?;
        let fallbacks = stat(&stats, "replica_fallback");
        // Quarantine caps the damage at MAX_FAILURES strikes.
        if fallbacks != 3 {
            return Err(format!(
                "dropped: replica_fallback = {fallbacks}, want 3 (quarantine)"
            ));
        }
        if stat(&stats, "replicas_healthy") != 0 {
            return Err("dropped: replica not quarantined".into());
        }
        if stat(&stats, "cert_checked") != 0 {
            return Err("dropped: phantom certificate checks".into());
        }
        report.dropped_fallbacks += fallbacks as usize;
        handle.shutdown();
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_injection_smoke() {
        let report = run_fault_injection(7, 2).expect("no protocol violations");
        assert_eq!(report.dropped_streams, 2);
        assert_eq!(report.oversized_rejections, 2);
        assert_eq!(report.deadline_races, 6);
        assert_eq!(report.health_checks, 2);
    }

    #[test]
    fn byzantine_replicas_never_corrupt_an_answer() {
        let report = run_byzantine_replicas(3).expect("no trust violations");
        assert_eq!(report.corrupted_rejections, 3);
        assert_eq!(report.stale_rejections, 3);
        assert_eq!(report.dropped_fallbacks, 3);
        assert_eq!(report.health_checks, 3 + 3 + 4);
    }
}
