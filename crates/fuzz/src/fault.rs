//! Server fault injection.
//!
//! Starts a real loopback server with a deliberately small frame cap
//! and throws misbehaving clients at it: connections dropped mid-stream,
//! oversized and truncated (newline-less) frames, and deadline races on
//! fixpoint queries. After every round the server must still answer a
//! well-formed request — the worker pool must never wedge — and every
//! rejection must be a structured error, never a hang or a crash.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use bvq_relation::write_database;
use bvq_server::{Client, Json, Server, ServerConfig};

use crate::gen::{gen_case, Case, CaseKind};
use crate::{case_rng, Lang};

/// The frame cap the fault server runs with — small enough that the
/// oversized-frame scenario stays cheap.
const FAULT_FRAME_CAP: usize = 4096;

/// What a fault-injection run observed.
#[derive(Clone, Debug, Default)]
pub struct FaultReport {
    /// Streams started and abandoned mid-flight.
    pub dropped_streams: usize,
    /// Oversized frames answered with a structured `bad_request`.
    pub oversized_rejections: usize,
    /// Truncated (EOF before newline) frames survived.
    pub truncated_frames: usize,
    /// Deadline-raced evaluations (each ended in `ok` or
    /// `deadline_exceeded`).
    pub deadline_races: usize,
    /// Health probes that passed between scenarios.
    pub health_checks: usize,
}

/// Runs `rounds` rounds of fault injection against a fresh server.
///
/// # Errors
/// Returns a description of the first protocol violation: a missing or
/// unstructured error, a wedged pool, or an unexpected hang.
pub fn run_fault_injection(seed: u64, rounds: usize) -> Result<FaultReport, String> {
    let mut handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_frame_bytes: FAULT_FRAME_CAP,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("server start: {e}"))?;
    let addr = handle.addr();

    let connect =
        || -> Result<Client, String> { Client::connect(addr).map_err(|e| format!("connect: {e}")) };

    // One database and one query per language, generated like any other
    // fuzz case so faults hit realistic traffic.
    let fp_case: Case = gen_case(&mut case_rng(seed, Lang::Fp, 0), Lang::Fp);
    let fo_case: Case = gen_case(&mut case_rng(seed, Lang::Fo, 0), Lang::Fo);
    let fp_query = match &fp_case.kind {
        CaseKind::Query(q) => q.to_string(),
        CaseKind::Datalog(..) => unreachable!("fp cases are queries"),
    };
    let fo_query = match &fo_case.kind {
        CaseKind::Query(q) => q.to_string(),
        CaseKind::Datalog(..) => unreachable!("fo cases are queries"),
    };

    {
        let mut setup = connect()?;
        for (name, case) in [("fault_fp", &fp_case), ("fault_fo", &fo_case)] {
            let resp = setup
                .load_db(name, &write_database(&case.db))
                .map_err(|e| format!("load_db: {e}"))?;
            if !Client::is_ok(&resp) {
                return Err(format!("load_db rejected: {resp:?}"));
            }
        }
    }

    let mut report = FaultReport::default();
    for round in 0..rounds {
        // 1. Start a streaming evaluation, read only the header, and
        //    drop the connection. The worker must notice the dead
        //    socket and move on.
        {
            let mut c = connect()?;
            c.send(Client::request(
                "eval",
                vec![
                    ("db", Json::str("fault_fo")),
                    ("query", Json::str(&fo_query)),
                    ("stream", Json::Bool(true)),
                ],
            ))
            .map_err(|e| format!("round {round}: stream send: {e}"))?;
            let header = c
                .recv()
                .map_err(|e| format!("round {round}: stream header: {e}"))?;
            if !Client::is_ok(&header) && Client::error_code(&header).is_none() {
                return Err(format!(
                    "round {round}: unstructured stream header: {header:?}"
                ));
            }
            report.dropped_streams += 1;
            // `c` drops here with the stream unread.
        }

        // 2. An oversized frame must get a structured `bad_request` and
        //    the *same connection* must keep serving.
        {
            let mut c = connect()?;
            let huge = format!(
                "{{\"op\":\"ping\",\"pad\":\"{}\"}}",
                "x".repeat(FAULT_FRAME_CAP + 64)
            );
            c.send_line(&huge)
                .map_err(|e| format!("round {round}: oversized send: {e}"))?;
            let resp = c
                .recv()
                .map_err(|e| format!("round {round}: oversized recv: {e}"))?;
            match Client::error_code(&resp) {
                Some("bad_request") => report.oversized_rejections += 1,
                other => {
                    return Err(format!(
                        "round {round}: oversized frame answered {other:?}, want bad_request"
                    ))
                }
            }
            if !c
                .ping()
                .map_err(|e| format!("round {round}: post-oversize ping: {e}"))?
            {
                return Err(format!(
                    "round {round}: connection dead after oversized frame"
                ));
            }
        }

        // 3. A truncated frame — bytes, no newline, then EOF. The
        //    server must just close its side without taking a worker
        //    down.
        {
            let mut raw =
                TcpStream::connect(addr).map_err(|e| format!("round {round}: raw connect: {e}"))?;
            raw.write_all(b"{\"op\":\"ping\"")
                .map_err(|e| format!("round {round}: truncated write: {e}"))?;
            raw.shutdown(std::net::Shutdown::Write)
                .map_err(|e| format!("round {round}: raw shutdown: {e}"))?;
            report.truncated_frames += 1;
        }

        // 4. Deadline races: tiny budgets on a fixpoint query must end
        //    in a clean answer or `deadline_exceeded`, nothing else.
        {
            let mut c = connect()?;
            for deadline_ms in [0u64, 1, 2] {
                let resp = c
                    .eval_with(
                        "fault_fp",
                        &fp_query,
                        vec![
                            ("deadline_ms", Json::num(deadline_ms)),
                            ("no_cache", Json::Bool(true)),
                        ],
                    )
                    .map_err(|e| format!("round {round}: deadline eval: {e}"))?;
                let ok = Client::is_ok(&resp);
                let code = Client::error_code(&resp);
                if !ok && code != Some("deadline_exceeded") {
                    return Err(format!(
                        "round {round}: deadline_ms={deadline_ms} answered {code:?}"
                    ));
                }
                report.deadline_races += 1;
            }
        }

        // Health probe: a fresh client must get a real answer promptly.
        {
            let mut c = connect()?;
            if !c
                .ping()
                .map_err(|e| format!("round {round}: health ping: {e}"))?
            {
                return Err(format!("round {round}: health ping failed"));
            }
            let resp = c
                .eval("fault_fo", &fo_query)
                .map_err(|e| format!("round {round}: health eval: {e}"))?;
            if !Client::is_ok(&resp) {
                return Err(format!(
                    "round {round}: pool wedged? health eval answered {:?}",
                    Client::error_code(&resp)
                ));
            }
            report.health_checks += 1;
        }
    }

    // Give lingering half-closed sockets a beat, then shut down.
    std::thread::sleep(Duration::from_millis(10));
    handle.shutdown();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_injection_smoke() {
        let report = run_fault_injection(7, 2).expect("no protocol violations");
        assert_eq!(report.dropped_streams, 2);
        assert_eq!(report.oversized_rejections, 2);
        assert_eq!(report.deadline_races, 6);
        assert_eq!(report.health_checks, 2);
    }
}
