//! Greedy case minimization.
//!
//! Given a failing case and a `fails` predicate (re-running the
//! divergent oracle), the shrinker repeatedly tries the smallest local
//! reductions — drop a tuple, collapse a formula node, drop a Datalog
//! rule or body atom, truncate the domain — and keeps any that still
//! fail. It loops until a full pass makes no progress or the attempt
//! budget runs out, so repro files stay small enough to read.

use bvq_datalog::{AtomTerm, Program};
use bvq_logic::{Formula, Query, Term, Var};
use bvq_relation::{Database, Elem, Relation, Tuple};

use crate::gen::{Case, CaseKind};

/// Shrinks `case` while `fails` keeps returning `true`, spending at
/// most `max_attempts` candidate evaluations. Returns the smallest
/// failing case found (possibly the original).
pub fn shrink_case(
    case: &Case,
    fails: &mut impl FnMut(&Case) -> bool,
    max_attempts: usize,
) -> Case {
    let mut best = case.clone();
    let mut attempts = 0usize;
    loop {
        let mut progressed = false;
        for candidate in candidates(&best) {
            if attempts >= max_attempts {
                return best;
            }
            attempts += 1;
            if fails(&candidate) {
                best = candidate;
                progressed = true;
                break; // restart candidate enumeration from the smaller case
            }
        }
        if !progressed {
            return best;
        }
    }
}

/// All one-step reductions of a case, smallest-effect first: tuple
/// drops, then structural reductions, then domain truncation.
fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    // 1. Drop one tuple from one relation.
    for (id, name, _) in case.db.schema().iter() {
        let rel = case.db.relation(id);
        for skip in 0..rel.len() {
            if let Some(db) = without_tuple(&case.db, name, skip) {
                out.push(Case { db, ..case.clone() });
            }
        }
    }
    // 2. Structural reductions of the query / program.
    match &case.kind {
        CaseKind::Query(q) => {
            for f in reduce_formula(&q.formula) {
                let mut output: Vec<Var> = f.free_vars();
                output.sort_by_key(|v| v.0);
                output.dedup();
                let q2 = Query::new(output, f);
                if q2.validate().is_err() {
                    continue;
                }
                out.push(Case {
                    kind: CaseKind::Query(q2),
                    ..case.clone()
                });
            }
        }
        CaseKind::Datalog(p, target) => {
            for p2 in reduce_program(p, target) {
                out.push(Case {
                    kind: CaseKind::Datalog(p2, target.clone()),
                    ..case.clone()
                });
            }
        }
    }
    // 3. Truncate the domain to the largest element actually used.
    if let Some(db) = truncate_domain(case) {
        out.push(Case { db, ..case.clone() });
    }
    out
}

/// Rebuilds the database with tuple number `skip` of `target` removed.
fn without_tuple(db: &Database, target: &str, skip: usize) -> Option<Database> {
    let mut out = Database::new(db.domain_size());
    for (id, name, arity) in db.schema().iter() {
        let mut rel = Relation::new(arity);
        for (i, t) in db.relation(id).sorted().into_iter().enumerate() {
            if name == target && i == skip {
                continue;
            }
            rel.insert(t);
        }
        out.add_relation(name, rel).ok()?;
    }
    Some(out)
}

/// One-step reductions of a formula, applied at every position.
fn reduce_formula(f: &Formula) -> Vec<Formula> {
    let mut out = Vec::new();
    step(f, &mut |g| out.push(g));
    out
}

/// Calls `emit` with every formula obtained by reducing exactly one
/// node of `f`. (`dyn` keeps the recursive wrapping closures from
/// instantiating without bound.)
fn step(f: &Formula, emit: &mut dyn FnMut(Formula)) {
    // Reductions of the node itself.
    match f {
        Formula::And(a, b) | Formula::Or(a, b) => {
            emit(a.as_ref().clone());
            emit(b.as_ref().clone());
        }
        Formula::Not(g) => emit(g.as_ref().clone()),
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            if g.free_vars().contains(v) {
                if let Ok(ground) = g.substitute_var(*v, Term::Const(0)) {
                    emit(ground);
                }
            } else {
                emit(g.as_ref().clone());
            }
        }
        Formula::Fix { .. } => {
            emit(Formula::Const(true));
            emit(Formula::Const(false));
        }
        _ => {}
    }
    if !matches!(f, Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..)) {
        emit(Formula::Const(true));
        emit(Formula::Const(false));
    }
    // Reductions inside one child, the rest untouched.
    match f {
        Formula::Not(g) => step(g, &mut |g2| emit(Formula::Not(Box::new(g2)))),
        Formula::And(a, b) => {
            step(a, &mut |a2| emit(a2.and(b.as_ref().clone())));
            step(b, &mut |b2| emit(a.as_ref().clone().and(b2)));
        }
        Formula::Or(a, b) => {
            step(a, &mut |a2| emit(a2.or(b.as_ref().clone())));
            step(b, &mut |b2| emit(a.as_ref().clone().or(b2)));
        }
        Formula::Exists(v, g) => step(g, &mut |g2| emit(g2.exists(*v))),
        Formula::Forall(v, g) => step(g, &mut |g2| emit(g2.forall(*v))),
        Formula::Fix {
            kind,
            rel,
            bound,
            body,
            args,
        } => step(body, &mut |b2| {
            emit(Formula::Fix {
                kind: *kind,
                rel: rel.clone(),
                bound: bound.clone(),
                body: Box::new(b2),
                args: args.clone(),
            })
        }),
        _ => {}
    }
}

/// One-step reductions of a Datalog program: drop a whole rule, or one
/// body atom of one rule. Only candidates that still validate (and
/// still define the target) survive.
fn reduce_program(p: &Program, target: &str) -> Vec<Program> {
    let mut out = Vec::new();
    for skip in 0..p.rules.len() {
        let mut p2 = p.clone();
        p2.rules.remove(skip);
        push_if_valid(p2, target, &mut out);
    }
    for (ri, r) in p.rules.iter().enumerate() {
        if r.body.len() <= 1 {
            continue;
        }
        for ai in 0..r.body.len() {
            let mut p2 = p.clone();
            p2.rules[ri].body.remove(ai);
            push_if_valid(p2, target, &mut out);
        }
    }
    out
}

fn push_if_valid(p: Program, target: &str, out: &mut Vec<Program>) {
    let defines_target = p.idb_predicates().iter().any(|(n, _)| n == target);
    if defines_target && p.validate().is_ok() {
        out.push(p);
    }
}

/// Shrinks the domain to `max used element + 1` when that is smaller
/// than the current domain. Constants in the query cap the floor too.
fn truncate_domain(case: &Case) -> Option<Database> {
    let mut max_used: Elem = 0;
    let mut any = false;
    for (id, _, _) in case.db.schema().iter() {
        for t in case.db.relation(id).iter() {
            for &e in t.as_slice() {
                max_used = max_used.max(e);
                any = true;
            }
        }
    }
    match &case.kind {
        CaseKind::Query(q) => {
            for c in formula_consts(&q.formula) {
                max_used = max_used.max(c);
                any = true;
            }
        }
        CaseKind::Datalog(p, _) => {
            for r in &p.rules {
                for a in &r.body {
                    for t in &a.args {
                        if let AtomTerm::Const(c) = t {
                            max_used = max_used.max(*c);
                            any = true;
                        }
                    }
                }
            }
        }
    }
    // Keep at least a 1-element domain so guards like `x = 0` and the
    // shrinker's `Const(0)` substitutions stay in range.
    let want = if any { max_used as usize + 1 } else { 1 };
    if want >= case.db.domain_size() {
        return None;
    }
    let mut out = Database::new(want);
    for (id, name, arity) in case.db.schema().iter() {
        let mut rel = Relation::new(arity);
        for t in case.db.relation(id).iter() {
            rel.insert(Tuple::from(t.as_slice().to_vec()));
        }
        out.add_relation(name, rel).ok()?;
    }
    Some(out)
}

fn formula_consts(f: &Formula) -> Vec<Elem> {
    let mut out = Vec::new();
    collect_consts(f, &mut out);
    out
}

fn collect_consts(f: &Formula, out: &mut Vec<Elem>) {
    fn term(t: &Term, out: &mut Vec<Elem>) {
        if let Term::Const(c) = t {
            out.push(*c);
        }
    }
    match f {
        Formula::Const(_) => {}
        Formula::Atom(a) => a.args.iter().for_each(|t| term(t, out)),
        Formula::Eq(a, b) => {
            term(a, out);
            term(b, out);
        }
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => collect_consts(g, out),
        Formula::And(a, b) | Formula::Or(a, b) => {
            collect_consts(a, out);
            collect_consts(b, out);
        }
        Formula::Fix { body, args, .. } => {
            collect_consts(body, out);
            args.iter().for_each(|t| term(t, out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lang;
    use bvq_relation::Database;

    fn tiny_case() -> Case {
        let db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
            .relation("P", 1, [[1u32], [3]])
            .build();
        let q = Query::new(
            vec![Var(0)],
            Formula::atom("P", [Term::Var(Var(0))])
                .and(Formula::atom("E", [Term::Var(Var(0)), Term::Var(Var(1))]).exists(Var(1))),
        );
        Case {
            lang: Lang::Fo,
            db,
            kind: CaseKind::Query(q),
        }
    }

    #[test]
    fn shrinking_a_row_count_predicate_reaches_the_floor() {
        let case = tiny_case();
        // "Fails" whenever P is non-empty: minimal form is one P tuple,
        // no E tuples, trivial formula.
        let mut fails = |c: &Case| {
            c.db.relation_by_name("P")
                .map(|r| !r.is_empty())
                .unwrap_or(false)
        };
        let small = shrink_case(&case, &mut fails, 500);
        assert_eq!(
            small.db.relation_by_name("P").map(|r| r.len()).unwrap_or(0),
            1
        );
        assert_eq!(
            small.db.relation_by_name("E").map(|r| r.len()).unwrap_or(0),
            0
        );
        assert!(
            small.nodes() <= 2,
            "formula should collapse, got {}",
            small.nodes()
        );
        assert!(small.db.domain_size() <= case.db.domain_size());
    }

    #[test]
    fn shrinking_never_returns_a_passing_case() {
        let case = tiny_case();
        let mut calls = 0usize;
        let mut fails = |c: &Case| {
            calls += 1;
            c.tuples() >= 3
        };
        let small = shrink_case(&case, &mut fails, 200);
        assert!(small.tuples() >= 3);
        assert!(calls <= 201);
    }
}
