//! The differential oracle layer: every applicable evaluator pair runs
//! the same case and the answers must be set-equal.
//!
//! Answers normalize to [`Norm`] — a boolean, a sorted tuple set, or a
//! structured error code. Two sides *agree* when their norms are equal;
//! in particular both sides failing with the same error code is
//! agreement (shrinking may drive a case into an error state, and the
//! engines must at least fail consistently).

use std::io;

use bvq_cert::{check_text, CertError, CheckRequest, CheckedAnswer};
use bvq_datalog::{eval_seminaive, to_fp_formula_multi};
use bvq_ivm::{MutableDb, Mutation as IvmMutation, StandingQuery};
use bvq_logic::{Query, Var};
use bvq_relation::{write_database, BackendMode, Database, Elem, EvalConfig, Relation};
use bvq_server::exec::{execute, Answer, CompileMode, EvalOptions, ExecRequest};
use bvq_server::{Client, Json, Server, ServerConfig, ServerHandle};

use crate::gen::{Case, CaseKind};
use crate::metamorphic;
use crate::Lang;

/// A normalized answer: what every evaluator pair is compared on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Norm {
    /// A sentence's truth value.
    Bool(bool),
    /// Sorted answer tuples.
    Rows(Vec<Vec<Elem>>),
    /// A structured error, by stable code.
    Error(String),
}

impl Norm {
    fn summary(&self) -> String {
        match self {
            Norm::Bool(b) => format!("boolean {b}"),
            Norm::Rows(rows) => {
                let head: Vec<String> = rows.iter().take(8).map(|r| format!("{r:?}")).collect();
                format!(
                    "{} rows: {}{}",
                    rows.len(),
                    head.join(" "),
                    if rows.len() > 8 { " …" } else { "" }
                )
            }
            Norm::Error(code) => format!("error `{code}`"),
        }
    }

    /// Applies a domain permutation to row contents.
    fn rename(&self, perm: &[Elem]) -> Norm {
        match self {
            Norm::Rows(rows) => {
                let mut mapped: Vec<Vec<Elem>> = rows
                    .iter()
                    .map(|r| r.iter().map(|&e| perm[e as usize]).collect())
                    .collect();
                mapped.sort();
                Norm::Rows(mapped)
            }
            other => other.clone(),
        }
    }
}

/// A deliberate result corruption, used by the harness's own mutation
/// sanity tests: with a mutation installed, every oracle pair whose
/// reference result is non-trivial must report a divergence, and the
/// shrinker must minimize it. This stands in for "deliberately breaking
/// one evaluator" without actually corrupting shipped evaluator code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Drop the first row of the reference answer (flip it, when
    /// boolean).
    DropRow,
}

fn mutate(norm: Norm, mutation: Option<Mutation>) -> Norm {
    match (mutation, norm) {
        (Some(Mutation::DropRow), Norm::Rows(mut rows)) if !rows.is_empty() => {
            rows.remove(0);
            Norm::Rows(rows)
        }
        (Some(Mutation::DropRow), Norm::Bool(b)) => Norm::Bool(!b),
        (_, norm) => norm,
    }
}

/// One oracle disagreement.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which oracle pair disagreed (stable name, stored in repro files).
    pub oracle: String,
    /// Human-readable summary of both sides.
    pub detail: String,
}

/// Runs a request directly through [`execute`] and normalizes.
fn run_direct(db: &Database, req: &ExecRequest) -> Norm {
    match execute(db, req) {
        Ok(outcome) => match outcome.answer {
            Answer::Boolean(b) => Norm::Bool(b),
            Answer::Rows(rel) => Norm::Rows(
                rel.sorted()
                    .into_iter()
                    .map(|t| t.as_slice().to_vec())
                    .collect(),
            ),
            Answer::Text(t) => Norm::Error(format!("unexpected text answer: {t}")),
        },
        Err(e) => Norm::Error(e.code().to_string()),
    }
}

fn base_request(case: &Case) -> ExecRequest {
    match &case.kind {
        CaseKind::Query(q) => ExecRequest::query(q.to_string()),
        CaseKind::Datalog(p, out) => ExecRequest::datalog(p.to_text(), out.clone()),
    }
}

/// The reference answer: the default engine for the case's language.
pub fn reference(case: &Case) -> Norm {
    run_direct(&case.db, &base_request(case))
}

/// A live server the round-trip oracles talk to. One instance serves a
/// whole fuzz run; each case's database is loaded under the name
/// `fuzz` (the result cache stays sound across reloads because its key
/// includes the database fingerprint).
pub struct ServerOracle {
    handle: ServerHandle,
    client: Client,
    loaded: Option<u64>,
}

impl ServerOracle {
    /// Starts a loopback server with a small worker pool.
    pub fn start() -> io::Result<ServerOracle> {
        let handle = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServerConfig::default()
        })?;
        let client = Client::connect(handle.addr())?;
        Ok(ServerOracle {
            handle,
            client,
            loaded: None,
        })
    }

    /// Graceful shutdown (also happens on drop of the handle).
    pub fn shutdown(&mut self) {
        let _ = self.client.shutdown();
        self.handle.shutdown();
    }

    fn ensure_db(&mut self, db: &Database) -> Result<(), Norm> {
        let fp = db.fingerprint();
        if self.loaded == Some(fp) {
            return Ok(());
        }
        let resp = self
            .client
            .load_db("fuzz", &write_database(db))
            .map_err(|e| Norm::Error(format!("io: {e}")))?;
        if !Client::is_ok(&resp) {
            return Err(Norm::Error(
                Client::error_code(&resp).unwrap_or("load_db failed").into(),
            ));
        }
        self.loaded = Some(fp);
        Ok(())
    }

    fn norm_response(resp: &Json) -> Norm {
        if !Client::is_ok(resp) {
            return Norm::Error(Client::error_code(resp).unwrap_or("unknown_error").into());
        }
        if let Some(b) = resp.get("boolean") {
            return Norm::Bool(b.is_true());
        }
        let mut rows: Vec<Vec<Elem>> = resp
            .get("rows")
            .and_then(Json::as_arr)
            .map(|rs| {
                rs.iter()
                    .map(|r| {
                        r.as_arr()
                            .map(|xs| {
                                xs.iter()
                                    .filter_map(Json::as_u64)
                                    .map(|x| x as Elem)
                                    .collect()
                            })
                            .unwrap_or_default()
                    })
                    .collect()
            })
            .unwrap_or_default();
        rows.sort();
        Norm::Rows(rows)
    }

    /// One materialized round trip.
    fn eval(&mut self, case: &Case) -> Norm {
        if let Err(e) = self.ensure_db(&case.db) {
            return e;
        }
        let resp = match &case.kind {
            CaseKind::Query(q) => self.client.eval("fuzz", &q.to_string()),
            CaseKind::Datalog(p, out) => self.client.datalog("fuzz", &p.to_text(), out),
        };
        match resp {
            Ok(r) => Self::norm_response(&r),
            Err(e) => Norm::Error(format!("io: {e}")),
        }
    }

    /// One streaming round trip (query cases only).
    fn eval_streaming(&mut self, case: &Case) -> Option<Norm> {
        let CaseKind::Query(q) = &case.kind else {
            return None;
        };
        if let Err(e) = self.ensure_db(&case.db) {
            return Some(e);
        }
        match self.client.eval_stream("fuzz", &q.to_string()) {
            Ok((header, rows, _footer)) => {
                if !Client::is_ok(&header) {
                    return Some(Norm::Error(
                        Client::error_code(&header)
                            .unwrap_or("unknown_error")
                            .into(),
                    ));
                }
                if let Some(b) = header.get("boolean") {
                    return Some(Norm::Bool(b.is_true()));
                }
                let mut rows: Vec<Vec<Elem>> = rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|x| x as Elem).collect())
                    .collect();
                rows.sort();
                Some(Norm::Rows(rows))
            }
            Err(e) => Some(Norm::Error(format!("io: {e}"))),
        }
    }
}

/// The stable oracle names applicable to a language, in execution
/// order. Shrinking re-runs a single one of these by name.
pub fn oracles(lang: Lang, with_server: bool) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = Vec::new();
    match lang {
        Lang::Fo => names.extend([
            "naive-vs-bounded",
            "compiled-vs-interpreted",
            "bdd-vs-dense",
            "bdd-vs-sparse",
            "threads-1-vs-n",
            "metamorphic-double-negation",
            "metamorphic-conjunct-shuffle",
            "metamorphic-exists-reorder",
            "metamorphic-minimize-width",
            "rewritten-vs-original",
            "metamorphic-domain-rename",
        ]),
        Lang::Fp | Lang::Pfp => names.extend([
            "compiled-vs-interpreted",
            "bdd-vs-dense",
            "bdd-vs-sparse",
            "threads-1-vs-n",
            "metamorphic-double-negation",
            "metamorphic-conjunct-shuffle",
            "rewritten-vs-original",
            "metamorphic-domain-rename",
            "certified-vs-direct",
        ]),
        Lang::Datalog => names.extend([
            "datalog-naive-vs-seminaive",
            "datalog-vs-fp-translation",
            "compiled-vs-interpreted",
            "bdd-vs-dense",
            "bdd-vs-sparse",
            "threads-1-vs-n",
            "metamorphic-domain-rename",
            "incremental-vs-recompute",
            "certified-vs-direct",
        ]),
    }
    if with_server {
        names.extend(["server-materialized", "server-streaming", "server-cached"]);
    }
    names
}

fn compare(
    oracle: &str,
    left_label: &str,
    left: Norm,
    right_label: &str,
    right: Norm,
) -> Option<Divergence> {
    if left == right {
        return None;
    }
    Some(Divergence {
        oracle: oracle.to_string(),
        detail: format!(
            "{left_label}: {} ≠ {right_label}: {}",
            left.summary(),
            right.summary()
        ),
    })
}

/// Runs one named oracle pair on a case. `seed` drives the seeded
/// rewrites (shuffle order, domain permutation) so a given
/// `(case, oracle, seed)` triple is fully deterministic — the shrinker
/// relies on that. Returns `Ok(checks_performed)` or the divergence.
pub fn run_oracle(
    case: &Case,
    oracle: &str,
    server: Option<&mut ServerOracle>,
    mutation: Option<Mutation>,
    seed: u64,
) -> Result<usize, Divergence> {
    let rf = || mutate(reference(case), mutation);
    let against = |name: &str, other: Norm| -> Result<usize, Divergence> {
        match compare(name, "reference", rf(), name, other) {
            None => Ok(1),
            Some(d) => Err(d),
        }
    };
    match oracle {
        "naive-vs-bounded" => {
            let req = base_request(case).with_opts(EvalOptions {
                naive: true,
                ..EvalOptions::default()
            });
            against(oracle, run_direct(&case.db, &req))
        }
        "datalog-naive-vs-seminaive" => {
            let req = base_request(case).with_opts(EvalOptions {
                naive: true,
                ..EvalOptions::default()
            });
            against(oracle, run_direct(&case.db, &req))
        }
        "datalog-vs-fp-translation" => {
            let CaseKind::Datalog(p, out) = &case.kind else {
                return Ok(0);
            };
            let arity = p
                .idb_predicates()
                .iter()
                .find(|(name, _)| name == out)
                .map(|(_, a)| *a)
                .unwrap_or(0);
            let formula = match to_fp_formula_multi(p, out) {
                Ok(f) => f,
                // The translation rejects what the engines reject;
                // agreement-on-error keeps shrinking sound.
                Err(_) => return Ok(0),
            };
            let q = Query::new((0..arity as u32).map(Var).collect(), formula);
            let req = ExecRequest::query(q.to_string());
            against(oracle, run_direct(&case.db, &req))
        }
        "compiled-vs-interpreted" => {
            let interpreted = base_request(case).with_opts(EvalOptions {
                compile: CompileMode::Off,
                ..EvalOptions::default()
            });
            let compiled = base_request(case).with_opts(EvalOptions {
                compile: CompileMode::On,
                ..EvalOptions::default()
            });
            let left = mutate(run_direct(&case.db, &interpreted), mutation);
            match compare(
                oracle,
                "interpreted",
                left,
                "compiled",
                run_direct(&case.db, &compiled),
            ) {
                None => Ok(1),
                Some(d) => Err(d),
            }
        }
        "bdd-vs-dense" | "bdd-vs-sparse" => {
            // The symbolic backend against an explicit concrete one;
            // Datalog cases exercise the FP-translation route both
            // forced dispatches take. Fuzz domains stay far inside the
            // dense budget, so forcing dense never trips its guard.
            let peer = if oracle == "bdd-vs-dense" {
                BackendMode::Dense
            } else {
                BackendMode::Sparse
            };
            let bdd = base_request(case).with_opts(EvalOptions {
                backend: BackendMode::Bdd,
                ..EvalOptions::default()
            });
            let concrete = base_request(case).with_opts(EvalOptions {
                backend: peer,
                ..EvalOptions::default()
            });
            let left = mutate(run_direct(&case.db, &bdd), mutation);
            match compare(
                oracle,
                "bdd",
                left,
                peer.label(),
                run_direct(&case.db, &concrete),
            ) {
                None => Ok(1),
                Some(d) => Err(d),
            }
        }
        "threads-1-vs-n" => {
            let one = base_request(case).with_opts(EvalOptions {
                threads: Some(1),
                ..EvalOptions::default()
            });
            let many = base_request(case).with_opts(EvalOptions {
                threads: Some(3),
                ..EvalOptions::default()
            });
            let left = mutate(run_direct(&case.db, &one), mutation);
            match compare(
                oracle,
                "threads=1",
                left,
                "threads=3",
                run_direct(&case.db, &many),
            ) {
                None => Ok(1),
                Some(d) => Err(d),
            }
        }
        "metamorphic-double-negation" => {
            let CaseKind::Query(q) = &case.kind else {
                return Ok(0);
            };
            let dn = metamorphic::double_negation(q);
            against(
                oracle,
                run_direct(&case.db, &ExecRequest::query(dn.to_string())),
            )
        }
        "metamorphic-conjunct-shuffle" => {
            let CaseKind::Query(q) = &case.kind else {
                return Ok(0);
            };
            let s = metamorphic::conjunct_shuffle(q, seed);
            against(
                oracle,
                run_direct(&case.db, &ExecRequest::query(s.to_string())),
            )
        }
        "metamorphic-exists-reorder" => {
            let CaseKind::Query(q) = &case.kind else {
                return Ok(0);
            };
            match metamorphic::exists_reorder(q) {
                Some(r) => against(
                    oracle,
                    run_direct(&case.db, &ExecRequest::query(r.to_string())),
                ),
                None => Ok(0),
            }
        }
        "metamorphic-minimize-width" => {
            let CaseKind::Query(q) = &case.kind else {
                return Ok(0);
            };
            match metamorphic::minimized(q) {
                Some(m) => against(
                    oracle,
                    run_direct(&case.db, &ExecRequest::query(m.to_string())),
                ),
                None => Ok(0),
            }
        }
        "rewritten-vs-original" => {
            // The certified width-minimizing rewrite must evaluate
            // identically to the original. A rejected certificate
            // (`certified == Some(false)`) is itself a bug: the
            // analyzer emitted a rewrite its own validator refused.
            let CaseKind::Query(q) = &case.kind else {
                return Ok(0);
            };
            let analysis = bvq_analysis::analyze_query(q);
            if analysis.certified == Some(false) {
                return Err(Divergence {
                    oracle: oracle.to_string(),
                    detail: format!(
                        "analyzer emitted a width certificate its validator rejected \
                         (width {} claimed {})",
                        analysis.width, analysis.k_min
                    ),
                });
            }
            match analysis.certificate {
                Some(cert) => {
                    let rq = Query::new(q.output.clone(), cert.rewritten);
                    against(
                        oracle,
                        run_direct(&case.db, &ExecRequest::query(rq.to_string())),
                    )
                }
                None => Ok(0),
            }
        }
        "metamorphic-domain-rename" => {
            let perm = metamorphic::permutation(case.db.domain_size(), seed);
            let db2 = metamorphic::rename_db(&case.db, &perm);
            let renamed = match &case.kind {
                CaseKind::Query(q) => {
                    let q2 = metamorphic::rename_query(q, &perm);
                    run_direct(&db2, &ExecRequest::query(q2.to_string()))
                }
                CaseKind::Datalog(p, out) => {
                    let p2 = metamorphic::rename_program(p, &perm);
                    run_direct(&db2, &ExecRequest::datalog(p2.to_text(), out.clone()))
                }
            };
            let expected = rf().rename(&perm);
            match compare(oracle, "π(reference)", expected, "eval∘π", renamed) {
                None => Ok(1),
                Some(d) => Err(d),
            }
        }
        "incremental-vs-recompute" => incremental_vs_recompute(case, mutation, seed),
        "certified-vs-direct" => certified_vs_direct(case, mutation),
        "server-materialized" => match server {
            Some(s) => against(oracle, s.eval(case)),
            None => Ok(0),
        },
        "server-streaming" => match server {
            Some(s) => match s.eval_streaming(case) {
                Some(norm) => against(oracle, norm),
                None => Ok(0),
            },
            None => Ok(0),
        },
        "server-cached" => match server {
            Some(s) => {
                // Two round trips: the second is served from the result
                // LRU when cacheable; both must match the reference.
                let first = s.eval(case);
                let second = s.eval(case);
                if let Some(d) = compare(oracle, "cold", first.clone(), "cached", second) {
                    return Err(d);
                }
                against(oracle, first).map(|c| c + 1)
            }
            None => Ok(0),
        },
        other => {
            debug_assert!(false, "unknown oracle `{other}`");
            Ok(0)
        }
    }
}

/// Number of seeded mutation steps the IVM oracle drives per case.
const IVM_STEPS: usize = 8;

fn rel_rows(rel: &Relation) -> Vec<Vec<Elem>> {
    rel.sorted()
        .into_iter()
        .map(|t| t.as_slice().to_vec())
        .collect()
}

/// The IVM oracle: installs the case's program as a standing query,
/// drives a seeded sequence of single-tuple inserts and deletes over
/// its EDB relations, and after every step checks the incrementally
/// maintained answer against a cold semi-naive re-evaluation on the new
/// epoch — the invariant the Counting and DRed maintenance strategies
/// promise. The harness mutation corrupts the recompute side, so the
/// sanity tests can force a divergence here too.
fn incremental_vs_recompute(
    case: &Case,
    mutation: Option<Mutation>,
    seed: u64,
) -> Result<usize, Divergence> {
    let CaseKind::Datalog(p, out) = &case.kind else {
        return Ok(0);
    };
    let edb = p.edb_predicates();
    let n = case.db.domain_size() as u64;
    if edb.is_empty() || n == 0 {
        return Ok(0);
    }
    let cfg = EvalConfig::sequential();
    let mut mdb = MutableDb::new(case.db.clone());
    let mut sq = match StandingQuery::install(p.clone(), out, mdb.db(), &cfg) {
        Ok(sq) => sq,
        // Installation rejects what the engines reject; nothing to
        // maintain, agreement-on-error keeps shrinking sound.
        Err(_) => return Ok(0),
    };
    let mut rng = bvq_prng::Rng::seed_from_u64(seed ^ 0x1f4a_9c3d_77b1_e055);
    let oracle = "incremental-vs-recompute";
    let mut checks = 0;
    for step in 0..IVM_STEPS {
        let (rel, arity) = &edb[(rng.next_u64() as usize) % edb.len()];
        let tuple: Vec<Elem> = (0..*arity).map(|_| (rng.next_u64() % n) as Elem).collect();
        let m = if rng.next_u64() % 2 == 0 {
            IvmMutation::Insert {
                rel: rel.clone(),
                tuple,
            }
        } else {
            IvmMutation::Delete {
                rel: rel.clone(),
                tuple,
            }
        };
        let old = mdb.snapshot();
        let delta = match mdb.apply(std::slice::from_ref(&m)) {
            Ok(d) => d,
            Err(e) => {
                return Err(Divergence {
                    oracle: oracle.to_string(),
                    detail: format!("step {step}: in-domain mutation rejected: {e}"),
                })
            }
        };
        if let Err(e) = sq.apply(&old.db, mdb.db(), &delta, &cfg) {
            return Err(Divergence {
                oracle: oracle.to_string(),
                detail: format!("step {step}: maintenance failed: {e}"),
            });
        }
        let cold = match eval_seminaive(p, mdb.db()) {
            Ok(idb) => Norm::Rows(idb.get(out).map(rel_rows).unwrap_or_default()),
            Err(e) => Norm::Error(format!("recompute failed: {e}")),
        };
        let maintained = Norm::Rows(rel_rows(sq.answer()));
        if let Some(d) = compare(
            oracle,
            &format!("recompute@{step}"),
            mutate(cold, mutation),
            "maintained",
            maintained,
        ) {
            return Err(d);
        }
        checks += 1;
    }
    Ok(checks)
}

/// The certificate oracle: emits a certificate with the engine-side
/// producer, replays it through the trusted [`bvq_cert`] checker, and
/// compares the *checked* answer against the reference. Both failure
/// directions are bugs this oracle exists to catch: the checker
/// rejecting an honestly produced certificate (the coordinator would
/// burn the replica and re-evaluate locally), and — under the harness
/// mutation, which corrupts the reference side — the checker accepting
/// an answer that disagrees with direct evaluation. Cases outside the
/// certifiable fragment (`CertError::Unsupported`, e.g. IFP) or past
/// the production work caps are skipped, matching the server's own
/// `not_certifiable` refusal.
fn certified_vs_direct(case: &Case, mutation: Option<Mutation>) -> Result<usize, Divergence> {
    let oracle = "certified-vs-direct";
    let produced = match &case.kind {
        CaseKind::Query(q) => bvq_core::certgen::certify_query(&case.db, q),
        CaseKind::Datalog(p, out) => bvq_core::certgen::certify_datalog(&case.db, p, out),
    };
    let cert = match produced {
        Ok(c) => c,
        Err(CertError::Unsupported(_)) | Err(CertError::TooLarge) => return Ok(0),
    };
    let encoded = cert.encode();
    let (q_held, p_held);
    let req = match &case.kind {
        CaseKind::Query(q) => {
            q_held = q.clone();
            CheckRequest::Query(&q_held)
        }
        CaseKind::Datalog(p, out) => {
            p_held = p.clone();
            CheckRequest::Datalog {
                program: &p_held,
                output: out,
            }
        }
    };
    let checked = match check_text(&case.db, &req, &encoded) {
        Ok(CheckedAnswer::Boolean(b)) => Norm::Bool(b),
        Ok(CheckedAnswer::Rows(rel)) => Norm::Rows(rel_rows(&rel)),
        Err(reject) => {
            return Err(Divergence {
                oracle: oracle.to_string(),
                detail: format!(
                    "trusted checker rejected an honestly produced certificate: \
                     {} ({reject})",
                    reject.code()
                ),
            })
        }
    };
    match compare(
        oracle,
        "direct",
        mutate(reference(case), mutation),
        "certified",
        checked,
    ) {
        None => Ok(1),
        Some(d) => Err(d),
    }
}

/// The outcome of pushing one case through every applicable oracle.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// Comparisons performed.
    pub checks: usize,
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
}

/// Runs every applicable oracle pair on a case, stopping at the first
/// divergence.
pub fn check_case(
    case: &Case,
    mut server: Option<&mut ServerOracle>,
    mutation: Option<Mutation>,
    seed: u64,
) -> CheckOutcome {
    let mut checks = 0;
    for name in oracles(case.lang, server.is_some()) {
        match run_oracle(case, name, server.as_deref_mut(), mutation, seed) {
            Ok(c) => checks += c,
            Err(d) => {
                return CheckOutcome {
                    checks,
                    divergence: Some(d),
                }
            }
        }
    }
    CheckOutcome {
        checks,
        divergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use bvq_prng::Rng;

    #[test]
    fn reference_agrees_with_itself_across_small_sweep() {
        for lang in Lang::all() {
            for i in 0..25u64 {
                let case = gen_case(&mut Rng::seed_from_u64(500 + i), lang);
                let out = check_case(&case, None, None, i);
                assert!(
                    out.divergence.is_none(),
                    "{lang} case {i} diverged: {:?}\ncase: {}",
                    out.divergence,
                    case.text()
                );
                assert!(out.checks > 0);
            }
        }
    }

    #[test]
    fn incremental_vs_recompute_agrees_across_seeded_sweep() {
        // Acceptance gate: 200+ seeded Datalog cases, each driven
        // through a seeded mutation sequence, with zero divergences
        // between maintenance and cold recompute.
        let mut checks = 0;
        for i in 0..225u64 {
            let case = gen_case(&mut Rng::seed_from_u64(9_000 + i), Lang::Datalog);
            match run_oracle(&case, "incremental-vs-recompute", None, None, i) {
                Ok(c) => checks += c,
                Err(d) => panic!("case {i} diverged: {}\ncase: {}", d.detail, case.text()),
            }
        }
        assert!(
            checks >= 200,
            "sweep performed only {checks} incremental checks"
        );
    }

    #[test]
    fn certified_vs_direct_agrees_across_seeded_sweep() {
        // Acceptance gate: seeded FP/PFP/Datalog cases, each certified
        // by the engine-side producer and replayed through the trusted
        // checker, with zero divergences against direct evaluation.
        let mut checks = 0;
        for lang in [Lang::Fp, Lang::Pfp, Lang::Datalog] {
            for i in 0..60u64 {
                let case = gen_case(&mut Rng::seed_from_u64(12_000 + i), lang);
                match run_oracle(&case, "certified-vs-direct", None, None, i) {
                    Ok(c) => checks += c,
                    Err(d) => panic!(
                        "{lang} case {i} diverged: {}\ncase: {}",
                        d.detail,
                        case.text()
                    ),
                }
            }
        }
        assert!(
            checks >= 60,
            "sweep performed only {checks} certificate checks"
        );
    }

    #[test]
    fn certified_vs_direct_catches_a_wrong_accepted_answer() {
        // The mutation hook stands in for "the checker accepted a wrong
        // answer": with the reference side corrupted, any case with a
        // non-trivial certified answer must report a divergence.
        let mut found = false;
        for i in 0..60u64 {
            let case = gen_case(&mut Rng::seed_from_u64(13_000 + i), Lang::Fp);
            if matches!(reference(&case), Norm::Rows(ref r) if r.is_empty()) {
                continue;
            }
            match run_oracle(
                &case,
                "certified-vs-direct",
                None,
                Some(Mutation::DropRow),
                i,
            ) {
                Ok(0) => continue, // outside the certifiable fragment
                Ok(_) => panic!(
                    "checker accepted a corrupted answer silently\ncase: {}",
                    case.text()
                ),
                Err(d) => {
                    assert_eq!(d.oracle, "certified-vs-direct");
                    found = true;
                    break;
                }
            }
        }
        assert!(
            found,
            "sweep produced no certifiable case with a non-trivial answer"
        );
    }

    #[test]
    fn mutation_forces_a_divergence_on_nonempty_results() {
        let mut found = false;
        for i in 0..30u64 {
            let case = gen_case(&mut Rng::seed_from_u64(i), Lang::Fo);
            if reference(&case) == Norm::Rows(Vec::new()) {
                continue;
            }
            let out = check_case(&case, None, Some(Mutation::DropRow), i);
            assert!(out.divergence.is_some(), "mutation must be caught");
            found = true;
            break;
        }
        assert!(found, "sweep produced no case with a non-trivial answer");
    }
}
