//! Property tests: random formulas round-trip through print → parse, and
//! the analyses are consistent with each other and preserved by NNF.

use bvq_logic::{parse, FixKind, Formula, Term, Var};
use proptest::prelude::*;

/// Strategy for random FO/FP formulas of bounded width and depth.
///
/// `rels` gives the pool of (db-relation, arity) symbols; recursion
/// variables are introduced by generated fixpoints with positive bodies
/// (we simply never generate a bound-rel atom under a Not).
fn arb_term(width: u32) -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..width).prop_map(|i| Term::Var(Var(i))),
        (0u32..4).prop_map(Term::Const),
    ]
}

fn arb_formula(width: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        Just(Formula::tt()),
        Just(Formula::ff()),
        (arb_term(width), arb_term(width)).prop_map(|(a, b)| Formula::Eq(a, b)),
        prop::collection::vec(arb_term(width), 0..3)
            .prop_map(|args| Formula::atom("R", args.clone())),
        arb_term(width).prop_map(|t| Formula::atom("P", [t])),
    ];
    leaf.prop_recursive(depth, 64, 3, move |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), 0..width).prop_map(|(f, v)| f.exists(Var(v))),
            (inner.clone(), 0..width).prop_map(|(f, v)| f.forall(Var(v))),
            // A μ-fixpoint over variable x1 whose body is `inner ∨ S(x1)`,
            // positive by construction.
            (inner, 0..width).prop_map(|(f, v)| {
                Formula::lfp(
                    "S",
                    vec![Var(0)],
                    f.or(Formula::rel_var("S", [Term::Var(Var(0))])),
                    vec![Term::Var(Var(v))],
                )
            }),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(f in arb_formula(3, 4)) {
        let printed = f.to_string();
        let reparsed = parse(&printed);
        prop_assert_eq!(reparsed.as_ref(), Ok(&f), "printed: {}", printed);
    }

    #[test]
    fn nnf_is_nnf_and_preserves_width(f in arb_formula(3, 4)) {
        let g = f.nnf().unwrap();
        prop_assert!(g.is_nnf());
        prop_assert!(g.width() <= f.width().max(1));
        // NNF of NNF is stable.
        prop_assert_eq!(g.nnf().unwrap(), g.clone());
    }

    #[test]
    fn dual_is_involutive_on_metrics(f in arb_formula(3, 4)) {
        let d = f.dual().unwrap();
        prop_assert!(d.is_nnf());
        // Duals validate whenever the original did.
        if f.validate_fp().is_ok() {
            prop_assert!(d.validate_fp().is_ok());
            prop_assert_eq!(d.alternation_depth(), f.alternation_depth());
        }
        let dd = d.dual().unwrap();
        prop_assert_eq!(dd.alternation_depth(), f.alternation_depth());
        prop_assert_eq!(dd.free_vars(), f.free_vars());
    }

    #[test]
    fn distinct_vars_bounded_by_width(f in arb_formula(4, 4)) {
        prop_assert!(f.distinct_vars() <= f.width());
    }

    #[test]
    fn substituting_var_for_itself_is_identity(f in arb_formula(3, 4)) {
        let g = f.substitute_var(Var(0), Term::Var(Var(0))).unwrap();
        prop_assert_eq!(g, f);
    }

    #[test]
    fn substituting_constant_never_captures(f in arb_formula(3, 4)) {
        // Constants cannot be captured, so this must always succeed, and
        // the result must not have the substituted variable free.
        let g = f.substitute_var(Var(1), Term::Const(0)).unwrap();
        prop_assert!(!g.free_vars().contains(&Var(1)));
    }
}

#[test]
fn fixkind_synonyms_parse_identically() {
    for (a, b) in [("lfp", "mu"), ("gfp", "nu")] {
        let fa = parse(&format!("[{a} S(x1). S(x1)](x1)")).unwrap();
        let fb = parse(&format!("[{b} S(x1). S(x1)](x1)")).unwrap();
        assert_eq!(fa, fb);
    }
    if let Formula::Fix { kind, .. } = parse("[nu S(x1). S(x1)](x1)").unwrap() {
        assert_eq!(kind, FixKind::Gfp);
    } else {
        panic!();
    }
}
