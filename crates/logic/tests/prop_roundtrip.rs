//! Seeded property tests: random formulas round-trip through print →
//! parse, and the analyses are consistent with each other and preserved by
//! NNF. Cases are generated with the in-tree deterministic PRNG.

use bvq_logic::{parse, FixKind, Formula, Term, Var};
use bvq_prng::{for_each_case, Rng};

/// A random term over variables `x1..x{width}` and small constants.
fn rand_term(width: u32, rng: &mut Rng) -> Term {
    if rng.gen_bool(0.6) {
        Term::Var(Var(rng.gen_range(0..width)))
    } else {
        Term::Const(rng.gen_range(0..4u32))
    }
}

/// A random FO/FP formula of bounded width and depth.
///
/// Recursion variables are introduced by generated fixpoints with positive
/// bodies (we simply never generate a bound-rel atom under a Not), matching
/// the invariants the analyses expect.
fn rand_formula(width: u32, depth: u32, rng: &mut Rng) -> Formula {
    if depth == 0 || rng.gen_ratio(1, 4) {
        return match rng.gen_range(0..5u32) {
            0 => Formula::tt(),
            1 => Formula::ff(),
            2 => Formula::Eq(rand_term(width, rng), rand_term(width, rng)),
            3 => {
                let n = rng.gen_range(0..3usize);
                let args: Vec<Term> = (0..n).map(|_| rand_term(width, rng)).collect();
                Formula::atom("R", args)
            }
            _ => Formula::atom("P", [rand_term(width, rng)]),
        };
    }
    let inner = |rng: &mut Rng| rand_formula(width, depth - 1, rng);
    match rng.gen_range(0..6u32) {
        0 => inner(rng).not(),
        1 => inner(rng).and(inner(rng)),
        2 => inner(rng).or(inner(rng)),
        3 => inner(rng).exists(Var(rng.gen_range(0..width))),
        4 => inner(rng).forall(Var(rng.gen_range(0..width))),
        // A μ-fixpoint over variable x1 whose body is `inner ∨ S(x1)`,
        // positive by construction.
        _ => {
            let f = inner(rng);
            let v = rng.gen_range(0..width);
            Formula::lfp(
                "S",
                vec![Var(0)],
                f.or(Formula::rel_var("S", [Term::Var(Var(0))])),
                vec![Term::Var(Var(v))],
            )
        }
    }
}

#[test]
fn print_parse_roundtrip() {
    for_each_case(256, |_, rng| {
        let f = rand_formula(3, 4, rng);
        let printed = f.to_string();
        let reparsed = parse(&printed);
        assert_eq!(reparsed.as_ref(), Ok(&f), "printed: {printed}");
    });
}

#[test]
fn nnf_is_nnf_and_preserves_width() {
    for_each_case(256, |_, rng| {
        let f = rand_formula(3, 4, rng);
        let g = f.nnf().unwrap();
        assert!(g.is_nnf());
        assert!(g.width() <= f.width().max(1));
        // NNF of NNF is stable.
        assert_eq!(g.nnf().unwrap(), g.clone());
    });
}

#[test]
fn dual_is_involutive_on_metrics() {
    for_each_case(256, |_, rng| {
        let f = rand_formula(3, 4, rng);
        let d = f.dual().unwrap();
        assert!(d.is_nnf());
        // Duals validate whenever the original did.
        if f.validate_fp().is_ok() {
            assert!(d.validate_fp().is_ok());
            assert_eq!(d.alternation_depth(), f.alternation_depth());
        }
        let dd = d.dual().unwrap();
        assert_eq!(dd.alternation_depth(), f.alternation_depth());
        assert_eq!(dd.free_vars(), f.free_vars());
    });
}

#[test]
fn distinct_vars_bounded_by_width() {
    for_each_case(256, |_, rng| {
        let f = rand_formula(4, 4, rng);
        assert!(f.distinct_vars() <= f.width());
    });
}

#[test]
fn substituting_var_for_itself_is_identity() {
    for_each_case(256, |_, rng| {
        let f = rand_formula(3, 4, rng);
        let g = f.clone().substitute_var(Var(0), Term::Var(Var(0))).unwrap();
        assert_eq!(g, f);
    });
}

#[test]
fn substituting_constant_never_captures() {
    for_each_case(256, |_, rng| {
        // Constants cannot be captured, so this must always succeed, and
        // the result must not have the substituted variable free.
        let f = rand_formula(3, 4, rng);
        let g = f.substitute_var(Var(1), Term::Const(0)).unwrap();
        assert!(!g.free_vars().contains(&Var(1)));
    });
}

#[test]
fn fixkind_synonyms_parse_identically() {
    for (a, b) in [("lfp", "mu"), ("gfp", "nu")] {
        let fa = parse(&format!("[{a} S(x1). S(x1)](x1)")).unwrap();
        let fb = parse(&format!("[{b} S(x1). S(x1)](x1)")).unwrap();
        assert_eq!(fa, fb);
    }
    if let Formula::Fix { kind, .. } = parse("[nu S(x1). S(x1)](x1)").unwrap() {
        assert_eq!(kind, FixKind::Gfp);
    } else {
        panic!();
    }
}
