//! # bvq-logic
//!
//! The query-language front end of the `bvq` reproduction of Vardi,
//! *On the Complexity of Bounded-Variable Queries* (PODS 1995).
//!
//! The paper studies four query languages — first-order logic (FO),
//! least-fixpoint logic (FP), existential second-order logic (ESO) and
//! partial-fixpoint logic (PFP) — and their bounded-variable fragments
//! `L^k`, obtained by restricting the individual variables to `x₁,…,x_k`.
//! This crate provides:
//!
//! * [`Formula`] — a unified AST covering FO, FP (μ and ν fixpoints) and
//!   PFP; [`Eso`] wraps a first-order body in second-order existential
//!   quantifiers; [`Query`] pairs a formula with its output variables,
//!   matching the paper's `(x̄)φ(x̄)` notation;
//! * analyses: [`Formula::width`] (the `k` such that the formula is in
//!   `L^k`), size, free variables, positivity of recursion variables
//!   ([`Formula::is_positive_in`]), well-formedness
//!   ([`Formula::validate_fp`]), and Niwiński alternation depth
//!   ([`Formula::alternation_depth`]) — the `l` in the paper's `n^{kl}`
//!   bound;
//! * transformations: negation normal form ([`Formula::nnf`]),
//!   formula dualization ([`Formula::dual`], the co-NP half of Theorem
//!   3.5), variable and relation substitution (the engines behind the
//!   reductions of Propositions 3.2 and Theorems 4.4–4.6);
//! * a recursive-descent [`parser`](parse) and a [pretty-printer]
//!   (`Formula::to_string`) that round-trip;
//! * [`patterns`] — the formula families used in the paper's own examples
//!   (the `FO³` path formula of §2.2, chain joins, the fairness sentence).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod error;
pub mod formula;
pub mod minimize;
pub mod parser;
pub mod patterns;
pub mod printer;
pub mod span;
pub mod subst;
pub mod transform;

pub use error::LogicError;
pub use formula::{Atom, Eso, FixKind, Formula, Query, RelRef, Term, Var};
pub use parser::parse;
pub use span::{SpanNode, SrcSpan};
