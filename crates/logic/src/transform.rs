//! Negation normal form and dualization.
//!
//! The co-NP half of Theorem 3.5 rests on the observation that
//! `t ∉ (x̄)φ(x̄)(B)` iff `t ∈ (x̄)¬φ(x̄)(B)`, and `¬φ` can be rewritten so
//! that negations sit only on atoms by dualizing connectives, quantifiers
//! and fixpoints:
//!
//! ```text
//! ¬[μS(x̄). φ](t̄)  ≡  [νS(x̄). ¬φ[S := ¬S]](t̄)
//! ```
//!
//! The rewrite preserves positivity (each `S` in `φ` picks up exactly two
//! negations: one from `¬φ`, one from `S := ¬S`), so the dual of an FP
//! formula is again an FP formula — with the same width and the same
//! alternation depth, kinds swapped. Partial fixpoints have no such dual;
//! [`Formula::dual`] reports [`LogicError::CannotDualizePfp`].

use crate::error::LogicError;
use crate::formula::{Atom, FixKind, Formula, RelRef};

impl Formula {
    /// Wraps every free occurrence of the relation variable `name` in a
    /// negation (the `S := ¬S` step of fixpoint dualization).
    fn negate_rel(&self, name: &str) -> Formula {
        match self {
            Formula::Atom(Atom {
                rel: RelRef::Bound(n),
                ..
            }) if n == name => self.clone().not(),
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => self.clone(),
            Formula::Not(g) => Formula::Not(Box::new(g.negate_rel(name))),
            Formula::And(a, b) => a.negate_rel(name).and(b.negate_rel(name)),
            Formula::Or(a, b) => a.negate_rel(name).or(b.negate_rel(name)),
            Formula::Exists(v, g) => g.negate_rel(name).exists(*v),
            Formula::Forall(v, g) => g.negate_rel(name).forall(*v),
            Formula::Fix {
                kind,
                rel,
                bound,
                body,
                args,
            } => {
                let new_body = if rel == name {
                    (**body).clone()
                } else {
                    body.negate_rel(name)
                };
                Formula::Fix {
                    kind: *kind,
                    rel: rel.clone(),
                    bound: bound.clone(),
                    body: Box::new(new_body),
                    args: args.clone(),
                }
            }
        }
    }

    /// Negation normal form: negations pushed down to atoms and equalities,
    /// fixpoints dualized as needed.
    ///
    /// # Errors
    /// Fails with [`LogicError::CannotDualizePfp`] if a negation must pass
    /// through a partial fixpoint.
    pub fn nnf(&self) -> Result<Formula, LogicError> {
        self.nnf_signed(false)
    }

    fn nnf_signed(&self, negate: bool) -> Result<Formula, LogicError> {
        match self {
            Formula::Const(b) => Ok(Formula::Const(*b != negate)),
            Formula::Atom(_) | Formula::Eq(..) => Ok(if negate {
                self.clone().not()
            } else {
                self.clone()
            }),
            Formula::Not(g) => g.nnf_signed(!negate),
            Formula::And(a, b) => {
                let (a, b) = (a.nnf_signed(negate)?, b.nnf_signed(negate)?);
                Ok(if negate { a.or(b) } else { a.and(b) })
            }
            Formula::Or(a, b) => {
                let (a, b) = (a.nnf_signed(negate)?, b.nnf_signed(negate)?);
                Ok(if negate { a.and(b) } else { a.or(b) })
            }
            Formula::Exists(v, g) => {
                let g = g.nnf_signed(negate)?;
                Ok(if negate { g.forall(*v) } else { g.exists(*v) })
            }
            Formula::Forall(v, g) => {
                let g = g.nnf_signed(negate)?;
                Ok(if negate { g.exists(*v) } else { g.forall(*v) })
            }
            Formula::Fix {
                kind,
                rel,
                bound,
                body,
                args,
            } => {
                if !negate {
                    let new_body = body.nnf_signed(false)?;
                    return Ok(Formula::Fix {
                        kind: *kind,
                        rel: rel.clone(),
                        bound: bound.clone(),
                        body: Box::new(new_body),
                        args: args.clone(),
                    });
                }
                if matches!(kind, FixKind::Pfp | FixKind::Ifp) {
                    return Err(LogicError::CannotDualizePfp);
                }
                // ¬[σS.φ](t̄) = [σ̄S. ¬φ[S := ¬S]](t̄)
                let negated_rel_body = body.negate_rel(rel);
                let new_body = negated_rel_body.nnf_signed(true)?;
                Ok(Formula::Fix {
                    kind: kind.dual(),
                    rel: rel.clone(),
                    bound: bound.clone(),
                    body: Box::new(new_body),
                    args: args.clone(),
                })
            }
        }
    }

    /// The De Morgan dual: an NNF formula equivalent to `¬self`.
    ///
    /// For FP formulas the dual is again FP (positivity is preserved), so a
    /// *non-membership* certificate for `self` is a membership certificate
    /// for `self.dual()` — the co-NP direction of Theorem 3.5.
    pub fn dual(&self) -> Result<Formula, LogicError> {
        self.nnf_signed(true)
    }

    /// Whether the formula is in negation normal form (negations only on
    /// atoms and equalities).
    pub fn is_nnf(&self) -> bool {
        match self {
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => true,
            Formula::Not(g) => matches!(**g, Formula::Atom(_) | Formula::Eq(..)),
            Formula::And(a, b) | Formula::Or(a, b) => a.is_nnf() && b.is_nnf(),
            Formula::Exists(_, g) | Formula::Forall(_, g) => g.is_nnf(),
            Formula::Fix { body, .. } => body.is_nnf(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Term, Var};

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn nnf_pushes_negation() {
        // ¬(P(x1) ∧ ∃x2 E(x1,x2)) → ¬P(x1) ∨ ∀x2 ¬E(x1,x2)
        let f = Formula::atom("P", [v(0)])
            .and(Formula::atom("E", [v(0), v(1)]).exists(Var(1)))
            .not();
        let g = f.nnf().unwrap();
        assert!(g.is_nnf());
        let expected = Formula::atom("P", [v(0)])
            .not()
            .or(Formula::atom("E", [v(0), v(1)]).not().forall(Var(1)));
        assert_eq!(g, expected);
    }

    #[test]
    fn nnf_of_nnf_is_identity() {
        let f = Formula::atom("P", [v(0)])
            .not()
            .or(Formula::atom("Q", [v(0)]));
        assert_eq!(f.nnf().unwrap(), f);
    }

    #[test]
    fn dual_of_lfp_is_gfp_and_positive() {
        // μS(x1). P(x1) ∨ ∃x2(E(x1,x2) ∧ S(x2)) — reachability into P.
        let body = Formula::atom("P", [v(0)]).or(Formula::atom("E", [v(0), v(1)])
            .and(Formula::rel_var("S", [v(1)]))
            .exists(Var(1)));
        let f = Formula::lfp("S", vec![Var(0)], body, vec![v(0)]);
        assert!(f.validate_fp().is_ok());
        let d = f.dual().unwrap();
        // Dual: νS(x1). ¬P(x1) ∧ ∀x2(¬E(x1,x2) ∨ S(x2)).
        assert!(d.validate_fp().is_ok(), "dual must remain positive");
        assert!(d.is_nnf());
        if let Formula::Fix { kind, .. } = &d {
            assert_eq!(*kind, FixKind::Gfp);
        } else {
            panic!("dual of a fixpoint must be a fixpoint");
        }
        assert_eq!(d.alternation_depth(), f.alternation_depth());
        assert_eq!(d.width(), f.width());
    }

    #[test]
    fn double_dual_roundtrips_semantically() {
        // dual(dual(f)) need not be syntactically f, but must be NNF-stable
        // and have the same shape metrics.
        let body = Formula::atom("P", [v(0)]).or(Formula::rel_var("S", [v(0)]));
        let f = Formula::lfp("S", vec![Var(0)], body, vec![v(0)]);
        let dd = f.dual().unwrap().dual().unwrap();
        assert!(dd.validate_fp().is_ok());
        if let Formula::Fix { kind, .. } = &dd {
            assert_eq!(*kind, FixKind::Lfp);
        } else {
            panic!();
        }
    }

    #[test]
    fn pfp_cannot_be_dualized() {
        let f = Formula::pfp(
            "S",
            vec![Var(0)],
            Formula::rel_var("S", [v(0)]).not(),
            vec![v(0)],
        );
        assert_eq!(f.dual(), Err(LogicError::CannotDualizePfp));
        // But an un-negated PFP passes through nnf.
        assert!(f.nnf().is_ok());
    }

    #[test]
    fn negated_equality_allowed_in_nnf() {
        let f = Formula::Eq(v(0), v(1)).not();
        assert!(f.is_nnf());
        assert_eq!(f.nnf().unwrap(), f);
    }
}
