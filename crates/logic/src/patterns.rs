//! Formula families from the paper and standard query patterns.
//!
//! These are the concrete queries the experiments sweep over:
//!
//! * [`path_naive`] / [`path_bounded`] — the §2.2 example: "x and y are
//!   connected by a path of length n", written naively with `n+1` variables
//!   and rewritten into `FO³` by reusing variables;
//! * [`fairness`] — the §2.2 FP³ sentence "there is no infinite E-path
//!   starting at u on which P fails infinitely often" (alternation depth 2);
//! * [`reach_from_const`] — reachability as an `FP²` least fixpoint;
//! * [`three_coloring`] — graph 3-colorability as an `ESO²` formula;
//! * [`pfp_parity_flip`] — a deliberately divergent PFP iteration (its
//!   partial fixpoint is the empty relation by the paper's convention);
//! * [`pfp_reach`] — converging PFP computing reachability.

use crate::formula::{Eso, Formula, Term, Var};

/// `ψ_n(x1, x2)`: a path of length `n ≥ 1` from `x1` to `x2`, written with
/// `n+1` distinct variables (`x1`, `x2` and chain variables `x3,…,x_{n+1}`):
///
/// ```text
/// ∃z₁…z_{n-1} (E(x1,z₁) ∧ E(z₁,z₂) ∧ … ∧ E(z_{n-1},x2))
/// ```
///
/// Its width is `n+1`; the naive bottom-up evaluation materialises a
/// relation of arity `n+1` — the exponential intermediate result of the
/// paper's introduction.
pub fn path_naive(n: usize) -> Formula {
    assert!(n >= 1, "paths have length ≥ 1");
    let x = Term::Var(Var(0));
    let y = Term::Var(Var(1));
    if n == 1 {
        return Formula::atom("E", [x, y]);
    }
    // Chain variables z_i = Var(i + 1), i = 1..n-1.
    let z = |i: usize| Term::Var(Var(i as u32 + 1));
    let mut conj = vec![Formula::atom("E", [x, z(1)])];
    for i in 1..n - 1 {
        conj.push(Formula::atom("E", [z(i), z(i + 1)]));
    }
    conj.push(Formula::atom("E", [z(n - 1), y]));
    let mut f = Formula::and_all(conj);
    for i in (1..n).rev() {
        f = f.exists(Var(i as u32 + 1));
    }
    f
}

/// `φ_n(x1, x2)`: the same path-of-length-`n` property in `FO³`, exactly as
/// in §2.2 of the paper:
///
/// ```text
/// φ₁(x,y)     = E(x,y)
/// φ_{n+1}(x,y) = ∃z (E(x,z) ∧ ∃x (x = z ∧ φ_n(x,y)))
/// ```
///
/// with `x = x1`, `y = x2`, `z = x3`. Width 3 for every `n ≥ 2`, size Θ(n).
pub fn path_bounded(n: usize) -> Formula {
    assert!(n >= 1, "paths have length ≥ 1");
    let x = Term::Var(Var(0));
    let y = Term::Var(Var(1));
    let z = Term::Var(Var(2));
    let mut f = Formula::atom("E", [x, y]);
    for _ in 1..n {
        // φ_{m+1} = ∃x3 (E(x1,x3) ∧ ∃x1 (x1 = x3 ∧ φ_m))
        let rebind = Formula::Eq(x, z).and(f).exists(Var(0));
        f = Formula::atom("E", [x, z]).and(rebind).exists(Var(2));
    }
    f
}

/// The §2.2 FP example: "there is no infinite E-path starting at `u` on
/// which P fails infinitely often":
///
/// ```text
/// [lfp S(x1). [gfp T(x3). ∀x2 (E(x3,x2) → (S(x2) ∨ (P(x2) ∧ T(x2))))](x1)](u)
/// ```
///
/// Width 3, alternation depth 2 (the inner ν depends on the outer μ).
///
/// Reading: a point is in the inner ν iff along every step either we escape
/// into `S` (strictly smaller μ-rank — this can happen only finitely often
/// on any path) or `P` holds and we continue coinductively; so the least
/// fixpoint `S` holds exactly where every infinite `E`-path has only
/// finitely many `¬P` positions. (The PODS text drops the fixpoint symbols
/// in this example; the μ-outside-ν-inside assignment is the one matching
/// its English statement.)
pub fn fairness(u: Term) -> Formula {
    let x1 = Term::Var(Var(0));
    let x2 = Term::Var(Var(1));
    let x3 = Term::Var(Var(2));
    let body_t = Formula::atom("E", [x3, x2])
        .implies(
            Formula::rel_var("S", [x2])
                .or(Formula::atom("P", [x2]).and(Formula::rel_var("T", [x2]))),
        )
        .forall(Var(1));
    let gfp_t = Formula::gfp("T", vec![Var(2)], body_t, vec![x1]);
    Formula::lfp("S", vec![Var(0)], gfp_t, vec![u])
}

/// Reachability from the constant `c` as an `FP²` query in `x1`:
///
/// ```text
/// [lfp S(x1). (x1 = c ∨ ∃x2 (S(x2) ∧ E(x2,x1)))](x1)
/// ```
pub fn reach_from_const(c: u32) -> Formula {
    let x1 = Term::Var(Var(0));
    let x2 = Term::Var(Var(1));
    let body = Formula::Eq(x1, Term::Const(c)).or(Formula::rel_var("S", [x2])
        .and(Formula::atom("E", [x2, x1]))
        .exists(Var(1)));
    Formula::lfp("S", vec![Var(0)], body, vec![x1])
}

/// Graph 3-colorability as an `ESO²` sentence:
///
/// ```text
/// ∃C₁C₂C₃ ( ∀x1 (C₁(x1) ∨ C₂(x1) ∨ C₃(x1))
///         ∧ ∀x1∀x2 (E(x1,x2) → ⋀ᵢ ¬(Cᵢ(x1) ∧ Cᵢ(x2))) )
/// ```
pub fn three_coloring() -> Eso {
    let x1 = Term::Var(Var(0));
    let x2 = Term::Var(Var(1));
    let cover =
        Formula::or_all((1..=3).map(|i| Formula::rel_var(&format!("C{i}"), [x1]))).forall(Var(0));
    let proper = Formula::atom("E", [x1, x2])
        .implies(Formula::and_all((1..=3).map(|i| {
            Formula::rel_var(&format!("C{i}"), [x1])
                .and(Formula::rel_var(&format!("C{i}"), [x2]))
                .not()
        })))
        .forall(Var(1))
        .forall(Var(0));
    Eso {
        rels: (1..=3).map(|i| (format!("C{i}"), 1)).collect(),
        body: cover.and(proper),
    }
}

/// A deliberately divergent PFP query: `[pfp S(x1). ¬S(x1)](x1)` flips
/// between `∅` and `D` forever, so its partial fixpoint is the empty
/// relation (paper §2.2 convention).
pub fn pfp_parity_flip() -> Formula {
    let x1 = Term::Var(Var(0));
    Formula::pfp(
        "S",
        vec![Var(0)],
        Formula::rel_var("S", [x1]).not(),
        vec![x1],
    )
}

/// Reachability from constant `c` written as a PFP query (the monotone
/// iteration converges, so PFP and LFP agree here):
///
/// ```text
/// [pfp S(x1). (x1 = c ∨ S(x1) ∨ ∃x2 (S(x2) ∧ E(x2,x1)))](x1)
/// ```
///
/// The explicit `S(x1)` disjunct makes the operator inflationary, so the
/// sequence is increasing and reaches its fixpoint.
pub fn pfp_reach(c: u32) -> Formula {
    let x1 = Term::Var(Var(0));
    let x2 = Term::Var(Var(1));
    let body = Formula::Eq(x1, Term::Const(c))
        .or(Formula::rel_var("S", [x1]))
        .or(Formula::rel_var("S", [x2])
            .and(Formula::atom("E", [x2, x1]))
            .exists(Var(1)));
    Formula::pfp("S", vec![Var(0)], body, vec![x1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_naive_width_grows() {
        assert_eq!(path_naive(1).width(), 2);
        assert_eq!(path_naive(2).width(), 3);
        assert_eq!(path_naive(5).width(), 6);
        assert_eq!(path_naive(5).free_vars(), vec![Var(0), Var(1)]);
    }

    #[test]
    fn path_bounded_width_is_three() {
        assert_eq!(path_bounded(1).width(), 2);
        for n in 2..10 {
            let f = path_bounded(n);
            assert_eq!(f.width(), 3, "φ_{n} must stay in FO³");
            assert_eq!(f.free_vars(), vec![Var(0), Var(1)]);
        }
    }

    #[test]
    fn path_bounded_size_is_linear() {
        let s5 = path_bounded(5).size();
        let s10 = path_bounded(10).size();
        let s20 = path_bounded(20).size();
        assert_eq!(s20 - s10, 2 * (s10 - s5), "size must grow linearly in n");
    }

    #[test]
    fn fairness_is_valid_fp3_with_alternation_2() {
        let f = fairness(Term::Const(0));
        assert!(f.validate_fp().is_ok());
        assert_eq!(f.width(), 3);
        assert_eq!(f.alternation_depth(), 2);
        assert!(f.is_fp());
        assert!(f.free_vars().is_empty());
    }

    #[test]
    fn reach_is_valid_fp2() {
        let f = reach_from_const(0);
        assert!(f.validate_fp().is_ok());
        assert_eq!(f.width(), 2);
        assert_eq!(f.alternation_depth(), 1);
        assert_eq!(f.free_vars(), vec![Var(0)]);
    }

    #[test]
    fn three_coloring_is_valid_eso2() {
        let e = three_coloring();
        assert!(e.validate().is_ok());
        assert_eq!(e.width(), 2);
        assert_eq!(e.max_rel_arity(), 1);
        assert_eq!(e.rels.len(), 3);
    }

    #[test]
    fn pfp_patterns_validate() {
        assert!(pfp_parity_flip().validate_fp().is_ok());
        assert!(pfp_reach(0).validate_fp().is_ok());
        assert!(!pfp_parity_flip().is_fp());
    }

    #[test]
    fn patterns_roundtrip_through_parser() {
        for f in [
            path_naive(4),
            path_bounded(6),
            fairness(Term::Const(1)),
            reach_from_const(2),
            pfp_parity_flip(),
            pfp_reach(0),
        ] {
            let printed = f.to_string();
            let reparsed = crate::parse(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(reparsed, f, "round-trip mismatch for `{printed}`");
        }
    }
}
