//! The formula AST.
//!
//! A single [`Formula`] type covers FO, FP and PFP; which language a given
//! formula belongs to is a property checked by the analyses in
//! [`analysis`](crate::analysis):
//!
//! * FO: no [`Formula::Fix`] nodes;
//! * FP: only `Lfp`/`Gfp` fixpoints, each body *positive* in its recursion
//!   variable;
//! * PFP: `Pfp` fixpoints allowed (no positivity requirement).
//!
//! ESO formulas ([`Eso`]) prepend existential second-order quantifiers to a
//! first-order body. Queries ([`Query`]) are the paper's `(x̄)φ(x̄)`
//! notation: a formula together with the tuple of output variables.

use std::fmt;

use crate::printer;

/// An individual variable `x₁, x₂, …` — stored 0-indexed, displayed
/// 1-indexed to match the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The 0-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A term: an individual variable or a domain constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant domain element.
    Const(u32),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

/// What a relation atom refers to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RelRef {
    /// A database relation (an EDB symbol).
    Db(String),
    /// A bound relation variable: a fixpoint recursion variable, or an
    /// existentially quantified relation of an [`Eso`] formula.
    Bound(String),
}

impl RelRef {
    /// The symbol name.
    pub fn name(&self) -> &str {
        match self {
            RelRef::Db(s) | RelRef::Bound(s) => s,
        }
    }
}

/// A relational atom `R(t₁,…,t_m)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub rel: RelRef,
    /// The argument terms; the relation's arity is `args.len()`.
    pub args: Vec<Term>,
}

/// The fixpoint operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FixKind {
    /// Least fixpoint `μ` (requires positivity).
    Lfp,
    /// Greatest fixpoint `ν` (requires positivity).
    Gfp,
    /// Partial fixpoint (PFP; no positivity requirement; a divergent
    /// iteration denotes the empty relation).
    Pfp,
    /// Inflationary fixpoint (IFP; `Sᵢ₊₁ = Sᵢ ∪ φ(Sᵢ)`, no positivity
    /// requirement, always convergent). The paper notes (§3.2) that FP and
    /// IFP have the same expressive power [GS86] but that the Theorem 3.5
    /// certificate technique does not apply to `IFP^k` — its best known
    /// combined-complexity bound is the PSPACE bound inherited from
    /// `PFP^k`.
    Ifp,
}

impl FixKind {
    /// The dual operator (μ ↔ ν). PFP and IFP have no De Morgan dual in
    /// this sense; [`Formula::dual`] rejects them.
    pub fn dual(self) -> FixKind {
        match self {
            FixKind::Lfp => FixKind::Gfp,
            FixKind::Gfp => FixKind::Lfp,
            FixKind::Pfp => FixKind::Pfp,
            FixKind::Ifp => FixKind::Ifp,
        }
    }
}

/// A formula of FO / FP / PFP.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// Logical constant.
    Const(bool),
    /// A relational atom.
    Atom(Atom),
    /// Equality of terms.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Existential quantification.
    Exists(Var, Box<Formula>),
    /// Universal quantification.
    Forall(Var, Box<Formula>),
    /// A fixpoint subformula `[fix S(x̄). φ](t̄)`:
    /// the operator binds the relation variable `rel` of arity `bound.len()`
    /// and the individual variables `bound` within `body`, and the result
    /// is applied to the argument terms `args`.
    Fix {
        /// Which fixpoint.
        kind: FixKind,
        /// The recursion variable's name.
        rel: String,
        /// The bound individual variables `x̄` (distinct).
        bound: Vec<Var>,
        /// The operator body `φ(x̄, S)`.
        body: Box<Formula>,
        /// The terms the fixpoint relation is applied to (`|args| = |bound|`).
        args: Vec<Term>,
    },
}

impl Formula {
    /// `true`.
    pub fn tt() -> Formula {
        Formula::Const(true)
    }

    /// `false`.
    pub fn ff() -> Formula {
        Formula::Const(false)
    }

    /// An atom over a database relation.
    pub fn atom(name: &str, args: impl IntoIterator<Item = Term>) -> Formula {
        Formula::Atom(Atom {
            rel: RelRef::Db(name.to_string()),
            args: args.into_iter().collect(),
        })
    }

    /// An atom over a bound relation variable.
    pub fn rel_var(name: &str, args: impl IntoIterator<Item = Term>) -> Formula {
        Formula::Atom(Atom {
            rel: RelRef::Bound(name.to_string()),
            args: args.into_iter().collect(),
        })
    }

    /// Negation (with double-negation collapse).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::Not(inner) => *inner,
            Formula::Const(b) => Formula::Const(!b),
            f => Formula::Not(Box::new(f)),
        }
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Implication, desugared to `¬self ∨ other`.
    pub fn implies(self, other: Formula) -> Formula {
        self.not().or(other)
    }

    /// Biconditional, desugared to `(self → other) ∧ (other → self)`.
    pub fn iff(self, other: Formula) -> Formula {
        self.clone().implies(other.clone()).and(other.implies(self))
    }

    /// `∃v. self`.
    pub fn exists(self, v: Var) -> Formula {
        Formula::Exists(v, Box::new(self))
    }

    /// `∀v. self`.
    pub fn forall(self, v: Var) -> Formula {
        Formula::Forall(v, Box::new(self))
    }

    /// Conjunction of all formulas (`true` if empty).
    pub fn and_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::tt(),
            Some(first) => it.fold(first, Formula::and),
        }
    }

    /// Disjunction of all formulas (`false` if empty).
    pub fn or_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut it = fs.into_iter();
        match it.next() {
            None => Formula::ff(),
            Some(first) => it.fold(first, Formula::or),
        }
    }

    /// A least fixpoint `[lfp S(x̄). body](args)`.
    pub fn lfp(rel: &str, bound: Vec<Var>, body: Formula, args: Vec<Term>) -> Formula {
        Formula::Fix {
            kind: FixKind::Lfp,
            rel: rel.to_string(),
            bound,
            body: Box::new(body),
            args,
        }
    }

    /// A greatest fixpoint `[gfp S(x̄). body](args)`.
    pub fn gfp(rel: &str, bound: Vec<Var>, body: Formula, args: Vec<Term>) -> Formula {
        Formula::Fix {
            kind: FixKind::Gfp,
            rel: rel.to_string(),
            bound,
            body: Box::new(body),
            args,
        }
    }

    /// A partial fixpoint `[pfp S(x̄). body](args)`.
    pub fn pfp(rel: &str, bound: Vec<Var>, body: Formula, args: Vec<Term>) -> Formula {
        Formula::Fix {
            kind: FixKind::Pfp,
            rel: rel.to_string(),
            bound,
            body: Box::new(body),
            args,
        }
    }

    /// An inflationary fixpoint `[ifp S(x̄). body](args)`.
    pub fn ifp(rel: &str, bound: Vec<Var>, body: Formula, args: Vec<Term>) -> Formula {
        Formula::Fix {
            kind: FixKind::Ifp,
            rel: rel.to_string(),
            bound,
            body: Box::new(body),
            args,
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        printer::fmt_formula(self, f)
    }
}

/// An existential second-order formula `∃S₁…∃S_m. φ` with `φ` first-order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Eso {
    /// The quantified relation symbols with their arities. Arity 0 gives
    /// quantified propositions (used by the Theorem 4.5 reduction).
    pub rels: Vec<(String, usize)>,
    /// The first-order body; bound relation symbols appear as
    /// [`RelRef::Bound`] atoms.
    pub body: Formula,
}

impl fmt::Display for Eso {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        printer::fmt_eso(self, f)
    }
}

/// A query `(y̆)φ`: a formula plus the tuple of output variables, denoting
/// `{t̄ : B ⊨ φ[y̆ := t̄]}` (paper §2.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// Output variables (may repeat, may be a permutation).
    pub output: Vec<Var>,
    /// The formula. Its free variables must be among `output`.
    pub formula: Formula,
}

impl Query {
    /// Creates a query. The formula's free variables must be among the
    /// output variables (checked by [`Query::validate`]).
    pub fn new(output: Vec<Var>, formula: Formula) -> Query {
        Query { output, formula }
    }

    /// A Boolean (sentence) query.
    pub fn sentence(formula: Formula) -> Query {
        Query {
            output: Vec::new(),
            formula,
        }
    }

    /// Checks that the free variables of the formula are among the output
    /// variables.
    pub fn validate(&self) -> Result<(), crate::LogicError> {
        let free = self.formula.free_vars();
        for v in &free {
            if !self.output.contains(v) {
                return Err(crate::LogicError::FreeVariableNotOutput(*v));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.output.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") {}", self.formula)
    }
}

/// Convenience: the variables `x₁,…,x_k` (0-indexed `Var(0)..Var(k-1)`).
pub fn vars(k: usize) -> Vec<Var> {
    (0..k as u32).map(Var).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_indices_are_one_based() {
        assert_eq!(Var(0).to_string(), "x1");
        assert_eq!(Term::Const(5).to_string(), "5");
    }

    #[test]
    fn double_negation_collapses() {
        let a = Formula::atom("P", [Term::Var(Var(0))]);
        assert_eq!(a.clone().not().not(), a);
        assert_eq!(Formula::tt().not(), Formula::ff());
    }

    #[test]
    fn and_all_empty_is_true() {
        assert_eq!(Formula::and_all([]), Formula::tt());
        assert_eq!(Formula::or_all([]), Formula::ff());
        let p = Formula::atom("P", []);
        assert_eq!(Formula::and_all([p.clone()]), p);
    }

    #[test]
    fn query_validate_catches_stray_free_vars() {
        let f = Formula::atom("E", [Term::Var(Var(0)), Term::Var(Var(1))]);
        assert!(Query::new(vec![Var(0), Var(1)], f.clone())
            .validate()
            .is_ok());
        assert!(Query::new(vec![Var(0)], f.clone()).validate().is_err());
        assert!(Query::sentence(f.clone().exists(Var(1)).exists(Var(0)))
            .validate()
            .is_ok());
    }

    #[test]
    fn fixkind_duality() {
        assert_eq!(FixKind::Lfp.dual(), FixKind::Gfp);
        assert_eq!(FixKind::Gfp.dual(), FixKind::Lfp);
    }
}
