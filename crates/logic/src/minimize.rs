//! Variable minimization for first-order formulas.
//!
//! The paper's closing suggestion made fully general: given *any* FO
//! formula, [`Formula::minimize_width`] renames its bound variables so
//! that slots are reused whenever the scopes permit, producing an
//! equivalent formula of (weakly) smaller width. On the §2.2 path family
//! this turns the naive `ψ_n` (width n+1) into a width-3 formula —
//! mechanically, the rewriting the paper performs by hand.
//!
//! The algorithm is greedy interference-aware slot allocation: walking
//! the syntax tree top-down, a quantifier's bound variable needs a slot
//! different from the slots of the variables *free in its scope*; the
//! smallest such slot is chosen. Free variables of the whole formula keep
//! their original indices (they are the query's interface).
//!
//! [`Formula::simplify`] is the constant-folding companion pass
//! (`true ∧ φ → φ`, `∃x c → c`, fixpoints of constant bodies, …), applied
//! before width analysis so degenerate subformulas don't pin slots.

use crate::formula::{Atom, Formula, Term, Var};

impl Formula {
    /// Constant folding and trivial-identity simplification. Preserves
    /// semantics over every database with a nonempty domain (the paper's
    /// setting; quantifier elimination over constants uses it).
    pub fn simplify(&self) -> Formula {
        match self {
            Formula::Const(_) | Formula::Atom(_) => self.clone(),
            Formula::Eq(a, b) => match (a, b) {
                (Term::Var(x), Term::Var(y)) if x == y => Formula::tt(),
                (Term::Const(c), Term::Const(d)) => Formula::Const(c == d),
                _ => self.clone(),
            },
            Formula::Not(g) => match g.simplify() {
                Formula::Const(b) => Formula::Const(!b),
                Formula::Not(inner) => *inner,
                g => Formula::Not(Box::new(g)),
            },
            Formula::And(a, b) => match (a.simplify(), b.simplify()) {
                (Formula::Const(false), _) | (_, Formula::Const(false)) => Formula::ff(),
                (Formula::Const(true), g) | (g, Formula::Const(true)) => g,
                (a, b) if a == b => a,
                (a, b) => a.and(b),
            },
            Formula::Or(a, b) => match (a.simplify(), b.simplify()) {
                (Formula::Const(true), _) | (_, Formula::Const(true)) => Formula::tt(),
                (Formula::Const(false), g) | (g, Formula::Const(false)) => g,
                (a, b) if a == b => a,
                (a, b) => a.or(b),
            },
            Formula::Exists(v, g) => match g.simplify() {
                Formula::Const(b) => Formula::Const(b), // nonempty domain
                g if !g.free_vars().contains(v) => g,
                g => g.exists(*v),
            },
            Formula::Forall(v, g) => match g.simplify() {
                Formula::Const(b) => Formula::Const(b),
                g if !g.free_vars().contains(v) => g,
                g => g.forall(*v),
            },
            Formula::Fix {
                kind,
                rel,
                bound,
                body,
                args,
            } => {
                let body = body.simplify();
                if let Formula::Const(b) = body {
                    // lfp/gfp/pfp/ifp of a constant operator is that
                    // constant relation (∅ or D^m) — hence the constant.
                    return Formula::Const(b);
                }
                Formula::Fix {
                    kind: *kind,
                    rel: rel.clone(),
                    bound: bound.clone(),
                    body: Box::new(body),
                    args: args.clone(),
                }
            }
        }
    }

    /// Pushes quantifiers inward (miniscoping): `∃v(A ∧ B) = A ∧ ∃v B`
    /// when `v ∉ free(A)`, `∃` distributes over `∨`, and dually for `∀`.
    /// Shrinking quantifier scopes is what makes slot reuse possible —
    /// a prefix-form formula keeps all its variables live simultaneously
    /// no matter how they are named.
    pub fn miniscope(&self) -> Formula {
        match self {
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => self.clone(),
            Formula::Not(g) => g.miniscope().not(),
            Formula::And(a, b) => a.miniscope().and(b.miniscope()),
            Formula::Or(a, b) => a.miniscope().or(b.miniscope()),
            Formula::Exists(v, g) => push_quantifier(*v, g.miniscope(), true),
            Formula::Forall(v, g) => push_quantifier(*v, g.miniscope(), false),
            Formula::Fix {
                kind,
                rel,
                bound,
                body,
                args,
            } => Formula::Fix {
                kind: *kind,
                rel: rel.clone(),
                bound: bound.clone(),
                body: Box::new(body.miniscope()),
                args: args.clone(),
            },
        }
    }

    /// Rewrites the formula to use as few distinct variables as the
    /// greedy pass can manage (simplify → miniscope → interference-aware
    /// renaming), preserving semantics. First-order formulas only —
    /// returns `None` when a fixpoint operator is present (their recursion
    /// arities pin variables in ways this local pass does not model).
    ///
    /// On the §2.2 path family this mechanically reproduces the paper's
    /// hand rewriting:
    ///
    /// ```
    /// use bvq_logic::patterns;
    /// let naive = patterns::path_naive(7); // width 8
    /// let slim = naive.minimize_width().unwrap();
    /// assert!(slim.width() <= 3, "width {}", slim.width());
    /// assert_eq!(slim.free_vars(), naive.free_vars());
    /// ```
    pub fn minimize_width(&self) -> Option<Formula> {
        if !self.is_first_order() {
            return None;
        }
        let f = self.simplify().miniscope();
        // Free variables keep their identities; their slots are pinned.
        let free = f.free_vars();
        let mut mapping: Vec<(Var, Var)> = free.iter().map(|v| (*v, *v)).collect();
        Some(go(&f, &mut mapping))
    }
}

/// Pushes one quantifier over `v` into `g` as far as it will go.
/// `exists` selects ∃ (distributes over ∨, commutes past v-free ∧-parts)
/// or ∀ (dually).
fn push_quantifier(v: Var, g: Formula, exists: bool) -> Formula {
    if !g.free_vars().contains(&v) {
        return g; // vacuous quantifier (nonempty domain)
    }
    match (&g, exists) {
        (Formula::Or(..), true) | (Formula::And(..), false) => {
            // Distribute over the matching connective.
            let (a, b) = match g {
                Formula::Or(a, b) | Formula::And(a, b) => (*a, *b),
                _ => unreachable!(),
            };
            let pa = push_quantifier(v, a, exists);
            let pb = push_quantifier(v, b, exists);
            if exists {
                pa.or(pb)
            } else {
                pa.and(pb)
            }
        }
        (Formula::And(..), true) | (Formula::Or(..), false) => {
            // Split the flattened juncts into those mentioning v and not.
            let mut with_v = Vec::new();
            let mut without = Vec::new();
            collect_juncts(g, exists, &mut with_v, &mut without, v);
            let combine = |fs: Vec<Formula>| {
                if exists {
                    Formula::and_all(fs)
                } else {
                    Formula::or_all(fs)
                }
            };
            let inner = combine(with_v);
            // Recurse once more: the v-part may itself expose structure.
            let pushed = match &inner {
                Formula::And(..) | Formula::Or(..) => {
                    if exists {
                        inner.exists(v)
                    } else {
                        inner.forall(v)
                    }
                }
                _ => push_quantifier(v, inner, exists),
            };
            if without.is_empty() {
                pushed
            } else {
                let rest = combine(without);
                if exists {
                    rest.and(pushed)
                } else {
                    rest.or(pushed)
                }
            }
        }
        _ => {
            if exists {
                g.exists(v)
            } else {
                g.forall(v)
            }
        }
    }
}

/// Flattens an ∧-chain (for ∃) or ∨-chain (for ∀) into juncts, split by
/// whether they mention `v`.
fn collect_juncts(
    f: Formula,
    exists: bool,
    with_v: &mut Vec<Formula>,
    without: &mut Vec<Formula>,
    v: Var,
) {
    match (f, exists) {
        (Formula::And(a, b), true) | (Formula::Or(a, b), false) => {
            collect_juncts(*a, exists, with_v, without, v);
            collect_juncts(*b, exists, with_v, without, v);
        }
        (f, _) => {
            if f.free_vars().contains(&v) {
                with_v.push(f);
            } else {
                without.push(f);
            }
        }
    }
}

fn map_term(t: &Term, mapping: &[(Var, Var)]) -> Term {
    match t {
        Term::Const(_) => *t,
        Term::Var(v) => Term::Var(
            mapping
                .iter()
                .rev()
                .find(|(w, _)| w == v)
                .map(|(_, s)| *s)
                .expect("every free variable is mapped"),
        ),
    }
}

fn go(f: &Formula, mapping: &mut Vec<(Var, Var)>) -> Formula {
    match f {
        Formula::Const(_) => f.clone(),
        Formula::Eq(a, b) => Formula::Eq(map_term(a, mapping), map_term(b, mapping)),
        Formula::Atom(Atom { rel, args }) => Formula::Atom(Atom {
            rel: rel.clone(),
            args: args.iter().map(|t| map_term(t, mapping)).collect(),
        }),
        Formula::Not(g) => go(g, mapping).not(),
        Formula::And(a, b) => go(a, mapping).and(go(b, mapping)),
        Formula::Or(a, b) => go(a, mapping).or(go(b, mapping)),
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            let is_exists = matches!(f, Formula::Exists(..));
            // The bound variable needs a slot distinct from those of the
            // *other* variables free in g.
            let inner_free: Vec<Var> = g.free_vars().into_iter().filter(|w| w != v).collect();
            let mut busy = Vec::new();
            for w in &inner_free {
                if let Some((_, s)) = mapping.iter().rev().find(|(x, _)| x == w) {
                    if !busy.contains(&s.0) {
                        busy.push(s.0);
                    }
                }
            }
            let mut slot = 0u32;
            while busy.contains(&slot) {
                slot += 1;
            }
            mapping.push((*v, Var(slot)));
            let inner = go(g, mapping);
            mapping.pop();
            if is_exists {
                inner.exists(Var(slot))
            } else {
                inner.forall(Var(slot))
            }
        }
        Formula::Fix { .. } => unreachable!("guarded by is_first_order"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::patterns;

    #[test]
    fn simplify_folds_constants() {
        let cases = [
            ("(P(x1) & true)", "P(x1)"),
            ("(P(x1) & false)", "false"),
            ("(P(x1) | true)", "true"),
            ("~~P(x1)", "P(x1)"),
            ("x1 = x1", "true"),
            ("2 = 3", "false"),
            ("exists x2. P(x1)", "P(x1)"),
            ("exists x2. true", "true"),
            ("forall x2. false", "false"),
            ("(P(x1) | P(x1))", "P(x1)"),
        ];
        for (src, expect) in cases {
            let f = parse(src).unwrap().simplify();
            let e = parse(expect).unwrap();
            assert_eq!(f, e, "simplify({src})");
        }
    }

    #[test]
    fn simplify_constant_fixpoints() {
        let f = parse("[lfp S(x1). true](x1)").unwrap().simplify();
        assert_eq!(f, Formula::tt());
        let g = parse("[gfp S(x1). false](x1)").unwrap().simplify();
        assert_eq!(g, Formula::ff());
    }

    #[test]
    fn minimize_width_on_path_family() {
        for n in 2..10 {
            let naive = patterns::path_naive(n);
            assert_eq!(naive.width(), n + 1);
            let slim = naive.minimize_width().unwrap();
            assert!(slim.width() <= 3, "n={n}: width {}", slim.width());
            assert_eq!(slim.free_vars(), naive.free_vars());
        }
    }

    #[test]
    fn minimize_keeps_free_variables_fixed() {
        let f = parse("exists x5. (E(x2, x5) & P(x5))").unwrap();
        let slim = f.minimize_width().unwrap();
        assert_eq!(slim.free_vars(), f.free_vars());
        // x5 is renamed to a small slot ≠ x2's slot.
        assert!(slim.width() <= 3);
    }

    #[test]
    fn minimize_handles_parallel_scopes() {
        // Two sibling quantifiers can share a slot.
        let f = parse("(exists x3. E(x1,x3) & exists x4. E(x4,x2))").unwrap();
        let slim = f.minimize_width().unwrap();
        assert!(slim.width() <= 3, "width {}", slim.width());
    }

    #[test]
    fn minimize_rejects_fixpoints() {
        let f = patterns::reach_from_const(0);
        assert!(f.minimize_width().is_none());
    }

    #[test]
    fn minimize_never_increases_width() {
        for seed in 0..5 {
            // Reuse the pattern generators for deterministic inputs.
            let f = patterns::path_naive(4 + seed % 3);
            let slim = f.minimize_width().unwrap();
            assert!(slim.width() <= f.width());
        }
    }
}
