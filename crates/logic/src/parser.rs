//! A recursive-descent parser for the concrete formula syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query    := '(' varlist ')' formula            (* the paper's (x̄)φ *)
//! eso      := 'exists2' name '/' nat (',' name '/' nat)* '.' formula
//! formula  := iff
//! iff      := imp ('<->' imp)*                   (* left-assoc *)
//! imp      := or ('->' imp)?                     (* right-assoc *)
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '~' unary
//!           | ('exists' | 'forall') var '.' unary
//!           | primary
//! primary  := 'true' | 'false'
//!           | '(' formula ')'
//!           | '[' ('lfp'|'gfp'|'pfp'|'mu'|'nu') name '(' varlist ')' '.'
//!                 formula ']' '(' termlist ')'
//!           | name '(' termlist ')'              (* atom *)
//!           | term '=' term
//! term     := var | nat
//! var      := 'x' nat                            (* x1, x2, … *)
//! ```
//!
//! A quantifier's body is a `unary`, so `exists x1. P(x1) & Q(x1)` parses
//! as `(∃x1 P(x1)) ∧ Q(x1)`; write `exists x1. (P(x1) & Q(x1))` for the
//! wider scope (the printer always emits the parentheses).
//!
//! An atom's relation symbol is resolved as [`RelRef::Bound`] when a
//! fixpoint binder or `exists2` quantifier of that name is in scope, and as
//! [`RelRef::Db`] otherwise.
//!
//! Every production also tracks its byte range: the `_spanned` entry
//! points ([`parse_spanned`], [`parse_query_spanned`],
//! [`parse_eso_spanned`]) return a [`SpanNode`] tree mirroring the
//! formula's AST, so diagnostics can point into the source text. The
//! desugared connectives `->` and `<->` synthesize `¬`/`∨`/`∧` nodes;
//! those all carry the span of the surface expression they came from.

use crate::error::LogicError;
use crate::formula::{Atom, Eso, FixKind, Formula, Query, RelRef, Term, Var};
use crate::span::{SpanNode, SrcSpan};

/// A parsed subformula paired with its mirroring span tree.
type Sp = (Formula, SpanNode);

/// Parses a formula.
pub fn parse(input: &str) -> Result<Formula, LogicError> {
    parse_spanned(input).map(|(f, _)| f)
}

/// Parses a formula, also returning its source-span tree.
pub fn parse_spanned(input: &str) -> Result<(Formula, SpanNode), LogicError> {
    let mut p = Parser::new(input);
    let sp = p.formula()?;
    p.expect_eof()?;
    debug_assert!(sp.1.mirrors(&sp.0), "span tree must mirror the formula");
    Ok(sp)
}

/// Parses a query `(x1,x2) φ`.
pub fn parse_query(input: &str) -> Result<Query, LogicError> {
    parse_query_spanned(input).map(|(q, _)| q)
}

/// Parses a query `(x1,x2) φ`, also returning the formula's source-span
/// tree (the output-variable list itself has no node; spans cover `φ`).
pub fn parse_query_spanned(input: &str) -> Result<(Query, SpanNode), LogicError> {
    let mut p = Parser::new(input);
    p.expect_sym('(')?;
    let mut output = Vec::new();
    if !p.try_sym(')') {
        loop {
            output.push(p.variable()?);
            if !p.try_sym(',') {
                break;
            }
        }
        p.expect_sym(')')?;
    }
    let (f, spans) = p.formula()?;
    p.expect_eof()?;
    let q = Query::new(output, f);
    q.validate()?;
    debug_assert!(spans.mirrors(&q.formula));
    Ok((q, spans))
}

/// Parses an ESO formula `exists2 S/2. φ` (or a plain FO formula, giving an
/// [`Eso`] with no quantified relations).
pub fn parse_eso(input: &str) -> Result<Eso, LogicError> {
    parse_eso_spanned(input).map(|(e, _)| e)
}

/// Parses an ESO formula, also returning the body's source-span tree.
pub fn parse_eso_spanned(input: &str) -> Result<(Eso, SpanNode), LogicError> {
    let mut p = Parser::new(input);
    let mut rels = Vec::new();
    if p.try_keyword("exists2") {
        loop {
            let name = p.ident()?;
            p.expect_sym('/')?;
            let arity = p.nat()? as usize;
            rels.push((name, arity));
            if !p.try_sym(',') {
                break;
            }
        }
        p.expect_sym('.')?;
    }
    for (name, _) in &rels {
        p.bound_rels.push(name.clone());
    }
    let (body, spans) = p.formula()?;
    p.expect_eof()?;
    let e = Eso { rels, body };
    e.validate()?;
    debug_assert!(spans.mirrors(&e.body));
    Ok((e, spans))
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    /// Relation names currently bound (fixpoint binders / exists2).
    bound_rels: Vec<String>,
}

/// Negation mirroring [`Formula::not`]'s double-negation/constant
/// collapse: when the formula node collapses, so does the span node.
fn sp_not(f: Sp, span: SrcSpan) -> Sp {
    let (f, n) = f;
    match f {
        Formula::Not(inner) => {
            let child = n
                .children
                .into_iter()
                .next()
                .unwrap_or_else(|| SpanNode::leaf(span));
            (*inner, child)
        }
        Formula::Const(b) => (Formula::Const(!b), SpanNode::leaf(span)),
        f => (Formula::Not(Box::new(f)), SpanNode::node(span, vec![n])),
    }
}

fn sp_and(a: Sp, b: Sp, span: SrcSpan) -> Sp {
    (a.0.and(b.0), SpanNode::node(span, vec![a.1, b.1]))
}

fn sp_or(a: Sp, b: Sp, span: SrcSpan) -> Sp {
    (a.0.or(b.0), SpanNode::node(span, vec![a.1, b.1]))
}

/// `a -> b`, desugared exactly like [`Formula::implies`] (`¬a ∨ b`); the
/// synthesized nodes carry the whole expression's span.
fn sp_implies(a: Sp, b: Sp, span: SrcSpan) -> Sp {
    let na = sp_not(a, span);
    sp_or(na, b, span)
}

/// `a <-> b`, desugared exactly like [`Formula::iff`].
fn sp_iff(a: Sp, b: Sp, span: SrcSpan) -> Sp {
    let ab = sp_implies(a.clone(), b.clone(), span);
    let ba = sp_implies(b, a, span);
    sp_and(ab, ba, span)
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            src: input.as_bytes(),
            pos: 0,
            bound_rels: Vec::new(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, LogicError> {
        Err(LogicError::Parse {
            position: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Skips whitespace and returns the position where the next token
    /// starts — the `start` of the production about to be parsed.
    fn mark(&mut self) -> usize {
        self.skip_ws();
        self.pos
    }

    /// The span from a [`mark`](Parser::mark) to the current position.
    fn span_from(&self, start: usize) -> SrcSpan {
        SrcSpan::new(start, self.pos)
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn try_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), LogicError> {
        if self.try_sym(c) {
            Ok(())
        } else {
            self.err(format!("expected `{c}`"))
        }
    }

    /// Matches a multi-character operator like `->` or `<->`.
    fn try_op(&mut self, op: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(op.as_bytes()) {
            self.pos += op.len();
            true
        } else {
            false
        }
    }

    fn peek_ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        let mut end = start;
        while end < self.src.len()
            && (self.src[end].is_ascii_alphanumeric()
                || self.src[end] == b'_'
                || self.src[end] == b'\'')
        {
            end += 1;
        }
        if end == start || !self.src[start].is_ascii_alphabetic() && self.src[start] != b'_' {
            return None;
        }
        Some(String::from_utf8_lossy(&self.src[start..end]).into_owned())
    }

    fn ident(&mut self) -> Result<String, LogicError> {
        match self.peek_ident() {
            Some(s) => {
                self.pos += s.len();
                Ok(s)
            }
            None => self.err("expected identifier"),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if self.peek_ident().as_deref() == Some(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn nat(&mut self) -> Result<u32, LogicError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected number");
        }
        let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        s.parse().or_else(|_| self.err("number too large"))
    }

    /// Is `name` of the shape `x<nat>` with nat ≥ 1 (a variable)?
    fn var_of_ident(name: &str) -> Option<Var> {
        let rest = name.strip_prefix('x')?;
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let n: u32 = rest.parse().ok()?;
        if n == 0 {
            None
        } else {
            Some(Var(n - 1))
        }
    }

    fn variable(&mut self) -> Result<Var, LogicError> {
        let id = self.ident()?;
        match Self::var_of_ident(&id) {
            Some(v) => Ok(v),
            None => self.err(format!("expected variable (x1, x2, …), found `{id}`")),
        }
    }

    fn term(&mut self) -> Result<Term, LogicError> {
        if let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                return Ok(Term::Const(self.nat()?));
            }
        }
        let id = self.ident()?;
        match Self::var_of_ident(&id) {
            Some(v) => Ok(Term::Var(v)),
            None => self.err(format!("expected term, found `{id}`")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), LogicError> {
        self.skip_ws();
        if self.pos == self.src.len() {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn formula(&mut self) -> Result<Sp, LogicError> {
        self.iff()
    }

    fn iff(&mut self) -> Result<Sp, LogicError> {
        let start = self.mark();
        let mut f = self.imp()?;
        while self.try_op("<->") {
            let g = self.imp()?;
            f = sp_iff(f, g, self.span_from(start));
        }
        Ok(f)
    }

    fn imp(&mut self) -> Result<Sp, LogicError> {
        let start = self.mark();
        let f = self.or()?;
        // `->` but not `<->` (or() has consumed everything before `->`).
        if self.try_op("->") {
            let g = self.imp()?;
            return Ok(sp_implies(f, g, self.span_from(start)));
        }
        Ok(f)
    }

    fn or(&mut self) -> Result<Sp, LogicError> {
        let start = self.mark();
        let mut f = self.and()?;
        while self.peek() == Some(b'|') {
            self.pos += 1;
            let g = self.and()?;
            f = sp_or(f, g, self.span_from(start));
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Sp, LogicError> {
        let start = self.mark();
        let mut f = self.unary()?;
        while self.peek() == Some(b'&') {
            self.pos += 1;
            let g = self.unary()?;
            f = sp_and(f, g, self.span_from(start));
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Sp, LogicError> {
        let start = self.mark();
        if self.try_sym('~') {
            let (g, n) = self.unary()?;
            // Surface `~` builds the Not node as written, no collapse.
            return Ok((
                Formula::Not(Box::new(g)),
                SpanNode::node(self.span_from(start), vec![n]),
            ));
        }
        if self.try_keyword("exists") {
            let v = self.variable()?;
            self.expect_sym('.')?;
            let (g, n) = self.unary()?;
            return Ok((g.exists(v), SpanNode::node(self.span_from(start), vec![n])));
        }
        if self.try_keyword("forall") {
            let v = self.variable()?;
            self.expect_sym('.')?;
            let (g, n) = self.unary()?;
            return Ok((g.forall(v), SpanNode::node(self.span_from(start), vec![n])));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Sp, LogicError> {
        let start = self.mark();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let (f, mut n) = self.formula()?;
                self.expect_sym(')')?;
                // Widen the node to include the parentheses.
                n.span = self.span_from(start);
                Ok((f, n))
            }
            Some(b'[') => {
                self.pos += 1;
                self.fixpoint(start)
            }
            Some(c) if c.is_ascii_digit() => {
                // Constant on the left of an equality.
                let t = self.term()?;
                self.expect_sym('=')?;
                let u = self.term()?;
                Ok((Formula::Eq(t, u), SpanNode::leaf(self.span_from(start))))
            }
            _ => {
                if self.try_keyword("true") {
                    return Ok((Formula::tt(), SpanNode::leaf(self.span_from(start))));
                }
                if self.try_keyword("false") {
                    return Ok((Formula::ff(), SpanNode::leaf(self.span_from(start))));
                }
                let id = self.ident()?;
                if let Some(v) = Self::var_of_ident(&id) {
                    // A variable must begin an equality.
                    self.expect_sym('=')?;
                    let u = self.term()?;
                    return Ok((
                        Formula::Eq(Term::Var(v), u),
                        SpanNode::leaf(self.span_from(start)),
                    ));
                }
                // An atom.
                self.expect_sym('(')?;
                let mut args = Vec::new();
                if !self.try_sym(')') {
                    loop {
                        args.push(self.term()?);
                        if !self.try_sym(',') {
                            break;
                        }
                    }
                    self.expect_sym(')')?;
                }
                let rel = if self.bound_rels.contains(&id) {
                    RelRef::Bound(id)
                } else {
                    RelRef::Db(id)
                };
                Ok((
                    Formula::Atom(Atom { rel, args }),
                    SpanNode::leaf(self.span_from(start)),
                ))
            }
        }
    }

    fn fixpoint(&mut self, start: usize) -> Result<Sp, LogicError> {
        let kind = if self.try_keyword("lfp") || self.try_keyword("mu") {
            FixKind::Lfp
        } else if self.try_keyword("gfp") || self.try_keyword("nu") {
            FixKind::Gfp
        } else if self.try_keyword("pfp") {
            FixKind::Pfp
        } else if self.try_keyword("ifp") {
            FixKind::Ifp
        } else {
            return self.err("expected `lfp`, `gfp`, `pfp`, `ifp`, `mu` or `nu`");
        };
        let rel = self.ident()?;
        self.expect_sym('(')?;
        let mut bound = Vec::new();
        if !self.try_sym(')') {
            loop {
                bound.push(self.variable()?);
                if !self.try_sym(',') {
                    break;
                }
            }
            self.expect_sym(')')?;
        }
        self.expect_sym('.')?;
        self.bound_rels.push(rel.clone());
        let body = self.formula();
        self.bound_rels.pop();
        let (body, body_spans) = body?;
        self.expect_sym(']')?;
        self.expect_sym('(')?;
        let mut args = Vec::new();
        if !self.try_sym(')') {
            loop {
                args.push(self.term()?);
                if !self.try_sym(',') {
                    break;
                }
            }
            self.expect_sym(')')?;
        }
        let f = Formula::Fix {
            kind,
            rel,
            bound,
            body: Box::new(body),
            args,
        };
        // Validate the fixpoint we just closed (positivity, arities).
        f.validate_fp()?;
        Ok((f, SpanNode::node(self.span_from(start), vec![body_spans])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn parses_atoms_and_connectives() {
        let f = parse("P(x1) & ~Q(x2)").unwrap();
        assert_eq!(
            f,
            Formula::atom("P", [v(0)]).and(Formula::atom("Q", [v(1)]).not())
        );
    }

    #[test]
    fn parses_quantifiers_narrow_scope() {
        let f = parse("exists x1. P(x1) & Q(x2)").unwrap();
        assert_eq!(
            f,
            Formula::atom("P", [v(0)])
                .exists(Var(0))
                .and(Formula::atom("Q", [v(1)]))
        );
        let g = parse("exists x1. (P(x1) & Q(x2))").unwrap();
        assert_eq!(
            g,
            Formula::atom("P", [v(0)])
                .and(Formula::atom("Q", [v(1)]))
                .exists(Var(0))
        );
    }

    #[test]
    fn parses_equality_and_constants() {
        assert_eq!(parse("x1 = x2").unwrap(), Formula::Eq(v(0), v(1)));
        assert_eq!(parse("x1 = 4").unwrap(), Formula::Eq(v(0), Term::Const(4)));
        assert_eq!(parse("3 = x1").unwrap(), Formula::Eq(Term::Const(3), v(0)));
    }

    #[test]
    fn parses_implication_right_assoc() {
        let f = parse("P() -> Q() -> R()").unwrap();
        let expected =
            Formula::atom("P", []).implies(Formula::atom("Q", []).implies(Formula::atom("R", [])));
        assert_eq!(f, expected);
    }

    #[test]
    fn parses_iff_as_two_implications() {
        let f = parse("P() <-> Q()").unwrap();
        assert_eq!(f, Formula::atom("P", []).iff(Formula::atom("Q", [])));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let f = parse("P() | Q() & R()").unwrap();
        let expected =
            Formula::atom("P", []).or(Formula::atom("Q", []).and(Formula::atom("R", [])));
        assert_eq!(f, expected);
    }

    #[test]
    fn parses_fixpoints_and_binds_rel() {
        let f = parse("[lfp S(x1). (P(x1) | S(x1))](x2)").unwrap();
        if let Formula::Fix {
            kind,
            rel,
            bound,
            body,
            args,
        } = &f
        {
            assert_eq!(*kind, FixKind::Lfp);
            assert_eq!(rel, "S");
            assert_eq!(bound, &vec![Var(0)]);
            assert_eq!(args, &vec![v(1)]);
            // The S atom inside must be Bound, the P atom Db.
            let expected = Formula::atom("P", [v(0)]).or(Formula::rel_var("S", [v(0)]));
            assert_eq!(**body, expected);
        } else {
            panic!("not a fixpoint: {f:?}");
        }
        // mu/nu synonyms.
        assert_eq!(
            parse("[mu S(x1). S(x1)](x1)").unwrap(),
            parse("[lfp S(x1). S(x1)](x1)").unwrap()
        );
    }

    #[test]
    fn parser_rejects_negative_recursion() {
        let r = parse("[lfp S(x1). ~S(x1)](x1)");
        assert!(matches!(r, Err(LogicError::NotPositive(_))), "{r:?}");
        // pfp allows it.
        assert!(parse("[pfp S(x1). ~S(x1)](x1)").is_ok());
    }

    #[test]
    fn parse_query_roundtrip() {
        let q = parse_query("(x1,x2) E(x1,x2)").unwrap();
        assert_eq!(q.output, vec![Var(0), Var(1)]);
        let bad = parse_query("(x1) E(x1,x2)");
        assert!(matches!(bad, Err(LogicError::FreeVariableNotOutput(_))));
    }

    #[test]
    fn parse_eso_binds_relations() {
        let e = parse_eso("exists2 S/1. forall x1. (S(x1) | P(x1))").unwrap();
        assert_eq!(e.rels, vec![("S".to_string(), 1)]);
        let mut found_bound = false;
        e.body.visit(&mut |f| {
            if let Formula::Atom(Atom {
                rel: RelRef::Bound(n),
                ..
            }) = f
            {
                assert_eq!(n, "S");
                found_bound = true;
            }
        });
        assert!(found_bound);
        // Arity mismatch caught by validation.
        assert!(parse_eso("exists2 S/2. S(x1)").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        match parse("P(x1") {
            Err(LogicError::Parse { position, .. }) => assert_eq!(position, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("").is_err());
        assert!(
            parse("P(x1) Q(x2)").is_err(),
            "trailing input must be rejected"
        );
    }

    #[test]
    fn x0_is_not_a_variable() {
        // x0 does not exist (variables are 1-based); it is an atom name,
        // so `x0 = x1` fails to parse as an atom application.
        assert!(parse("x0(x1)").is_ok()); // relation named x0 — allowed
        assert!(parse("x0 = x1").is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse("  P( x1 ,x2 )&Q(x1)  ").unwrap();
        let b = parse("P(x1,x2) & Q(x1)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn span_tree_mirrors_and_points_into_source() {
        let src = "exists x2. (E(x1,x2) & P(x2))";
        let (f, spans) = parse_spanned(src).unwrap();
        assert!(spans.mirrors(&f));
        assert_eq!(spans.span.slice(src), src);
        // exists → (paren’d and) → two atoms.
        let and = &spans.children[0];
        assert_eq!(and.span.slice(src), "(E(x1,x2) & P(x2))");
        assert_eq!(and.children[0].span.slice(src), "E(x1,x2)");
        assert_eq!(and.children[1].span.slice(src), "P(x2)");
    }

    #[test]
    fn span_tree_survives_desugaring() {
        // `->` and `<->` synthesize nodes; `~P -> Q` also exercises the
        // double-negation collapse inside the desugaring.
        for src in [
            "P(x1) -> Q(x1)",
            "~P(x1) -> Q(x1)",
            "P(x1) <-> (Q(x1) | R(x1))",
            "true -> P(x1)",
            "[lfp S(x1). (P(x1) | S(x1))](x1) & ~(x1 = 2)",
        ] {
            let (f, spans) = parse_spanned(src).unwrap();
            assert!(spans.mirrors(&f), "span tree must mirror `{src}`");
        }
        // Operand spans survive the implication rewrite.
        let src = "P(x1) -> Q(x1)";
        let (f, spans) = parse_spanned(src).unwrap();
        let Formula::Or(a, _) = &f else {
            panic!("implication desugars to or")
        };
        assert!(matches!(**a, Formula::Not(_)));
        assert_eq!(spans.children[0].children[0].span.slice(src), "P(x1)");
        assert_eq!(spans.children[1].span.slice(src), "Q(x1)");
    }

    #[test]
    fn spanned_query_and_eso_entry_points() {
        let src = "(x1) P(x1) | exists x2. E(x1,x2)";
        let (q, spans) = parse_query_spanned(src).unwrap();
        assert!(spans.mirrors(&q.formula));
        assert_eq!(spans.children[0].span.slice(src), "P(x1)");
        let src = "exists2 S/1. forall x1. (S(x1) | P(x1))";
        let (e, spans) = parse_eso_spanned(src).unwrap();
        assert!(spans.mirrors(&e.body));
        assert_eq!(spans.span.slice(src), "forall x1. (S(x1) | P(x1))");
    }
}
