//! A recursive-descent parser for the concrete formula syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query    := '(' varlist ')' formula            (* the paper's (x̄)φ *)
//! eso      := 'exists2' name '/' nat (',' name '/' nat)* '.' formula
//! formula  := iff
//! iff      := imp ('<->' imp)*                   (* left-assoc *)
//! imp      := or ('->' imp)?                     (* right-assoc *)
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '~' unary
//!           | ('exists' | 'forall') var '.' unary
//!           | primary
//! primary  := 'true' | 'false'
//!           | '(' formula ')'
//!           | '[' ('lfp'|'gfp'|'pfp'|'mu'|'nu') name '(' varlist ')' '.'
//!                 formula ']' '(' termlist ')'
//!           | name '(' termlist ')'              (* atom *)
//!           | term '=' term
//! term     := var | nat
//! var      := 'x' nat                            (* x1, x2, … *)
//! ```
//!
//! A quantifier's body is a `unary`, so `exists x1. P(x1) & Q(x1)` parses
//! as `(∃x1 P(x1)) ∧ Q(x1)`; write `exists x1. (P(x1) & Q(x1))` for the
//! wider scope (the printer always emits the parentheses).
//!
//! An atom's relation symbol is resolved as [`RelRef::Bound`] when a
//! fixpoint binder or `exists2` quantifier of that name is in scope, and as
//! [`RelRef::Db`] otherwise.

use crate::error::LogicError;
use crate::formula::{Atom, Eso, FixKind, Formula, Query, RelRef, Term, Var};

/// Parses a formula.
pub fn parse(input: &str) -> Result<Formula, LogicError> {
    let mut p = Parser::new(input);
    let f = p.formula()?;
    p.expect_eof()?;
    Ok(f)
}

/// Parses a query `(x1,x2) φ`.
pub fn parse_query(input: &str) -> Result<Query, LogicError> {
    let mut p = Parser::new(input);
    p.expect_sym('(')?;
    let mut output = Vec::new();
    if !p.try_sym(')') {
        loop {
            output.push(p.variable()?);
            if !p.try_sym(',') {
                break;
            }
        }
        p.expect_sym(')')?;
    }
    let f = p.formula()?;
    p.expect_eof()?;
    let q = Query::new(output, f);
    q.validate()?;
    Ok(q)
}

/// Parses an ESO formula `exists2 S/2. φ` (or a plain FO formula, giving an
/// [`Eso`] with no quantified relations).
pub fn parse_eso(input: &str) -> Result<Eso, LogicError> {
    let mut p = Parser::new(input);
    let mut rels = Vec::new();
    if p.try_keyword("exists2") {
        loop {
            let name = p.ident()?;
            p.expect_sym('/')?;
            let arity = p.nat()? as usize;
            rels.push((name, arity));
            if !p.try_sym(',') {
                break;
            }
        }
        p.expect_sym('.')?;
    }
    for (name, _) in &rels {
        p.bound_rels.push(name.clone());
    }
    let body = p.formula()?;
    p.expect_eof()?;
    let e = Eso { rels, body };
    e.validate()?;
    Ok(e)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    /// Relation names currently bound (fixpoint binders / exists2).
    bound_rels: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            src: input.as_bytes(),
            pos: 0,
            bound_rels: Vec::new(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, LogicError> {
        Err(LogicError::Parse {
            position: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn try_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), LogicError> {
        if self.try_sym(c) {
            Ok(())
        } else {
            self.err(format!("expected `{c}`"))
        }
    }

    /// Matches a multi-character operator like `->` or `<->`.
    fn try_op(&mut self, op: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(op.as_bytes()) {
            self.pos += op.len();
            true
        } else {
            false
        }
    }

    fn peek_ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        let mut end = start;
        while end < self.src.len()
            && (self.src[end].is_ascii_alphanumeric()
                || self.src[end] == b'_'
                || self.src[end] == b'\'')
        {
            end += 1;
        }
        if end == start || !self.src[start].is_ascii_alphabetic() && self.src[start] != b'_' {
            return None;
        }
        Some(String::from_utf8_lossy(&self.src[start..end]).into_owned())
    }

    fn ident(&mut self) -> Result<String, LogicError> {
        match self.peek_ident() {
            Some(s) => {
                self.pos += s.len();
                Ok(s)
            }
            None => self.err("expected identifier"),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if self.peek_ident().as_deref() == Some(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn nat(&mut self) -> Result<u32, LogicError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected number");
        }
        let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        s.parse().or_else(|_| self.err("number too large"))
    }

    /// Is `name` of the shape `x<nat>` with nat ≥ 1 (a variable)?
    fn var_of_ident(name: &str) -> Option<Var> {
        let rest = name.strip_prefix('x')?;
        if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let n: u32 = rest.parse().ok()?;
        if n == 0 {
            None
        } else {
            Some(Var(n - 1))
        }
    }

    fn variable(&mut self) -> Result<Var, LogicError> {
        let id = self.ident()?;
        match Self::var_of_ident(&id) {
            Some(v) => Ok(v),
            None => self.err(format!("expected variable (x1, x2, …), found `{id}`")),
        }
    }

    fn term(&mut self) -> Result<Term, LogicError> {
        if let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                return Ok(Term::Const(self.nat()?));
            }
        }
        let id = self.ident()?;
        match Self::var_of_ident(&id) {
            Some(v) => Ok(Term::Var(v)),
            None => self.err(format!("expected term, found `{id}`")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), LogicError> {
        self.skip_ws();
        if self.pos == self.src.len() {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn formula(&mut self) -> Result<Formula, LogicError> {
        self.iff()
    }

    fn iff(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.imp()?;
        while self.try_op("<->") {
            let g = self.imp()?;
            f = f.iff(g);
        }
        Ok(f)
    }

    fn imp(&mut self) -> Result<Formula, LogicError> {
        let f = self.or()?;
        // `->` but not `<->` (or() has consumed everything before `->`).
        if self.try_op("->") {
            let g = self.imp()?;
            return Ok(f.implies(g));
        }
        Ok(f)
    }

    fn or(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.and()?;
        while self.peek() == Some(b'|') {
            self.pos += 1;
            f = f.or(self.and()?);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.unary()?;
        while self.peek() == Some(b'&') {
            self.pos += 1;
            f = f.and(self.unary()?);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, LogicError> {
        if self.try_sym('~') {
            return Ok(Formula::Not(Box::new(self.unary()?)));
        }
        if self.try_keyword("exists") {
            let v = self.variable()?;
            self.expect_sym('.')?;
            return Ok(self.unary()?.exists(v));
        }
        if self.try_keyword("forall") {
            let v = self.variable()?;
            self.expect_sym('.')?;
            return Ok(self.unary()?.forall(v));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Formula, LogicError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let f = self.formula()?;
                self.expect_sym(')')?;
                Ok(f)
            }
            Some(b'[') => {
                self.pos += 1;
                self.fixpoint()
            }
            Some(c) if c.is_ascii_digit() => {
                // Constant on the left of an equality.
                let t = self.term()?;
                self.expect_sym('=')?;
                let u = self.term()?;
                Ok(Formula::Eq(t, u))
            }
            _ => {
                if self.try_keyword("true") {
                    return Ok(Formula::tt());
                }
                if self.try_keyword("false") {
                    return Ok(Formula::ff());
                }
                let id = self.ident()?;
                if let Some(v) = Self::var_of_ident(&id) {
                    // A variable must begin an equality.
                    self.expect_sym('=')?;
                    let u = self.term()?;
                    return Ok(Formula::Eq(Term::Var(v), u));
                }
                // An atom.
                self.expect_sym('(')?;
                let mut args = Vec::new();
                if !self.try_sym(')') {
                    loop {
                        args.push(self.term()?);
                        if !self.try_sym(',') {
                            break;
                        }
                    }
                    self.expect_sym(')')?;
                }
                let rel = if self.bound_rels.contains(&id) {
                    RelRef::Bound(id)
                } else {
                    RelRef::Db(id)
                };
                Ok(Formula::Atom(Atom { rel, args }))
            }
        }
    }

    fn fixpoint(&mut self) -> Result<Formula, LogicError> {
        let kind = if self.try_keyword("lfp") || self.try_keyword("mu") {
            FixKind::Lfp
        } else if self.try_keyword("gfp") || self.try_keyword("nu") {
            FixKind::Gfp
        } else if self.try_keyword("pfp") {
            FixKind::Pfp
        } else if self.try_keyword("ifp") {
            FixKind::Ifp
        } else {
            return self.err("expected `lfp`, `gfp`, `pfp`, `ifp`, `mu` or `nu`");
        };
        let rel = self.ident()?;
        self.expect_sym('(')?;
        let mut bound = Vec::new();
        if !self.try_sym(')') {
            loop {
                bound.push(self.variable()?);
                if !self.try_sym(',') {
                    break;
                }
            }
            self.expect_sym(')')?;
        }
        self.expect_sym('.')?;
        self.bound_rels.push(rel.clone());
        let body = self.formula();
        self.bound_rels.pop();
        let body = body?;
        self.expect_sym(']')?;
        self.expect_sym('(')?;
        let mut args = Vec::new();
        if !self.try_sym(')') {
            loop {
                args.push(self.term()?);
                if !self.try_sym(',') {
                    break;
                }
            }
            self.expect_sym(')')?;
        }
        let f = Formula::Fix {
            kind,
            rel,
            bound,
            body: Box::new(body),
            args,
        };
        // Validate the fixpoint we just closed (positivity, arities).
        f.validate_fp()?;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn parses_atoms_and_connectives() {
        let f = parse("P(x1) & ~Q(x2)").unwrap();
        assert_eq!(
            f,
            Formula::atom("P", [v(0)]).and(Formula::atom("Q", [v(1)]).not())
        );
    }

    #[test]
    fn parses_quantifiers_narrow_scope() {
        let f = parse("exists x1. P(x1) & Q(x2)").unwrap();
        assert_eq!(
            f,
            Formula::atom("P", [v(0)])
                .exists(Var(0))
                .and(Formula::atom("Q", [v(1)]))
        );
        let g = parse("exists x1. (P(x1) & Q(x2))").unwrap();
        assert_eq!(
            g,
            Formula::atom("P", [v(0)])
                .and(Formula::atom("Q", [v(1)]))
                .exists(Var(0))
        );
    }

    #[test]
    fn parses_equality_and_constants() {
        assert_eq!(parse("x1 = x2").unwrap(), Formula::Eq(v(0), v(1)));
        assert_eq!(parse("x1 = 4").unwrap(), Formula::Eq(v(0), Term::Const(4)));
        assert_eq!(parse("3 = x1").unwrap(), Formula::Eq(Term::Const(3), v(0)));
    }

    #[test]
    fn parses_implication_right_assoc() {
        let f = parse("P() -> Q() -> R()").unwrap();
        let expected =
            Formula::atom("P", []).implies(Formula::atom("Q", []).implies(Formula::atom("R", [])));
        assert_eq!(f, expected);
    }

    #[test]
    fn parses_iff_as_two_implications() {
        let f = parse("P() <-> Q()").unwrap();
        assert_eq!(f, Formula::atom("P", []).iff(Formula::atom("Q", [])));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let f = parse("P() | Q() & R()").unwrap();
        let expected =
            Formula::atom("P", []).or(Formula::atom("Q", []).and(Formula::atom("R", [])));
        assert_eq!(f, expected);
    }

    #[test]
    fn parses_fixpoints_and_binds_rel() {
        let f = parse("[lfp S(x1). (P(x1) | S(x1))](x2)").unwrap();
        if let Formula::Fix {
            kind,
            rel,
            bound,
            body,
            args,
        } = &f
        {
            assert_eq!(*kind, FixKind::Lfp);
            assert_eq!(rel, "S");
            assert_eq!(bound, &vec![Var(0)]);
            assert_eq!(args, &vec![v(1)]);
            // The S atom inside must be Bound, the P atom Db.
            let expected = Formula::atom("P", [v(0)]).or(Formula::rel_var("S", [v(0)]));
            assert_eq!(**body, expected);
        } else {
            panic!("not a fixpoint: {f:?}");
        }
        // mu/nu synonyms.
        assert_eq!(
            parse("[mu S(x1). S(x1)](x1)").unwrap(),
            parse("[lfp S(x1). S(x1)](x1)").unwrap()
        );
    }

    #[test]
    fn parser_rejects_negative_recursion() {
        let r = parse("[lfp S(x1). ~S(x1)](x1)");
        assert!(matches!(r, Err(LogicError::NotPositive(_))), "{r:?}");
        // pfp allows it.
        assert!(parse("[pfp S(x1). ~S(x1)](x1)").is_ok());
    }

    #[test]
    fn parse_query_roundtrip() {
        let q = parse_query("(x1,x2) E(x1,x2)").unwrap();
        assert_eq!(q.output, vec![Var(0), Var(1)]);
        let bad = parse_query("(x1) E(x1,x2)");
        assert!(matches!(bad, Err(LogicError::FreeVariableNotOutput(_))));
    }

    #[test]
    fn parse_eso_binds_relations() {
        let e = parse_eso("exists2 S/1. forall x1. (S(x1) | P(x1))").unwrap();
        assert_eq!(e.rels, vec![("S".to_string(), 1)]);
        let mut found_bound = false;
        e.body.visit(&mut |f| {
            if let Formula::Atom(Atom {
                rel: RelRef::Bound(n),
                ..
            }) = f
            {
                assert_eq!(n, "S");
                found_bound = true;
            }
        });
        assert!(found_bound);
        // Arity mismatch caught by validation.
        assert!(parse_eso("exists2 S/2. S(x1)").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        match parse("P(x1") {
            Err(LogicError::Parse { position, .. }) => assert_eq!(position, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("").is_err());
        assert!(
            parse("P(x1) Q(x2)").is_err(),
            "trailing input must be rejected"
        );
    }

    #[test]
    fn x0_is_not_a_variable() {
        // x0 does not exist (variables are 1-based); it is an atom name,
        // so `x0 = x1` fails to parse as an atom application.
        assert!(parse("x0(x1)").is_ok()); // relation named x0 — allowed
        assert!(parse("x0 = x1").is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse("  P( x1 ,x2 )&Q(x1)  ").unwrap();
        let b = parse("P(x1,x2) & Q(x1)").unwrap();
        assert_eq!(a, b);
    }
}
