//! Error types for the logic front end.

use std::fmt;

use crate::formula::Var;

/// Errors from formula validation, substitution and parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogicError {
    /// A least/greatest fixpoint body is not positive in its recursion
    /// variable.
    NotPositive(String),
    /// A relation variable is used with the wrong arity.
    RelArityMismatch {
        /// Symbol name.
        name: String,
        /// Arity at the binder.
        expected: usize,
        /// Arity at the offending occurrence.
        found: usize,
    },
    /// A fixpoint binds the same individual variable twice.
    DuplicateBoundVariable(String),
    /// A bound-relation atom has no binder.
    UnboundRelVar(String),
    /// An ESO body contains fixpoint operators.
    EsoBodyNotFirstOrder,
    /// A query formula has a free variable not listed among the outputs.
    FreeVariableNotOutput(Var),
    /// A substitution would capture a variable.
    WouldCapture(Var),
    /// Dualization was requested for a PFP formula (undefined).
    CannotDualizePfp,
    /// Parse error with position and message.
    Parse {
        /// Byte offset in the input.
        position: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::NotPositive(name) => {
                write!(
                    f,
                    "recursion variable `{name}` occurs negatively in a μ/ν body"
                )
            }
            LogicError::RelArityMismatch {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "relation `{name}` used with arity {found}, bound with arity {expected}"
                )
            }
            LogicError::DuplicateBoundVariable(name) => {
                write!(f, "fixpoint `{name}` binds a variable twice")
            }
            LogicError::UnboundRelVar(name) => write!(f, "unbound relation variable `{name}`"),
            LogicError::EsoBodyNotFirstOrder => write!(f, "ESO body must be first-order"),
            LogicError::FreeVariableNotOutput(v) => {
                write!(f, "free variable {v} is not among the query outputs")
            }
            LogicError::WouldCapture(v) => {
                write!(f, "substitution would capture variable {v}")
            }
            LogicError::CannotDualizePfp => {
                write!(f, "partial fixpoints have no De Morgan dual")
            }
            LogicError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = LogicError::RelArityMismatch {
            name: "S".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity 3"));
        assert!(LogicError::Parse {
            position: 7,
            message: "expected `)`".into()
        }
        .to_string()
        .contains("byte 7"));
    }
}
