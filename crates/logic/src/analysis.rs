//! Static analyses on formulas.
//!
//! The two quantities the paper's bounds revolve around are implemented
//! here: the **variable width** `k` (a formula is in `L^k` iff its
//! individual variables are among `x₁,…,x_k`, i.e. `width() ≤ k`) and the
//! **alternation depth** `l` of least/greatest fixpoints (the exponent in
//! the naive `n^{kl}` bound of §3.2 and the multiplier in the certified
//! `l·n^k` bound of Theorem 3.5).

use std::collections::BTreeSet;

use crate::error::LogicError;
use crate::formula::{Atom, Eso, FixKind, Formula, RelRef, Term, Var};

impl Formula {
    /// The width of the formula: the least `k` such that the formula is in
    /// `L^k`, i.e. one plus the largest variable index used (bound or
    /// free). Constants do not count.
    pub fn width(&self) -> usize {
        let mut w = 0;
        self.visit(&mut |f| {
            let bump = |w: &mut usize, t: &Term| {
                if let Term::Var(v) = t {
                    *w = (*w).max(v.index() + 1);
                }
            };
            match f {
                Formula::Atom(Atom { args, .. }) => args.iter().for_each(|t| bump(&mut w, t)),
                Formula::Eq(a, b) => {
                    bump(&mut w, a);
                    bump(&mut w, b);
                }
                Formula::Exists(v, _) | Formula::Forall(v, _) => w = w.max(v.index() + 1),
                Formula::Fix { bound, args, .. } => {
                    for v in bound {
                        w = w.max(v.index() + 1);
                    }
                    args.iter().for_each(|t| bump(&mut w, t));
                }
                _ => {}
            }
        });
        w
    }

    /// The number of *distinct* variables actually used. Always `≤ width()`.
    pub fn distinct_vars(&self) -> usize {
        let mut seen = BTreeSet::new();
        self.visit(&mut |f| {
            let bump = |seen: &mut BTreeSet<Var>, t: &Term| {
                if let Term::Var(v) = t {
                    seen.insert(*v);
                }
            };
            match f {
                Formula::Atom(Atom { args, .. }) => args.iter().for_each(|t| bump(&mut seen, t)),
                Formula::Eq(a, b) => {
                    bump(&mut seen, a);
                    bump(&mut seen, b);
                }
                Formula::Exists(v, _) | Formula::Forall(v, _) => {
                    seen.insert(*v);
                }
                Formula::Fix { bound, args, .. } => {
                    seen.extend(bound.iter().copied());
                    args.iter().for_each(|t| bump(&mut seen, t));
                }
                _ => {}
            }
        });
        seen.len()
    }

    /// Expression size: the number of AST nodes, the `|e|` against which
    /// expression and combined complexity are measured.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Quantifier rank: maximum nesting depth of ∃/∀.
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(a, b) | Formula::Or(a, b) => a.quantifier_rank().max(b.quantifier_rank()),
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.quantifier_rank(),
            Formula::Fix { body, .. } => body.quantifier_rank(),
        }
    }

    /// Whether the formula is first-order (contains no fixpoint operators).
    pub fn is_first_order(&self) -> bool {
        let mut fo = true;
        self.visit(&mut |f| {
            if matches!(f, Formula::Fix { .. }) {
                fo = false;
            }
        });
        fo
    }

    /// Whether the formula uses only `Lfp`/`Gfp` (never `Pfp` or `Ifp`).
    pub fn is_fp(&self) -> bool {
        let mut ok = true;
        self.visit(&mut |f| {
            if let Formula::Fix {
                kind: FixKind::Pfp | FixKind::Ifp,
                ..
            } = f
            {
                ok = false;
            }
        });
        ok
    }

    /// The free individual variables, sorted.
    pub fn free_vars(&self) -> Vec<Var> {
        fn go(f: &Formula, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
            let term = |t: &Term, bound: &Vec<Var>, out: &mut BTreeSet<Var>| {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            };
            match f {
                Formula::Const(_) => {}
                Formula::Atom(Atom { args, .. }) => args.iter().for_each(|t| term(t, bound, out)),
                Formula::Eq(a, b) => {
                    term(a, bound, out);
                    term(b, bound, out);
                }
                Formula::Not(g) => go(g, bound, out),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Exists(v, g) | Formula::Forall(v, g) => {
                    bound.push(*v);
                    go(g, bound, out);
                    bound.pop();
                }
                Formula::Fix {
                    bound: bvs,
                    body,
                    args,
                    ..
                } => {
                    // The fixpoint's bound variables are bound in the body…
                    let depth = bound.len();
                    bound.extend(bvs.iter().copied());
                    go(body, bound, out);
                    bound.truncate(depth);
                    // …but the application arguments are free occurrences.
                    args.iter().for_each(|t| term(t, bound, out));
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out.into_iter().collect()
    }

    /// The free (unbound) relation-variable names, sorted. Fixpoint
    /// operators bind their recursion variable; ESO quantifiers bind theirs
    /// at the [`Eso`] level.
    pub fn free_rel_vars(&self) -> Vec<String> {
        fn go(f: &Formula, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
            match f {
                Formula::Atom(Atom {
                    rel: RelRef::Bound(name),
                    ..
                }) => {
                    if !bound.iter().any(|b| b == name) {
                        out.insert(name.clone());
                    }
                }
                Formula::Atom(_) | Formula::Const(_) | Formula::Eq(..) => {}
                Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
                    go(g, bound, out)
                }
                Formula::And(a, b) | Formula::Or(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Fix { rel, body, .. } => {
                    bound.push(rel.clone());
                    go(body, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out.into_iter().collect()
    }

    /// The names of database relations referenced, sorted.
    pub fn db_relations(&self) -> Vec<(String, usize)> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Atom(Atom {
                rel: RelRef::Db(name),
                args,
            }) = f
            {
                out.insert((name.clone(), args.len()));
            }
        });
        out.into_iter().collect()
    }

    /// Whether every occurrence of the relation variable `name` is
    /// *positive*: under an even number of negations. (Our AST has no
    /// implication — it is desugared — so negation is the only
    /// polarity-flipping construct.)
    ///
    /// Occurrences shadowed by an inner fixpoint binding of the same name
    /// are not occurrences of `name`.
    pub fn is_positive_in(&self, name: &str) -> bool {
        fn go(f: &Formula, name: &str, positive: bool) -> bool {
            match f {
                Formula::Atom(Atom {
                    rel: RelRef::Bound(n),
                    ..
                }) if n == name => positive,
                Formula::Atom(_) | Formula::Const(_) | Formula::Eq(..) => true,
                Formula::Not(g) => go(g, name, !positive),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    go(a, name, positive) && go(b, name, positive)
                }
                Formula::Exists(_, g) | Formula::Forall(_, g) => go(g, name, positive),
                Formula::Fix { rel, body, .. } => {
                    if rel == name {
                        true // shadowed
                    } else {
                        go(body, name, positive)
                    }
                }
            }
        }
        go(self, name, true)
    }

    /// Validates the fixpoint structure:
    ///
    /// * every `Lfp`/`Gfp` body is positive in its recursion variable
    ///   (§2.2: "in which an m-ary relation symbol S occurs positively");
    /// * `|args| == |bound|` at every fixpoint, and bound variables are
    ///   distinct;
    /// * every bound-relation atom has the arity of its binder (fixpoint
    ///   arity = number of bound variables).
    ///
    /// `Pfp` bodies are exempt from positivity (§2.2: "not necessarily
    /// positively").
    pub fn validate_fp(&self) -> Result<(), LogicError> {
        fn go(f: &Formula, arities: &mut Vec<(String, usize)>) -> Result<(), LogicError> {
            match f {
                Formula::Atom(Atom {
                    rel: RelRef::Bound(name),
                    args,
                }) => {
                    if let Some((_, a)) = arities.iter().rev().find(|(n, _)| n == name) {
                        if *a != args.len() {
                            return Err(LogicError::RelArityMismatch {
                                name: name.clone(),
                                expected: *a,
                                found: args.len(),
                            });
                        }
                    }
                    Ok(())
                }
                Formula::Atom(_) | Formula::Const(_) | Formula::Eq(..) => Ok(()),
                Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => go(g, arities),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    go(a, arities)?;
                    go(b, arities)
                }
                Formula::Fix {
                    kind,
                    rel,
                    bound,
                    body,
                    args,
                } => {
                    if args.len() != bound.len() {
                        return Err(LogicError::RelArityMismatch {
                            name: rel.clone(),
                            expected: bound.len(),
                            found: args.len(),
                        });
                    }
                    let mut sorted: Vec<Var> = bound.clone();
                    sorted.sort();
                    sorted.dedup();
                    if sorted.len() != bound.len() {
                        return Err(LogicError::DuplicateBoundVariable(rel.clone()));
                    }
                    if matches!(kind, FixKind::Lfp | FixKind::Gfp) && !body.is_positive_in(rel) {
                        return Err(LogicError::NotPositive(rel.clone()));
                    }
                    arities.push((rel.clone(), bound.len()));
                    let r = go(body, arities);
                    arities.pop();
                    r
                }
            }
        }
        go(self, &mut Vec::new())
    }

    /// Niwiński alternation depth of μ/ν: the length of the longest chain
    /// of nested fixpoints of strictly alternating kind in which each inner
    /// fixpoint's recursion *depends on* (mentions) the outer recursion
    /// variable. This is the `l` of the paper's §3.2 discussion. A formula
    /// with no fixpoints has depth 0; `Pfp` nodes count as depth-1 blocks
    /// (they cannot alternate — PFP is evaluated by plain iteration).
    pub fn alternation_depth(&self) -> usize {
        // Emerson–Lei style: ad(σS.φ) = max(1, ad over subformulas of φ,
        // 1 + max{ad(σ'S'.φ') : σ'S'.φ' a fixpoint subformula of φ with
        // σ' ≠ σ and S occurring free in it}).
        fn ad(f: &Formula) -> usize {
            match f {
                Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => 0,
                Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => ad(g),
                Formula::And(a, b) | Formula::Or(a, b) => ad(a).max(ad(b)),
                Formula::Fix {
                    kind, rel, body, ..
                } => {
                    let mut d = ad(body).max(1);
                    if let Some(m) = max_dependent_alt(body, *kind, rel) {
                        d = d.max(m + 1);
                    }
                    d
                }
            }
        }
        // Max ad over fixpoint subformulas of `f` with kind ≠ outer_kind
        // whose body mentions outer_rel free; None if there is none.
        fn max_dependent_alt(f: &Formula, outer_kind: FixKind, outer_rel: &str) -> Option<usize> {
            match f {
                Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => None,
                Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
                    max_dependent_alt(g, outer_kind, outer_rel)
                }
                Formula::And(a, b) | Formula::Or(a, b) => {
                    match (
                        max_dependent_alt(a, outer_kind, outer_rel),
                        max_dependent_alt(b, outer_kind, outer_rel),
                    ) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        (x, y) => x.or(y),
                    }
                }
                Formula::Fix {
                    kind, rel, body, ..
                } => {
                    if rel == outer_rel {
                        return None; // outer variable shadowed below here
                    }
                    let own = if *kind != outer_kind && mentions(body, outer_rel) {
                        Some(ad(f))
                    } else {
                        None
                    };
                    let deeper = max_dependent_alt(body, outer_kind, outer_rel);
                    match (own, deeper) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        (x, y) => x.or(y),
                    }
                }
            }
        }
        fn mentions(f: &Formula, name: &str) -> bool {
            match f {
                Formula::Atom(Atom {
                    rel: RelRef::Bound(n),
                    ..
                }) => n == name,
                Formula::Atom(_) | Formula::Const(_) | Formula::Eq(..) => false,
                Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
                    mentions(g, name)
                }
                Formula::And(a, b) | Formula::Or(a, b) => mentions(a, name) || mentions(b, name),
                Formula::Fix {
                    rel, body, args: _, ..
                } => rel != name && mentions(body, name),
            }
        }
        ad(self)
    }

    /// The number of fixpoint operators (nesting or not).
    pub fn fixpoint_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |f| {
            if matches!(f, Formula::Fix { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Maximum nesting depth of fixpoint operators (alternating or not).
    pub fn fixpoint_nesting(&self) -> usize {
        match self {
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => 0,
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => g.fixpoint_nesting(),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.fixpoint_nesting().max(b.fixpoint_nesting())
            }
            Formula::Fix { body, .. } => 1 + body.fixpoint_nesting(),
        }
    }

    /// Pre-order traversal calling `f` on every subformula.
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => {}
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => g.visit(f),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::Fix { body, .. } => body.visit(f),
        }
    }
}

impl Eso {
    /// Width of an ESO formula: the width of its first-order body (the
    /// second-order quantifiers bind no individual variables).
    pub fn width(&self) -> usize {
        self.body.width()
    }

    /// Expression size: body size plus one node per quantified relation.
    pub fn size(&self) -> usize {
        self.rels.len() + self.body.size()
    }

    /// Validates: the body must be first-order; every bound-relation atom
    /// must refer to a quantified relation with matching arity.
    pub fn validate(&self) -> Result<(), LogicError> {
        if !self.body.is_first_order() {
            return Err(LogicError::EsoBodyNotFirstOrder);
        }
        let mut err = None;
        self.body.visit(&mut |f| {
            if err.is_some() {
                return;
            }
            if let Formula::Atom(Atom {
                rel: RelRef::Bound(name),
                args,
            }) = f
            {
                match self.rels.iter().find(|(n, _)| n == name) {
                    None => err = Some(LogicError::UnboundRelVar(name.clone())),
                    Some((_, a)) if *a != args.len() => {
                        err = Some(LogicError::RelArityMismatch {
                            name: name.clone(),
                            expected: *a,
                            found: args.len(),
                        })
                    }
                    _ => {}
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The maximum arity among the quantified relations — the quantity
    /// Lemma 3.6 reduces to `k`.
    pub fn max_rel_arity(&self) -> usize {
        self.rels.iter().map(|(_, a)| *a).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::vars;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn width_counts_max_index() {
        let f = Formula::atom("E", [v(0), v(2)]);
        assert_eq!(f.width(), 3);
        assert_eq!(f.distinct_vars(), 2);
        assert_eq!(Formula::tt().width(), 0);
    }

    #[test]
    fn width_sees_quantifiers_and_fixpoints() {
        let f = Formula::atom("P", [v(0)]).exists(Var(4));
        assert_eq!(f.width(), 5);
        let g = Formula::lfp("S", vec![Var(3)], Formula::rel_var("S", [v(3)]), vec![v(0)]);
        assert_eq!(g.width(), 4);
    }

    #[test]
    fn size_counts_nodes() {
        // E(x1,x2) ∧ ¬P(x1): And, Atom, Not, Atom = 4.
        let f = Formula::atom("E", [v(0), v(1)]).and(Formula::atom("P", [v(0)]).not());
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn free_vars_respects_binders() {
        let f = Formula::atom("E", [v(0), v(1)]).exists(Var(1));
        assert_eq!(f.free_vars(), vec![Var(0)]);
        // Fixpoint args are free; bound vars are not.
        let g = Formula::lfp(
            "S",
            vec![Var(0)],
            Formula::rel_var("S", [v(0)]).or(Formula::atom("P", [v(0)])),
            vec![v(2)],
        );
        assert_eq!(g.free_vars(), vec![Var(2)]);
    }

    #[test]
    fn rebinding_same_variable_is_not_free() {
        // ∃x1 (E(x1,x2) ∧ ∃x2 E(x2,x1)): free = {x2}.
        let inner = Formula::atom("E", [v(1), v(0)]).exists(Var(1));
        let f = Formula::atom("E", [v(0), v(1)]).and(inner).exists(Var(0));
        assert_eq!(f.free_vars(), vec![Var(1)]);
    }

    #[test]
    fn positivity() {
        let pos = Formula::rel_var("S", [v(0)]).or(Formula::atom("P", [v(0)]));
        assert!(pos.is_positive_in("S"));
        let neg = Formula::rel_var("S", [v(0)]).not();
        assert!(!neg.is_positive_in("S"));
        let double = Formula::rel_var("S", [v(0)]).not().not();
        assert!(double.is_positive_in("S"));
        // Implication flips polarity on the left.
        let imp = Formula::rel_var("S", [v(0)]).implies(Formula::tt());
        assert!(!imp.is_positive_in("S"));
        let imp2 = Formula::tt().implies(Formula::rel_var("S", [v(0)]));
        assert!(imp2.is_positive_in("S"));
    }

    #[test]
    fn shadowing_fixpoint_hides_occurrences() {
        // μS. ¬[μS. S(x1)](x1) — the inner S is bound by the inner μ, so the
        // outer body is (vacuously) positive in the outer S.
        let inner = Formula::lfp("S", vec![Var(0)], Formula::rel_var("S", [v(0)]), vec![v(0)]);
        let outer = Formula::lfp("S", vec![Var(0)], inner.not(), vec![v(0)]);
        assert!(outer.validate_fp().is_ok());
    }

    #[test]
    fn validate_fp_rejects_negative_recursion() {
        let bad = Formula::lfp(
            "S",
            vec![Var(0)],
            Formula::rel_var("S", [v(0)]).not(),
            vec![v(0)],
        );
        assert!(matches!(bad.validate_fp(), Err(LogicError::NotPositive(_))));
        // PFP is exempt.
        let ok = Formula::pfp(
            "S",
            vec![Var(0)],
            Formula::rel_var("S", [v(0)]).not(),
            vec![v(0)],
        );
        assert!(ok.validate_fp().is_ok());
    }

    #[test]
    fn validate_fp_checks_arities() {
        let bad = Formula::lfp(
            "S",
            vec![Var(0)],
            Formula::rel_var("S", [v(0), v(1)]),
            vec![v(0)],
        );
        assert!(matches!(
            bad.validate_fp(),
            Err(LogicError::RelArityMismatch { .. })
        ));
        let bad2 = Formula::lfp(
            "S",
            vec![Var(0)],
            Formula::rel_var("S", [v(0)]),
            vec![v(0), v(1)],
        );
        assert!(bad2.validate_fp().is_err());
        let bad3 = Formula::lfp(
            "S",
            vec![Var(0), Var(0)],
            Formula::rel_var("S", [v(0), v(0)]),
            vec![v(0), v(1)],
        );
        assert!(matches!(
            bad3.validate_fp(),
            Err(LogicError::DuplicateBoundVariable(_))
        ));
    }

    #[test]
    fn alternation_depth_basics() {
        let fo = Formula::atom("P", [v(0)]);
        assert_eq!(fo.alternation_depth(), 0);
        let single = Formula::lfp("S", vec![Var(0)], Formula::rel_var("S", [v(0)]), vec![v(0)]);
        assert_eq!(single.alternation_depth(), 1);
        // ν P. body containing μ Q. (… P …): depth 2.
        let inner = Formula::lfp(
            "Q",
            vec![Var(0)],
            Formula::rel_var("Q", [v(0)]).or(Formula::rel_var("P", [v(0)])),
            vec![v(0)],
        );
        let nested = Formula::gfp("P", vec![Var(0)], inner, vec![v(0)]);
        assert_eq!(nested.alternation_depth(), 2);
    }

    #[test]
    fn alternation_depth_ignores_independent_nesting() {
        // ν P. body containing μ Q that does NOT mention P: depth 1.
        let inner = Formula::lfp("Q", vec![Var(0)], Formula::rel_var("Q", [v(0)]), vec![v(0)]);
        let nested = Formula::gfp("P", vec![Var(0)], inner, vec![v(0)]);
        assert_eq!(nested.alternation_depth(), 1);
        // Same-kind nesting also stays at 1.
        let inner2 = Formula::lfp(
            "Q",
            vec![Var(0)],
            Formula::rel_var("Q", [v(0)]).or(Formula::rel_var("P", [v(0)])),
            vec![v(0)],
        );
        let nested2 = Formula::lfp("P", vec![Var(0)], inner2, vec![v(0)]);
        assert_eq!(nested2.alternation_depth(), 1);
    }

    #[test]
    fn triple_alternation() {
        // The paper's §3.2 example shape: ν P. φ(P, μ Q. ψ(Q, P, ν R. θ(R, P, Q))).
        let theta = Formula::and_all([
            Formula::rel_var("R", [v(0)]),
            Formula::rel_var("P", [v(0)]),
            Formula::rel_var("Q", [v(0)]),
        ]);
        let nu_r = Formula::gfp("R", vec![Var(0)], theta, vec![v(0)]);
        let psi = Formula::rel_var("Q", [v(0)])
            .or(Formula::rel_var("P", [v(0)]))
            .or(nu_r);
        let mu_q = Formula::lfp("Q", vec![Var(0)], psi, vec![v(0)]);
        let phi = Formula::rel_var("P", [v(0)]).and(mu_q);
        let nu_p = Formula::gfp("P", vec![Var(0)], phi, vec![v(0)]);
        assert!(nu_p.validate_fp().is_ok());
        assert_eq!(nu_p.alternation_depth(), 3);
        assert_eq!(nu_p.fixpoint_nesting(), 3);
        assert_eq!(nu_p.fixpoint_count(), 3);
    }

    #[test]
    fn language_classification() {
        let fo = Formula::atom("E", [v(0), v(1)]);
        assert!(fo.is_first_order() && fo.is_fp());
        let fp = Formula::lfp("S", vec![Var(0)], Formula::rel_var("S", [v(0)]), vec![v(0)]);
        assert!(!fp.is_first_order() && fp.is_fp());
        let pfp = Formula::pfp("S", vec![Var(0)], Formula::rel_var("S", [v(0)]), vec![v(0)]);
        assert!(!pfp.is_fp());
    }

    #[test]
    fn eso_validation() {
        let ok = Eso {
            rels: vec![("S".into(), 1)],
            body: Formula::rel_var("S", [v(0)]),
        };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.max_rel_arity(), 1);

        let unbound = Eso {
            rels: vec![],
            body: Formula::rel_var("S", [v(0)]),
        };
        assert!(matches!(
            unbound.validate(),
            Err(LogicError::UnboundRelVar(_))
        ));

        let wrong_arity = Eso {
            rels: vec![("S".into(), 2)],
            body: Formula::rel_var("S", [v(0)]),
        };
        assert!(matches!(
            wrong_arity.validate(),
            Err(LogicError::RelArityMismatch { .. })
        ));

        let not_fo = Eso {
            rels: vec![("S".into(), 1)],
            body: Formula::lfp("T", vec![Var(0)], Formula::rel_var("T", [v(0)]), vec![v(0)]),
        };
        assert!(matches!(
            not_fo.validate(),
            Err(LogicError::EsoBodyNotFirstOrder)
        ));
    }

    #[test]
    fn db_relations_collected() {
        let f = Formula::atom("E", [v(0), v(1)]).and(Formula::atom("P", [v(0)]));
        assert_eq!(f.db_relations(), vec![("E".into(), 2), ("P".into(), 1)]);
    }

    #[test]
    fn vars_helper() {
        assert_eq!(vars(3), vec![Var(0), Var(1), Var(2)]);
    }
}
