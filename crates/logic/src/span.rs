//! Byte-offset source spans for parsed formulas.
//!
//! The spanned parser entry points ([`parser::parse_query_spanned`] and
//! friends) return, next to the formula, a [`SpanNode`] tree that mirrors
//! the formula's AST *node for node*: the span tree's root covers the
//! whole formula, and its `i`-th child mirrors the formula's `i`-th
//! subformula. Static analyses (the `bvq-lint` crate) walk both trees in
//! lockstep and can therefore point a diagnostic at the exact byte range
//! of any subformula without the [`Formula`] type having to carry spans
//! itself — programmatically built formulas simply have no span tree.
//!
//! Desugared connectives (`->`, `<->`) synthesize nodes: the synthesized
//! `¬`/`∨`/`∧` nodes all carry the span of the surface operator
//! expression they came from, while the operand subtrees keep their own
//! spans.
//!
//! [`parser::parse_query_spanned`]: crate::parser::parse_query_spanned

use crate::formula::Formula;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SrcSpan {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl SrcSpan {
    /// A span from `start` to `end`.
    pub fn new(start: usize, end: usize) -> SrcSpan {
        SrcSpan {
            start,
            end: end.max(start),
        }
    }

    /// A single-position span (used for end-of-input parse errors).
    pub fn point(at: usize) -> SrcSpan {
        SrcSpan {
            start: at,
            end: at + 1,
        }
    }

    /// The smallest span covering both.
    pub fn join(self, other: SrcSpan) -> SrcSpan {
        SrcSpan {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The spanned slice of `src`, clamped to its bounds.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        let start = self.start.min(src.len());
        let end = self.end.min(src.len()).max(start);
        // Clamp to char boundaries so arbitrary input cannot panic.
        let mut s = start;
        while s > 0 && !src.is_char_boundary(s) {
            s -= 1;
        }
        let mut e = end;
        while e < src.len() && !src.is_char_boundary(e) {
            e += 1;
        }
        &src[s..e]
    }
}

impl std::fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A tree of source spans mirroring a [`Formula`]'s shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The byte range of this subformula.
    pub span: SrcSpan,
    /// One child per subformula, in AST order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A span node with no children.
    pub fn leaf(span: SrcSpan) -> SpanNode {
        SpanNode {
            span,
            children: Vec::new(),
        }
    }

    /// A span node with children.
    pub fn node(span: SrcSpan, children: Vec<SpanNode>) -> SpanNode {
        SpanNode { span, children }
    }

    /// Whether this tree mirrors the formula's shape exactly (same child
    /// count at every node) — the invariant the spanned parser maintains
    /// and the lint passes rely on.
    pub fn mirrors(&self, f: &Formula) -> bool {
        let subs: Vec<&Formula> = match f {
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => Vec::new(),
            Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => vec![g],
            Formula::And(a, b) | Formula::Or(a, b) => vec![a, b],
            Formula::Fix { body, .. } => vec![body],
        };
        self.children.len() == subs.len()
            && self.children.iter().zip(subs).all(|(n, g)| n.mirrors(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let a = SrcSpan::new(2, 5);
        let b = SrcSpan::new(4, 9);
        assert_eq!(a.join(b), SrcSpan::new(2, 9));
        assert_eq!(a.to_string(), "2..5");
        assert_eq!(a.slice("0123456789"), "234");
        assert_eq!(SrcSpan::new(8, 99).slice("short"), "");
        assert_eq!(SrcSpan::point(3), SrcSpan::new(3, 4));
    }

    #[test]
    fn slice_clamps_to_char_boundaries() {
        // é is two bytes; a span splitting it must not panic.
        let s = "aé b";
        let sliced = SrcSpan::new(0, 2).slice(s);
        assert!(s.contains(sliced));
    }

    #[test]
    fn mirrors_checks_shape() {
        let f = Formula::atom("P", []).and(Formula::atom("Q", []));
        let good = SpanNode::node(
            SrcSpan::new(0, 9),
            vec![
                SpanNode::leaf(SrcSpan::new(0, 3)),
                SpanNode::leaf(SrcSpan::new(6, 9)),
            ],
        );
        assert!(good.mirrors(&f));
        assert!(!SpanNode::leaf(SrcSpan::new(0, 9)).mirrors(&f));
    }
}
