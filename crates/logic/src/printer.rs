//! Pretty-printing of formulas in the concrete syntax accepted by
//! [`parse`](crate::parse).
//!
//! The printer is conservative with parentheses (every binary connective is
//! parenthesized), which makes the output unambiguous and guarantees the
//! parse/print round-trip checked by the property tests.

use std::fmt;

use crate::formula::{Atom, Eso, FixKind, Formula, Term};

/// Writes `f` in concrete syntax.
pub fn fmt_formula(f: &Formula, w: &mut fmt::Formatter<'_>) -> fmt::Result {
    match f {
        Formula::Const(true) => write!(w, "true"),
        Formula::Const(false) => write!(w, "false"),
        Formula::Atom(Atom { rel, args }) => {
            write!(w, "{}", rel.name())?;
            write!(w, "(")?;
            fmt_terms(args, w)?;
            write!(w, ")")
        }
        Formula::Eq(a, b) => write!(w, "{a} = {b}"),
        Formula::Not(g) => {
            write!(w, "~")?;
            fmt_atomic(g, w)
        }
        Formula::And(a, b) => {
            write!(w, "(")?;
            fmt_formula(a, w)?;
            write!(w, " & ")?;
            fmt_formula(b, w)?;
            write!(w, ")")
        }
        Formula::Or(a, b) => {
            write!(w, "(")?;
            fmt_formula(a, w)?;
            write!(w, " | ")?;
            fmt_formula(b, w)?;
            write!(w, ")")
        }
        Formula::Exists(v, g) => {
            write!(w, "exists {v}. ")?;
            fmt_atomic(g, w)
        }
        Formula::Forall(v, g) => {
            write!(w, "forall {v}. ")?;
            fmt_atomic(g, w)
        }
        Formula::Fix {
            kind,
            rel,
            bound,
            body,
            args,
        } => {
            let kw = match kind {
                FixKind::Lfp => "lfp",
                FixKind::Gfp => "gfp",
                FixKind::Pfp => "pfp",
                FixKind::Ifp => "ifp",
            };
            write!(w, "[{kw} {rel}(")?;
            for (i, v) in bound.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(w, "{v}")?;
            }
            write!(w, "). ")?;
            fmt_formula(body, w)?;
            write!(w, "](")?;
            fmt_terms(args, w)?;
            write!(w, ")")
        }
    }
}

/// Prints `g` parenthesized unless it is self-delimiting.
fn fmt_atomic(g: &Formula, w: &mut fmt::Formatter<'_>) -> fmt::Result {
    let self_delimiting = matches!(
        g,
        Formula::Const(_)
            | Formula::Atom(_)
            | Formula::And(..)
            | Formula::Or(..)
            | Formula::Fix { .. }
            | Formula::Not(_)
    );
    if self_delimiting {
        fmt_formula(g, w)
    } else {
        write!(w, "(")?;
        fmt_formula(g, w)?;
        write!(w, ")")
    }
}

fn fmt_terms(ts: &[Term], w: &mut fmt::Formatter<'_>) -> fmt::Result {
    for (i, t) in ts.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "{t}")?;
    }
    Ok(())
}

/// Writes an ESO formula: `exists2 S/2, T/1. body`.
pub fn fmt_eso(e: &Eso, w: &mut fmt::Formatter<'_>) -> fmt::Result {
    if e.rels.is_empty() {
        return fmt_formula(&e.body, w);
    }
    write!(w, "exists2 ")?;
    for (i, (name, arity)) in e.rels.iter().enumerate() {
        if i > 0 {
            write!(w, ", ")?;
        }
        write!(w, "{name}/{arity}")?;
    }
    write!(w, ". ")?;
    fmt_atomic(&e.body, w)
}

#[cfg(test)]
mod tests {
    use crate::formula::{Eso, Formula, Term, Var};

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn prints_connectives() {
        let f = Formula::atom("P", [v(0)]).and(Formula::atom("Q", [v(1)]).not());
        assert_eq!(f.to_string(), "(P(x1) & ~Q(x2))");
    }

    #[test]
    fn prints_quantifiers_with_dot() {
        let f = Formula::atom("E", [v(0), v(1)])
            .exists(Var(1))
            .forall(Var(0));
        assert_eq!(f.to_string(), "forall x1. (exists x2. E(x1,x2))");
    }

    #[test]
    fn prints_fixpoints() {
        let body = Formula::atom("P", [v(0)]).or(Formula::rel_var("S", [v(0)]));
        let f = Formula::lfp("S", vec![Var(0)], body, vec![v(1)]);
        assert_eq!(f.to_string(), "[lfp S(x1). (P(x1) | S(x1))](x2)");
    }

    #[test]
    fn prints_equality_and_constants() {
        let f = Formula::Eq(v(0), Term::Const(3));
        assert_eq!(f.to_string(), "x1 = 3");
        assert_eq!(Formula::tt().to_string(), "true");
    }

    #[test]
    fn prints_eso() {
        let e = Eso {
            rels: vec![("S".into(), 2), ("T".into(), 0)],
            body: Formula::rel_var("T", []),
        };
        assert_eq!(e.to_string(), "exists2 S/2, T/0. T()");
    }
}
