//! Substitution.
//!
//! Two substitutions drive the paper's reductions:
//!
//! * **Variable substitution** ([`Formula::substitute_var`]) — replacing
//!   free occurrences of a variable by a term. In a bounded-variable
//!   setting we *cannot* rename bound variables apart (fresh variables
//!   would leave `L^k`), so the substitution fails with
//!   [`LogicError::WouldCapture`] instead of silently α-renaming. All the
//!   paper's constructions are capture-free by design (they substitute a
//!   variable for itself or a constant), so this is a soundness check, not
//!   a limitation.
//!
//! * **Relation unfolding** ([`Formula::substitute_rel`]) — replacing every
//!   atom `P(t̄)` over a relation symbol by a formula with designated
//!   parameter variables. This is the engine behind Proposition 3.2
//!   (`φ_n(x) = φ(x; P := φ_{n-1})`) and the μ-calculus unfolding law.

use crate::error::LogicError;
use crate::formula::{Atom, Formula, RelRef, Term, Var};

impl Formula {
    /// Replaces free occurrences of `var` by `replacement`, failing if a
    /// quantifier or fixpoint binder would capture the replacement.
    pub fn substitute_var(&self, var: Var, replacement: Term) -> Result<Formula, LogicError> {
        let sub_term = |t: &Term| -> Term {
            match t {
                Term::Var(v) if *v == var => replacement,
                other => *other,
            }
        };
        match self {
            Formula::Const(_) => Ok(self.clone()),
            Formula::Atom(Atom { rel, args }) => Ok(Formula::Atom(Atom {
                rel: rel.clone(),
                args: args.iter().map(sub_term).collect(),
            })),
            Formula::Eq(a, b) => Ok(Formula::Eq(sub_term(a), sub_term(b))),
            Formula::Not(g) => Ok(g.substitute_var(var, replacement)?.not()),
            Formula::And(a, b) => Ok(a
                .substitute_var(var, replacement)?
                .and(b.substitute_var(var, replacement)?)),
            Formula::Or(a, b) => Ok(a
                .substitute_var(var, replacement)?
                .or(b.substitute_var(var, replacement)?)),
            Formula::Exists(v, g) | Formula::Forall(v, g) => {
                let is_exists = matches!(self, Formula::Exists(..));
                if *v == var {
                    // `var` is shadowed: nothing to substitute below.
                    return Ok(self.clone());
                }
                if Term::Var(*v) == replacement && g.free_vars().contains(&var) {
                    return Err(LogicError::WouldCapture(*v));
                }
                let inner = g.substitute_var(var, replacement)?;
                Ok(if is_exists {
                    inner.exists(*v)
                } else {
                    inner.forall(*v)
                })
            }
            Formula::Fix {
                kind,
                rel,
                bound,
                body,
                args,
            } => {
                let new_args: Vec<Term> = args.iter().map(sub_term).collect();
                let new_body = if bound.contains(&var) {
                    // Shadowed inside the body.
                    (**body).clone()
                } else {
                    if let Term::Var(rv) = replacement {
                        if bound.contains(&rv) && body.free_vars().contains(&var) {
                            return Err(LogicError::WouldCapture(rv));
                        }
                    }
                    body.substitute_var(var, replacement)?
                };
                Ok(Formula::Fix {
                    kind: *kind,
                    rel: rel.clone(),
                    bound: bound.clone(),
                    body: Box::new(new_body),
                    args: new_args,
                })
            }
        }
    }

    /// Replaces every free atom `name(t₁,…,t_m)` by
    /// `template[params[0] := t₁, …, params[m-1] := t_m]`.
    ///
    /// `params` are the template's formal parameters (distinct variables of
    /// the atom's arity). The per-atom parameter substitutions must be
    /// capture-free, and the template's free variables other than the
    /// parameters must not be captured at the occurrence — both are checked.
    ///
    /// Occurrences under a fixpoint that rebinds `name` are left alone.
    pub fn substitute_rel(
        &self,
        name: &str,
        params: &[Var],
        template: &Formula,
    ) -> Result<Formula, LogicError> {
        match self {
            Formula::Atom(Atom {
                rel: RelRef::Bound(n),
                args,
            }) if n == name => {
                assert_eq!(
                    args.len(),
                    params.len(),
                    "template parameter count mismatch"
                );
                // Simultaneous substitution via a two-phase rename is not
                // needed: the paper's uses have args that are plain
                // variables/constants and params that are the leading
                // variables. We substitute sequentially but guard against
                // parameter/argument collisions that would make sequential
                // differ from simultaneous.
                let mut result = template.clone();
                for (i, (p, a)) in params.iter().zip(args).enumerate() {
                    // A later parameter equal to an earlier substituted
                    // argument variable would be rewritten twice.
                    if let Term::Var(av) = a {
                        if params[i + 1..].contains(av) {
                            return Err(LogicError::WouldCapture(*av));
                        }
                    }
                    if Term::Var(*p) != *a {
                        result = result.substitute_var(*p, *a)?;
                    }
                }
                Ok(result)
            }
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => Ok(self.clone()),
            Formula::Not(g) => Ok(g.substitute_rel(name, params, template)?.not()),
            Formula::And(a, b) => Ok(a
                .substitute_rel(name, params, template)?
                .and(b.substitute_rel(name, params, template)?)),
            Formula::Or(a, b) => Ok(a
                .substitute_rel(name, params, template)?
                .or(b.substitute_rel(name, params, template)?)),
            Formula::Exists(v, g) => Ok(g.substitute_rel(name, params, template)?.exists(*v)),
            Formula::Forall(v, g) => Ok(g.substitute_rel(name, params, template)?.forall(*v)),
            Formula::Fix {
                kind,
                rel,
                bound,
                body,
                args,
            } => {
                let new_body = if rel == name {
                    (**body).clone()
                } else {
                    body.substitute_rel(name, params, template)?
                };
                Ok(Formula::Fix {
                    kind: *kind,
                    rel: rel.clone(),
                    bound: bound.clone(),
                    body: Box::new(new_body),
                    args: args.clone(),
                })
            }
        }
    }

    /// Renames a bound relation variable throughout (free occurrences of
    /// `from` become `to`). Used by transformations that need fresh
    /// recursion-variable names.
    pub fn rename_rel(&self, from: &str, to: &str) -> Formula {
        match self {
            Formula::Atom(Atom {
                rel: RelRef::Bound(n),
                args,
            }) if n == from => Formula::Atom(Atom {
                rel: RelRef::Bound(to.to_string()),
                args: args.clone(),
            }),
            Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => self.clone(),
            Formula::Not(g) => g.rename_rel(from, to).not(),
            Formula::And(a, b) => a.rename_rel(from, to).and(b.rename_rel(from, to)),
            Formula::Or(a, b) => a.rename_rel(from, to).or(b.rename_rel(from, to)),
            Formula::Exists(v, g) => g.rename_rel(from, to).exists(*v),
            Formula::Forall(v, g) => g.rename_rel(from, to).forall(*v),
            Formula::Fix {
                kind,
                rel,
                bound,
                body,
                args,
            } => {
                let new_body = if rel == from {
                    (**body).clone()
                } else {
                    body.rename_rel(from, to)
                };
                Formula::Fix {
                    kind: *kind,
                    rel: rel.clone(),
                    bound: bound.clone(),
                    body: Box::new(new_body),
                    args: args.clone(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn substitute_free_occurrences() {
        let f = Formula::atom("E", [v(0), v(1)]);
        let g = f.substitute_var(Var(0), v(1)).unwrap();
        assert_eq!(g, Formula::atom("E", [v(1), v(1)]));
        let c = f.substitute_var(Var(1), Term::Const(3)).unwrap();
        assert_eq!(c, Formula::atom("E", [v(0), Term::Const(3)]));
    }

    #[test]
    fn substitution_stops_at_binder() {
        // ∃x1 E(x1, x2): substituting x1 does nothing.
        let f = Formula::atom("E", [v(0), v(1)]).exists(Var(0));
        assert_eq!(f.substitute_var(Var(0), Term::Const(9)).unwrap(), f);
    }

    #[test]
    fn capture_detected() {
        // ∃x2 E(x1, x2): substituting x1 := x2 would capture.
        let f = Formula::atom("E", [v(0), v(1)]).exists(Var(1));
        assert_eq!(
            f.substitute_var(Var(0), v(1)),
            Err(LogicError::WouldCapture(Var(1)))
        );
        // Substituting a constant is always fine.
        assert!(f.substitute_var(Var(0), Term::Const(0)).is_ok());
    }

    #[test]
    fn capture_by_fixpoint_binder_detected() {
        // [lfp S(x2). E(x1,x2) ∨ S(x2)](x3): substituting x1 := x2 captures.
        let body = Formula::atom("E", [v(0), v(1)]).or(Formula::rel_var("S", [v(1)]));
        let f = Formula::lfp("S", vec![Var(1)], body, vec![v(2)]);
        assert_eq!(
            f.substitute_var(Var(0), v(1)),
            Err(LogicError::WouldCapture(Var(1)))
        );
        // But substituting into the args is fine.
        let g = f.substitute_var(Var(2), v(0)).unwrap();
        if let Formula::Fix { args, .. } = &g {
            assert_eq!(args, &vec![v(0)]);
        } else {
            panic!("not a fixpoint");
        }
    }

    #[test]
    fn substitute_rel_unfolds() {
        // φ(x1) = P(x1) ∨ E(x1,x1); replace P(t) by template T(t).
        let f = Formula::rel_var("P", [v(0)]).or(Formula::atom("E", [v(0), v(0)]));
        let template = Formula::atom("T", [v(0)]);
        let g = f.substitute_rel("P", &[Var(0)], &template).unwrap();
        assert_eq!(
            g,
            Formula::atom("T", [v(0)]).or(Formula::atom("E", [v(0), v(0)]))
        );
    }

    #[test]
    fn substitute_rel_applies_parameters() {
        // Atom P(x2) with template E(x1, x1) over parameter x1 yields E(x2, x2).
        let f = Formula::rel_var("P", [v(1)]);
        let template = Formula::atom("E", [v(0), v(0)]);
        let g = f.substitute_rel("P", &[Var(0)], &template).unwrap();
        assert_eq!(g, Formula::atom("E", [v(1), v(1)]));
    }

    #[test]
    fn substitute_rel_respects_shadowing() {
        // Occurrence inside [lfp P…] must not be replaced.
        let inner = Formula::lfp("P", vec![Var(0)], Formula::rel_var("P", [v(0)]), vec![v(0)]);
        let f = Formula::rel_var("P", [v(0)]).and(inner.clone());
        let g = f.substitute_rel("P", &[Var(0)], &Formula::tt()).unwrap();
        assert_eq!(g, Formula::tt().and(inner));
    }

    #[test]
    fn rename_rel_renames_free_only() {
        let inner = Formula::lfp("S", vec![Var(0)], Formula::rel_var("S", [v(0)]), vec![v(0)]);
        let f = Formula::rel_var("S", [v(0)]).and(inner.clone());
        let g = f.rename_rel("S", "T");
        assert_eq!(g, Formula::rel_var("T", [v(0)]).and(inner));
    }
}
