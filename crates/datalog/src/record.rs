//! Derivation-recording evaluation for certificate production.
//!
//! A derivation-tree certificate needs, for every derived tuple, the rule
//! that produced it and the premise tuple matched against each body atom.
//! [`rule_bindings`](crate::delta::rule_bindings) already enumerates one
//! tuple per satisfying valuation, so recording is a round-based loop
//! that instantiates each body atom under each *new* valuation — premises
//! always come from the state at round start, which is what makes the
//! recorded list a proper tree (premise pointers only reach backwards).

use bvq_relation::{Database, Elem, EvalConfig, FxHashMap, Relation, StatsRecorder, Tuple};

use crate::ast::{AtomTerm, DatalogError, Program};
use crate::delta::{rule_bindings, RelSource};

/// One recorded derivation: rule index, derived head tuple, and one
/// premise tuple per body atom (in body order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedStep {
    /// Index of the producing rule in the program.
    pub rule: usize,
    /// The derived head tuple.
    pub head: Tuple,
    /// The premise tuple matched against each body atom.
    pub premises: Vec<Tuple>,
}

/// The result of a recording evaluation: the final IDB, the derivation
/// steps in derivation order (one per derived tuple), and the tree depth
/// (longest premise chain), which doubles as the parallel round count.
#[derive(Clone, Debug)]
pub struct Derivations {
    /// Final IDB relations, sorted by predicate name.
    pub idb: Vec<(String, Relation)>,
    /// One step per derived tuple, premises strictly earlier.
    pub steps: Vec<RecordedStep>,
    /// Longest premise chain over the tree (0 when nothing derives).
    pub rounds: u64,
}

impl Derivations {
    /// The final relation for `pred`, if it is an IDB predicate.
    pub fn get(&self, pred: &str) -> Option<&Relation> {
        self.idb.iter().find(|(p, _)| p == pred).map(|(_, r)| r)
    }
}

struct Layered<'a> {
    db: &'a Database,
    idb: &'a [(String, Relation)],
}

impl RelSource for Layered<'_> {
    fn rel(&self, pred: &str) -> Option<&Relation> {
        self.idb
            .iter()
            .find(|(p, _)| p == pred)
            .map(|(_, r)| r)
            .or_else(|| self.db.relation_by_name(pred))
    }
}

/// Evaluates `program` to fixpoint, recording one derivation per derived
/// tuple. Semantically identical to [`crate::eval_naive`]; the extra
/// work buys the premise pointers a certificate needs.
pub fn eval_recorded(
    program: &Program,
    db: &Database,
    cfg: &EvalConfig,
) -> Result<Derivations, DatalogError> {
    program.validate()?;
    let mut idb: Vec<(String, Relation)> = program
        .idb_predicates()
        .into_iter()
        .map(|(p, a)| (p, Relation::new(a)))
        .collect();
    let mut steps: Vec<RecordedStep> = Vec::new();
    // Tree depth per derived tuple, mirroring the checker's definition:
    // an EDB premise contributes depth 1, an IDB premise its own depth
    // plus one; a step's depth is the max over its premises.
    let mut depth: FxHashMap<(String, Tuple), u64> = FxHashMap::default();
    let mut rec = StatsRecorder::new();

    // Per-rule: head variable → binding column, premise shapes.
    loop {
        let mut fresh: Vec<(usize, RecordedStep, u64)> = Vec::new();
        {
            let src = Layered { db, idb: &idb };
            for (ri, rule) in program.rules.iter().enumerate() {
                let b = rule_bindings(rule, &[], &src, cfg, &mut rec)?;
                let col_of = |v: u32| b.cols.iter().position(|c| *c == v);
                let head_cols: Vec<usize> = rule
                    .head
                    .vars
                    .iter()
                    .map(|v| col_of(*v).expect("range-restricted"))
                    .collect();
                let idb_pos = idb
                    .iter()
                    .position(|(p, _)| *p == rule.head.pred)
                    .expect("head is IDB");
                for val in b.rel.iter() {
                    let head = Tuple::from_fn(head_cols.len(), |i| val[head_cols[i]]);
                    if idb[idb_pos].1.contains(&head)
                        || fresh
                            .iter()
                            .any(|(p, s, _)| *p == idb_pos && s.head == head)
                    {
                        continue;
                    }
                    let mut premises = Vec::with_capacity(rule.body.len());
                    let mut d = 0u64;
                    for atom in &rule.body {
                        let premise = Tuple::from_fn(atom.args.len(), |i| match &atom.args[i] {
                            AtomTerm::Const(c) => *c as Elem,
                            AtomTerm::Var(v) => val[col_of(*v).expect("bound body var")],
                        });
                        d = d.max(match depth.get(&(atom.pred.clone(), premise.clone())) {
                            Some(pd) => pd + 1,
                            // EDB fact (or an IDB predicate acting as one
                            // via the database — impossible here, every
                            // derived tuple is in `depth`).
                            None => 1,
                        });
                        premises.push(premise);
                    }
                    fresh.push((
                        idb_pos,
                        RecordedStep {
                            rule: ri,
                            head,
                            premises,
                        },
                        d,
                    ));
                }
            }
        }
        if fresh.is_empty() {
            break;
        }
        for (pos, step, d) in fresh {
            depth.insert((idb[pos].0.clone(), step.head.clone()), d);
            idb[pos].1.insert(step.head.clone());
            steps.push(step);
        }
    }
    let rounds = depth.values().copied().max().unwrap_or(0);
    Ok(Derivations { idb, steps, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_program() -> Program {
        use crate::ast::AtomTerm::Var;
        Program::new()
            .rule("T", &[0, 1], &[("E", &[Var(0), Var(1)])])
            .rule(
                "T",
                &[0, 2],
                &[("E", &[Var(0), Var(1)]), ("T", &[Var(1), Var(2)])],
            )
    }

    #[test]
    fn records_one_step_per_derived_tuple_with_backward_premises() {
        let db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
            .build();
        let prog = tc_program();
        let d = eval_recorded(&prog, &db, &EvalConfig::sequential()).unwrap();
        let t = d.get("T").unwrap();
        assert_eq!(t.len(), 6); // full transitive closure of the path
        assert_eq!(d.steps.len(), 6);
        // Premises point strictly backwards: every IDB premise was
        // derived by an earlier step.
        let mut seen: Vec<&Tuple> = Vec::new();
        for s in &d.steps {
            for (atom, p) in prog.rules[s.rule].body.iter().zip(&s.premises) {
                if atom.pred == "T" {
                    assert!(seen.contains(&p), "premise {p:?} not yet derived");
                }
            }
            seen.push(&s.head);
        }
        // Path of 3 edges: longest chain T(0,3) needs depth 3.
        assert_eq!(d.rounds, 3);
    }

    #[test]
    fn empty_edb_derives_nothing() {
        let db = Database::builder(3)
            .relation("E", 2, [] as [[u32; 2]; 0])
            .build();
        let d = eval_recorded(&tc_program(), &db, &EvalConfig::sequential()).unwrap();
        assert!(d.steps.is_empty());
        assert_eq!(d.rounds, 0);
        assert_eq!(d.get("T").unwrap().len(), 0);
    }
}
