//! Translation of single-IDB Datalog programs into FP least fixpoints.
//!
//! A program defining one IDB predicate `P/m` translates to
//!
//! ```text
//! [lfp P(x₁,…,x_m). ⋁_rules ∃(body-only vars) ⋀ atoms](x₁,…,x_m)
//! ```
//!
//! with the head variables mapped to `x₁,…,x_m` and each rule's remaining
//! variables packed into `x_{m+1},…`. The number of individual variables
//! is therefore `m + max-extra-vars-per-rule` — the Datalog program's
//! natural variable width. The translation is the bridge Proposition 3.2
//! walks across (Path Systems is a width-3 Datalog program, hence an
//! `FO³`/`FP³` query), and it is differentially tested against the
//! semi-naive engine.

use bvq_logic::{Formula, Term, Var};

use crate::ast::{AtomTerm, DatalogError, Program};

/// Translates a single-IDB program into an FP formula whose free variables
/// are `x₁,…,x_m` (the IDB predicate's columns). Body predicates other
/// than the IDB become database atoms.
///
/// # Errors
/// Fails if the program defines more than one IDB predicate (use
/// [`to_fp_formula_multi`] for mutual recursion) or is structurally
/// invalid.
pub fn to_fp_formula(program: &Program) -> Result<Formula, DatalogError> {
    program.validate()?;
    let idbs = program.idb_predicates();
    let (idb, m) = match idbs.as_slice() {
        [(p, a)] => (p.clone(), *a),
        _ => {
            return Err(DatalogError::UnknownPredicate(format!(
                "expected exactly one IDB predicate, found {}",
                idbs.len()
            )))
        }
    };
    Ok(fixpoint_for(program, &idb, m, &|pred, args| {
        if pred == idb {
            Formula::rel_var(&idb, args)
        } else {
            Formula::atom(pred, args)
        }
    }))
}

/// Translates a multi-IDB program into an FP formula for `target`, using
/// Bekić's principle: each occurrence of a *different* IDB predicate that
/// is not already bound by an enclosing fixpoint is replaced inline by its
/// own nested least fixpoint. The result's free variables are
/// `x₁,…,x_{arity(target)}`.
///
/// The expansion can grow exponentially in the number of mutually
/// recursive predicates — the price of collapsing a simultaneous fixpoint
/// into the paper's single-μ syntax without increasing arity.
///
/// # Errors
/// Fails on invalid programs or an unknown target predicate.
pub fn to_fp_formula_multi(program: &Program, target: &str) -> Result<Formula, DatalogError> {
    program.validate()?;
    let idbs = program.idb_predicates();
    let (_, m) = idbs
        .iter()
        .find(|(p, _)| p == target)
        .ok_or_else(|| DatalogError::UnknownPredicate(target.to_string()))?;
    Ok(expand(program, &idbs, target, *m, &[target.to_string()]))
}

/// Bekić expansion of `pred` with the predicates in `scope` available as
/// enclosing recursion variables.
fn expand(
    program: &Program,
    idbs: &[(String, usize)],
    pred: &str,
    arity: usize,
    scope: &[String],
) -> Formula {
    // Inlined per-atom resolution: enclosing recursion variable, nested
    // fixpoint expansion, or EDB atom.
    fixpoint_for(program, pred, arity, &|p, args| {
        if scope.iter().any(|s| s == p) {
            Formula::rel_var(p, args)
        } else if let Some((_, a)) = idbs.iter().find(|(q, _)| q == p) {
            let mut inner_scope = scope.to_vec();
            inner_scope.push(p.to_string());
            let fix = expand(program, idbs, p, *a, &inner_scope);
            // `fix` is [lfp p(x̄). …](x̄); re-apply to the atom's args.
            match fix {
                Formula::Fix {
                    kind,
                    rel,
                    bound,
                    body,
                    ..
                } => Formula::Fix {
                    kind,
                    rel,
                    bound,
                    body,
                    args,
                },
                _ => unreachable!("expand returns a fixpoint"),
            }
        } else {
            Formula::atom(p, args)
        }
    })
}

/// Builds `[lfp pred(x₁..x_m). ⋁ rules](x₁..x_m)`, resolving each body
/// atom through `resolve(pred_name, mapped_args)`.
fn fixpoint_for(
    program: &Program,
    idb: &str,
    m: usize,
    resolve: &dyn Fn(&str, Vec<Term>) -> Formula,
) -> Formula {
    let mut disjuncts: Vec<Formula> = Vec::new();
    for rule in &program.rules {
        if rule.head.pred != idb {
            continue;
        }
        // Map rule variables to formula variables: head variable i ↦ xᵢ,
        // body-only variables ↦ x_{m+1}, … in order of appearance.
        let mut mapping: Vec<(u32, u32)> = rule
            .head
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, i as u32))
            .collect();
        let mut next = m as u32;
        let mut map_term = |t: &AtomTerm, mapping: &mut Vec<(u32, u32)>| -> Term {
            match t {
                AtomTerm::Const(c) => Term::Const(*c),
                AtomTerm::Var(v) => {
                    if let Some((_, x)) = mapping.iter().find(|(w, _)| w == v) {
                        Term::Var(Var(*x))
                    } else {
                        let x = next;
                        next += 1;
                        mapping.push((*v, x));
                        Term::Var(Var(x))
                    }
                }
            }
        };
        let mut conjuncts: Vec<Formula> = Vec::new();
        for atom in &rule.body {
            let args: Vec<Term> = atom
                .args
                .iter()
                .map(|t| map_term(t, &mut mapping))
                .collect();
            conjuncts.push(resolve(&atom.pred, args));
        }
        let mut body = Formula::and_all(conjuncts);
        // Existentially close the body-only variables.
        for x in (m as u32..next).rev() {
            body = body.exists(Var(x));
        }
        disjuncts.push(body);
    }
    let operator_body = Formula::or_all(disjuncts);
    let bound: Vec<Var> = (0..m as u32).map(Var).collect();
    let args: Vec<Term> = (0..m as u32).map(|i| Term::Var(Var(i))).collect();
    let f = Formula::lfp(idb, bound, operator_body, args);
    debug_assert!(f.validate_fp().is_ok(), "translation must be positive");
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AtomTerm::{Const, Var as V};
    use crate::eval::eval_seminaive;
    use bvq_core::FpEvaluator;
    use bvq_logic::Query;
    use bvq_relation::Database;

    fn tc_program() -> Program {
        Program::new()
            .rule("T", &[0, 1], &[("E", &[V(0), V(1)])])
            .rule("T", &[0, 1], &[("T", &[V(0), V(2)]), ("E", &[V(2), V(1)])])
    }

    #[test]
    fn tc_translation_shape() {
        let f = to_fp_formula(&tc_program()).unwrap();
        assert_eq!(f.width(), 3, "transitive closure is an FP³ query");
        assert_eq!(f.alternation_depth(), 1);
        assert_eq!(f.free_vars(), vec![bvq_logic::Var(0), bvq_logic::Var(1)]);
    }

    #[test]
    fn translation_agrees_with_engine() {
        let db = Database::builder(6)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3], [4, 5]])
            .build();
        let program = tc_program();
        let datalog = eval_seminaive(&program, &db).unwrap();
        let f = to_fp_formula(&program).unwrap();
        let q = Query::new(vec![bvq_logic::Var(0), bvq_logic::Var(1)], f);
        let (fp, _) = FpEvaluator::new(&db, 3).eval_query(&q).unwrap();
        assert_eq!(datalog.get("T").unwrap().sorted(), fp.sorted());
    }

    #[test]
    fn translation_with_constants() {
        let program = Program::new()
            .rule("Reach", &[0], &[("E", &[Const(0), V(0)])])
            .rule("Reach", &[0], &[("Reach", &[V(1)]), ("E", &[V(1), V(0)])]);
        let db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2]])
            .build();
        let datalog = eval_seminaive(&program, &db).unwrap();
        let f = to_fp_formula(&program).unwrap();
        assert_eq!(f.width(), 2);
        let q = Query::new(vec![bvq_logic::Var(0)], f);
        let (fp, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
        assert_eq!(datalog.get("Reach").unwrap().sorted(), fp.sorted());
    }

    #[test]
    fn multi_idb_rejected() {
        let program = Program::new()
            .rule("A", &[0], &[("E", &[V(0), V(0)])])
            .rule("B", &[0], &[("A", &[V(0)])]);
        assert!(to_fp_formula(&program).is_err());
    }

    #[test]
    fn bekic_expansion_handles_mutual_recursion() {
        // Even/Odd distance from node 0 along a chain.
        let program = Program::new()
            .rule("Even", &[0], &[("Z", &[V(0)])])
            .rule("Even", &[0], &[("Odd", &[V(1)]), ("E", &[V(1), V(0)])])
            .rule("Odd", &[0], &[("Even", &[V(1)]), ("E", &[V(1), V(0)])]);
        let db = Database::builder(6)
            .relation("E", 2, (0u32..5).map(|i| [i, i + 1]))
            .relation("Z", 1, [[0u32]])
            .build();
        let datalog = eval_seminaive(&program, &db).unwrap();
        for target in ["Even", "Odd"] {
            let f = to_fp_formula_multi(&program, target).unwrap();
            assert!(f.validate_fp().is_ok(), "{target}: {f}");
            assert!(f.width() <= 2, "{target} should stay narrow");
            let q = Query::new(vec![bvq_logic::Var(0)], f);
            let (fp, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
            assert_eq!(
                datalog.get(target).unwrap().sorted(),
                fp.sorted(),
                "Bekić expansion of {target} disagrees with semi-naive"
            );
        }
    }

    #[test]
    fn bekic_on_cyclic_dependency_pair() {
        // A and B derive from each other plus seeds; answers must match.
        let program = Program::new()
            .rule("A", &[0], &[("SA", &[V(0)])])
            .rule("A", &[0], &[("B", &[V(1)]), ("E", &[V(1), V(0)])])
            .rule("B", &[0], &[("SB", &[V(0)])])
            .rule("B", &[0], &[("A", &[V(1)]), ("E", &[V(1), V(0)])]);
        let db = Database::builder(5)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3], [3, 1]])
            .relation("SA", 1, [[0u32]])
            .relation("SB", 1, Vec::<[u32; 1]>::new())
            .build();
        let datalog = eval_seminaive(&program, &db).unwrap();
        for target in ["A", "B"] {
            let f = to_fp_formula_multi(&program, target).unwrap();
            let q = Query::new(vec![bvq_logic::Var(0)], f);
            let (fp, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
            assert_eq!(
                datalog.get(target).unwrap().sorted(),
                fp.sorted(),
                "{target}"
            );
        }
    }

    #[test]
    fn bekic_unknown_target() {
        let program = Program::new().rule("A", &[0], &[("E", &[V(0), V(0)])]);
        assert!(to_fp_formula_multi(&program, "Nope").is_err());
        // Single-IDB via the multi entry point agrees with the simple one.
        let f1 = to_fp_formula(&program).unwrap();
        let f2 = to_fp_formula_multi(&program, "A").unwrap();
        assert_eq!(f1, f2);
    }
}
