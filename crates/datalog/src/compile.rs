//! Compiled Datalog evaluation: per-rule kernels over the semi-naive
//! driver.
//!
//! The interpreting evaluator re-derives, every round and for every
//! (rule × delta-position) item, everything that is actually invariant
//! across rounds: it clones each body atom's source relation (twice —
//! once to own it, once inside normalisation), re-applies constant and
//! repeated-variable selections, and re-computes join pairs and
//! projection positions by scanning the running column list. A
//! [`RuleKernel`] performs that analysis once, by *symbolically*
//! simulating the join-state columns at compile time, leaving per-round
//! work as: borrow source → (only if the atom needs normalisation)
//! select/project → join on precomputed pairs → project to precomputed
//! positions. One kernel serves the full-rule item and every
//! delta-position item of its rule, so the driver mirrors
//! [`eval_seminaive_with`](crate::eval::eval_seminaive_with)'s round
//! structure exactly — same rounds, same absorption order, same
//! deadline checks — and the compiled-vs-interpreted fuzz oracle holds
//! the two equal on every generated program.

use bvq_relation::{parallel, Database, Elem, EvalConfig, Relation, StatsRecorder};

use crate::ast::{AtomTerm, DatalogError, Program};
use crate::eval::EvalOutput;

/// Where a body atom's tuples come from at run time.
#[derive(Clone, Copy, Debug)]
enum Source {
    /// A database relation, resolved by schema id.
    Edb(bvq_relation::RelId),
    /// An IDB relation, by index into the compiled IDB list.
    Idb(usize),
}

/// The precomputed evaluation plan for one body atom.
#[derive(Clone, Debug)]
struct AtomPlan {
    source: Source,
    /// No constants, no repeated variables, identity projection: the
    /// source relation can be joined against directly, borrow-only.
    identity: bool,
    /// Constant selections `position = c`.
    const_sel: Vec<(usize, Elem)>,
    /// Repeated-variable selections `position j = position i`.
    eq_sel: Vec<(usize, usize)>,
    /// First-occurrence projection positions.
    proj: Vec<usize>,
    /// Join pairs against the running join state (left position, atom
    /// column position).
    pairs: Vec<(usize, usize)>,
    /// Projection positions merging the joined columns back into the
    /// running state.
    merge: Vec<usize>,
}

/// The compiled form of one rule.
#[derive(Clone, Debug)]
struct RuleKernel {
    /// Index of the head predicate in the IDB list.
    head: usize,
    atoms: Vec<AtomPlan>,
    /// Projection from the final join state to the head variables.
    head_positions: Vec<usize>,
    /// Body positions holding IDB predicates, with their IDB indices —
    /// the rule's semi-naive delta items.
    idb_positions: Vec<(usize, usize)>,
}

/// A program compiled to rule kernels, ready to run many times.
#[derive(Clone, Debug)]
pub struct CompiledRules {
    kernels: Vec<RuleKernel>,
    /// IDB predicates `(name, arity)`, index-aligned with kernels' IDB
    /// references.
    idb: Vec<(String, usize)>,
}

/// Compiles a validated program against a database schema.
///
/// Performs the same validation as the interpreting evaluators
/// (range restriction via [`Program::validate`], body predicates known,
/// EDB arities match) and resolves every name once.
pub fn compile_program(program: &Program, db: &Database) -> Result<CompiledRules, DatalogError> {
    program.validate()?;
    let idb: Vec<(String, usize)> = program.idb_predicates();
    let mut kernels = Vec::with_capacity(program.rules.len());
    for rule in &program.rules {
        let head = idb
            .iter()
            .position(|(p, _)| *p == rule.head.pred)
            .expect("head predicate is IDB by construction");
        let mut atoms = Vec::with_capacity(rule.body.len());
        let mut idb_positions = Vec::new();
        // The running join-state columns, simulated symbolically.
        let mut cols: Vec<u32> = Vec::new();
        for (pos, atom) in rule.body.iter().enumerate() {
            let source = match idb.iter().position(|(p, _)| *p == atom.pred) {
                Some(i) => {
                    idb_positions.push((pos, i));
                    Source::Idb(i)
                }
                None => {
                    let id = db
                        .schema()
                        .resolve(&atom.pred)
                        .ok_or_else(|| DatalogError::UnknownPredicate(atom.pred.clone()))?;
                    let arity = db.schema().arity(id);
                    if arity != atom.args.len() {
                        return Err(DatalogError::ArityMismatch {
                            pred: atom.pred.clone(),
                            expected: arity,
                            found: atom.args.len(),
                        });
                    }
                    Source::Edb(id)
                }
            };
            // Normalisation plan: mirror `normalise_atom`.
            let mut const_sel = Vec::new();
            let mut eq_sel = Vec::new();
            let mut first: Vec<(u32, usize)> = Vec::new();
            for (i, t) in atom.args.iter().enumerate() {
                match t {
                    AtomTerm::Const(c) => const_sel.push((i, *c as Elem)),
                    AtomTerm::Var(v) => match first.iter().find(|(w, _)| w == v) {
                        Some(&(_, j)) => eq_sel.push((j, i)),
                        None => first.push((*v, i)),
                    },
                }
            }
            let acols: Vec<u32> = first.iter().map(|(v, _)| *v).collect();
            let proj: Vec<usize> = first.iter().map(|(_, p)| *p).collect();
            let identity = const_sel.is_empty()
                && eq_sel.is_empty()
                && proj.iter().copied().eq(0..atom.args.len());
            // Join pairs and column merge, against the simulated state.
            let mut pairs = Vec::new();
            for (i, c) in cols.iter().enumerate() {
                if let Some(j) = acols.iter().position(|d| d == c) {
                    pairs.push((i, j));
                }
            }
            let mut new_cols = cols.clone();
            for c in &acols {
                if !new_cols.contains(c) {
                    new_cols.push(*c);
                }
            }
            let merge: Vec<usize> = new_cols
                .iter()
                .map(|c| {
                    cols.iter().position(|d| d == c).unwrap_or_else(|| {
                        cols.len() + acols.iter().position(|d| d == c).expect("col")
                    })
                })
                .collect();
            cols = new_cols;
            atoms.push(AtomPlan {
                source,
                identity,
                const_sel,
                eq_sel,
                proj,
                pairs,
                merge,
            });
        }
        let head_positions: Vec<usize> = rule
            .head
            .vars
            .iter()
            .map(|v| cols.iter().position(|c| c == v).expect("range-restricted"))
            .collect();
        kernels.push(RuleKernel {
            head,
            atoms,
            head_positions,
            idb_positions,
        });
    }
    Ok(CompiledRules { kernels, idb })
}

impl RuleKernel {
    /// Runs the kernel; `delta` pins one body position to a delta
    /// relation instead of the full predicate.
    fn eval(
        &self,
        idb: &[(String, Relation)],
        db: &Database,
        delta: Option<(usize, &Relation)>,
        cfg: &EvalConfig,
        rec: &mut StatsRecorder,
    ) -> Relation {
        let mut rel = Relation::boolean(true);
        for (pos, plan) in self.atoms.iter().enumerate() {
            let source: &Relation = match delta {
                Some((dpos, d)) if dpos == pos => d,
                _ => match plan.source {
                    Source::Edb(id) => db.relation(id),
                    Source::Idb(i) => &idb[i].1,
                },
            };
            let normed: Relation;
            let arel: &Relation = if plan.identity {
                source
            } else {
                let mut f = source.clone();
                for &(i, c) in &plan.const_sel {
                    f = f.select_const(i, c);
                }
                for &(j, i) in &plan.eq_sel {
                    f = f.select_eq(j, i);
                }
                normed = f.project(&plan.proj);
                &normed
            };
            let joined = parallel::join_on(&rel, arel, &plan.pairs, cfg);
            rel = parallel::project(&joined, &plan.merge, cfg);
            rec.intermediate(rel.arity(), rel.len());
        }
        parallel::project(&rel, &self.head_positions, cfg)
    }
}

/// One unit of a round: a kernel, optionally with one body position
/// bound to the delta of an IDB predicate.
type Item = (usize, Option<(usize, usize)>);

impl CompiledRules {
    /// Evaluates the compiled program semi-naively. Round structure,
    /// absorption order and deadline behaviour mirror the interpreting
    /// [`eval_seminaive_with`](crate::eval::eval_seminaive_with); span
    /// tracing is not supported here (traced requests take the
    /// interpreted path).
    pub fn eval(&self, db: &Database, cfg: &EvalConfig) -> Result<EvalOutput, DatalogError> {
        let mut rec = StatsRecorder::new();
        let mut idb: Vec<(String, Relation)> = self
            .idb
            .iter()
            .map(|(p, a)| (p.clone(), Relation::new(*a)))
            .collect();
        let mut deltas: Vec<Relation> = self.idb.iter().map(|(_, a)| Relation::new(*a)).collect();
        // Round 0: all kernels in full.
        check_deadline(cfg)?;
        rec.iteration();
        {
            let items: Vec<Item> = (0..self.kernels.len()).map(|k| (k, None)).collect();
            let derived = self.eval_items(&idb, db, &deltas, &items, cfg, &mut rec);
            for ((k, _), d) in items.iter().zip(derived) {
                let head = self.kernels[*k].head;
                let fresh = d.difference(&idb[head].1);
                deltas[head] = deltas[head].union(&fresh);
            }
        }
        for (i, d) in deltas.iter().enumerate() {
            idb[i].1 = idb[i].1.union(d);
        }
        // Subsequent rounds: one item per (kernel × IDB body position)
        // whose delta is non-empty.
        loop {
            if deltas.iter().all(|d| d.is_empty()) {
                break;
            }
            check_deadline(cfg)?;
            rec.iteration();
            let mut items: Vec<Item> = Vec::new();
            for (k, kernel) in self.kernels.iter().enumerate() {
                for &(pos, i) in &kernel.idb_positions {
                    if !deltas[i].is_empty() {
                        items.push((k, Some((pos, i))));
                    }
                }
            }
            let derived = self.eval_items(&idb, db, &deltas, &items, cfg, &mut rec);
            let mut new_deltas: Vec<Relation> =
                self.idb.iter().map(|(_, a)| Relation::new(*a)).collect();
            for ((k, _), d) in items.iter().zip(derived) {
                let head = self.kernels[*k].head;
                let fresh = d.difference(&idb[head].1);
                new_deltas[head] = new_deltas[head].union(&fresh);
            }
            for (i, d) in new_deltas.iter().enumerate() {
                idb[i].1 = idb[i].1.union(d);
            }
            deltas = new_deltas;
        }
        idb.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(EvalOutput {
            idb,
            stats: rec.stats(),
            trace: None,
        })
    }

    /// Evaluates a round's items, in parallel when configured — results
    /// in item order, worker-local statistics merged in chunk order.
    fn eval_items(
        &self,
        idb: &[(String, Relation)],
        db: &Database,
        deltas: &[Relation],
        items: &[Item],
        cfg: &EvalConfig,
        rec: &mut StatsRecorder,
    ) -> Vec<Relation> {
        let run = |&(k, delta): &Item, rec: &mut StatsRecorder| -> Relation {
            let kernel = &self.kernels[k];
            let pinned = delta.map(|(pos, i)| (pos, &deltas[i]));
            kernel.eval(idb, db, pinned, cfg, rec)
        };
        if cfg.is_sequential() || items.len() <= 1 {
            return items.iter().map(|item| run(item, rec)).collect();
        }
        let chunks = parallel::map_chunks(cfg.threads(), items.len(), |range| {
            let mut local = StatsRecorder::new();
            let out: Vec<Relation> = items[range]
                .iter()
                .map(|item| run(item, &mut local))
                .collect();
            (out, local.stats())
        });
        let mut derived = Vec::with_capacity(items.len());
        for (out, stats) in chunks {
            derived.extend(out);
            rec.absorb(&stats);
        }
        derived
    }
}

fn check_deadline(cfg: &EvalConfig) -> Result<(), DatalogError> {
    if cfg.deadline_exceeded() {
        Err(DatalogError::DeadlineExceeded)
    } else {
        Ok(())
    }
}

/// Compiles and evaluates in one call (thread count from
/// [`EvalConfig::default`]).
pub fn eval_compiled(program: &Program, db: &Database) -> Result<EvalOutput, DatalogError> {
    eval_compiled_with(program, db, &EvalConfig::default())
}

/// [`eval_compiled`] with an explicit configuration.
pub fn eval_compiled_with(
    program: &Program,
    db: &Database,
    cfg: &EvalConfig,
) -> Result<EvalOutput, DatalogError> {
    compile_program(program, db)?.eval(db, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AtomTerm::{Const, Var};
    use crate::eval::{eval_naive, eval_seminaive};
    use bvq_relation::Tuple;

    fn tc_program() -> Program {
        Program::new()
            .rule("T", &[0, 1], &[("E", &[Var(0), Var(1)])])
            .rule(
                "T",
                &[0, 1],
                &[("T", &[Var(0), Var(2)]), ("E", &[Var(2), Var(1)])],
            )
    }

    fn chain_db(n: u32) -> Database {
        Database::builder(n as usize)
            .relation("E", 2, (0..n - 1).map(|i| Tuple::from_slice(&[i, i + 1])))
            .build()
    }

    #[test]
    fn compiled_agrees_with_interpreters() {
        let db = chain_db(9);
        let a = eval_seminaive(&tc_program(), &db).unwrap();
        let b = eval_compiled(&tc_program(), &db).unwrap();
        assert_eq!(a.get("T").unwrap().sorted(), b.get("T").unwrap().sorted());
        let c = eval_naive(&tc_program(), &db).unwrap();
        assert_eq!(c.get("T").unwrap().sorted(), b.get("T").unwrap().sorted());
        // Same round structure as the semi-naive interpreter.
        assert_eq!(a.stats.fixpoint_iterations, b.stats.fixpoint_iterations);
    }

    #[test]
    fn compiled_handles_constants_and_repeats() {
        // Reach(x) :- E(0, x);  Reach(x) :- Reach(y), E(y, x);
        // Loop(x) :- E(x, x).
        let p = Program::new()
            .rule("Reach", &[0], &[("E", &[Const(0), Var(0)])])
            .rule(
                "Reach",
                &[0],
                &[("Reach", &[Var(1)]), ("E", &[Var(1), Var(0)])],
            )
            .rule("Loop", &[0], &[("E", &[Var(0), Var(0)])]);
        let db = Database::builder(5)
            .relation(
                "E",
                2,
                [[0, 1], [1, 2], [3, 3]]
                    .iter()
                    .map(|t| Tuple::from_slice(t)),
            )
            .build();
        let a = eval_seminaive(&p, &db).unwrap();
        let b = eval_compiled(&p, &db).unwrap();
        for pred in ["Reach", "Loop"] {
            assert_eq!(
                a.get(pred).unwrap().sorted(),
                b.get(pred).unwrap().sorted(),
                "{pred}"
            );
        }
    }

    #[test]
    fn compiled_thread_count_independent() {
        let db = chain_db(12);
        let one = eval_compiled_with(&tc_program(), &db, &EvalConfig::with_threads(1)).unwrap();
        let four = eval_compiled_with(&tc_program(), &db, &EvalConfig::with_threads(4)).unwrap();
        assert_eq!(
            one.get("T").unwrap().sorted(),
            four.get("T").unwrap().sorted()
        );
        assert_eq!(one.stats, four.stats);
    }

    #[test]
    fn compiled_deadline_aborts() {
        let db = chain_db(6);
        let cfg = EvalConfig::sequential().with_deadline(std::time::Instant::now());
        assert!(matches!(
            eval_compiled_with(&tc_program(), &db, &cfg),
            Err(DatalogError::DeadlineExceeded)
        ));
    }

    #[test]
    fn compiled_rejects_unknown_predicates() {
        let p = Program::new().rule("Q", &[0], &[("Nope", &[Var(0)])]);
        let db = chain_db(3);
        assert!(matches!(
            eval_compiled(&p, &db),
            Err(DatalogError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn compile_once_run_many() {
        let p = tc_program();
        let db = chain_db(8);
        let compiled = compile_program(&p, &db).unwrap();
        let cfg = EvalConfig::sequential();
        let a = compiled.eval(&db, &cfg).unwrap();
        let b = compiled.eval(&db, &cfg).unwrap();
        assert_eq!(a.get("T").unwrap().sorted(), b.get("T").unwrap().sorted());
    }
}
