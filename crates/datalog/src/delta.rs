//! The reusable rule×delta evaluation engine.
//!
//! Semi-naive evaluation ([`crate::eval::eval_seminaive_with`]) works in
//! (rule × delta-position) items: a rule body joined with one position
//! bound to a *delta* relation instead of the full predicate. Incremental
//! view maintenance (the `bvq-ivm` crate) needs exactly the same machinery,
//! generalized two ways: the delta may sit on an **EDB** position (a
//! mutation, not just last round's IDB growth), and *every* position may be
//! overridden independently (counting-based maintenance telescopes
//! new/Δ/old states across the body). This module is that generalization,
//! extracted so both the evaluator and the maintenance engine share one
//! join pipeline — same running-join order, same statistics.

use std::borrow::Cow;

use bvq_relation::{parallel, Elem, EvalConfig, Relation, StatsRecorder};

use crate::ast::{AtomTerm, BodyAtom, DatalogError, Rule};

/// Resolves predicate names to relations during rule evaluation.
///
/// Implementations layer IDB state over a database's EDB relations; the
/// maintenance engine swaps in historical (pre-mutation) views without the
/// join code knowing.
pub trait RelSource {
    /// The current relation for `pred`, if any.
    fn rel(&self, pred: &str) -> Option<&Relation>;
}

/// The full variable-binding relation of one rule body: `cols` names the
/// rule's distinct variables in running-join order, and every tuple of
/// `rel` is one satisfying valuation — i.e. exactly one derivation of its
/// head projection, which is what derivation counting needs.
pub struct Bindings {
    /// Distinct body variables, in the order of `rel`'s columns.
    pub cols: Vec<u32>,
    /// One tuple per satisfying valuation of `cols`.
    pub rel: Relation,
}

/// Evaluates one rule body as a conjunctive query over `src`, with
/// per-position overrides: body position `i` reads `sources[i]` when set
/// (`sources` may be shorter than the body; missing entries mean "no
/// override"). Returns the full binding relation; project with
/// [`project_head`] for the derived head tuples.
///
/// # Errors
/// Fails when a body predicate has neither an override nor a `src` entry.
pub fn rule_bindings(
    rule: &Rule,
    sources: &[Option<&Relation>],
    src: &dyn RelSource,
    cfg: &EvalConfig,
    rec: &mut StatsRecorder,
) -> Result<Bindings, DatalogError> {
    // Running join state: columns = sorted rule variables bound so far.
    let mut cols: Vec<u32> = Vec::new();
    let mut rel = Relation::boolean(true); // unit: the empty join
    for (pos, atom) in rule.body.iter().enumerate() {
        let source: &Relation = match sources.get(pos) {
            Some(Some(over)) => over,
            _ => src
                .rel(&atom.pred)
                .ok_or_else(|| DatalogError::UnknownPredicate(atom.pred.clone()))?,
        };
        let (acols, arel) = normalise_atom(source, atom);
        // Natural join on shared variables.
        let mut pairs = Vec::new();
        for (i, c) in cols.iter().enumerate() {
            if let Some(j) = acols.iter().position(|d| d == c) {
                pairs.push((i, j));
            }
        }
        let joined = parallel::join_on(&rel, arel.as_ref(), &pairs, cfg);
        // Merge columns.
        let mut new_cols = cols.clone();
        for c in &acols {
            if !new_cols.contains(c) {
                new_cols.push(*c);
            }
        }
        let positions: Vec<usize> = new_cols
            .iter()
            .map(|c| {
                cols.iter()
                    .position(|d| d == c)
                    .unwrap_or_else(|| cols.len() + acols.iter().position(|d| d == c).expect("col"))
            })
            .collect();
        rel = parallel::project(&joined, &positions, cfg);
        cols = new_cols;
        rec.intermediate(rel.arity(), rel.len());
    }
    Ok(Bindings { cols, rel })
}

/// Projects a binding relation to the rule's head variables.
///
/// # Panics
/// Panics when a head variable is missing from `cols` — impossible for
/// range-restricted rules (enforced by [`crate::Program::validate`]).
pub fn project_head(rule: &Rule, bindings: &Bindings, cfg: &EvalConfig) -> Relation {
    let positions: Vec<usize> = rule
        .head
        .vars
        .iter()
        .map(|v| {
            bindings
                .cols
                .iter()
                .position(|c| c == v)
                .expect("range-restricted")
        })
        .collect();
    parallel::project(&bindings.rel, &positions, cfg)
}

/// Normalises one atom: applies constant selections and repeated-variable
/// equalities, returning (distinct variable columns, relation). Clean
/// atoms — no constants, no repeated variables — borrow the input
/// untouched, so a point-delta join does not pay a copy of the full
/// relation on every non-delta position.
pub fn normalise_atom<'a>(rel: &'a Relation, atom: &BodyAtom) -> (Vec<u32>, Cow<'a, Relation>) {
    let mut filtered = Cow::Borrowed(rel);
    let mut first: Vec<(u32, usize)> = Vec::new();
    for (i, t) in atom.args.iter().enumerate() {
        match t {
            AtomTerm::Const(c) => filtered = Cow::Owned(filtered.select_const(i, *c as Elem)),
            AtomTerm::Var(v) => match first.iter().find(|(w, _)| w == v) {
                Some(&(_, j)) => filtered = Cow::Owned(filtered.select_eq(j, i)),
                None => first.push((*v, i)),
            },
        }
    }
    let cols: Vec<u32> = first.iter().map(|(v, _)| *v).collect();
    let positions: Vec<usize> = first.iter().map(|(_, p)| *p).collect();
    let identity =
        positions.len() == filtered.arity() && positions.iter().enumerate().all(|(i, &p)| i == p);
    if identity {
        (cols, filtered)
    } else {
        let projected = filtered.project(&positions);
        (cols, Cow::Owned(projected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AtomTerm::Var;
    use crate::ast::Program;
    use bvq_relation::Database;

    struct DbSource<'a>(&'a Database);
    impl RelSource for DbSource<'_> {
        fn rel(&self, pred: &str) -> Option<&Relation> {
            self.0.relation_by_name(pred)
        }
    }

    fn cfg() -> EvalConfig {
        EvalConfig::sequential()
    }

    #[test]
    fn bindings_count_derivations() {
        // Q(x) :- E(x,y), E(y,z): bindings enumerate (x,y,z) valuations,
        // so a head tuple with two distinct mid-points has two bindings.
        let db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [0, 2], [1, 3], [2, 3]])
            .build();
        let p = Program::new().rule(
            "Q",
            &[0],
            &[("E", &[Var(0), Var(1)]), ("E", &[Var(1), Var(2)])],
        );
        let rule = &p.rules[0];
        let mut rec = StatsRecorder::new();
        let b = rule_bindings(rule, &[], &DbSource(&db), &cfg(), &mut rec).unwrap();
        assert_eq!(b.cols.len(), 3);
        // Valuations: (0,1,3) and (0,2,3) — two derivations of Q(0).
        assert_eq!(b.rel.len(), 2);
        let heads = project_head(rule, &b, &cfg());
        assert_eq!(heads.len(), 1);
        assert!(heads.contains(&[0]));
    }

    #[test]
    fn per_position_overrides() {
        let db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
            .build();
        let p = Program::new().rule(
            "Q",
            &[0, 2],
            &[("E", &[Var(0), Var(1)]), ("E", &[Var(1), Var(2)])],
        );
        let rule = &p.rules[0];
        let delta = Relation::from_tuples(2, [[1u32, 2]]);
        let mut rec = StatsRecorder::new();
        // Override position 0 only: Q pairs starting from the delta edge.
        let b = rule_bindings(rule, &[Some(&delta)], &DbSource(&db), &cfg(), &mut rec).unwrap();
        let heads = project_head(rule, &b, &cfg());
        assert_eq!(
            heads.sorted(),
            Relation::from_tuples(2, [[1u32, 3]]).sorted()
        );
        // Unknown predicate without override or source errors.
        let bad = Program::new().rule("Q", &[0], &[("Nope", &[Var(0)])]);
        assert!(matches!(
            rule_bindings(&bad.rules[0], &[], &DbSource(&db), &cfg(), &mut rec),
            Err(DatalogError::UnknownPredicate(_))
        ));
    }
}
