//! Datalog programs: positive Horn rules over EDB and IDB predicates.

use std::fmt;

use bvq_relation::{Arity, Elem};

/// A term in a Datalog atom: a rule variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AtomTerm {
    /// A rule variable, identified by index (scoped to one rule).
    Var(u32),
    /// A constant domain element.
    Const(Elem),
}

impl fmt::Display for AtomTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomTerm::Var(v) => write!(f, "V{v}"),
            AtomTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A body atom `pred(t₁,…,t_m)`; `pred` names either an EDB relation of
/// the database or an IDB predicate of the program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BodyAtom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<AtomTerm>,
}

/// A rule head `idb(v₁,…,v_m)` — arguments must be distinct variables
/// (checked by [`Program::validate`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Head {
    /// IDB predicate name.
    pub pred: String,
    /// Head variables.
    pub vars: Vec<u32>,
}

/// A positive Horn rule `head :- body₁, …, body_m`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: Head,
    /// The body atoms (conjunction; empty body = unconditional fact rule).
    pub body: Vec<BodyAtom>,
}

impl Rule {
    /// All variables of the rule, sorted.
    pub fn variables(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self.head.vars.clone();
        for atom in &self.body {
            for t in &atom.args {
                if let AtomTerm::Var(v) = t {
                    vs.push(*v);
                }
            }
        }
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Whether the rule is *range-restricted*: every head variable occurs
    /// in the body.
    pub fn is_range_restricted(&self) -> bool {
        self.head.vars.iter().all(|v| {
            self.body.iter().any(|a| {
                a.args
                    .iter()
                    .any(|t| matches!(t, AtomTerm::Var(w) if w == v))
            })
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head.pred)?;
        for (i, v) in self.head.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "V{v}")?;
        }
        write!(f, ")")?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}(", a.pred)?;
                for (j, t) in a.args.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")?;
            }
        }
        write!(f, ".")
    }
}

/// Errors in Datalog programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatalogError {
    /// A head argument is repeated or not a variable.
    InvalidHead(String),
    /// A head variable does not occur in the body.
    NotRangeRestricted(String),
    /// A predicate is used with inconsistent arities.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// One observed arity.
        expected: Arity,
        /// A conflicting observed arity.
        found: Arity,
    },
    /// A body predicate is neither an IDB of the program nor an EDB of the
    /// database.
    UnknownPredicate(String),
    /// The program text could not be parsed (see [`crate::parser`]).
    Parse {
        /// Byte offset into the program text where parsing failed.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// The evaluation deadline passed between rounds (see
    /// [`bvq_relation::EvalConfig::with_deadline`]); the least model was
    /// not fully computed and no partial state escapes.
    DeadlineExceeded,
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::InvalidHead(p) => {
                write!(
                    f,
                    "rule head for `{p}` must have distinct variable arguments"
                )
            }
            DatalogError::NotRangeRestricted(p) => {
                write!(f, "rule for `{p}` is not range-restricted")
            }
            DatalogError::ArityMismatch {
                pred,
                expected,
                found,
            } => {
                write!(
                    f,
                    "predicate `{pred}` used with arities {expected} and {found}"
                )
            }
            DatalogError::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
            DatalogError::Parse { position, message } => {
                write!(f, "datalog parse error at byte {position}: {message}")
            }
            DatalogError::DeadlineExceeded => {
                write!(f, "evaluation deadline exceeded between rounds")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

/// A Datalog program: a list of rules. IDB predicates are those appearing
/// in some head; every other predicate must resolve to a database (EDB)
/// relation at evaluation time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn rule(
        mut self,
        head_pred: &str,
        head_vars: &[u32],
        body: &[(&str, &[AtomTerm])],
    ) -> Self {
        self.rules.push(Rule {
            head: Head {
                pred: head_pred.to_string(),
                vars: head_vars.to_vec(),
            },
            body: body
                .iter()
                .map(|(p, args)| BodyAtom {
                    pred: p.to_string(),
                    args: args.to_vec(),
                })
                .collect(),
        });
        self
    }

    /// The IDB predicate names with their arities, sorted by name.
    pub fn idb_predicates(&self) -> Vec<(String, Arity)> {
        let mut out: Vec<(String, Arity)> = Vec::new();
        for r in &self.rules {
            let entry = (r.head.pred.clone(), r.head.vars.len());
            if !out.contains(&entry) {
                out.push(entry);
            }
        }
        out.sort();
        out
    }

    /// The EDB predicate names with their arities, sorted by name: body
    /// predicates that never appear in a head, i.e. those resolved
    /// against the database at evaluation time.
    pub fn edb_predicates(&self) -> Vec<(String, Arity)> {
        let idb = self.idb_predicates();
        let mut out: Vec<(String, Arity)> = Vec::new();
        for r in &self.rules {
            for a in &r.body {
                let entry = (a.pred.clone(), a.args.len());
                if idb.iter().any(|(p, _)| *p == a.pred) || out.contains(&entry) {
                    continue;
                }
                out.push(entry);
            }
        }
        out.sort();
        out
    }

    /// Whether any IDB predicate (transitively) depends on itself, i.e.
    /// the predicate dependency graph has a cycle. Non-recursive programs
    /// admit exact counting-based incremental maintenance; recursive ones
    /// need DRed-style overdelete/rederive.
    pub fn is_recursive(&self) -> bool {
        let idb = self.idb_predicates();
        let n = idb.len();
        let index = |p: &str| idb.iter().position(|(q, _)| q == p);
        // edges[i] holds j when IDB i's rules mention IDB j in a body.
        let mut edges = vec![Vec::new(); n];
        for r in &self.rules {
            let Some(i) = index(&r.head.pred) else {
                continue;
            };
            for a in &r.body {
                if let Some(j) = index(&a.pred) {
                    if !edges[i].contains(&j) {
                        edges[i].push(j);
                    }
                }
            }
        }
        // DFS cycle detection: 0 = unvisited, 1 = on stack, 2 = done.
        let mut state = vec![0u8; n];
        fn dfs(v: usize, edges: &[Vec<usize>], state: &mut [u8]) -> bool {
            state[v] = 1;
            for &w in &edges[v] {
                if state[w] == 1 || (state[w] == 0 && dfs(w, edges, state)) {
                    return true;
                }
            }
            state[v] = 2;
            false
        }
        (0..n).any(|v| state[v] == 0 && dfs(v, &edges, &mut state))
    }

    /// Structural validation: distinct-variable heads, range restriction,
    /// consistent arities across all uses.
    pub fn validate(&self) -> Result<(), DatalogError> {
        let mut arities: Vec<(String, Arity)> = Vec::new();
        let mut check_arity = |pred: &str, arity: Arity| -> Result<(), DatalogError> {
            match arities.iter().find(|(p, _)| p == pred) {
                Some((_, a)) if *a != arity => Err(DatalogError::ArityMismatch {
                    pred: pred.to_string(),
                    expected: *a,
                    found: arity,
                }),
                Some(_) => Ok(()),
                None => {
                    arities.push((pred.to_string(), arity));
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            let mut seen = r.head.vars.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != r.head.vars.len() {
                return Err(DatalogError::InvalidHead(r.head.pred.clone()));
            }
            if !r.is_range_restricted() {
                return Err(DatalogError::NotRangeRestricted(r.head.pred.clone()));
            }
            check_arity(&r.head.pred, r.head.vars.len())?;
            for a in &r.body {
                check_arity(&a.pred, a.args.len())?;
            }
        }
        Ok(())
    }

    /// Renders the program in the concrete syntax [`crate::parse_program`]
    /// accepts, one rule per line with variables spelled `v0, v1, …`
    /// (lowercase, so they lex as variables — the `Display` impls spell
    /// variables `V0`, which re-parses as a *predicate*). This is the
    /// form to use when a program crosses a text boundary: the server's
    /// `datalog` op, repro files, corpus dumps.
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for r in &self.rules {
            let _ = write!(out, "{}(", r.head.pred);
            for (i, v) in r.head.vars.iter().enumerate() {
                let sep = if i > 0 { "," } else { "" };
                let _ = write!(out, "{sep}v{v}");
            }
            let _ = write!(out, ")");
            for (i, a) in r.body.iter().enumerate() {
                let _ = write!(out, "{} {}(", if i == 0 { " :-" } else { "," }, a.pred);
                for (j, t) in a.args.iter().enumerate() {
                    let sep = if j > 0 { "," } else { "" };
                    match t {
                        AtomTerm::Var(v) => {
                            let _ = write!(out, "{sep}v{v}");
                        }
                        AtomTerm::Const(c) => {
                            let _ = write!(out, "{sep}{c}");
                        }
                    }
                }
                let _ = write!(out, ")");
            }
            out.push_str(".\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> AtomTerm {
        AtomTerm::Var(i)
    }

    #[test]
    fn builder_and_display() {
        let p = Program::new()
            .rule("T", &[0, 1], &[("E", &[v(0), v(1)])])
            .rule("T", &[0, 1], &[("T", &[v(0), v(2)]), ("E", &[v(2), v(1)])]);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.idb_predicates(), vec![("T".to_string(), 2)]);
        assert_eq!(p.rules[1].to_string(), "T(V0,V1) :- T(V0,V2), E(V2,V1).");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_duplicate_head_vars() {
        let p = Program::new().rule("Q", &[0, 0], &[("E", &[v(0), v(0)])]);
        assert!(matches!(p.validate(), Err(DatalogError::InvalidHead(_))));
    }

    #[test]
    fn validation_catches_unrestricted() {
        let p = Program::new().rule("Q", &[0], &[("E", &[v(1), v(1)])]);
        assert!(matches!(
            p.validate(),
            Err(DatalogError::NotRangeRestricted(_))
        ));
    }

    #[test]
    fn validation_catches_arity_conflicts() {
        let p = Program::new()
            .rule("Q", &[0], &[("E", &[v(0), v(0)])])
            .rule("R", &[0], &[("E", &[v(0)])]);
        assert!(matches!(
            p.validate(),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn rule_variables_sorted() {
        let p = Program::new().rule("T", &[3], &[("E", &[v(3), v(1)]), ("E", &[v(1), v(2)])]);
        assert_eq!(p.rules[0].variables(), vec![1, 2, 3]);
    }

    #[test]
    fn edb_predicates_excludes_heads() {
        let p = Program::new()
            .rule("T", &[0, 1], &[("E", &[v(0), v(1)])])
            .rule("T", &[0, 1], &[("T", &[v(0), v(2)]), ("E", &[v(2), v(1)])])
            .rule("Q", &[0], &[("T", &[v(0), v(0)]), ("P", &[v(0)])]);
        assert_eq!(
            p.edb_predicates(),
            vec![("E".to_string(), 2), ("P".to_string(), 1)]
        );
    }

    #[test]
    fn recursion_detection() {
        let direct = Program::new()
            .rule("T", &[0, 1], &[("E", &[v(0), v(1)])])
            .rule("T", &[0, 1], &[("T", &[v(0), v(2)]), ("E", &[v(2), v(1)])]);
        assert!(direct.is_recursive());
        let mutual =
            Program::new()
                .rule("A", &[0], &[("B", &[v(0)])])
                .rule("B", &[0], &[("A", &[v(0)])]);
        assert!(mutual.is_recursive());
        let layered = Program::new()
            .rule("T", &[0, 1], &[("E", &[v(0), v(1)])])
            .rule("Q", &[0], &[("T", &[v(0), v(0)])]);
        assert!(!layered.is_recursive());
        assert!(!Program::new().is_recursive());
    }
}
