//! A text syntax for Datalog programs.
//!
//! One rule per `.`-terminated statement; `%` and `#` start comments:
//!
//! ```text
//! T(x, y) :- E(x, y).
//! T(x, y) :- T(x, z), E(z, y).
//! Reach(x) :- E(0, x).
//! ```
//!
//! Predicate names start with an uppercase letter (matching the database
//! text format's relation names); arguments are either variables
//! (identifiers starting with a lowercase letter or `_`) or numeric
//! constants. Variables are scoped to their rule. Facts (`P(0,1).`) are
//! rules with an empty body.
//!
//! This front-end exists for the query server's `datalog` protocol
//! command, which receives programs as text over the wire; the builder
//! API ([`Program::rule`]) remains the programmatic route.

use crate::ast::{AtomTerm, BodyAtom, DatalogError, Head, Program, Rule};

/// Parses a program text into a [`Program`].
///
/// # Errors
/// Returns [`DatalogError::Parse`] on malformed syntax, and
/// [`DatalogError::InvalidHead`] (via [`Program::validate`]-style checks
/// deferred to evaluation) is *not* raised here — structural validation
/// stays with [`Program::validate`].
pub fn parse_program(input: &str) -> Result<Program, DatalogError> {
    parse_program_spanned(input).map(|(p, _)| p)
}

/// Parses a program text, also returning each rule's byte range
/// `[start, end)` in the input (one entry per rule, in order). Parse
/// errors carry the byte offset where parsing failed.
pub fn parse_program_spanned(input: &str) -> Result<(Program, Vec<(usize, usize)>), DatalogError> {
    let mut p = Parser {
        chars: input.char_indices().peekable(),
        input,
    };
    let mut program = Program::new();
    let mut spans = Vec::new();
    loop {
        p.skip_ws();
        if p.peek().is_none() {
            break;
        }
        let start = p.pos();
        program.rules.push(p.rule()?);
        spans.push((start, p.pos()));
    }
    Ok((program, spans))
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    input: &'a str,
}

impl<'a> Parser<'a> {
    /// Current byte offset into the input.
    fn pos(&mut self) -> usize {
        match self.chars.peek() {
            Some(&(i, _)) => i,
            None => self.input.len(),
        }
    }

    fn err(&mut self, msg: &str) -> DatalogError {
        let position = self.pos();
        let message = match self.chars.peek() {
            Some(&(i, _)) => {
                let rest: String = self.input[i..].chars().take(20).collect();
                format!("{msg} at `{rest}`")
            }
            None => format!("{msg} at end of input"),
        };
        DatalogError::Parse { position, message }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        self.chars.next().map(|(_, c)| c)
    }

    /// Skips whitespace and `%`/`#` line comments.
    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') | Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, want: char) -> Result<(), DatalogError> {
        self.skip_ws();
        if self.peek() == Some(want) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{want}`")))
        }
    }

    fn ident(&mut self) -> Result<String, DatalogError> {
        self.skip_ws();
        let mut s = String::new();
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                s.push(c);
                self.bump();
            }
            _ => return Err(self.err("expected an identifier")),
        }
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Ok(s)
    }

    /// `Pred(arg, …, arg)` — returns the name and raw argument tokens.
    fn atom(&mut self) -> Result<(String, Vec<ArgToken>), DatalogError> {
        let name = self.ident()?;
        self.expect('(')?;
        let mut args = Vec::new();
        self.skip_ws();
        if self.peek() == Some(')') {
            self.bump();
            return Ok((name, args));
        }
        loop {
            args.push(self.arg()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(')') => {
                    self.bump();
                    break;
                }
                _ => return Err(self.err("expected `,` or `)`")),
            }
        }
        Ok((name, args))
    }

    fn arg(&mut self) -> Result<ArgToken, DatalogError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c.is_ascii_digit() => {
                let position = self.pos();
                let mut n = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        n.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                let v: u32 = n.parse().map_err(|_| DatalogError::Parse {
                    position,
                    message: format!("constant `{n}` out of range"),
                })?;
                Ok(ArgToken::Const(v))
            }
            Some(c) if c.is_alphabetic() || c == '_' => Ok(ArgToken::Name(self.ident()?)),
            _ => Err(self.err("expected a variable or constant")),
        }
    }

    /// `Head(v,…) [:- Atom, …, Atom] .`
    fn rule(&mut self) -> Result<Rule, DatalogError> {
        self.skip_ws();
        let head_start = self.pos();
        let (head_pred, head_args) = self.atom()?;
        // Variable names are interned per rule, in order of appearance.
        let mut names: Vec<String> = Vec::new();
        let mut intern = |tok: ArgToken| -> Result<AtomTerm, DatalogError> {
            match tok {
                ArgToken::Const(c) => Ok(AtomTerm::Const(c)),
                ArgToken::Name(n) => {
                    let idx = match names.iter().position(|m| *m == n) {
                        Some(i) => i,
                        None => {
                            names.push(n);
                            names.len() - 1
                        }
                    };
                    Ok(AtomTerm::Var(idx as u32))
                }
            }
        };
        let mut head_vars = Vec::new();
        for tok in head_args {
            match intern(tok)? {
                AtomTerm::Var(v) => head_vars.push(v),
                AtomTerm::Const(c) => {
                    return Err(DatalogError::Parse {
                        position: head_start,
                        message: format!(
                            "head argument of `{head_pred}` must be a variable, got constant {c}"
                        ),
                    })
                }
            }
        }
        let mut body = Vec::new();
        self.skip_ws();
        if self.peek() == Some(':') {
            self.bump();
            if self.peek() != Some('-') {
                return Err(self.err("expected `:-`"));
            }
            self.bump();
            loop {
                let (pred, args) = self.atom()?;
                let args = args
                    .into_iter()
                    .map(&mut intern)
                    .collect::<Result<Vec<_>, _>>()?;
                body.push(BodyAtom { pred, args });
                self.skip_ws();
                match self.peek() {
                    Some(',') => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect('.')?;
        Ok(Rule {
            head: Head {
                pred: head_pred,
                vars: head_vars,
            },
            body,
        })
    }
}

enum ArgToken {
    Name(String),
    Const(u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_seminaive;
    use bvq_relation::Database;

    #[test]
    fn parses_transitive_closure() {
        let p = parse_program(
            "% transitive closure\n\
             T(x, y) :- E(x, y).\n\
             T(x, y) :- T(x, z), E(z, y).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.validate().is_ok());
        assert_eq!(p.rules[1].to_string(), "T(V0,V1) :- T(V0,V2), E(V2,V1).");
        let db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
            .build();
        let out = eval_seminaive(&p, &db).unwrap();
        assert_eq!(out.get("T").unwrap().len(), 3 + 2 + 1);
    }

    #[test]
    fn parses_constants_and_comments() {
        let p = parse_program(
            "# reachability from node 0\n\
             Reach(x) :- E(0, x).\n\
             Reach(x) :- Reach(y), E(y, x).",
        )
        .unwrap();
        assert!(p.validate().is_ok());
        let db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2]])
            .build();
        let out = eval_seminaive(&p, &db).unwrap();
        assert_eq!(out.get("Reach").unwrap().len(), 2);
    }

    #[test]
    fn variables_scoped_per_rule() {
        // `x` in rule 1 and `x` in rule 2 are distinct variables.
        let p = parse_program("A(x) :- E(x, x).\nB(x) :- E(x, x).").unwrap();
        assert_eq!(p.rules[0].head.vars, p.rules[1].head.vars);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            parse_program("T(x y) :- E(x, y)."),
            Err(DatalogError::Parse { .. })
        ));
        assert!(matches!(
            parse_program("T(x) :- E(x)"), // missing final period
            Err(DatalogError::Parse { .. })
        ));
        assert!(matches!(
            parse_program("T(3) :- E(3, 3)."),
            Err(DatalogError::Parse { .. })
        ));
        assert!(matches!(
            parse_program("T(x) : E(x)."),
            Err(DatalogError::Parse { .. })
        ));
        assert!(parse_program("").unwrap().rules.is_empty());
    }

    #[test]
    fn parse_errors_carry_byte_positions() {
        // `T(x y)` — error at the `y`, byte 4.
        match parse_program("T(x y) :- E(x, y).") {
            Err(DatalogError::Parse { position, .. }) => assert_eq!(position, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        // Missing final period — error at end of input.
        let src = "T(x) :- E(x)";
        match parse_program(src) {
            Err(DatalogError::Parse { position, .. }) => assert_eq!(position, src.len()),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn spanned_parse_reports_rule_ranges() {
        let src = "% tc\nT(x, y) :- E(x, y).\n T(x, y) :- T(x, z), E(z, y).";
        let (p, spans) = parse_program_spanned(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(spans.len(), 2);
        assert_eq!(&src[spans[0].0..spans[0].1], "T(x, y) :- E(x, y).");
        assert_eq!(&src[spans[1].0..spans[1].1], "T(x, y) :- T(x, z), E(z, y).");
    }

    #[test]
    fn facts_have_empty_bodies_and_fail_range_restriction() {
        // A "fact" with variables is not range-restricted; validate
        // catches it downstream, not the parser.
        let p = parse_program("P(x).").unwrap();
        assert!(p.rules[0].body.is_empty());
        assert!(matches!(
            p.validate(),
            Err(DatalogError::NotRangeRestricted(_))
        ));
    }

    #[test]
    fn to_text_round_trips_through_the_parser() {
        use crate::ast::AtomTerm::{Const, Var};
        let p = crate::Program::new()
            .rule("T", &[0, 1], &[("E", &[Var(0), Var(1)])])
            .rule(
                "T",
                &[0, 1],
                &[("T", &[Var(0), Var(2)]), ("E", &[Var(2), Var(1)])],
            )
            .rule("Q", &[0], &[("E", &[Const(0), Var(0)])]);
        let text = p.to_text();
        let back = parse_program(&text).expect("to_text output must re-parse");
        // Variable indices are assigned per rule by first occurrence, so
        // the round trip is exact for builder programs numbered that way.
        assert_eq!(back, p);
        assert!(back.validate().is_ok());
    }
}
