//! # bvq-datalog
//!
//! A positive Datalog engine for the `bvq` reproduction of Vardi,
//! *On the Complexity of Bounded-Variable Queries* (PODS 1995).
//!
//! Proposition 3.2 reduces Cook's Path Systems problem — a Datalog
//! program — to `FO³` query evaluation. This crate provides the Datalog
//! side: programs of positive Horn rules over a [`Database`]'s EDB
//! relations, evaluated naively or semi-naively, plus the translation of
//! single-IDB programs into FP least-fixpoint formulas (tested for
//! agreement with `bvq-core`'s evaluator).
//!
//! [`Database`]: bvq_relation::Database

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod delta;
pub mod eval;
pub mod parser;
pub mod record;
pub mod translate;

pub use ast::{AtomTerm, BodyAtom, DatalogError, Head, Program, Rule};
pub use compile::{compile_program, eval_compiled, eval_compiled_with, CompiledRules};
pub use delta::{normalise_atom, project_head, rule_bindings, Bindings, RelSource};
pub use eval::{eval_naive, eval_naive_with, eval_seminaive, eval_seminaive_with, EvalOutput};
pub use parser::{parse_program, parse_program_spanned};
pub use record::{eval_recorded, Derivations, RecordedStep};
pub use translate::{to_fp_formula, to_fp_formula_multi};
