//! Naive and semi-naive Datalog evaluation.
//!
//! Both compute the least model of the program over the database's EDB
//! relations. The naive evaluator re-derives everything each round; the
//! semi-naive evaluator joins each rule once per IDB body atom against
//! that atom's *delta* (tuples new in the previous round), the classical
//! optimisation whose effect the `ablation_seminaive` bench measures.
//!
//! With an [`EvalConfig`] of more than one thread (`eval_naive_with` /
//! `eval_seminaive_with`), the independent (rule × delta-position) bodies
//! of each round evaluate on scoped worker threads, and the joins inside a
//! body use the partitioned relational kernels. Derived tuples are
//! absorbed in rule order after the round's barrier, and all merges are
//! set unions, so the computed least model — and the statistics — are
//! identical for every thread count.

use bvq_relation::trace::truncate_detail;
use bvq_relation::{
    parallel, Database, EvalConfig, EvalStats, Relation, Span, StatsRecorder, Tracer,
};

use crate::ast::{DatalogError, Program, Rule};
use crate::delta::{project_head, rule_bindings, RelSource};

/// The result of evaluating a program.
#[derive(Clone, Debug)]
pub struct EvalOutput {
    /// Computed IDB relations, keyed by predicate name (sorted).
    pub idb: Vec<(String, Relation)>,
    /// Rounds until fixpoint and intermediate-size statistics.
    pub stats: EvalStats,
    /// The span tree, when the config enables tracing
    /// ([`EvalConfig::with_trace`]): a `datalog` root with one `round`
    /// span per iteration, each holding one `rule` span per work item in
    /// item order — so the structure is identical for every thread count.
    pub trace: Option<Span>,
}

impl EvalOutput {
    /// Looks up a computed IDB relation.
    pub fn get(&self, pred: &str) -> Option<&Relation> {
        self.idb.iter().find(|(p, _)| p == pred).map(|(_, r)| r)
    }
}

/// Evaluates `program` naively: every round recomputes every rule against
/// the full current IDB state, until no new tuples appear. Thread count
/// from [`EvalConfig::default`].
pub fn eval_naive(program: &Program, db: &Database) -> Result<EvalOutput, DatalogError> {
    eval_naive_with(program, db, &EvalConfig::default())
}

/// [`eval_naive`] with an explicit parallel-evaluation configuration.
pub fn eval_naive_with(
    program: &Program,
    db: &Database,
    cfg: &EvalConfig,
) -> Result<EvalOutput, DatalogError> {
    program.validate()?;
    let mut state = State::new(program, db)?;
    let mut rec = StatsRecorder::new();
    let mut tracer = Tracer::new(cfg.trace());
    let traced = tracer.is_enabled();
    if traced {
        tracer.open(); // the `datalog` root
    }
    let mut round: u64 = 0;
    loop {
        check_deadline(cfg)?;
        rec.iteration();
        round += 1;
        if traced {
            tracer.open();
        }
        let items: Vec<RoundItem<'_>> = program.rules.iter().map(|r| (r, None)).collect();
        let derived = eval_round(&state, &items, cfg, &mut rec)?;
        let mut changed = false;
        let mut round_rows = 0;
        for ((rule, delta), (d, ns)) in items.iter().zip(derived) {
            if traced {
                round_rows += d.len();
                tracer.attach(rule_span(rule, *delta, &d, ns));
            }
            changed |= state.absorb(&rule.head.pred, d);
        }
        if traced {
            tracer.close(
                "round",
                format!("{} rules", items.len()),
                0,
                round_rows,
                Some(round),
            );
        }
        if !changed {
            break;
        }
    }
    close_root(&mut tracer, "naive", &state);
    Ok(state.finish(rec, tracer.finish()))
}

/// Evaluates `program` semi-naively, joining each rule against the deltas
/// of the previous round. Thread count from [`EvalConfig::default`].
pub fn eval_seminaive(program: &Program, db: &Database) -> Result<EvalOutput, DatalogError> {
    eval_seminaive_with(program, db, &EvalConfig::default())
}

/// [`eval_seminaive`] with an explicit parallel-evaluation configuration.
pub fn eval_seminaive_with(
    program: &Program,
    db: &Database,
    cfg: &EvalConfig,
) -> Result<EvalOutput, DatalogError> {
    program.validate()?;
    let mut state = State::new(program, db)?;
    let mut rec = StatsRecorder::new();
    let mut tracer = Tracer::new(cfg.trace());
    let traced = tracer.is_enabled();
    if traced {
        tracer.open(); // the `datalog` root
    }
    // Round 0: rules evaluated in full (deltas = everything derived).
    let mut deltas: Vec<(String, Relation)> = state
        .idb
        .iter()
        .map(|(p, r)| (p.clone(), Relation::new(r.arity())))
        .collect();
    check_deadline(cfg)?;
    rec.iteration();
    let mut round: u64 = 1;
    {
        if traced {
            tracer.open();
        }
        let items: Vec<RoundItem<'_>> = program.rules.iter().map(|r| (r, None)).collect();
        let derived = eval_round(&state, &items, cfg, &mut rec)?;
        let mut round_rows = 0;
        for ((rule, delta), (d, ns)) in items.iter().zip(derived) {
            if traced {
                round_rows += d.len();
                tracer.attach(rule_span(rule, *delta, &d, ns));
            }
            let fresh = state.fresh_tuples(&rule.head.pred, &d);
            let slot = deltas
                .iter_mut()
                .find(|(p, _)| *p == rule.head.pred)
                .expect("idb");
            slot.1 = slot.1.union(&fresh);
        }
        if traced {
            tracer.close(
                "round",
                format!("{} rules", items.len()),
                0,
                round_rows,
                Some(round),
            );
        }
    }
    for (p, d) in &deltas {
        state.absorb(p, d.clone());
    }
    // Subsequent rounds: once per IDB body atom, with that atom bound to
    // the delta. The (rule × delta-position) items of a round are
    // independent — they read the pre-round IDB state — so they form the
    // round's parallel work list.
    loop {
        if deltas.iter().all(|(_, d)| d.is_empty()) {
            break;
        }
        check_deadline(cfg)?;
        rec.iteration();
        round += 1;
        if traced {
            tracer.open();
        }
        let mut items: Vec<RoundItem<'_>> = Vec::new();
        for rule in &program.rules {
            for (pos, atom) in rule.body.iter().enumerate() {
                if !state.is_idb(&atom.pred) {
                    continue;
                }
                let delta = deltas
                    .iter()
                    .find(|(p, _)| *p == atom.pred)
                    .map(|(_, d)| d)
                    .expect("idb");
                if delta.is_empty() {
                    continue;
                }
                items.push((rule, Some((pos, delta))));
            }
            // Rules with no IDB body atoms contribute only in round 0.
        }
        let derived = eval_round(&state, &items, cfg, &mut rec)?;
        let mut new_deltas: Vec<(String, Relation)> = state
            .idb
            .iter()
            .map(|(p, r)| (p.clone(), Relation::new(r.arity())))
            .collect();
        let mut round_rows = 0;
        for ((rule, delta), (d, ns)) in items.iter().zip(derived) {
            if traced {
                round_rows += d.len();
                tracer.attach(rule_span(rule, *delta, &d, ns));
            }
            let fresh = state.fresh_tuples(&rule.head.pred, &d);
            let slot = new_deltas
                .iter_mut()
                .find(|(p, _)| *p == rule.head.pred)
                .expect("idb");
            slot.1 = slot.1.union(&fresh);
        }
        if traced {
            tracer.close(
                "round",
                format!("{} items", items.len()),
                0,
                round_rows,
                Some(round),
            );
        }
        for (p, d) in &new_deltas {
            state.absorb(p, d.clone());
        }
        deltas = new_deltas;
    }
    close_root(&mut tracer, "seminaive", &state);
    Ok(state.finish(rec, tracer.finish()))
}

/// One completed rule evaluation as a span: the rule text (with the
/// delta-bound body position for semi-naive items), head arity, derived
/// tuple count, and the measured wall time.
fn rule_span(
    rule: &Rule,
    delta: Option<(usize, &Relation)>,
    derived: &Relation,
    elapsed_ns: u64,
) -> Span {
    let mut detail = truncate_detail(&rule.to_string(), 64);
    if let Some((pos, _)) = delta {
        detail.push_str(&format!(" [Δ{pos}]"));
    }
    let mut s = Span::leaf("rule", detail, rule.head.vars.len(), derived.len());
    s.elapsed_ns = elapsed_ns;
    s
}

/// Closes the `datalog` root span over the final IDB state.
fn close_root(tracer: &mut Tracer, strategy: &str, state: &State<'_>) {
    if tracer.is_enabled() {
        let arity = state.idb.iter().map(|(_, r)| r.arity()).max().unwrap_or(0);
        let rows = state.idb.iter().map(|(_, r)| r.len()).sum();
        tracer.close("datalog", strategy, arity, rows, None);
    }
}

/// One independent unit of a round: a rule, optionally with one body
/// position bound to a delta relation.
type RoundItem<'a> = (&'a Rule, Option<(usize, &'a Relation)>);

/// Aborts with [`DatalogError::DeadlineExceeded`] once the config's
/// deadline has passed. Checked at round boundaries only, so evaluation
/// never exposes a half-absorbed round.
fn check_deadline(cfg: &EvalConfig) -> Result<(), DatalogError> {
    if cfg.deadline_exceeded() {
        Err(DatalogError::DeadlineExceeded)
    } else {
        Ok(())
    }
}

/// Evaluates a round's work items, on scoped worker threads when the
/// config asks for more than one. Results come back in item order;
/// worker-local statistics are merged into `rec` (`EvalStats::merge` is
/// commutative up to the final value, so the totals match the sequential
/// run). Each relation is paired with the item's wall time in
/// nanoseconds, measured only when the config enables tracing (0
/// otherwise, keeping the untraced path free of clock reads).
fn eval_round(
    state: &State<'_>,
    items: &[RoundItem<'_>],
    cfg: &EvalConfig,
    rec: &mut StatsRecorder,
) -> Result<Vec<(Relation, u64)>, DatalogError> {
    let timed = cfg.trace();
    let run_item = |(r, d): &RoundItem<'_>,
                    rec: &mut StatsRecorder|
     -> Result<(Relation, u64), DatalogError> {
        if timed {
            let start = std::time::Instant::now();
            let rel = state.eval_rule(r, *d, cfg, rec)?;
            Ok((rel, start.elapsed().as_nanos() as u64))
        } else {
            Ok((state.eval_rule(r, *d, cfg, rec)?, 0))
        }
    };
    if cfg.is_sequential() || items.len() <= 1 {
        return items.iter().map(|item| run_item(item, rec)).collect();
    }
    let chunks = parallel::map_chunks(cfg.threads(), items.len(), |range| {
        let mut local = StatsRecorder::new();
        let out: Result<Vec<(Relation, u64)>, DatalogError> = items[range]
            .iter()
            .map(|item| run_item(item, &mut local))
            .collect();
        (out, local.stats())
    });
    let mut derived = Vec::with_capacity(items.len());
    for (out, stats) in chunks {
        derived.extend(out?);
        rec.absorb(&stats);
    }
    Ok(derived)
}

struct State<'d> {
    db: &'d Database,
    idb: Vec<(String, Relation)>,
}

impl<'d> State<'d> {
    fn new(program: &Program, db: &'d Database) -> Result<Self, DatalogError> {
        let idb: Vec<(String, Relation)> = program
            .idb_predicates()
            .into_iter()
            .map(|(p, a)| (p, Relation::new(a)))
            .collect();
        // Every body predicate must be IDB or EDB.
        for rule in &program.rules {
            for atom in &rule.body {
                let is_idb = idb.iter().any(|(p, _)| *p == atom.pred);
                let edb = db.relation_by_name(&atom.pred);
                if !is_idb && edb.is_none() {
                    return Err(DatalogError::UnknownPredicate(atom.pred.clone()));
                }
                if let Some(r) = edb {
                    if !is_idb && r.arity() != atom.args.len() {
                        return Err(DatalogError::ArityMismatch {
                            pred: atom.pred.clone(),
                            expected: r.arity(),
                            found: atom.args.len(),
                        });
                    }
                }
            }
        }
        Ok(State { db, idb })
    }

    fn is_idb(&self, pred: &str) -> bool {
        self.idb.iter().any(|(p, _)| p == pred)
    }

    fn relation_of(&self, pred: &str) -> &Relation {
        if let Some((_, r)) = self.idb.iter().find(|(p, _)| p == pred) {
            r
        } else {
            self.db.relation_by_name(pred).expect("validated predicate")
        }
    }

    /// Tuples of `derived` not already present in the IDB relation.
    fn fresh_tuples(&self, pred: &str, derived: &Relation) -> Relation {
        let current = self
            .idb
            .iter()
            .find(|(p, _)| p == pred)
            .map(|(_, r)| r)
            .expect("idb");
        derived.difference(current)
    }

    /// Adds tuples; returns whether anything was new.
    fn absorb(&mut self, pred: &str, derived: Relation) -> bool {
        let slot = self.idb.iter_mut().find(|(p, _)| p == pred).expect("idb");
        let before = slot.1.len();
        slot.1 = slot.1.union(&derived);
        slot.1.len() > before
    }

    /// Evaluates one rule body as a conjunctive query; `delta_at` pins one
    /// body position to a delta relation instead of the full predicate.
    /// Returns the derived head relation. The join pipeline itself lives
    /// in [`crate::delta`], shared with the IVM maintenance engine.
    fn eval_rule(
        &self,
        rule: &Rule,
        delta_at: Option<(usize, &Relation)>,
        cfg: &EvalConfig,
        rec: &mut StatsRecorder,
    ) -> Result<Relation, DatalogError> {
        let mut sources: Vec<Option<&Relation>> = Vec::new();
        if let Some((dpos, delta)) = delta_at {
            sources.resize(dpos + 1, None);
            sources[dpos] = Some(delta);
        }
        let bindings = rule_bindings(rule, &sources, self, cfg, rec)?;
        Ok(project_head(rule, &bindings, cfg))
    }
}

impl RelSource for State<'_> {
    fn rel(&self, pred: &str) -> Option<&Relation> {
        Some(self.relation_of(pred))
    }
}

impl State<'_> {
    fn finish(self, rec: StatsRecorder, trace: Option<Span>) -> EvalOutput {
        let mut idb = self.idb;
        idb.sort_by(|a, b| a.0.cmp(&b.0));
        EvalOutput {
            idb,
            stats: rec.stats(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AtomTerm::{Const, Var};
    use bvq_relation::Tuple;

    fn tc_program() -> Program {
        Program::new()
            .rule("T", &[0, 1], &[("E", &[Var(0), Var(1)])])
            .rule(
                "T",
                &[0, 1],
                &[("T", &[Var(0), Var(2)]), ("E", &[Var(2), Var(1)])],
            )
    }

    fn chain_db(n: u32) -> Database {
        Database::builder(n as usize)
            .relation("E", 2, (0..n - 1).map(|i| Tuple::from_slice(&[i, i + 1])))
            .build()
    }

    #[test]
    fn transitive_closure_naive() {
        let db = chain_db(5);
        let out = eval_naive(&tc_program(), &db).unwrap();
        let t = out.get("T").unwrap();
        assert_eq!(t.len(), 4 + 3 + 2 + 1);
        assert!(t.contains(&[0, 4]));
        assert!(!t.contains(&[4, 0]));
    }

    #[test]
    fn seminaive_agrees_with_naive() {
        let db = chain_db(7);
        let a = eval_naive(&tc_program(), &db).unwrap();
        let b = eval_seminaive(&tc_program(), &db).unwrap();
        assert_eq!(a.get("T").unwrap().sorted(), b.get("T").unwrap().sorted());
    }

    #[test]
    fn seminaive_materialises_less() {
        let db = chain_db(16);
        let a = eval_naive(&tc_program(), &db).unwrap();
        let b = eval_seminaive(&tc_program(), &db).unwrap();
        assert!(
            b.stats.total_tuples < a.stats.total_tuples,
            "semi-naive {} ≥ naive {}",
            b.stats.total_tuples,
            a.stats.total_tuples
        );
    }

    #[test]
    fn constants_in_bodies() {
        // Reach(x) :- E(0, x);  Reach(x) :- Reach(y), E(y, x).
        let p = Program::new()
            .rule("Reach", &[0], &[("E", &[Const(0), Var(0)])])
            .rule(
                "Reach",
                &[0],
                &[("Reach", &[Var(1)]), ("E", &[Var(1), Var(0)])],
            );
        let db = chain_db(4);
        let out = eval_seminaive(&p, &db).unwrap();
        let r = out.get("Reach").unwrap();
        assert_eq!(
            r.sorted(),
            Relation::from_tuples(1, [[1u32], [2], [3]]).sorted()
        );
    }

    #[test]
    fn mutual_recursion() {
        // Even/Odd distance from node 0 along the chain.
        let p = Program::new()
            .rule("Even", &[0], &[("Z", &[Var(0)])])
            .rule(
                "Even",
                &[0],
                &[("Odd", &[Var(1)]), ("E", &[Var(1), Var(0)])],
            )
            .rule(
                "Odd",
                &[0],
                &[("Even", &[Var(1)]), ("E", &[Var(1), Var(0)])],
            );
        let db = Database::builder(5)
            .relation("E", 2, (0u32..4).map(|i| [i, i + 1]))
            .relation("Z", 1, [[0u32]])
            .build();
        for eval in [eval_naive, eval_seminaive] {
            let out = eval(&p, &db).unwrap();
            assert_eq!(
                out.get("Even").unwrap().sorted(),
                Relation::from_tuples(1, [[0u32], [2], [4]]).sorted()
            );
            assert_eq!(
                out.get("Odd").unwrap().sorted(),
                Relation::from_tuples(1, [[1u32], [3]]).sorted()
            );
        }
    }

    #[test]
    fn trace_has_round_and_rule_spans() {
        let db = chain_db(5);
        let cfg = EvalConfig::sequential().with_trace(true);
        let out = eval_seminaive_with(&tc_program(), &db, &cfg).unwrap();
        let root = out.trace.as_ref().expect("trace enabled");
        assert_eq!(root.kind, "datalog");
        assert_eq!(root.detail, "seminaive");
        assert_eq!(root.rows, out.get("T").unwrap().len());
        assert_eq!(
            root.children.len() as u64,
            out.stats.fixpoint_iterations,
            "one round span per iteration"
        );
        for (i, r) in root.children.iter().enumerate() {
            assert_eq!(r.kind, "round");
            assert_eq!(r.round, Some(i as u64 + 1));
            assert!(r.children.iter().all(|c| c.kind == "rule"));
        }
        // Round 0 evaluates both rules in full; later rounds only the
        // recursive rule's delta item, marked with its body position.
        assert_eq!(root.children[0].children.len(), 2);
        assert!(root.children[1].children[0].detail.ends_with("[Δ0]"));
        // The naive strategy labels its root accordingly, and tracing
        // never changes answers or stats.
        let plain = eval_seminaive_with(&tc_program(), &db, &EvalConfig::sequential()).unwrap();
        assert!(plain.trace.is_none());
        assert_eq!(plain.stats, out.stats);
        assert_eq!(
            plain.get("T").unwrap().sorted(),
            out.get("T").unwrap().sorted()
        );
        let naive = eval_naive_with(&tc_program(), &db, &cfg).unwrap();
        assert_eq!(naive.trace.unwrap().detail, "naive");
    }

    #[test]
    fn deadline_aborts_between_rounds() {
        let db = chain_db(6);
        let cfg = EvalConfig::sequential().with_deadline(std::time::Instant::now());
        assert!(matches!(
            eval_seminaive_with(&tc_program(), &db, &cfg),
            Err(DatalogError::DeadlineExceeded)
        ));
        assert!(matches!(
            eval_naive_with(&tc_program(), &db, &cfg),
            Err(DatalogError::DeadlineExceeded)
        ));
    }

    #[test]
    fn unknown_predicate_rejected() {
        let p = Program::new().rule("Q", &[0], &[("Nope", &[Var(0)])]);
        let db = chain_db(3);
        assert!(matches!(
            eval_naive(&p, &db),
            Err(DatalogError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn repeated_variables_in_atom() {
        // Loop(x) :- E(x, x).
        let p = Program::new().rule("Loop", &[0], &[("E", &[Var(0), Var(0)])]);
        let db = Database::builder(3)
            .relation("E", 2, [[0u32, 1], [2, 2]])
            .build();
        let out = eval_seminaive(&p, &db).unwrap();
        assert_eq!(
            out.get("Loop").unwrap().sorted(),
            Relation::from_tuples(1, [[2u32]]).sorted()
        );
    }

    #[test]
    fn empty_program() {
        let p = Program::new();
        let db = chain_db(3);
        let out = eval_naive(&p, &db).unwrap();
        assert!(out.idb.is_empty());
    }
}
