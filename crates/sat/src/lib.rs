//! # bvq-sat
//!
//! A from-scratch SAT/QBF substrate for the `bvq` reproduction of Vardi,
//! *On the Complexity of Bounded-Variable Queries* (PODS 1995).
//!
//! Three of the paper's results are NP/PSPACE bounds that this crate makes
//! executable:
//!
//! * **Corollary 3.7** (`ESO^k` ∈ NP): the `bvq-core` ESO evaluator grounds
//!   a bounded-variable query into a polynomial-size CNF and calls the
//!   [`Solver`] here;
//! * **Theorem 4.5** (NP-hardness of `ESO^k` expression complexity):
//!   `bvq-reductions` maps CNF instances into `ESO^k` queries and uses this
//!   solver as the ground truth;
//! * **Theorem 4.6** (PSPACE-hardness of `PFP^k` expression complexity):
//!   the QBF reduction is cross-checked against [`qbf::solve`].
//!
//! The main solver is a CDCL solver (two-watched-literal propagation,
//! first-UIP clause learning, VSIDS-style activities, Luby restarts); a
//! plain DPLL solver ([`dpll::solve`]) serves as the differential-testing
//! oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
pub mod dpll;
pub mod qbf;
pub mod solver;
pub mod tseitin;

pub use cnf::{Clause, Cnf, Lit, VarId};
pub use qbf::{Qbf, Quantifier};
pub use solver::{SatResult, Solver};
pub use tseitin::BoolExpr;
