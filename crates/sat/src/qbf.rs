//! Quantified Boolean formulas and a recursive solver.
//!
//! Theorem 4.6 reduces QBF to `PFP^k` expression evaluation over the fixed
//! database `B₀`. This module provides the QBF side: a prenex
//! representation (quantifier prefix over a [`BoolExpr`] matrix) and a
//! straightforward PSPACE solver (recursive expansion with constant
//! simplification), used as the reduction's ground truth.

use crate::tseitin::BoolExpr;

/// A quantifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantifier {
    /// Universal.
    Forall,
    /// Existential.
    Exists,
}

/// A prenex QBF: `Q₁y₁ Q₂y₂ … Q_ℓ y_ℓ. matrix`, where the prefix binds
/// variables `0..prefix.len()` in order and the matrix mentions only those.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Qbf {
    /// One quantifier per variable, outermost first; variable `i` is bound
    /// by `prefix[i]`.
    pub prefix: Vec<Quantifier>,
    /// The quantifier-free matrix.
    pub matrix: BoolExpr,
}

impl Qbf {
    /// Creates a QBF, checking the matrix mentions only prefix variables.
    ///
    /// # Panics
    /// Panics if the matrix mentions an unbound variable.
    pub fn new(prefix: Vec<Quantifier>, matrix: BoolExpr) -> Qbf {
        assert!(
            matrix.num_vars() <= prefix.len(),
            "matrix mentions variable beyond the prefix"
        );
        Qbf { prefix, matrix }
    }

    /// The number of quantifiers.
    pub fn num_vars(&self) -> usize {
        self.prefix.len()
    }
}

/// Decides the truth of a QBF by recursive expansion.
pub fn solve(qbf: &Qbf) -> bool {
    let mut assignment = vec![false; qbf.prefix.len()];
    go(&qbf.prefix, &qbf.matrix, 0, &mut assignment)
}

fn go(prefix: &[Quantifier], matrix: &BoolExpr, i: usize, assignment: &mut Vec<bool>) -> bool {
    if i == prefix.len() {
        return matrix.eval(assignment);
    }
    match prefix[i] {
        Quantifier::Exists => {
            for value in [false, true] {
                assignment[i] = value;
                if go(prefix, matrix, i + 1, assignment) {
                    return true;
                }
            }
            false
        }
        Quantifier::Forall => {
            for value in [false, true] {
                assignment[i] = value;
                if !go(prefix, matrix, i + 1, assignment) {
                    return false;
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Quantifier::{Exists, Forall};

    fn v(i: u32) -> BoolExpr {
        BoolExpr::Var(i)
    }

    #[test]
    fn forall_exists_equal_is_true() {
        // ∀y₁ ∃y₂ (y₁ ↔ y₂)
        let q = Qbf::new(vec![Forall, Exists], v(0).iff(v(1)));
        assert!(solve(&q));
    }

    #[test]
    fn exists_forall_equal_is_false() {
        // ∃y₁ ∀y₂ (y₁ ↔ y₂)
        let q = Qbf::new(vec![Exists, Forall], v(0).iff(v(1)));
        assert!(!solve(&q));
    }

    #[test]
    fn quantifier_free_matrix() {
        assert!(solve(&Qbf::new(vec![], BoolExpr::Const(true))));
        assert!(!solve(&Qbf::new(vec![], BoolExpr::Const(false))));
    }

    #[test]
    fn pure_existential_matches_sat() {
        // ∃y₁y₂ ((y₁ ∨ y₂) ∧ ¬y₁) is satisfiable.
        let m = v(0).or(v(1)).and(v(0).not());
        assert!(solve(&Qbf::new(vec![Exists, Exists], m.clone())));
        // ∀ version is false.
        assert!(!solve(&Qbf::new(vec![Forall, Forall], m)));
    }

    #[test]
    fn alternation_chain() {
        // ∀y₁∃y₂∀y₃∃y₄ ((y₁↔y₂) ∧ (y₃↔y₄)): inner players can copy.
        let m = v(0).iff(v(1)).and(v(2).iff(v(3)));
        let q = Qbf::new(vec![Forall, Exists, Forall, Exists], m);
        assert!(solve(&q));
    }

    #[test]
    #[should_panic(expected = "beyond the prefix")]
    fn unbound_variable_rejected() {
        Qbf::new(vec![Exists], v(1));
    }
}
