//! DIMACS CNF input/output.
//!
//! The de-facto exchange format for SAT instances, so the solver (and the
//! ESO^k grounding pipeline that feeds it) can interoperate with standard
//! benchmark files.

use std::fmt::Write as _;

use crate::cnf::{Cnf, Lit};

/// Errors parsing DIMACS text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader(String),
    /// A literal token is not an integer.
    BadLiteral(String),
    /// A literal references a variable beyond the declared count.
    VariableOutOfRange(i64),
    /// A clause is not terminated by `0`.
    UnterminatedClause,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::BadHeader(l) => write!(f, "bad DIMACS header: `{l}`"),
            DimacsError::BadLiteral(t) => write!(f, "bad literal token: `{t}`"),
            DimacsError::VariableOutOfRange(v) => {
                write!(f, "literal {v} outside the declared variable range")
            }
            DimacsError::UnterminatedClause => write!(f, "final clause not terminated by 0"),
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text. Comment (`c …`) lines are skipped; the
/// declared clause count is not enforced (common in the wild), but the
/// variable range is.
pub fn parse(input: &str) -> Result<Cnf, DimacsError> {
    let mut declared_vars: Option<usize> = None;
    let mut cnf = Cnf::new(0);
    let mut current: Vec<Lit> = Vec::new();
    let mut saw_literal = false;
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line.starts_with('p') {
            let mut it = line.split_whitespace();
            let (_p, fmt, nv) = (it.next(), it.next(), it.next());
            if fmt != Some("cnf") {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            let nv: usize = nv
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| DimacsError::BadHeader(line.to_string()))?;
            declared_vars = Some(nv);
            cnf.num_vars = nv;
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
            if v == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
                continue;
            }
            saw_literal = true;
            let var = v.unsigned_abs() - 1;
            if let Some(nv) = declared_vars {
                if var as usize >= nv {
                    return Err(DimacsError::VariableOutOfRange(v));
                }
            } else {
                cnf.num_vars = cnf.num_vars.max(var as usize + 1);
            }
            current.push(Lit::new(var as u32, v > 0));
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::UnterminatedClause);
    }
    let _ = saw_literal;
    Ok(cnf)
}

/// Writes a CNF in DIMACS format.
pub fn write(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for l in clause {
            let v = l.var() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { v } else { -v });
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver;

    #[test]
    fn parses_standard_instance() {
        let text = "c example\np cnf 3 2\n1 -2 0\n2 3 -1 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0], vec![Lit::pos(0), Lit::neg(1)]);
        assert!(solver::solve(&cnf).is_sat());
    }

    #[test]
    fn clause_spanning_lines() {
        let text = "p cnf 2 1\n1\n-2 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.clauses, vec![vec![Lit::pos(0), Lit::neg(1)]]);
    }

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([Lit::pos(0), Lit::neg(3)]);
        cnf.add_clause([Lit::neg(1)]);
        cnf.add_clause([]);
        let text = write(&cnf);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_vars, cnf.num_vars);
        assert_eq!(back.clauses, cnf.clauses);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse("p sat 3 1\n1 0"),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            parse("p cnf 1 1\n2 0\n"),
            Err(DimacsError::VariableOutOfRange(2))
        ));
        assert!(matches!(
            parse("p cnf 2 1\n1 -2\n"),
            Err(DimacsError::UnterminatedClause)
        ));
        assert!(matches!(
            parse("p cnf 2 1\nx 0\n"),
            Err(DimacsError::BadLiteral(_))
        ));
    }

    #[test]
    fn headerless_instances_infer_vars() {
        let cnf = parse("1 -5 0\n").unwrap();
        assert_eq!(cnf.num_vars, 5);
    }

    #[test]
    fn empty_clause_roundtrips() {
        let cnf = parse("p cnf 1 1\n0\n").unwrap();
        assert_eq!(cnf.clauses, vec![Vec::<Lit>::new()]);
        assert!(!solver::solve(&cnf).is_sat());
    }
}
