//! A CDCL SAT solver.
//!
//! Standard architecture: two-watched-literal unit propagation, first-UIP
//! conflict analysis with clause learning, VSIDS-style variable activities
//! with exponential decay, phase saving, and Luby-sequence restarts. The
//! instance sizes produced by the ESO^k grounding (Corollary 3.7) are
//! modest — tens of thousands of variables — so the decision heuristic uses
//! a straightforward activity scan rather than a heap.

use crate::cnf::{Clause, Cnf, Lit, VarId};

/// The outcome of solving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witnessing assignment (`model[v]` = value of v).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The model, if SAT.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

/// Index of a clause in the solver's clause arena.
type ClauseRef = u32;

const UNASSIGNED: u8 = 2;

/// Solver statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of learned clauses.
    pub learned: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

/// A CDCL SAT solver. Construct with [`Solver::new`], solve with
/// [`Solver::solve`].
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// `watches[lit.code()]`: clauses watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    /// Assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// The clause that implied each variable (propagations only).
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate from.
    qhead: usize,
    activity: Vec<f64>,
    act_inc: f64,
    /// Saved phases for phase-saving.
    phase: Vec<bool>,
    /// False if the instance is already unsatisfiable at level 0.
    ok: bool,
    stats: SolverStats,
}

impl Solver {
    /// Builds a solver from a CNF instance.
    pub fn new(cnf: &Cnf) -> Solver {
        let num_vars = cnf.num_vars;
        let mut s = Solver {
            num_vars,
            clauses: Vec::with_capacity(cnf.clauses.len()),
            watches: vec![Vec::new(); 2 * num_vars],
            assign: vec![UNASSIGNED; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            act_inc: 1.0,
            phase: vec![false; num_vars],
            ok: true,
            stats: SolverStats::default(),
        };
        for clause in &cnf.clauses {
            if !s.add_clause_internal(clause.clone()) {
                s.ok = false;
                break;
            }
        }
        s
    }

    /// Solver statistics after (or during) a run.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause; returns false if it makes the instance unsatisfiable
    /// at level 0.
    fn add_clause_internal(&mut self, mut clause: Clause) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "add clauses at level 0 only");
        clause.sort_unstable();
        clause.dedup();
        // A clause with complementary literals is a tautology.
        if clause.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Drop literals already false at level 0; a true literal satisfies
        // the clause.
        let mut simplified: Clause = Vec::with_capacity(clause.len());
        for &l in &clause {
            match self.value(l) {
                Some(true) => return true,
                Some(false) => {}
                None => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => false,
            1 => {
                self.enqueue(simplified[0], None);
                self.propagate().is_none()
            }
            _ => {
                self.attach_clause(simplified);
                true
            }
        }
    }

    fn attach_clause(&mut self, clause: Clause) -> ClauseRef {
        let cref = self.clauses.len() as ClauseRef;
        self.watches[clause[0].code()].push(cref);
        self.watches[clause[1].code()].push(cref);
        self.clauses.push(clause);
        cref
    }

    /// Current value of a literal: `Some(bool)` or `None` if unassigned.
    fn value(&self, l: Lit) -> Option<bool> {
        match self.assign[l.var() as usize] {
            UNASSIGNED => None,
            v => Some(l.eval(v == 1)),
        }
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Puts a literal on the trail as true.
    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(l), None, "enqueue of assigned literal");
        let v = l.var() as usize;
        self.assign[v] = l.is_positive() as u8;
        self.level[v] = self.current_level();
        self.reason[v] = reason;
        self.phase[v] = l.is_positive();
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    ///
    /// Invariant maintained: while a variable is assigned by propagation,
    /// its reason clause keeps the asserted literal at position 0 (the
    /// watch-swap below never moves a true watch).
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negated();
            let mut watchers = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut conflict: Option<ClauseRef> = None;
            while i < watchers.len() {
                let cref = watchers[i];
                // Ensure the false literal is at position 1.
                if self.clauses[cref as usize][0] == false_lit {
                    self.clauses[cref as usize].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref as usize][1], false_lit);
                let first = self.clauses[cref as usize][0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for j in 2..self.clauses[cref as usize].len() {
                    let l = self.clauses[cref as usize][j];
                    if self.value(l) != Some(false) {
                        self.clauses[cref as usize].swap(1, j);
                        self.watches[l.code()].push(cref);
                        watchers.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value(first) == Some(false) {
                    conflict = Some(cref);
                    break;
                }
                self.stats.propagations += 1;
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[false_lit.code()] = watchers;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: VarId) {
        self.activity[v as usize] += self.act_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first, a maximal-level literal second) and the backtrack
    /// level. Must be called with `current_level() > 0`.
    fn analyze(&mut self, confl: ClauseRef) -> (Clause, u32) {
        let mut learned: Clause = Vec::new();
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut trail_idx = self.trail.len();
        let cur_level = self.current_level();

        loop {
            // Copy out the literals to resolve on (skipping the asserted
            // literal of a reason clause, which sits at position 0).
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[confl as usize][start..].to_vec();
            for q in lits {
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal of this level.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var() as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("literal found").var() as usize;
            seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pv].expect("non-decision literal has a reason");
        }
        let uip = p.expect("first UIP").negated();
        let bt = learned
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        let mut clause = vec![uip];
        learned.sort_by_key(|l| std::cmp::Reverse(self.level[l.var() as usize]));
        clause.extend(learned);
        (clause, bt)
    }

    /// Undoes assignments above `level`.
    fn backtrack(&mut self, level: u32) {
        if self.current_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for &l in &self.trail[lim..] {
            self.assign[l.var() as usize] = UNASSIGNED;
            self.reason[l.var() as usize] = None;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = lim;
    }

    /// Picks the unassigned variable with the highest activity.
    fn pick_branch_var(&self) -> Option<VarId> {
        let mut best: Option<(VarId, f64)> = None;
        for v in 0..self.num_vars {
            if self.assign[v] == UNASSIGNED {
                let a = self.activity[v];
                if best.map_or(true, |(_, ba)| a > ba) {
                    best = Some((v as VarId, a));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// The Luby sequence 1,1,2,1,1,2,4,… (0-indexed), following the
    /// standard reluctant-doubling recurrence.
    fn luby(x: u64) -> u64 {
        let mut size: u64 = 1;
        let mut seq: u32 = 0;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut x = x;
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solves the instance.
    pub fn solve(&mut self) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            return SatResult::Unsat;
        }
        let mut restart_idx: u64 = 0;
        let mut next_restart = 64 * Self::luby(restart_idx);
        loop {
            match self.propagate() {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    if self.current_level() == 0 {
                        return SatResult::Unsat;
                    }
                    let (clause, bt) = self.analyze(confl);
                    self.backtrack(bt);
                    self.act_inc /= 0.95;
                    self.stats.learned += 1;
                    if clause.len() == 1 {
                        self.enqueue(clause[0], None);
                    } else {
                        let cref = self.attach_clause(clause.clone());
                        self.enqueue(clause[0], Some(cref));
                    }
                    if self.stats.conflicts >= next_restart {
                        restart_idx += 1;
                        next_restart = self.stats.conflicts + 64 * Self::luby(restart_idx);
                        self.stats.restarts += 1;
                        self.backtrack(0);
                    }
                }
                None => match self.pick_branch_var() {
                    None => {
                        let model: Vec<bool> = self.assign.iter().map(|&a| a == 1).collect();
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(Lit::new(v, self.phase[v as usize]), None);
                    }
                },
            }
        }
    }
}

/// Convenience: solve a CNF directly.
pub fn solve(cnf: &Cnf) -> SatResult {
    Solver::new(cnf).solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(x: i32) -> Lit {
        if x > 0 {
            Lit::pos((x - 1) as VarId)
        } else {
            Lit::neg((-x - 1) as VarId)
        }
    }

    fn cnf(clauses: &[&[i32]]) -> Cnf {
        let mut c = Cnf::new(0);
        for cl in clauses {
            c.add_clause(cl.iter().map(|&x| lit(x)));
        }
        c
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn trivial_sat() {
        let c = cnf(&[&[1], &[2, -1]]);
        let r = solve(&c);
        let m = r.model().expect("sat");
        assert!(c.eval(m));
    }

    #[test]
    fn trivial_unsat() {
        let c = cnf(&[&[1], &[-1]]);
        assert_eq!(solve(&c), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut c = Cnf::new(1);
        c.add_clause([]);
        assert_eq!(solve(&c), SatResult::Unsat);
    }

    #[test]
    fn empty_cnf_sat() {
        assert!(solve(&Cnf::new(3)).is_sat());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j; i in 0..3, j in 0..2.
        let var = |i: u32, j: u32| i * 2 + j;
        let mut c = Cnf::new(6);
        for i in 0..3 {
            c.add_clause([Lit::pos(var(i, 0)), Lit::pos(var(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    c.add_clause([Lit::neg(var(i1, j)), Lit::neg(var(i2, j))]);
                }
            }
        }
        assert_eq!(solve(&c), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let holes = 4u32;
        let var = |i: u32, j: u32| i * holes + j;
        let mut c = Cnf::new(5 * holes as usize);
        for i in 0..5 {
            c.add_clause((0..holes).map(|j| Lit::pos(var(i, j))));
        }
        for j in 0..holes {
            for i1 in 0..5 {
                for i2 in (i1 + 1)..5 {
                    c.add_clause([Lit::neg(var(i1, j)), Lit::neg(var(i2, j))]);
                }
            }
        }
        let mut s = Solver::new(&c);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0, "PHP needs real search");
    }

    #[test]
    fn chain_implications_sat() {
        // x1 ∧ (x1→x2) ∧ … ∧ (x_{n-1}→x_n): model must set all true.
        let n = 50;
        let mut c = Cnf::new(n);
        c.add_clause([Lit::pos(0)]);
        for v in 0..(n - 1) as u32 {
            c.add_clause([Lit::neg(v), Lit::pos(v + 1)]);
        }
        let r = solve(&c);
        let m = r.model().expect("sat");
        assert!(m.iter().all(|&b| b));
    }

    #[test]
    fn tautological_clause_ignored() {
        let c = cnf(&[&[1, -1], &[2]]);
        let r = solve(&c);
        assert!(c.eval(r.model().unwrap()));
    }

    #[test]
    fn duplicate_literals_handled() {
        let c = cnf(&[&[1, 1, 1], &[-1, 2, 2]]);
        let r = solve(&c);
        assert!(c.eval(r.model().unwrap()));
    }

    #[test]
    fn at_most_one_constraints() {
        // Exactly-one over 8 variables, plus forcing v3: unique model.
        let n = 8u32;
        let mut c = Cnf::new(n as usize);
        c.add_clause((0..n).map(Lit::pos));
        for a in 0..n {
            for b in (a + 1)..n {
                c.add_clause([Lit::neg(a), Lit::neg(b)]);
            }
        }
        c.add_clause([Lit::pos(3)]);
        let r = solve(&c);
        let m = r.model().unwrap();
        assert!(m[3]);
        assert_eq!(m.iter().filter(|&&b| b).count(), 1);
    }
}
