//! A plain DPLL solver, used as the differential-testing oracle for the
//! CDCL solver and as the "naive baseline" in benchmark ablations.
//!
//! Recursive unit propagation + branching, no learning, no heuristics
//! beyond first-unassigned-variable. Exponential, but transparent.

use crate::cnf::{Cnf, Lit};
use crate::solver::SatResult;

/// Solves `cnf` by DPLL.
pub fn solve(cnf: &Cnf) -> SatResult {
    let mut assign: Vec<Option<bool>> = vec![None; cnf.num_vars];
    if go(cnf, &mut assign) {
        SatResult::Sat(assign.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        SatResult::Unsat
    }
}

/// Clause status under a partial assignment.
enum Status {
    Satisfied,
    Conflicting,
    /// Unit with the given forced literal.
    Unit(Lit),
    Unresolved,
}

fn clause_status(clause: &[Lit], assign: &[Option<bool>]) -> Status {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for &l in clause {
        match assign[l.var() as usize] {
            Some(v) if l.eval(v) => return Status::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(l);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => Status::Conflicting,
        1 => Status::Unit(unassigned.expect("one unassigned literal")),
        _ => Status::Unresolved,
    }
}

fn go(cnf: &Cnf, assign: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to saturation.
    let mut changed = true;
    let mut trail: Vec<usize> = Vec::new();
    let mut failed = false;
    while changed && !failed {
        changed = false;
        for clause in &cnf.clauses {
            match clause_status(clause, assign) {
                Status::Conflicting => {
                    failed = true;
                    break;
                }
                Status::Unit(l) => {
                    assign[l.var() as usize] = Some(l.is_positive());
                    trail.push(l.var() as usize);
                    changed = true;
                }
                _ => {}
            }
        }
    }
    if failed {
        for v in trail {
            assign[v] = None;
        }
        return false;
    }
    // Branch on the first unassigned variable.
    match assign.iter().position(Option::is_none) {
        None => true, // every clause satisfied or unresolved-free: full assignment
        Some(v) => {
            for value in [true, false] {
                assign[v] = Some(value);
                if go(cnf, assign) {
                    return true;
                }
                assign[v] = None;
            }
            for v in trail {
                assign[v] = None;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Lit;

    #[test]
    fn agrees_on_small_instances() {
        let mut c = Cnf::new(3);
        c.add_clause([Lit::pos(0), Lit::neg(1)]);
        c.add_clause([Lit::pos(1), Lit::pos(2)]);
        c.add_clause([Lit::neg(0)]);
        let r = solve(&c);
        assert!(c.eval(r.model().expect("sat")));
    }

    #[test]
    fn detects_unsat() {
        let mut c = Cnf::new(2);
        c.add_clause([Lit::pos(0), Lit::pos(1)]);
        c.add_clause([Lit::pos(0), Lit::neg(1)]);
        c.add_clause([Lit::neg(0), Lit::pos(1)]);
        c.add_clause([Lit::neg(0), Lit::neg(1)]);
        assert_eq!(solve(&c), SatResult::Unsat);
    }

    #[test]
    fn empty_cases() {
        assert!(solve(&Cnf::new(0)).is_sat());
        let mut c = Cnf::new(0);
        c.add_clause([]);
        assert_eq!(solve(&c), SatResult::Unsat);
    }
}
