//! Boolean expressions and the Tseitin transformation.
//!
//! [`BoolExpr`] is a propositional formula DAG-free tree. It serves two
//! roles in the reproduction:
//!
//! * the **Boolean formula value problem** of Theorem 4.4 (evaluate a
//!   variable-free expression) — [`BoolExpr::eval`];
//! * the front end for CNF conversion: the ESO^k grounding builds one
//!   `BoolExpr` per cylindrical assignment node and runs [`tseitin`] to get
//!   an equisatisfiable CNF of linear size.

use crate::cnf::{Cnf, Lit, VarId};

/// A propositional formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoolExpr {
    /// A constant.
    Const(bool),
    /// A propositional variable.
    Var(VarId),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction (n-ary; empty = true).
    And(Vec<BoolExpr>),
    /// Disjunction (n-ary; empty = false).
    Or(Vec<BoolExpr>),
}

impl BoolExpr {
    /// Negation with double-negation collapse.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> BoolExpr {
        match self {
            BoolExpr::Const(b) => BoolExpr::Const(!b),
            BoolExpr::Not(e) => *e,
            e => BoolExpr::Not(Box::new(e)),
        }
    }

    /// Binary conjunction.
    pub fn and(self, other: BoolExpr) -> BoolExpr {
        BoolExpr::And(vec![self, other])
    }

    /// Binary disjunction.
    pub fn or(self, other: BoolExpr) -> BoolExpr {
        BoolExpr::Or(vec![self, other])
    }

    /// Implication `¬self ∨ other`.
    pub fn implies(self, other: BoolExpr) -> BoolExpr {
        self.not().or(other)
    }

    /// Biconditional.
    pub fn iff(self, other: BoolExpr) -> BoolExpr {
        self.clone().implies(other.clone()).and(other.implies(self))
    }

    /// Evaluates under an assignment (`assignment[v]` = value of `v`).
    /// Variable-free expressions may pass an empty slice.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(v) => assignment[*v as usize],
            BoolExpr::Not(e) => !e.eval(assignment),
            BoolExpr::And(es) => es.iter().all(|e| e.eval(assignment)),
            BoolExpr::Or(es) => es.iter().any(|e| e.eval(assignment)),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            BoolExpr::Const(_) | BoolExpr::Var(_) => 1,
            BoolExpr::Not(e) => 1 + e.size(),
            BoolExpr::And(es) | BoolExpr::Or(es) => {
                1 + es.iter().map(BoolExpr::size).sum::<usize>()
            }
        }
    }

    /// The largest variable index used, plus one.
    pub fn num_vars(&self) -> usize {
        match self {
            BoolExpr::Const(_) => 0,
            BoolExpr::Var(v) => *v as usize + 1,
            BoolExpr::Not(e) => e.num_vars(),
            BoolExpr::And(es) | BoolExpr::Or(es) => {
                es.iter().map(BoolExpr::num_vars).max().unwrap_or(0)
            }
        }
    }
}

/// Tseitin-transforms `expr` into `cnf`, returning a literal equivalent to
/// the expression's value. The caller typically asserts it as a unit
/// clause. Input variables of the expression map to the same variable ids
/// in `cnf` (which is grown as needed); definition variables are fresh.
pub fn tseitin(expr: &BoolExpr, cnf: &mut Cnf) -> Lit {
    cnf.num_vars = cnf.num_vars.max(expr.num_vars());
    encode(expr, cnf)
}

fn encode(expr: &BoolExpr, cnf: &mut Cnf) -> Lit {
    match expr {
        BoolExpr::Const(b) => {
            // A fresh variable pinned to the constant.
            let v = cnf.fresh_var();
            cnf.add_clause([Lit::new(v, *b)]);
            Lit::pos(v)
        }
        BoolExpr::Var(v) => Lit::pos(*v),
        BoolExpr::Not(e) => encode(e, cnf).negated(),
        BoolExpr::And(es) => {
            let lits: Vec<Lit> = es.iter().map(|e| encode(e, cnf)).collect();
            let out = Lit::pos(cnf.fresh_var());
            // out → lᵢ for each i; (⋀lᵢ) → out.
            for &l in &lits {
                cnf.add_clause([out.negated(), l]);
            }
            let mut big: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
            big.push(out);
            cnf.add_clause(big);
            out
        }
        BoolExpr::Or(es) => {
            let lits: Vec<Lit> = es.iter().map(|e| encode(e, cnf)).collect();
            let out = Lit::pos(cnf.fresh_var());
            // lᵢ → out for each i; out → ⋁lᵢ.
            for &l in &lits {
                cnf.add_clause([l.negated(), out]);
            }
            let mut big = lits;
            big.push(out.negated());
            cnf.add_clause(big);
            out
        }
    }
}

/// Converts a `BoolExpr` to an equisatisfiable CNF asserting the expression
/// is true. Returns the CNF; model positions `0..expr.num_vars()` are the
/// original variables.
pub fn to_cnf(expr: &BoolExpr) -> Cnf {
    let mut cnf = Cnf::new(expr.num_vars());
    let root = tseitin(expr, &mut cnf);
    cnf.add_clause([root]);
    cnf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver;

    fn exhaustively_equivalent(expr: &BoolExpr) {
        // For every assignment to the original variables, expr is true iff
        // the CNF is satisfiable with those values pinned.
        let n = expr.num_vars();
        for bits in 0..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let mut cnf = to_cnf(expr);
            for (i, &b) in assignment.iter().enumerate() {
                cnf.add_clause([Lit::new(i as VarId, b)]);
            }
            let sat = solver::solve(&cnf).is_sat();
            assert_eq!(sat, expr.eval(&assignment), "assignment {assignment:?}");
        }
    }

    #[test]
    fn tseitin_preserves_semantics() {
        let x = BoolExpr::Var(0);
        let y = BoolExpr::Var(1);
        let z = BoolExpr::Var(2);
        exhaustively_equivalent(&x.clone().and(y.clone()).or(z.clone().not()));
        exhaustively_equivalent(&x.clone().iff(y.clone()));
        exhaustively_equivalent(&x.clone().implies(y.clone()).and(z.clone()));
        exhaustively_equivalent(&BoolExpr::And(vec![]).or(BoolExpr::Or(vec![])));
        exhaustively_equivalent(&BoolExpr::Const(false).or(x));
    }

    #[test]
    fn eval_variable_free() {
        let e = BoolExpr::Const(true).and(BoolExpr::Const(false)).not();
        assert!(e.eval(&[]));
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn nary_semantics() {
        assert!(BoolExpr::And(vec![]).eval(&[]));
        assert!(!BoolExpr::Or(vec![]).eval(&[]));
    }

    #[test]
    fn cnf_size_is_linear() {
        // Chain of n conjunctions → O(n) clauses.
        let mut e = BoolExpr::Var(0);
        for i in 1..100 {
            e = e.and(BoolExpr::Var(i));
        }
        let cnf = to_cnf(&e);
        assert!(
            cnf.clauses.len() < 100 * 4,
            "got {} clauses",
            cnf.clauses.len()
        );
    }
}
