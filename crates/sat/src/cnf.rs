//! CNF formulas: literals, clauses, and instances.

use std::fmt;

/// A propositional variable, identified by a 0-based index.
pub type VarId = u32;

/// A literal: a variable with a sign, packed as `2·var + (negated ? 1 : 0)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: VarId) -> Lit {
        Lit(var << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: VarId) -> Lit {
        Lit((var << 1) | 1)
    }

    /// Builds a literal with an explicit sign (`true` = positive).
    pub fn new(var: VarId, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> VarId {
        self.0 >> 1
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The packed code (useful as an index into per-literal tables).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// The value of this literal under an assignment to its variable.
    pub fn eval(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var())
        } else {
            write!(f, "¬v{}", self.var())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF instance.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    /// Number of variables (`0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty (trivially satisfiable) instance over `num_vars` variables.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> VarId {
        let v = self.num_vars as VarId;
        self.num_vars += 1;
        v
    }

    /// Adds a clause, growing `num_vars` if the clause mentions new ones.
    pub fn add_clause(&mut self, clause: impl IntoIterator<Item = Lit>) {
        let clause: Clause = clause.into_iter().collect();
        for l in &clause {
            self.num_vars = self.num_vars.max(l.var() as usize + 1);
        }
        self.clauses.push(clause);
    }

    /// Evaluates the instance under a full assignment.
    ///
    /// # Panics
    /// Panics if the assignment is shorter than `num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.violating_clause(assignment).is_none()
    }

    /// The index of the first clause the assignment falsifies, or `None`
    /// when the assignment is a model.
    ///
    /// This is the checker-grade form of [`eval`](Self::eval): a SAT
    /// claim is audited by replaying the model, and on failure the
    /// *specific* violated clause is the structured rejection evidence —
    /// the same discipline `bvq-cert` applies to iteration traces.
    ///
    /// # Panics
    /// Panics if the assignment is shorter than `num_vars`.
    pub fn violating_clause(&self, assignment: &[bool]) -> Option<usize> {
        assert!(assignment.len() >= self.num_vars, "assignment too short");
        self.clauses
            .iter()
            .position(|c| !c.iter().any(|l| l.eval(assignment[l.var() as usize])))
    }

    /// Total number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing() {
        let p = Lit::pos(3);
        let n = Lit::neg(3);
        assert_eq!(p.var(), 3);
        assert_eq!(n.var(), 3);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert_eq!(Lit::new(3, true), p);
        assert_eq!(Lit::new(3, false), n);
    }

    #[test]
    fn literal_eval() {
        assert!(Lit::pos(0).eval(true));
        assert!(!Lit::pos(0).eval(false));
        assert!(Lit::neg(0).eval(false));
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause([Lit::neg(0)]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true])); // second clause violated
        assert!(!cnf.eval(&[false, false])); // first clause violated
    }

    #[test]
    fn violating_clause_pinpoints_the_rejection() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause([Lit::neg(0)]);
        assert_eq!(cnf.violating_clause(&[false, true]), None);
        assert_eq!(cnf.violating_clause(&[true, true]), Some(1));
        assert_eq!(cnf.violating_clause(&[false, false]), Some(0));
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause([Lit::pos(5)]);
        assert_eq!(cnf.num_vars, 6);
        assert_eq!(cnf.num_literals(), 1);
    }

    #[test]
    fn empty_cnf_is_sat_empty_clause_is_not() {
        let cnf = Cnf::new(1);
        assert!(cnf.eval(&[false]));
        let mut bad = Cnf::new(1);
        bad.add_clause([]);
        assert!(!bad.eval(&[true]));
    }
}
