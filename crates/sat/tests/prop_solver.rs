//! Differential property tests: the CDCL solver must agree with the DPLL
//! oracle on random instances, and every SAT model must actually satisfy
//! the formula.

use bvq_sat::{dpll, solver, tseitin, BoolExpr, Cnf, Lit};
use proptest::prelude::*;

/// Random CNF: `nv` variables, clauses of length 1–4.
fn arb_cnf(nv: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((0..nv, any::<bool>()), 1..=4),
        0..=max_clauses,
    )
    .prop_map(move |clauses| {
        let mut cnf = Cnf::new(nv as usize);
        for cl in clauses {
            cnf.add_clause(cl.into_iter().map(|(v, s)| Lit::new(v, s)));
        }
        cnf
    })
}

fn arb_bool_expr(nv: u32, depth: u32) -> BoxedStrategy<BoolExpr> {
    let leaf = prop_oneof![
        (0..nv).prop_map(BoolExpr::Var),
        any::<bool>().prop_map(BoolExpr::Const),
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(BoolExpr::not),
            prop::collection::vec(inner.clone(), 0..3).prop_map(BoolExpr::And),
            prop::collection::vec(inner, 0..3).prop_map(BoolExpr::Or),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdcl_agrees_with_dpll(cnf in arb_cnf(8, 30)) {
        let cdcl = solver::solve(&cnf);
        let oracle = dpll::solve(&cnf);
        prop_assert_eq!(cdcl.is_sat(), oracle.is_sat());
        if let Some(m) = cdcl.model() {
            prop_assert!(cnf.eval(m), "CDCL returned a non-model");
        }
        if let Some(m) = oracle.model() {
            prop_assert!(cnf.eval(m), "DPLL returned a non-model");
        }
    }

    #[test]
    fn tseitin_sat_iff_expr_satisfiable(e in arb_bool_expr(4, 4)) {
        // Brute-force satisfiability of the expression.
        let n = e.num_vars();
        let brute = (0..(1u32 << n)).any(|bits| {
            let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            e.eval(&a)
        });
        let cnf = tseitin::to_cnf(&e);
        prop_assert_eq!(solver::solve(&cnf).is_sat(), brute);
    }

    #[test]
    fn model_restriction_satisfies_expr(e in arb_bool_expr(4, 4)) {
        let cnf = tseitin::to_cnf(&e);
        if let Some(m) = solver::solve(&cnf).model() {
            // Model positions 0..e.num_vars() are the original variables.
            prop_assert!(e.eval(m));
        }
    }
}
