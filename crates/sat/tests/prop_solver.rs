//! Differential seeded property tests: the CDCL solver must agree with the
//! DPLL oracle on random instances, and every SAT model must actually
//! satisfy the formula.

use bvq_prng::{for_each_case, Rng};
use bvq_sat::{dpll, solver, tseitin, BoolExpr, Cnf, Lit};

/// Random CNF: `nv` variables, up to `max_clauses` clauses of length 1–4.
fn rand_cnf(rng: &mut Rng, nv: u32, max_clauses: usize) -> Cnf {
    let mut cnf = Cnf::new(nv as usize);
    for _ in 0..rng.gen_range(0..max_clauses + 1) {
        let len = rng.gen_range(1..5usize);
        cnf.add_clause((0..len).map(|_| Lit::new(rng.gen_range(0..nv), rng.gen_bool(0.5))));
    }
    cnf
}

/// Random Boolean expression of bounded depth over `nv` variables.
fn rand_bool_expr(rng: &mut Rng, nv: u32, depth: u32) -> BoolExpr {
    if depth == 0 || rng.gen_ratio(1, 3) {
        return if rng.gen_bool(0.7) {
            BoolExpr::Var(rng.gen_range(0..nv))
        } else {
            BoolExpr::Const(rng.gen_bool(0.5))
        };
    }
    match rng.gen_range(0..3u32) {
        0 => rand_bool_expr(rng, nv, depth - 1).not(),
        1 => {
            let n = rng.gen_range(0..3usize);
            BoolExpr::And((0..n).map(|_| rand_bool_expr(rng, nv, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..3usize);
            BoolExpr::Or((0..n).map(|_| rand_bool_expr(rng, nv, depth - 1)).collect())
        }
    }
}

#[test]
fn cdcl_agrees_with_dpll() {
    for_each_case(256, |_, rng| {
        let cnf = rand_cnf(rng, 8, 30);
        let cdcl = solver::solve(&cnf);
        let oracle = dpll::solve(&cnf);
        assert_eq!(cdcl.is_sat(), oracle.is_sat());
        if let Some(m) = cdcl.model() {
            assert!(cnf.eval(m), "CDCL returned a non-model");
        }
        if let Some(m) = oracle.model() {
            assert!(cnf.eval(m), "DPLL returned a non-model");
        }
    });
}

#[test]
fn tseitin_sat_iff_expr_satisfiable() {
    for_each_case(256, |_, rng| {
        let e = rand_bool_expr(rng, 4, 4);
        // Brute-force satisfiability of the expression.
        let n = e.num_vars();
        let brute = (0..(1u32 << n)).any(|bits| {
            let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            e.eval(&a)
        });
        let cnf = tseitin::to_cnf(&e);
        assert_eq!(solver::solve(&cnf).is_sat(), brute);
    });
}

#[test]
fn model_restriction_satisfies_expr() {
    for_each_case(256, |_, rng| {
        let e = rand_bool_expr(rng, 4, 4);
        let cnf = tseitin::to_cnf(&e);
        if let Some(m) = solver::solve(&cnf).model() {
            // Model positions 0..e.num_vars() are the original variables.
            assert!(e.eval(m));
        }
    });
}
