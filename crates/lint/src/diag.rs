//! Structured diagnostics: codes, severities, spans, and the catalog.

use std::fmt;

use bvq_logic::SrcSpan;

/// How serious a diagnostic is.
///
/// `Error`s mean the query is rejected (it is unsafe, ill-formed, or
/// cannot be parsed); `Warning`s flag degenerate or suspicious
/// constructs; `Suggestion`s point out beneficial rewrites and never
/// fail a lint run; `Info`s report neutral structural facts (such as a
/// proven-acyclic conjunctive core) that fail nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The query must be rejected.
    Error,
    /// The query is suspicious but evaluable.
    Warning,
    /// A beneficial rewrite is available.
    Suggestion,
    /// A neutral structural fact.
    Info,
}

impl Severity {
    /// The lower-case label used in rendered output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Suggestion => "suggestion",
            Severity::Info => "info",
        }
    }
}

/// One finding of a static pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable catalog code, e.g. `BVQ-E001`.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Byte range into the query text, when the source is available
    /// (programmatically built queries have no spans).
    pub span: Option<SrcSpan>,
    /// What was found.
    pub message: String,
    /// How to fix it, when a concrete fix is known.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, span: Option<SrcSpan>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, span: Option<SrcSpan>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// A suggestion-severity diagnostic.
    pub fn suggestion(
        code: &'static str,
        span: Option<SrcSpan>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Suggestion,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// An info-severity diagnostic.
    pub fn info(code: &'static str, span: Option<SrcSpan>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Attaches a help line.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.label(), self.code)?;
        if let Some(span) = self.span {
            write!(f, " (bytes {span})")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(help) = &self.help {
            write!(f, "\n  help: {help}")?;
        }
        Ok(())
    }
}

/// Unsafe FO query: a free variable is range-restricted in no conjunct.
pub const E001: &str = "BVQ-E001";
/// Non-positive recursion under an lfp/gfp binder.
pub const E002: &str = "BVQ-E002";
/// A relation or predicate is used with conflicting arities.
pub const E003: &str = "BVQ-E003";
/// A Datalog rule is not range-restricted.
pub const E004: &str = "BVQ-E004";
/// An invalid binder or rule head (duplicate variables, non-FO body, …).
pub const E005: &str = "BVQ-E005";
/// The query text could not be parsed.
pub const E006: &str = "BVQ-E006";
/// The output specification is invalid (free variable not in the output
/// list, or the requested Datalog output predicate is never derived).
pub const E007: &str = "BVQ-E007";
/// An unknown relation or predicate.
pub const E008: &str = "BVQ-E008";
/// A subformula is trivially constant (always true / always false).
pub const W101: &str = "BVQ-W101";
/// A contradictory conjunction or tautological disjunction.
pub const W102: &str = "BVQ-W102";
/// A quantifier binds a variable its body never uses.
pub const W103: &str = "BVQ-W103";
/// A Datalog IDB predicate is derived but unreachable from the output.
pub const W104: &str = "BVQ-W104";
/// The n^k intermediate-relation bound exceeds the configured budget.
pub const W106: &str = "BVQ-W106";
/// A width-reducing rewrite was produced but its certificate failed
/// validation; the rewrite must not be used.
pub const E109: &str = "BVQ-E109";
/// The query provably evaluates within a smaller width: a certified
/// variable-minimizing rewrite k → k_min exists.
pub const W110: &str = "BVQ-W110";
/// The conjunctive core is α-acyclic (GYO-reducible).
pub const I111: &str = "BVQ-I111";

/// The full diagnostic catalog: `(code, severity, description)`.
pub const CATALOG: &[(&str, Severity, &str)] = &[
    (
        E001,
        Severity::Error,
        "unsafe FO query: free variable not range-restricted (domain-dependent)",
    ),
    (
        E002,
        Severity::Error,
        "non-positive occurrence of a fixpoint variable under lfp/gfp",
    ),
    (
        E003,
        Severity::Error,
        "relation used with conflicting arities",
    ),
    (
        E004,
        Severity::Error,
        "Datalog rule is not range-restricted",
    ),
    (E005, Severity::Error, "invalid binder or rule head"),
    (E006, Severity::Error, "syntax error"),
    (E007, Severity::Error, "invalid output specification"),
    (E008, Severity::Error, "unknown relation or predicate"),
    (
        W101,
        Severity::Warning,
        "subformula is trivially constant (always true / always false)",
    ),
    (
        W102,
        Severity::Warning,
        "contradictory conjunction or tautological disjunction",
    ),
    (W103, Severity::Warning, "vacuous quantifier"),
    (
        W104,
        Severity::Warning,
        "IDB predicate unreachable from the output predicate",
    ),
    (
        W106,
        Severity::Warning,
        "n^k intermediate-relation bound exceeds the configured budget",
    ),
    (
        E109,
        Severity::Error,
        "width rewrite certificate rejected by the validator",
    ),
    (
        W110,
        Severity::Warning,
        "width reducible: a certified rewrite uses k_min < k variables",
    ),
    (
        I111,
        Severity::Info,
        "conjunctive core is α-acyclic (GYO-reducible)",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_codes_are_unique_and_well_formed() {
        for (i, (code, sev, _)) in CATALOG.iter().enumerate() {
            assert!(code.starts_with("BVQ-"), "{code}");
            let class = code.as_bytes()[4];
            match sev {
                Severity::Error => assert_eq!(class, b'E', "{code}"),
                Severity::Warning => assert_eq!(class, b'W', "{code}"),
                Severity::Suggestion => assert_eq!(class, b'S', "{code}"),
                Severity::Info => assert_eq!(class, b'I', "{code}"),
            }
            for (other, _, _) in &CATALOG[i + 1..] {
                assert_ne!(code, other);
            }
        }
    }

    #[test]
    fn diagnostic_renders_code_span_and_help() {
        let d = Diagnostic::error(
            E001,
            Some(SrcSpan::new(3, 9)),
            "free variable `x1` is unsafe",
        )
        .with_help("restrict x1 with a positive atom");
        let s = d.to_string();
        assert!(s.contains("error[BVQ-E001]"), "{s}");
        assert!(s.contains("bytes 3..9"), "{s}");
        assert!(s.contains("help: restrict"), "{s}");
        let d = Diagnostic::warning(W103, None, "m");
        assert!(!d.to_string().contains("bytes"));
    }
}
