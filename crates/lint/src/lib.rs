//! # bvq-lint
//!
//! Static query analysis for the `bvq` reproduction of Vardi,
//! *On the Complexity of Bounded-Variable Queries* (PODS 1995).
//!
//! The paper's central observation is that a query's complexity is
//! decidable *from its text alone*: the number of variables `k` bounds
//! every intermediate relation to `n^k` (Prop 3.1), and Tables 1–3
//! classify each fragment's data / combined / expression complexity.
//! This crate runs that analysis before any evaluation:
//!
//! * **safety** — free variables of FO queries must be range-restricted
//!   (`BVQ-E001`), else the answer is domain-dependent;
//! * **positivity / well-formedness** — non-positive recursion, bad rule
//!   heads, range restriction and arity conformance for Datalog;
//! * **width analysis** — runs the `bvq-analysis` hypergraph pass:
//!   reports a *certified* variable-minimizing rewrite `k → k_min`
//!   (`BVQ-W110`, the certificate is replayed by
//!   [`bvq_analysis::validate`] before it is ever reported), flags
//!   rewrites whose certificate fails validation (`BVQ-E109`), and
//!   reports α-acyclic conjunctive cores (`BVQ-I111`) — for Datalog,
//!   per-rule-body hypergraphs;
//! * **complexity classification** — places the query in its fragment
//!   (FO^k / FP^k / PFP^k / ESO^k / Datalog / CQ / acyclic CQ via GYO)
//!   and reports the predicted Tables 1–3 cells, optionally flagging
//!   queries whose `n^k` bound exceeds a budget (`BVQ-W106`);
//! * **dead code** — trivially constant subformulas, complementary
//!   literals, vacuous quantifiers, unreachable IDB predicates.
//!
//! Everything is purely static: no pass ever touches database tuples.
//! Diagnostics carry byte spans produced by the spanned parsers
//! ([`bvq_logic::parser::parse_query_spanned`],
//! [`bvq_datalog::parse_program_spanned`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod datalog;
pub mod diag;
pub mod fo;

pub use classify::Fragment;
pub use diag::{Diagnostic, Severity, CATALOG};

use bvq_datalog::{parse_program_spanned, DatalogError, Program};
use bvq_logic::parser::{parse_eso_spanned, parse_query_spanned};
use bvq_logic::{Eso, LogicError, Query, SpanNode, SrcSpan};

/// Configuration for a lint run. Everything is optional: without a
/// schema the relation checks are skipped, without a domain size the
/// `n^k` bound is not computed, and without a budget nothing is flagged
/// as over budget.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Flag queries whose `n^k` bound exceeds this many tuples
    /// (`BVQ-W106`). Requires `domain_size`.
    pub budget: Option<u128>,
    /// The database's domain size `n`, for the `n^k` bound.
    pub domain_size: Option<usize>,
    /// The database's relation schema (`name`, arity), for `BVQ-E008` /
    /// `BVQ-E003` conformance checks.
    pub schema: Option<Vec<(String, usize)>>,
}

/// The outcome of linting one query: classification plus diagnostics.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Fragment label with width, e.g. `FO^3` (or `unparsed` when the
    /// input failed to parse).
    pub language: String,
    /// The fragment, when the input parsed.
    pub fragment: Option<Fragment>,
    /// The query's effective width `k`.
    pub width: usize,
    /// The minimized width `k′`, when strictly smaller than `width`.
    pub min_width: Option<usize>,
    /// The equivalent width-`k′` formula, rendered.
    pub rewritten: Option<String>,
    /// Table 1 cell: data complexity.
    pub data_complexity: String,
    /// Table 2 cell: combined complexity of the bounded fragment.
    pub combined_complexity: String,
    /// Table 3 cell: expression complexity.
    pub expression_complexity: String,
    /// The `n^k` intermediate-relation bound, when the domain size is
    /// known (saturating).
    pub bound: Option<u128>,
    /// `Some(true)` when the conjunctive core (FO) or every rule body
    /// (Datalog) is α-acyclic; `Some(false)` when cyclic; `None` when
    /// no core exists or the check does not apply.
    pub acyclic: Option<bool>,
    /// `Some(true)` when a width-reducing rewrite exists and its
    /// certificate validated; `Some(false)` when the certificate was
    /// rejected (`BVQ-E109`); `None` when the query is already
    /// width-minimal.
    pub certified: Option<bool>,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    fn classified(fragment: Fragment, width: usize) -> LintReport {
        LintReport {
            language: fragment.label(width),
            fragment: Some(fragment),
            width,
            min_width: None,
            rewritten: None,
            data_complexity: fragment.data_complexity().to_string(),
            combined_complexity: fragment.combined_complexity().to_string(),
            expression_complexity: fragment.expression_complexity().to_string(),
            bound: None,
            acyclic: None,
            certified: None,
            diagnostics: Vec::new(),
        }
    }

    /// A report for input that failed to parse or validate: one error
    /// diagnostic, no classification.
    fn failed(d: Diagnostic) -> LintReport {
        LintReport {
            language: "unparsed".to_string(),
            fragment: None,
            width: 0,
            min_width: None,
            rewritten: None,
            data_complexity: "n/a".to_string(),
            combined_complexity: "n/a".to_string(),
            expression_complexity: "n/a".to_string(),
            bound: None,
            acyclic: None,
            certified: None,
            diagnostics: vec![d],
        }
    }

    /// Whether any diagnostic is error-severity (the query must be
    /// rejected).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether any diagnostic is a warning or worse.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity <= Severity::Warning)
    }

    /// `(errors, warnings, suggestions, infos)` counts.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Suggestion => c.2 += 1,
                Severity::Info => c.3 += 1,
            }
        }
        c
    }

    /// Finishes a report: dedups identical findings, sorts errors first
    /// (stable, so source order is preserved within a severity), and
    /// computes the `n^k` bound.
    fn finish(mut self, cfg: &LintConfig) -> LintReport {
        let mut seen: Vec<(&'static str, Option<SrcSpan>, String)> = Vec::new();
        self.diagnostics.retain(|d| {
            let key = (d.code, d.span, d.message.clone());
            if seen.contains(&key) {
                false
            } else {
                seen.push(key);
                true
            }
        });
        self.diagnostics.sort_by_key(|d| d.severity);
        if let Some(n) = cfg.domain_size {
            let bound = (n as u128).saturating_pow(self.width as u32);
            self.bound = Some(bound);
            if let Some(budget) = cfg.budget {
                if bound > budget {
                    self.diagnostics.push(
                        Diagnostic::warning(
                            diag::W106,
                            None,
                            format!(
                                "intermediate-relation bound n^k = {n}^{} = {bound} exceeds \
                                 the budget of {budget} tuples",
                                self.width
                            ),
                        )
                        .with_help(match self.min_width {
                            Some(k2) => {
                                format!("the width-{k2} rewriting lowers the bound to {n}^{k2}")
                            }
                            None => "lower the query's width or raise the budget".to_string(),
                        }),
                    );
                }
            }
        }
        self
    }

    /// Renders the report as human-readable text, one finding per
    /// paragraph, classification first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("language: {}\n", self.language));
        if self.fragment.is_some() {
            out.push_str(&format!("width: {}", self.width));
            if let Some(k2) = self.min_width {
                out.push_str(&format!(" (minimizable to {k2})"));
            }
            out.push('\n');
            out.push_str(&format!(
                "data complexity: {} [Table 1]\n",
                self.data_complexity
            ));
            out.push_str(&format!(
                "combined complexity: {} [Table 2]\n",
                self.combined_complexity
            ));
            out.push_str(&format!(
                "expression complexity: {} [Table 3]\n",
                self.expression_complexity
            ));
            if let Some(b) = self.bound {
                out.push_str(&format!("bound: n^{} = {b}\n", self.width));
            }
            if let Some(acyclic) = self.acyclic {
                out.push_str(&format!(
                    "acyclic: {}\n",
                    if acyclic { "yes (GYO)" } else { "no" }
                ));
            }
        }
        let (e, w, s, i) = self.counts();
        if self.diagnostics.is_empty() {
            out.push_str("clean: no findings\n");
        } else {
            out.push_str(&format!(
                "findings: {e} error(s), {w} warning(s), {s} suggestion(s), {i} info(s)\n"
            ));
            for d in &self.diagnostics {
                out.push_str(&format!("{d}\n"));
            }
        }
        out
    }
}

/// Maps a front-end error into its diagnostic.
fn logic_error_diag(e: &LogicError) -> Diagnostic {
    match e {
        LogicError::Parse { position, message } => Diagnostic::error(
            diag::E006,
            Some(SrcSpan::point(*position)),
            format!("syntax error: {message}"),
        ),
        LogicError::NotPositive(name) => Diagnostic::error(
            diag::E002,
            None,
            format!(
                "fixpoint variable `{name}` occurs non-positively under an lfp/gfp binder; \
                 the fixpoint is not monotone"
            ),
        )
        .with_help("use `pfp`/`ifp` for non-monotone recursion"),
        LogicError::RelArityMismatch {
            name,
            expected,
            found,
        } => Diagnostic::error(
            diag::E003,
            None,
            format!("relation `{name}` is bound with arity {expected} but used with {found}"),
        ),
        LogicError::DuplicateBoundVariable(name) => Diagnostic::error(
            diag::E005,
            None,
            format!("fixpoint `{name}` binds the same variable twice"),
        ),
        LogicError::UnboundRelVar(name) => Diagnostic::error(
            diag::E008,
            None,
            format!("relation variable `{name}` has no binder"),
        ),
        LogicError::EsoBodyNotFirstOrder => Diagnostic::error(
            diag::E005,
            None,
            "the body of an `exists2` sentence must be first-order".to_string(),
        ),
        LogicError::FreeVariableNotOutput(v) => Diagnostic::error(
            diag::E007,
            None,
            format!("free variable `{v}` is not listed among the query outputs"),
        ),
        // Transformation-only errors; unreachable from parsing but mapped
        // for completeness.
        LogicError::WouldCapture(v) => Diagnostic::error(
            diag::E005,
            None,
            format!("substitution would capture `{v}`"),
        ),
        LogicError::CannotDualizePfp => Diagnostic::error(
            diag::E005,
            None,
            "partial fixpoints have no De Morgan dual".to_string(),
        ),
    }
}

fn datalog_error_diag(e: &DatalogError) -> Diagnostic {
    match e {
        DatalogError::Parse { position, message } => Diagnostic::error(
            diag::E006,
            Some(SrcSpan::point(*position)),
            format!("syntax error: {message}"),
        ),
        other => Diagnostic::error(diag::E005, None, other.to_string()),
    }
}

/// Lints a relational query AST. `spans` is the mirroring span tree when
/// the query came from text (see
/// [`parse_query_spanned`](bvq_logic::parser::parse_query_spanned)).
pub fn lint_query(q: &Query, spans: Option<&SpanNode>, cfg: &LintConfig) -> LintReport {
    let floor = q.output.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let width = q.formula.width().max(floor).max(1);
    let fragment = classify::classify_query(q);
    let mut report = LintReport::classified(fragment, width);

    // Well-formedness of programmatically built fixpoints (text input has
    // already been validated by the parser, so this is a no-op there).
    if let Err(e) = q.formula.validate_fp() {
        report.diagnostics.push(logic_error_diag(&e));
    }
    fo::check_safety(&q.formula, spans, &mut report.diagnostics);
    fo::check_degenerate(&q.formula, spans, &mut report.diagnostics);
    if let Some(schema) = &cfg.schema {
        fo::check_schema(&q.formula, schema, spans, &mut report.diagnostics);
    }
    let analysis = fo::check_analysis(&q.formula, floor, spans, &mut report.diagnostics);
    report.acyclic = analysis.acyclic;
    report.certified = analysis.certified;
    if analysis.certified == Some(true) {
        report.min_width = Some(analysis.k_min);
        report.rewritten = analysis.certificate.map(|c| c.rewritten.to_string());
    }
    report.finish(cfg)
}

/// Lints an ESO sentence AST.
pub fn lint_eso(e: &Eso, spans: Option<&SpanNode>, cfg: &LintConfig) -> LintReport {
    let width = e.width().max(1);
    let mut report = LintReport::classified(Fragment::Eso, width);
    if let Err(err) = e.validate() {
        report.diagnostics.push(logic_error_diag(&err));
    }
    fo::check_degenerate(&e.body, spans, &mut report.diagnostics);
    if let Some(schema) = &cfg.schema {
        // Quantified relations appear as bound atoms, so only genuine
        // database atoms are checked.
        fo::check_schema(&e.body, schema, spans, &mut report.diagnostics);
    }
    report.finish(cfg)
}

/// Lints a Datalog program AST. `output` is the requested output
/// predicate (defaults to the last rule's head); `rule_spans` are the
/// per-rule byte ranges from [`parse_program_spanned`].
pub fn lint_program(
    p: &Program,
    output: Option<&str>,
    rule_spans: Option<&[(usize, usize)]>,
    cfg: &LintConfig,
) -> LintReport {
    let width = datalog::program_width(p);
    let mut report = LintReport::classified(Fragment::Datalog, width);
    datalog::check_program(
        p,
        output,
        rule_spans,
        cfg.schema.as_deref(),
        &mut report.diagnostics,
    );
    report.acyclic = datalog::check_rule_acyclicity(p, &mut report.diagnostics);
    report.finish(cfg)
}

/// Lints a relational query from text. Parse and validation failures
/// become `BVQ-E*` diagnostics rather than errors — linting never fails.
pub fn lint_query_text(text: &str, cfg: &LintConfig) -> LintReport {
    match parse_query_spanned(text) {
        Ok((q, spans)) => lint_query(&q, Some(&spans), cfg),
        Err(e) => LintReport::failed(logic_error_diag(&e)).finish(cfg),
    }
}

/// Lints an ESO sentence from text.
pub fn lint_eso_text(text: &str, cfg: &LintConfig) -> LintReport {
    match parse_eso_spanned(text) {
        Ok((e, spans)) => lint_eso(&e, Some(&spans), cfg),
        Err(e) => LintReport::failed(logic_error_diag(&e)).finish(cfg),
    }
}

/// Lints a Datalog program from text.
pub fn lint_datalog_text(program: &str, output: Option<&str>, cfg: &LintConfig) -> LintReport {
    match parse_program_spanned(program) {
        Ok((p, spans)) => lint_program(&p, output, Some(&spans), cfg),
        Err(e) => LintReport::failed(datalog_error_diag(&e)).finish(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LintConfig {
        LintConfig {
            budget: None,
            domain_size: Some(10),
            schema: Some(vec![("E".to_string(), 2), ("P".to_string(), 1)]),
        }
    }

    #[test]
    fn clean_query_reports_classification_only() {
        let r = lint_query_text("(x1) exists x2. (E(x1,x2) & P(x2))", &cfg());
        // The only finding is the I111 acyclicity fact — no errors,
        // warnings, or suggestions.
        assert_eq!(r.counts(), (0, 0, 0, 1), "{:?}", r.diagnostics);
        assert_eq!(r.fragment, Some(Fragment::AcyclicCq));
        assert_eq!(r.width, 2);
        assert_eq!(r.bound, Some(100));
        assert_eq!(r.acyclic, Some(true));
        assert_eq!(r.certified, None);
        assert!(!r.has_warnings());
        assert!(r.render().contains("acyclic: yes (GYO)"));
        assert!(r.render().contains("[Table 2]"));
        // A query with no conjunctive core really is clean.
        let r = lint_query_text("(x1) (P(x1) | E(x1,x1))", &cfg());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.acyclic, None);
        assert!(r.render().contains("clean: no findings"));
    }

    #[test]
    fn every_error_code_triggers() {
        let schema = cfg();
        // E001 — unsafe query.
        let r = lint_query_text("(x1) ~P(x1)", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::E001), "{r:?}");
        assert!(r.has_errors());
        // E002 — non-positive lfp (builder route: the parser rejects it
        // with the same code via the error mapping).
        let r = lint_query_text("(x1) [lfp S(x1). ~S(x1)](x1)", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::E002), "{r:?}");
        // E003 — arity mismatch against the schema.
        let r = lint_query_text("(x1) E(x1)", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::E003), "{r:?}");
        // E004 — unrestricted Datalog rule.
        let r = lint_datalog_text("Q(x) :- E(y,y).", None, &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::E004), "{r:?}");
        // E005 — invalid head / binder.
        let r = lint_datalog_text("Q(3) :- E(3,3).", None, &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::E006), "{r:?}");
        let r = lint_query_text("(x1) [lfp S(x1,x1). E(x1,x1)](x1,x1)", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::E005), "{r:?}");
        // E006 — syntax error, span points at the failure offset.
        let r = lint_query_text("(x1) E(x1", &schema);
        let d = r.diagnostics.iter().find(|d| d.code == diag::E006).unwrap();
        assert_eq!(d.span, Some(SrcSpan::point(9)));
        // E007 — free variable not among outputs.
        let r = lint_query_text("(x1) E(x1,x2)", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::E007), "{r:?}");
        // E008 — unknown relation.
        let r = lint_query_text("(x1) Zap(x1)", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::E008), "{r:?}");
    }

    #[test]
    fn every_warning_and_suggestion_code_triggers() {
        let schema = cfg();
        // W101.
        let r = lint_query_text("(x1) (P(x1) & (E(x1,x1) | true))", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::W101), "{r:?}");
        assert!(!r.has_errors() && r.has_warnings());
        // W102.
        let r = lint_query_text("(x1) (P(x1) & ~P(x1))", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::W102), "{r:?}");
        // W103.
        let r = lint_query_text("(x1) (P(x1) & exists x2. P(x1))", &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::W103), "{r:?}");
        // W104.
        let r = lint_datalog_text("A(x) :- E(x,x).\nT(x,y) :- E(x,y).", Some("T"), &schema);
        assert!(r.diagnostics.iter().any(|d| d.code == diag::W104), "{r:?}");
        // W106 — width 3 on n = 10 exceeds a budget of 100.
        let over = LintConfig {
            budget: Some(100),
            ..cfg()
        };
        let r = lint_query_text(
            "(x1) exists x2. exists x3. (E(x1,x2) & E(x2,x3) & E(x3,x1))",
            &over,
        );
        assert!(r.diagnostics.iter().any(|d| d.code == diag::W106), "{r:?}");
        // W110 — certified width-reducible chain (and I111: the chain's
        // core is acyclic).
        let r = lint_query_text(
            "(x1) exists x2. exists x3. exists x4. (E(x1,x2) & E(x2,x3) & E(x3,x4))",
            &schema,
        );
        let d = r.diagnostics.iter().find(|d| d.code == diag::W110).unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(r.min_width, Some(2));
        assert_eq!(r.certified, Some(true));
        assert!(r.rewritten.is_some());
        assert!(r.has_warnings(), "a certified reduction is a warning");
        // I111 — acyclic conjunctive core is an info, not a warning.
        let d = r.diagnostics.iter().find(|d| d.code == diag::I111).unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(r.acyclic, Some(true));
    }

    #[test]
    fn eso_and_datalog_classify() {
        let r = lint_eso_text("exists2 C/1. forall x1. (C(x1) | P(x1))", &cfg());
        assert_eq!(r.fragment, Some(Fragment::Eso));
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.data_complexity, "NP-complete");
        let r = lint_datalog_text("T(x,y) :- E(x,y).\nT(x,y) :- T(x,z), E(z,y).", None, &cfg());
        assert_eq!(r.fragment, Some(Fragment::Datalog));
        assert_eq!(r.width, 3);
        // Both transitive-closure rule bodies are acyclic: I111 only.
        assert_eq!(r.counts(), (0, 0, 0, 1), "{:?}", r.diagnostics);
        assert_eq!(r.acyclic, Some(true));
        assert_eq!(r.data_complexity, "PTIME-complete");
    }

    #[test]
    fn reports_dedup_and_sort_errors_first() {
        // The iff desugaring duplicates subtrees; identical findings
        // collapse, and errors precede warnings regardless of source
        // order.
        let r = lint_query_text("(x1) ((P(x1) | ~P(x1)) & Zap(x1))", &cfg());
        let w102: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == diag::W102)
            .collect();
        assert_eq!(w102.len(), 1);
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn parse_failure_never_panics_and_is_never_ok() {
        for bad in ["", "(x1", "(x1) ", "(x1) E(", "(x1) E(x1,x2) extra"] {
            let r = lint_query_text(bad, &LintConfig::default());
            assert!(r.has_errors(), "{bad:?} must produce an error");
            assert_eq!(r.language, "unparsed");
        }
        let r = lint_datalog_text("T(x ::", None, &LintConfig::default());
        assert!(r.has_errors());
    }
}
