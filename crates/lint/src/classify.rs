//! Fragment classification and the paper's Tables 1–3 complexity cells.
//!
//! Every concrete query has a finite width `k`, so classification places
//! it in the *bounded-variable* fragment it inhabits — FO^k, FP^k,
//! PFP^k, ESO^k, Datalog — or, when the formula is an existential
//! conjunction of atoms, in the conjunctive-query classes (CQ, and
//! acyclic CQ via GYO ear removal, following Yannakakis and
//! Durand–Grandjean).

use bvq_logic::{Formula, Query, RelRef, Term};
use bvq_optimizer::{is_acyclic, ConjunctiveQuery, CqTerm};

/// The language fragment a query falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fragment {
    /// An acyclic conjunctive query (GYO-reducible).
    AcyclicCq,
    /// A conjunctive query (existential conjunction of atoms).
    Cq,
    /// First-order logic with k variables.
    Fo,
    /// Least/greatest-fixpoint logic with k variables.
    Fp,
    /// Partial/inflationary-fixpoint logic with k variables.
    Pfp,
    /// Existential second-order logic with k first-order variables.
    Eso,
    /// A Datalog program (k = max variables per rule).
    Datalog,
}

impl Fragment {
    /// The fragment's label with its width, e.g. `FO^3` or `acyclic CQ`.
    pub fn label(self, k: usize) -> String {
        match self {
            Fragment::AcyclicCq => format!("acyclic CQ (⊆ FO^{k})"),
            Fragment::Cq => format!("CQ (⊆ FO^{k})"),
            Fragment::Fo => format!("FO^{k}"),
            Fragment::Fp => format!("FP^{k}"),
            Fragment::Pfp => format!("PFP^{k}"),
            Fragment::Eso => format!("ESO^{k}"),
            Fragment::Datalog => format!("DATALOG^{k}"),
        }
    }

    /// Table 1: data complexity (fixed query, database as input).
    pub fn data_complexity(self) -> &'static str {
        match self {
            Fragment::AcyclicCq | Fragment::Cq | Fragment::Fo => "AC0 (⊆ PTIME)",
            Fragment::Fp | Fragment::Datalog => "PTIME-complete",
            Fragment::Pfp => "PSPACE-complete",
            Fragment::Eso => "NP-complete",
        }
    }

    /// Table 2: combined complexity of the bounded-variable fragment
    /// (query and database both input).
    pub fn combined_complexity(self) -> &'static str {
        match self {
            Fragment::AcyclicCq => "PTIME (Yannakakis, acyclic joins)",
            Fragment::Cq | Fragment::Fo => "PTIME-complete (Prop 3.1)",
            Fragment::Fp | Fragment::Datalog => "NP ∩ co-NP (Thm 3.5)",
            Fragment::Pfp => "PSPACE-complete (Thm 3.8)",
            Fragment::Eso => "NP-complete (Cor 3.7)",
        }
    }

    /// Table 3: expression complexity (fixed database, query as input).
    pub fn expression_complexity(self) -> &'static str {
        match self {
            Fragment::AcyclicCq | Fragment::Cq | Fragment::Fo => "ALOGTIME (Cor 4.3)",
            Fragment::Fp | Fragment::Datalog => "NP ∩ co-NP (Thm 3.5)",
            Fragment::Pfp => "PSPACE-complete (Thm 4.6)",
            Fragment::Eso => "NP-complete (Thm 4.5)",
        }
    }
}

/// Extracts the query as a conjunctive query, if it is one: an optional
/// `exists` prefix over a conjunction of database atoms. Equalities,
/// negation, disjunction and fixpoints all disqualify.
pub fn as_cq(q: &Query) -> Option<ConjunctiveQuery> {
    let mut body = &q.formula;
    while let Formula::Exists(_, g) = body {
        body = g;
    }
    let mut atoms = Vec::new();
    if !collect_conjuncts(body, &mut atoms) {
        return None;
    }
    let head: Vec<u32> = q.output.iter().map(|v| v.0).collect();
    let mut cq = ConjunctiveQuery::new(&head);
    for atom in atoms {
        let args: Vec<CqTerm> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => CqTerm::Var(v.0),
                Term::Const(c) => CqTerm::Const(*c),
            })
            .collect();
        let RelRef::Db(name) = &atom.rel else {
            return None;
        };
        cq = cq.atom(name, &args);
    }
    Some(cq)
}

/// Flattens a conjunction of database atoms; `false` if any leaf is not
/// a plain atom.
fn collect_conjuncts<'a>(f: &'a Formula, out: &mut Vec<&'a bvq_logic::Atom>) -> bool {
    match f {
        Formula::And(a, b) => collect_conjuncts(a, out) && collect_conjuncts(b, out),
        Formula::Atom(a) => {
            out.push(a);
            true
        }
        _ => false,
    }
}

/// Classifies a relational query into its fragment.
pub fn classify_query(q: &Query) -> Fragment {
    if let Some(cq) = as_cq(q) {
        if is_acyclic(&cq) {
            return Fragment::AcyclicCq;
        }
        return Fragment::Cq;
    }
    if q.formula.is_first_order() {
        Fragment::Fo
    } else if q.formula.is_fp() {
        Fragment::Fp
    } else {
        Fragment::Pfp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_logic::parser::parse_query;
    use bvq_logic::Var;

    fn classify(src: &str) -> Fragment {
        classify_query(&parse_query(src).unwrap())
    }

    #[test]
    fn classifies_cq_and_acyclic_cq() {
        assert_eq!(classify("(x1,x2) E(x1,x2)"), Fragment::AcyclicCq);
        assert_eq!(
            classify("(x1,x2) exists x3. (E(x1,x3) & E(x3,x2))"),
            Fragment::AcyclicCq
        );
        // The triangle query is cyclic.
        assert_eq!(
            classify("() exists x1. exists x2. exists x3. (E(x1,x2) & E(x2,x3) & E(x3,x1))"),
            Fragment::Cq
        );
        // Disjunction and equality leave the CQ classes.
        assert_eq!(classify("(x1) (P(x1) | P(x1))"), Fragment::Fo);
        assert_eq!(classify("(x1) (E(x1,x1) & x1 = 0)"), Fragment::Fo);
    }

    #[test]
    fn classifies_fixpoint_fragments() {
        assert_eq!(
            classify("(x1) [lfp S(x1). (P(x1) | exists x2. (S(x2) & E(x2,x1)))](x1)"),
            Fragment::Fp
        );
        assert_eq!(classify("(x1) [pfp S(x1). ~S(x1)](x1)"), Fragment::Pfp);
        assert_eq!(classify("(x1) [ifp S(x1). P(x1)](x1)"), Fragment::Pfp);
    }

    #[test]
    fn cq_head_preserves_output_order() {
        let q = parse_query("(x2,x1) E(x1,x2)").unwrap();
        let cq = as_cq(&q).unwrap();
        assert_eq!(cq.head, vec![1, 0]);
        assert_eq!(q.output, vec![Var(1), Var(0)]);
    }

    /// Tables 1–3, cell by cell, for every paper fragment.
    #[test]
    fn tables_1_2_3_cells() {
        use Fragment::*;
        // Table 1 — data complexity.
        assert_eq!(Fo.data_complexity(), "AC0 (⊆ PTIME)");
        assert_eq!(Fp.data_complexity(), "PTIME-complete");
        assert_eq!(Datalog.data_complexity(), "PTIME-complete");
        assert_eq!(Pfp.data_complexity(), "PSPACE-complete");
        assert_eq!(Eso.data_complexity(), "NP-complete");
        // Table 2 — combined complexity of the bounded fragments.
        assert_eq!(Fo.combined_complexity(), "PTIME-complete (Prop 3.1)");
        assert_eq!(Fp.combined_complexity(), "NP ∩ co-NP (Thm 3.5)");
        assert_eq!(Eso.combined_complexity(), "NP-complete (Cor 3.7)");
        assert_eq!(Pfp.combined_complexity(), "PSPACE-complete (Thm 3.8)");
        // Table 3 — expression complexity.
        assert_eq!(Fo.expression_complexity(), "ALOGTIME (Cor 4.3)");
        assert_eq!(Eso.expression_complexity(), "NP-complete (Thm 4.5)");
        assert_eq!(Pfp.expression_complexity(), "PSPACE-complete (Thm 4.6)");
        // The CQ classes refine FO^k.
        assert_eq!(
            AcyclicCq.combined_complexity(),
            "PTIME (Yannakakis, acyclic joins)"
        );
        assert_eq!(Cq.combined_complexity(), "PTIME-complete (Prop 3.1)");
        assert_eq!(AcyclicCq.data_complexity(), Fo.data_complexity());
    }

    #[test]
    fn labels_carry_width() {
        assert_eq!(Fragment::Fo.label(3), "FO^3");
        assert_eq!(Fragment::Pfp.label(2), "PFP^2");
        assert_eq!(Fragment::AcyclicCq.label(3), "acyclic CQ (⊆ FO^3)");
    }
}
