//! Static passes over first-order / fixpoint formulas.
//!
//! All passes are purely syntactic — no database is consulted and no
//! evaluation happens. Each pass walks the formula and (when the query
//! came from text) a mirroring [`SpanNode`] tree in lockstep, so
//! diagnostics can point at the byte range of the offending subformula.

use std::collections::BTreeSet;

use bvq_logic::{Formula, SpanNode, SrcSpan, Term, Var};

use crate::diag::{self, Diagnostic};

/// The subformulas of `f` in AST order (the order [`SpanNode`] children
/// mirror).
fn subformulas(f: &Formula) -> Vec<&Formula> {
    match f {
        Formula::Const(_) | Formula::Atom(_) | Formula::Eq(..) => Vec::new(),
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => vec![g],
        Formula::And(a, b) | Formula::Or(a, b) => vec![a, b],
        Formula::Fix { body, .. } => vec![body],
    }
}

fn span_of(spans: Option<&SpanNode>) -> Option<SrcSpan> {
    spans.map(|n| n.span)
}

fn child(spans: Option<&SpanNode>, i: usize) -> Option<&SpanNode> {
    spans.and_then(|n| n.children.get(i))
}

/// The *range-restricted* variables of `f`: variables guaranteed to be
/// bound to values occurring in the database (or to constants), under
/// the classic safe-range rules — positive atoms restrict their
/// variables, conjunction unions, disjunction intersects, negation
/// restricts nothing.
fn range_restricted(f: &Formula) -> BTreeSet<Var> {
    match f {
        Formula::Const(_) | Formula::Not(_) => BTreeSet::new(),
        Formula::Atom(a) => a
            .args
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect(),
        Formula::Eq(Term::Var(v), Term::Const(_)) | Formula::Eq(Term::Const(_), Term::Var(v)) => {
            std::iter::once(*v).collect()
        }
        Formula::Eq(..) => BTreeSet::new(),
        Formula::And(a, b) => {
            let mut s = range_restricted(a);
            s.extend(range_restricted(b));
            s
        }
        Formula::Or(a, b) => {
            let sb = range_restricted(b);
            range_restricted(a).intersection(&sb).copied().collect()
        }
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            let mut s = range_restricted(g);
            s.remove(v);
            s
        }
        // A fixpoint application restricts its variable arguments like an
        // atom (its result is a relation over the domain).
        Formula::Fix { args, .. } => args
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect(),
    }
}

/// The deepest subformula in which `v` is still free but not
/// range-restricted — the natural place to point the E001 diagnostic.
fn unsafe_witness(f: &Formula, spans: Option<&SpanNode>, v: Var) -> Option<SrcSpan> {
    let here = span_of(spans);
    for (i, g) in subformulas(f).iter().enumerate() {
        if g.free_vars().contains(&v) && !range_restricted(g).contains(&v) {
            return unsafe_witness(g, child(spans, i), v).or(here);
        }
    }
    here
}

/// Safety / range-restriction (BVQ-E001): every free variable of a plain
/// FO query must be range-restricted, else the answer depends on the
/// domain rather than the database. Fixpoint and second-order queries
/// are not checked (a `gfp` legitimately ranges over the whole domain).
pub fn check_safety(f: &Formula, spans: Option<&SpanNode>, out: &mut Vec<Diagnostic>) {
    if !f.is_first_order() {
        return;
    }
    let restricted = range_restricted(f);
    for v in f.free_vars() {
        if !restricted.contains(&v) {
            let span = unsafe_witness(f, spans, v);
            out.push(
                Diagnostic::error(
                    diag::E001,
                    span,
                    format!(
                        "unsafe query: free variable `{v}` is not range-restricted \
                         (it occurs only under negation or in one branch of a disjunction), \
                         so the answer depends on the domain"
                    ),
                )
                .with_help(format!(
                    "conjoin a positive atom that mentions `{v}` in every branch"
                )),
            );
        }
    }
}

/// Dead / degenerate subformula detection (BVQ-W101/W102/W103).
pub fn check_degenerate(f: &Formula, spans: Option<&SpanNode>, out: &mut Vec<Diagnostic>) {
    go_degenerate(f, spans, None, out);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ChainOp {
    And,
    Or,
}

fn go_degenerate(
    f: &Formula,
    spans: Option<&SpanNode>,
    parent: Option<ChainOp>,
    out: &mut Vec<Diagnostic>,
) {
    // W101: a non-trivial subformula that simplifies to a constant.
    if !matches!(f, Formula::Const(_)) {
        if let Formula::Const(b) = f.simplify() {
            out.push(
                Diagnostic::warning(
                    diag::W101,
                    span_of(spans),
                    format!("subformula is trivially {b}: `{f}`"),
                )
                .with_help(format!("replace it with `{b}`")),
            );
            return; // Everything below is subsumed.
        }
    }
    let op = match f {
        Formula::And(..) => Some(ChainOp::And),
        Formula::Or(..) => Some(ChainOp::Or),
        _ => None,
    };
    // W102: at the head of an ∧/∨ chain, look for a complementary pair
    // among the flattened operands.
    if let Some(op) = op {
        if parent != Some(op) {
            let mut operands = Vec::new();
            flatten(f, op, &mut operands);
            if let Some(lit) = complementary_pair(&operands) {
                let (what, always) = match op {
                    ChainOp::And => ("contradictory conjunction", "false"),
                    ChainOp::Or => ("tautological disjunction", "true"),
                };
                out.push(
                    Diagnostic::warning(
                        diag::W102,
                        span_of(spans),
                        format!("{what}: `{lit}` and its negation both occur, so this is always {always}"),
                    )
                    .with_help(format!("replace the whole {} with `{always}`", match op {
                        ChainOp::And => "conjunction",
                        ChainOp::Or => "disjunction",
                    })),
                );
            }
        }
    }
    // W103: vacuous quantifier.
    if let Formula::Exists(v, g) | Formula::Forall(v, g) = f {
        if !g.free_vars().contains(v) {
            out.push(
                Diagnostic::warning(
                    diag::W103,
                    span_of(spans),
                    format!("quantifier binds `{v}` but its body never uses it"),
                )
                .with_help("drop the quantifier (the domain is nonempty)"),
            );
        }
    }
    for (i, g) in subformulas(f).iter().enumerate() {
        go_degenerate(g, child(spans, i), op, out);
    }
}

fn flatten<'a>(f: &'a Formula, op: ChainOp, out: &mut Vec<&'a Formula>) {
    match (f, op) {
        (Formula::And(a, b), ChainOp::And) | (Formula::Or(a, b), ChainOp::Or) => {
            flatten(a, op, out);
            flatten(b, op, out);
        }
        _ => out.push(f),
    }
}

/// Finds an operand whose smart-constructor negation also occurs in the
/// chain; returns the positive form.
fn complementary_pair<'a>(operands: &[&'a Formula]) -> Option<&'a Formula> {
    for a in operands {
        let neg = (*a).clone().not();
        if operands.iter().any(|b| **b == neg) {
            match a {
                Formula::Not(inner) => return Some(inner),
                _ => return Some(a),
            }
        }
    }
    None
}

/// Hypergraph width/acyclicity analysis (BVQ-I111 acyclic core,
/// BVQ-W110 certified width reduction, BVQ-E109 rejected certificate):
/// runs [`bvq_analysis::analyze_formula`] and turns its verdicts into
/// diagnostics. Every reported rewrite carries a certificate already
/// accepted by [`bvq_analysis::certificate::validate`]; a rewrite whose
/// certificate was rejected is an error, never a suggestion.
pub fn check_analysis(
    f: &Formula,
    floor: usize,
    spans: Option<&SpanNode>,
    out: &mut Vec<Diagnostic>,
) -> bvq_analysis::QueryAnalysis {
    let analysis = bvq_analysis::analyze_formula(f, floor);
    if analysis.acyclic == Some(true) {
        out.push(Diagnostic::info(
            diag::I111,
            span_of(spans),
            format!(
                "conjunctive core ({} atom(s)) is α-acyclic: GYO reduction succeeds, \
                 so a semijoin (Yannakakis) plan is available",
                analysis.core_atoms
            ),
        ));
    }
    match analysis.certified {
        Some(true) => {
            let cert = analysis.certificate.as_ref().expect("certified analysis");
            let (k, k2) = (analysis.width, analysis.k_min);
            out.push(
                Diagnostic::warning(
                    diag::W110,
                    span_of(spans),
                    format!(
                        "width reducible {k} → {k2}: a certified rewrite lowers the \
                         intermediate-relation bound from n^{k} to n^{k2} (Prop 3.1)"
                    ),
                )
                .with_help(format!("certified width-{k2} formula: {}", cert.rewritten)),
            );
        }
        Some(false) => {
            out.push(Diagnostic::error(
                diag::E109,
                span_of(spans),
                "a width-reducing rewrite was produced but its certificate failed \
                 validation; the rewrite must not be used",
            ));
        }
        None => {}
    }
    analysis
}

/// Schema conformance (BVQ-E008 unknown relation, BVQ-E003 arity
/// mismatch): checks every database atom of the formula against the
/// relation schema, when one is provided.
pub fn check_schema(
    f: &Formula,
    schema: &[(String, usize)],
    spans: Option<&SpanNode>,
    out: &mut Vec<Diagnostic>,
) {
    for (name, arity) in f.db_relations() {
        match schema.iter().find(|(n, _)| *n == name) {
            None => out.push(
                Diagnostic::error(
                    diag::E008,
                    atom_span(f, spans, &name),
                    format!("unknown relation `{name}`: the database schema does not define it"),
                )
                .with_help(schema_help(schema)),
            ),
            Some((_, expected)) if *expected != arity => out.push(Diagnostic::error(
                diag::E003,
                atom_span(f, spans, &name),
                format!(
                    "relation `{name}` has arity {expected} in the database schema \
                     but is used with {arity} argument(s)"
                ),
            )),
            Some(_) => {}
        }
    }
}

fn schema_help(schema: &[(String, usize)]) -> String {
    let names: Vec<String> = schema.iter().map(|(n, a)| format!("{n}/{a}")).collect();
    format!("available relations: {}", names.join(", "))
}

/// The span of the first database atom named `name`.
fn atom_span(f: &Formula, spans: Option<&SpanNode>, name: &str) -> Option<SrcSpan> {
    if let Formula::Atom(a) = f {
        if a.rel == bvq_logic::RelRef::Db(name.to_string()) {
            return span_of(spans);
        }
    }
    for (i, g) in subformulas(f).iter().enumerate() {
        if let Some(s) = atom_span(g, child(spans, i), name) {
            return Some(s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_logic::parser::parse_spanned;

    fn lint_degenerate(src: &str) -> Vec<Diagnostic> {
        let (f, spans) = parse_spanned(src).unwrap();
        let mut out = Vec::new();
        check_degenerate(&f, Some(&spans), &mut out);
        out
    }

    #[test]
    fn safety_flags_negation_and_disjunction_only() {
        for (src, safe) in [
            ("~P(x1)", false),
            ("P(x1) | E(x1,x2)", false), // x2 only in one branch
            ("P(x1) & ~Q(x1)", true),
            ("P(x1) | exists x2. E(x1,x2)", true),
            ("x1 = 3", true),
            ("x1 = x2", false),
            ("forall x2. E(x1,x2)", true), // conservative: forall passes through
        ] {
            let (f, spans) = parse_spanned(src).unwrap();
            let mut out = Vec::new();
            check_safety(&f, Some(&spans), &mut out);
            assert_eq!(out.is_empty(), safe, "{src}: {out:?}");
            if !safe {
                assert!(out.iter().all(|d| d.code == diag::E001));
                assert!(out[0].span.is_some());
            }
        }
    }

    #[test]
    fn unsafe_witness_points_at_the_negation() {
        let src = "P(x2) & ~Q(x1)";
        let (f, spans) = parse_spanned(src).unwrap();
        let mut out = Vec::new();
        check_safety(&f, Some(&spans), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].span.unwrap().slice(src), "~Q(x1)");
    }

    #[test]
    fn degenerate_detects_constant_subformulas() {
        let out = lint_degenerate("P(x1) & (Q(x1) | true)");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, diag::W101);
        // Writing a literal constant is not flagged …
        assert!(lint_degenerate("P(x1)").is_empty());
        // … and neither is a plain conjunction.
        assert!(lint_degenerate("P(x1) & Q(x1)").is_empty());
    }

    #[test]
    fn degenerate_detects_complementary_literals() {
        let out = lint_degenerate("P(x1) & ~P(x1) & E(x1,x1)");
        assert!(out.iter().any(|d| d.code == diag::W102), "{out:?}");
        let out = lint_degenerate("Q(x1) | ~Q(x1)");
        assert!(out
            .iter()
            .any(|d| d.code == diag::W102 && d.message.contains("tautological")));
        assert!(lint_degenerate("P(x1) & ~Q(x1)").is_empty());
    }

    #[test]
    fn degenerate_detects_vacuous_quantifiers() {
        let out = lint_degenerate("exists x2. P(x1)");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, diag::W103);
        assert!(lint_degenerate("exists x2. P(x2)").is_empty());
    }

    #[test]
    fn analysis_certifies_width_reduction_and_acyclicity() {
        // A 4-variable chain that renames down to width 2.
        let (f, spans) =
            parse_spanned("exists x2. exists x3. exists x4. (E(x1,x2) & E(x2,x3) & E(x3,x4))")
                .unwrap();
        let mut out = Vec::new();
        let analysis = check_analysis(&f, 1, Some(&spans), &mut out);
        assert_eq!(analysis.k_min, 2);
        assert_eq!(analysis.certified, Some(true));
        assert_eq!(analysis.acyclic, Some(true));
        let w = out.iter().find(|d| d.code == diag::W110).expect("W110");
        assert!(w.message.contains("n^2"), "{out:?}");
        assert!(out.iter().any(|d| d.code == diag::I111), "{out:?}");
        let cert = analysis.certificate.expect("certificate");
        assert_eq!(cert.rewritten.free_vars(), f.free_vars());
        assert!(bvq_analysis::validate(&f, &cert).is_ok());
        // Already-minimal queries get no W110 (just the acyclicity fact).
        let (f, spans) = parse_spanned("E(x1,x2)").unwrap();
        let mut out = Vec::new();
        let analysis = check_analysis(&f, 2, Some(&spans), &mut out);
        assert_eq!(analysis.certified, None);
        assert!(out.iter().all(|d| d.code == diag::I111), "{out:?}");
        // A cyclic triangle is never claimed acyclic.
        let (f, spans) = parse_spanned("E(x1,x2) & E(x2,x3) & E(x3,x1)").unwrap();
        let mut out = Vec::new();
        let analysis = check_analysis(&f, 3, Some(&spans), &mut out);
        assert_eq!(analysis.acyclic, Some(false));
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn schema_checks_names_and_arities() {
        let schema = vec![("E".to_string(), 2), ("P".to_string(), 1)];
        let (f, spans) = parse_spanned("E(x1,x2) & Zap(x1)").unwrap();
        let mut out = Vec::new();
        check_schema(&f, &schema, Some(&spans), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, diag::E008);
        assert_eq!(out[0].span.unwrap().slice("E(x1,x2) & Zap(x1)"), "Zap(x1)");

        let (f, spans) = parse_spanned("E(x1)").unwrap();
        let mut out = Vec::new();
        check_schema(&f, &schema, Some(&spans), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, diag::E003);
    }
}
