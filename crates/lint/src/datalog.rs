//! Static passes over Datalog programs.
//!
//! Rule-level structural checks (heads, range restriction, arities),
//! schema conformance of the EDB predicates, and a reachability pass
//! flagging IDB predicates the output never depends on. Spans are the
//! per-rule byte ranges returned by
//! [`bvq_datalog::parse_program_spanned`].

use std::collections::BTreeSet;

use bvq_datalog::{AtomTerm, Program, Rule};
use bvq_logic::SrcSpan;

use crate::diag::{self, Diagnostic};

/// The byte range of rule `i`, when rule spans are known.
fn rule_span(spans: Option<&[(usize, usize)]>, i: usize) -> Option<SrcSpan> {
    spans
        .and_then(|s| s.get(i))
        .map(|&(a, b)| SrcSpan::new(a, b))
}

/// All structural Datalog passes. `output` is the requested output
/// predicate (defaults to the head of the last rule); `schema` is the
/// database relation schema when known.
pub fn check_program(
    p: &Program,
    output: Option<&str>,
    spans: Option<&[(usize, usize)]>,
    schema: Option<&[(String, usize)]>,
    out: &mut Vec<Diagnostic>,
) {
    let idb: Vec<(String, usize)> = p.idb_predicates();
    check_rules(p, spans, out);
    check_arities(p, spans, out);

    // EDB predicates (body predicates that are not IDB) against the
    // database schema.
    if let Some(schema) = schema {
        let mut seen = BTreeSet::new();
        for (i, r) in p.rules.iter().enumerate() {
            for a in &r.body {
                if idb.iter().any(|(n, _)| *n == a.pred) || !seen.insert(a.pred.clone()) {
                    continue;
                }
                match schema.iter().find(|(n, _)| *n == a.pred) {
                    None => out.push(Diagnostic::error(
                        diag::E008,
                        rule_span(spans, i),
                        format!(
                            "predicate `{}` is neither derived by a rule nor a database relation",
                            a.pred
                        ),
                    )),
                    Some((_, arity)) if *arity != a.args.len() => out.push(Diagnostic::error(
                        diag::E003,
                        rule_span(spans, i),
                        format!(
                            "database relation `{}` has arity {arity} but is used with {} argument(s)",
                            a.pred,
                            a.args.len()
                        ),
                    )),
                    Some(_) => {}
                }
            }
        }
    }

    // Output predicate and reachability.
    let output_pred: Option<String> = match output {
        Some(name) => {
            if idb.iter().any(|(n, _)| n == name) {
                Some(name.to_string())
            } else {
                out.push(
                    Diagnostic::error(
                        diag::E007,
                        None,
                        format!("output predicate `{name}` is never derived by any rule"),
                    )
                    .with_help(format!(
                        "derived predicates: {}",
                        idb.iter()
                            .map(|(n, _)| n.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                );
                None
            }
        }
        None => p.rules.last().map(|r| r.head.pred.clone()),
    };
    if let Some(root) = output_pred {
        let reachable = reachable_from(p, &root);
        for (name, _) in &idb {
            if !reachable.contains(name.as_str()) {
                let i = p.rules.iter().position(|r| r.head.pred == *name);
                out.push(
                    Diagnostic::warning(
                        diag::W104,
                        i.and_then(|i| rule_span(spans, i)),
                        format!(
                            "predicate `{name}` is derived but the output `{root}` never \
                             depends on it"
                        ),
                    )
                    .with_help("remove the rule or query the predicate directly"),
                );
            }
        }
    }
}

/// Per-rule checks: duplicate head variables (E005) and range
/// restriction (E004).
fn check_rules(p: &Program, spans: Option<&[(usize, usize)]>, out: &mut Vec<Diagnostic>) {
    for (i, r) in p.rules.iter().enumerate() {
        let mut seen = r.head.vars.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != r.head.vars.len() {
            out.push(Diagnostic::error(
                diag::E005,
                rule_span(spans, i),
                format!(
                    "head of `{}` repeats a variable; head arguments must be distinct",
                    r.head.pred
                ),
            ));
        }
        if !r.is_range_restricted() {
            out.push(
                Diagnostic::error(
                    diag::E004,
                    rule_span(spans, i),
                    format!(
                        "rule for `{}` is not range-restricted: a head variable never \
                         occurs in the body",
                        r.head.pred
                    ),
                )
                .with_help("every head variable must appear in some body atom"),
            );
        }
    }
}

/// Arity consistency across all uses of each predicate (E003), reported
/// at the first conflicting rule.
fn check_arities(p: &Program, spans: Option<&[(usize, usize)]>, out: &mut Vec<Diagnostic>) {
    let mut arities: Vec<(String, usize)> = Vec::new();
    for (i, r) in p.rules.iter().enumerate() {
        let uses = std::iter::once((r.head.pred.as_str(), r.head.vars.len()))
            .chain(r.body.iter().map(|a| (a.pred.as_str(), a.args.len())));
        for (pred, arity) in uses {
            match arities.iter().find(|(n, _)| n == pred) {
                Some((_, a)) if *a != arity => out.push(Diagnostic::error(
                    diag::E003,
                    rule_span(spans, i),
                    format!("predicate `{pred}` is used with arities {a} and {arity}"),
                )),
                Some(_) => {}
                None => arities.push((pred.to_string(), arity)),
            }
        }
    }
}

/// IDB predicates reachable from `root` through rule bodies.
fn reachable_from<'a>(p: &'a Program, root: &'a str) -> BTreeSet<&'a str> {
    let mut reach: BTreeSet<&str> = BTreeSet::new();
    let mut work = vec![root];
    while let Some(pred) = work.pop() {
        if !reach.insert(pred) {
            continue;
        }
        for r in p.rules.iter().filter(|r| r.head.pred == pred) {
            for a in &r.body {
                if !reach.contains(a.pred.as_str()) {
                    work.push(a.pred.as_str());
                }
            }
        }
    }
    reach
}

/// Rule-body hypergraph acyclicity (BVQ-I111): builds one hypergraph
/// per rule body (one hyperedge per atom, over its variables) and runs
/// the GYO reduction. Returns `Some(true)` (and reports the info
/// diagnostic) when every body is α-acyclic, `Some(false)` when some
/// body is cyclic, `None` for empty programs.
pub fn check_rule_acyclicity(p: &Program, out: &mut Vec<Diagnostic>) -> Option<bool> {
    if p.rules.is_empty() {
        return None;
    }
    let all = p.rules.iter().all(|r| {
        let edges: Vec<Vec<u32>> = r
            .body
            .iter()
            .map(|a| {
                let mut vs: Vec<u32> = a
                    .args
                    .iter()
                    .filter_map(|t| match t {
                        AtomTerm::Var(v) => Some(*v),
                        AtomTerm::Const(_) => None,
                    })
                    .collect();
                vs.sort_unstable();
                vs.dedup();
                vs
            })
            .collect();
        bvq_analysis::Hypergraph { edges }.is_acyclic()
    });
    if all {
        out.push(Diagnostic::info(
            diag::I111,
            None,
            format!(
                "all {} rule body hypergraph(s) are α-acyclic (GYO-reducible): each \
                 round can evaluate by semijoins",
                p.rules.len()
            ),
        ));
    }
    Some(all)
}

/// The program's width: the maximum number of distinct variables in any
/// single rule (each round grounds one rule at a time, so intermediate
/// work is bounded by `n^k` for this `k`).
pub fn program_width(p: &Program) -> usize {
    p.rules.iter().map(rule_width).max().unwrap_or(0).max(1)
}

fn rule_width(r: &Rule) -> usize {
    let mut vs: BTreeSet<u32> = r.head.vars.iter().copied().collect();
    for a in &r.body {
        for t in &a.args {
            if let AtomTerm::Var(v) = t {
                vs.insert(*v);
            }
        }
    }
    vs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_datalog::parse_program_spanned;

    fn lint(
        src: &str,
        output: Option<&str>,
        schema: Option<&[(String, usize)]>,
    ) -> Vec<Diagnostic> {
        let (p, spans) = parse_program_spanned(src).unwrap();
        let mut out = Vec::new();
        check_program(&p, output, Some(&spans), schema, &mut out);
        out
    }

    const TC: &str = "T(x,y) :- E(x,y).\nT(x,y) :- T(x,z), E(z,y).";

    fn schema() -> Vec<(String, usize)> {
        vec![("E".to_string(), 2), ("P".to_string(), 1)]
    }

    #[test]
    fn clean_program_is_clean() {
        assert!(lint(TC, Some("T"), Some(&schema())).is_empty());
        assert!(lint(TC, None, None).is_empty());
    }

    #[test]
    fn flags_unrestricted_and_duplicate_heads() {
        let out = lint("Q(x) :- E(y,y).", None, None);
        assert!(out.iter().any(|d| d.code == diag::E004), "{out:?}");
        assert!(out[0].span.is_some());
        // Duplicate heads cannot be written in text (interning), so use
        // the builder.
        let p = Program::new().rule(
            "Q",
            &[0, 0],
            &[("E", &[AtomTerm::Var(0), AtomTerm::Var(0)])],
        );
        let mut out = Vec::new();
        check_program(&p, None, None, None, &mut out);
        assert!(out.iter().any(|d| d.code == diag::E005), "{out:?}");
    }

    #[test]
    fn flags_arity_conflicts_with_rule_span() {
        let src = "Q(x) :- E(x,x).\nR(x) :- E(x).";
        let out = lint(src, None, None);
        let d = out.iter().find(|d| d.code == diag::E003).expect("E003");
        assert_eq!(d.span.unwrap().slice(src), "R(x) :- E(x).");
    }

    #[test]
    fn flags_unknown_edb_and_bad_output() {
        let out = lint("Q(x) :- Zap(x).", None, Some(&schema()));
        assert!(out.iter().any(|d| d.code == diag::E008), "{out:?}");
        let out = lint(TC, Some("Missing"), Some(&schema()));
        assert!(out.iter().any(|d| d.code == diag::E007), "{out:?}");
        // Without a schema, unknown body predicates are assumed EDB.
        assert!(lint("Q(x) :- Zap(x).", None, None).is_empty());
    }

    #[test]
    fn flags_unreachable_idb() {
        let src = "A(x) :- E(x,x).\nT(x,y) :- E(x,y).";
        let out = lint(src, Some("T"), Some(&schema()));
        let d = out.iter().find(|d| d.code == diag::W104).expect("W104");
        assert_eq!(d.span.unwrap().slice(src), "A(x) :- E(x,x).");
        // Both reachable → clean.
        assert!(lint(
            "A(x) :- E(x,x).\nT(x,y) :- E(x,y), A(x).",
            Some("T"),
            Some(&schema())
        )
        .is_empty());
    }

    #[test]
    fn width_is_max_distinct_vars_per_rule() {
        let (p, _) = parse_program_spanned(TC).unwrap();
        assert_eq!(program_width(&p), 3);
        let (p, _) = parse_program_spanned("P(x) :- E(x,x).").unwrap();
        assert_eq!(program_width(&p), 1);
    }
}
