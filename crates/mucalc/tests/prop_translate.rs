//! Seeded property test: on random Kripke structures and random
//! μ-calculus formulas, the direct model checker and the `FP²` translation
//! agree — the executable content of the paper's claim that Lμ is a
//! fragment of `FP²`.

use bvq_core::{CertifiedChecker, FpEvaluator};
use bvq_logic::Query;
use bvq_mucalc::{check_states, to_fp2, CheckStrategy, Kripke, Mu};
use bvq_prng::{for_each_case, Rng};

fn rand_kripke(rng: &mut Rng, max_n: usize) -> Kripke {
    let n = rng.gen_range(2..max_n + 1);
    let mut k = Kripke::new(n);
    // Always declare both props so the database schema is stable.
    k.add_prop("p");
    k.add_prop("q");
    for _ in 0..rng.gen_range(0..2 * n + 1) {
        k.add_transition(rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32);
    }
    for _ in 0..rng.gen_range(0..n + 1) {
        let s = rng.gen_range(0..n) as u32;
        k.label(s, if rng.gen_bool(0.5) { "p" } else { "q" });
    }
    k
}

fn rand_mu(rng: &mut Rng, depth: u32) -> Mu {
    if depth == 0 || rng.gen_ratio(1, 3) {
        return match rng.gen_range(0..4u32) {
            0 => Mu::tt(),
            1 => Mu::ff(),
            2 => Mu::prop("p"),
            _ => Mu::prop("q"),
        };
    }
    let inner = rand_mu(rng, depth - 1);
    match rng.gen_range(0..7u32) {
        0 => inner.not(),
        1 => inner.and(rand_mu(rng, depth - 1)),
        2 => inner.or(rand_mu(rng, depth - 1)),
        3 => inner.diamond(),
        4 => inner.boxed(),
        // Fixpoints: ensure the variable occurs positively by
        // disjoining/conjoining it after a modality.
        5 => Mu::mu("Z", inner.or(Mu::var("Z").diamond())),
        _ => Mu::nu("W", inner.and(Mu::var("W").boxed())),
    }
}

#[test]
fn direct_checker_matches_fp2() {
    for_each_case(96, |_, rng| {
        let k = rand_kripke(rng, 5);
        let f = rand_mu(rng, 3);
        let direct = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        let el = check_states(&k, &f, CheckStrategy::EmersonLei).unwrap();
        assert_eq!(&direct, &el, "strategies disagree on {f}");
        let db = k.to_database();
        let q = Query::new(vec![bvq_logic::Var(0)], to_fp2(&f).unwrap());
        let (rel, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
        let via_fp: Vec<usize> = rel.sorted().iter().map(|t| t[0] as usize).collect();
        assert_eq!(direct.iter().collect::<Vec<_>>(), via_fp, "formula {f}");
    });
}

#[test]
fn certified_decisions_match() {
    for_each_case(96, |_, rng| {
        let k = rand_kripke(rng, 4);
        let f = rand_mu(rng, 2);
        let direct = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        let db = k.to_database();
        let q = Query::new(vec![bvq_logic::Var(0)], to_fp2(&f).unwrap());
        let checker = CertifiedChecker::new(&db, 2);
        for s in 0..k.num_states() as u32 {
            let (member, _, _) = checker.decide(&q, &[s]).unwrap();
            assert_eq!(member, direct.contains(s as usize), "formula {f} state {s}");
        }
    });
}
