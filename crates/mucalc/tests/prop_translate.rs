//! Property test: on random Kripke structures and random μ-calculus
//! formulas, the direct model checker and the `FP²` translation agree —
//! the executable content of the paper's claim that Lμ is a fragment of
//! `FP²`.

use bvq_core::{CertifiedChecker, FpEvaluator};
use bvq_logic::Query;
use bvq_mucalc::{check_states, to_fp2, CheckStrategy, Kripke, Mu};
use proptest::prelude::*;

fn arb_kripke(max_n: usize) -> impl Strategy<Value = Kripke> {
    (2..=max_n).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..2 * n);
        let labels = prop::collection::vec((0..n, 0..2usize), 0..n);
        (Just(n), edges, labels).prop_map(|(n, edges, labels)| {
            let mut k = Kripke::new(n);
            // Always declare both props so the database schema is stable.
            k.add_prop("p");
            k.add_prop("q");
            for (a, b) in edges {
                k.add_transition(a as u32, b as u32);
            }
            for (s, which) in labels {
                k.label(s as u32, if which == 0 { "p" } else { "q" });
            }
            k
        })
    })
}

fn arb_mu(depth: u32) -> BoxedStrategy<Mu> {
    let leaf = prop_oneof![
        Just(Mu::tt()),
        Just(Mu::ff()),
        Just(Mu::prop("p")),
        Just(Mu::prop("q")),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Mu::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(Mu::diamond),
            inner.clone().prop_map(Mu::boxed),
            // Fixpoints: ensure the variable occurs positively by
            // disjoining/conjoining it after a modality.
            inner.clone().prop_map(|f| Mu::mu("Z", f.or(Mu::var("Z").diamond()))),
            inner.prop_map(|f| Mu::nu("W", f.and(Mu::var("W").boxed()))),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn direct_checker_matches_fp2(k in arb_kripke(5), f in arb_mu(3)) {
        let direct = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        let el = check_states(&k, &f, CheckStrategy::EmersonLei).unwrap();
        prop_assert_eq!(&direct, &el, "strategies disagree on {}", f);
        let db = k.to_database();
        let q = Query::new(vec![bvq_logic::Var(0)], to_fp2(&f).unwrap());
        let (rel, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
        let via_fp: Vec<usize> = rel.sorted().iter().map(|t| t[0] as usize).collect();
        prop_assert_eq!(direct.iter().collect::<Vec<_>>(), via_fp, "formula {}", f);
    }

    #[test]
    fn certified_decisions_match(k in arb_kripke(4), f in arb_mu(2)) {
        let direct = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        let db = k.to_database();
        let q = Query::new(vec![bvq_logic::Var(0)], to_fp2(&f).unwrap());
        let checker = CertifiedChecker::new(&db, 2);
        for s in 0..k.num_states() as u32 {
            let (member, _, _) = checker.decide(&q, &[s]).unwrap();
            prop_assert_eq!(member, direct.contains(s as usize), "formula {} state {}", f, s);
        }
    }
}
