//! The embedding Lμ → `FP²` (§1 of the paper).
//!
//! States are database elements, propositions unary relations, transitions
//! the binary relation `E`. A μ-calculus formula becomes an `FP²` formula
//! with free variable `x₁` ("the current state"), using the §2.2
//! variable-reuse trick for the modalities:
//!
//! ```text
//! ⟦◇φ⟧ = ∃x₂ (E(x₁,x₂) ∧ ∃x₁ (x₁ = x₂ ∧ ⟦φ⟧))
//! ⟦□φ⟧ = ∀x₂ (E(x₁,x₂) → ∃x₁ (x₁ = x₂ ∧ ⟦φ⟧))
//! ⟦μZ.φ⟧ = [lfp Z(x₁). ⟦φ⟧](x₁)
//! ```
//!
//! Only two individual variables ever appear, so Theorem 3.5's
//! `NP ∩ co-NP` bound for `FP²` applies to μ-calculus model checking —
//! the paper's re-proof of the [EJS93] bound.

use bvq_logic::{Formula, Term, Var};

use crate::ast::{Mu, MuError};

/// Translates a μ-calculus formula into an `FP²` formula with free
/// variable `x₁` denoting the current state.
///
/// The input is normalised to NNF first (the FP embedding needs recursion
/// variables positive, which NNF guarantees).
pub fn to_fp2(f: &Mu) -> Result<Formula, MuError> {
    let nnf = f.nnf();
    nnf.validate()?;
    Ok(tr(&nnf))
}

fn tr(f: &Mu) -> Formula {
    let x1 = Term::Var(Var(0));
    let x2 = Term::Var(Var(1));
    match f {
        Mu::Const(b) => Formula::Const(*b),
        Mu::Prop(p) => Formula::atom(p, [x1]),
        Mu::Var(z) => Formula::rel_var(z, [x1]),
        Mu::Not(g) => tr(g).not(),
        Mu::And(a, b) => tr(a).and(tr(b)),
        Mu::Or(a, b) => tr(a).or(tr(b)),
        Mu::Diamond(g) => {
            // ∃x2 (E(x1,x2) ∧ ∃x1 (x1 = x2 ∧ ⟦g⟧))
            let rebound = Formula::Eq(x1, x2).and(tr(g)).exists(Var(0));
            Formula::atom("E", [x1, x2]).and(rebound).exists(Var(1))
        }
        Mu::Box_(g) => {
            let rebound = Formula::Eq(x1, x2).and(tr(g)).exists(Var(0));
            Formula::atom("E", [x1, x2]).implies(rebound).forall(Var(1))
        }
        Mu::Mu(z, g) => Formula::lfp(z, vec![Var(0)], tr(g), vec![x1]),
        Mu::Nu(z, g) => Formula::gfp(z, vec![Var(0)], tr(g), vec![x1]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_mu;
    use crate::checker::{check_states, CheckStrategy};
    use crate::kripke::Kripke;
    use bvq_core::FpEvaluator;
    use bvq_logic::Query;

    fn model() -> Kripke {
        let mut k = Kripke::new(4);
        k.add_transition(0, 1);
        k.add_transition(1, 2);
        k.add_transition(2, 0);
        k.add_transition(0, 3);
        k.label(2, "goal");
        k.label(0, "init");
        k
    }

    #[test]
    fn translation_is_fp2() {
        let f = parse_mu("nu Z. mu Y. <>((goal & Z) | Y)").unwrap();
        let t = to_fp2(&f).unwrap();
        assert_eq!(t.width(), 2, "Lμ must land in FP²");
        assert!(t.validate_fp().is_ok());
        assert_eq!(t.alternation_depth(), f.alternation_depth());
    }

    #[test]
    fn translation_agrees_with_direct_checker() {
        let k = model();
        let db = k.to_database();
        for src in [
            "goal",
            "<>goal",
            "[]goal",
            "mu Z. (goal | <>Z)",
            "nu Z. (!goal & []Z)",
            "nu Z. <>Z",
            "nu Z. mu Y. <>((goal & Z) | Y)",
            "mu Y. (init | <>true & []Y)",
        ] {
            let f = parse_mu(src).unwrap();
            let direct = check_states(&k, &f, CheckStrategy::Naive).unwrap();
            let q = Query::new(vec![bvq_logic::Var(0)], to_fp2(&f).unwrap());
            let (rel, _) = FpEvaluator::new(&db, 2).eval_query(&q).unwrap();
            let via_fp: Vec<usize> = rel.sorted().iter().map(|t| t[0] as usize).collect();
            assert_eq!(direct.iter().collect::<Vec<_>>(), via_fp, "formula {src}");
        }
    }

    #[test]
    fn certified_model_checking() {
        // The NP ∩ co-NP pipeline end to end: translate, certify, decide.
        let k = model();
        let db = k.to_database();
        let f = parse_mu("nu Z. mu Y. <>((goal & Z) | Y)").unwrap();
        let direct = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        let q = Query::new(vec![bvq_logic::Var(0)], to_fp2(&f).unwrap());
        let checker = bvq_core::CertifiedChecker::new(&db, 2);
        for s in 0..4u32 {
            let (member, size, _) = checker.decide(&q, &[s]).unwrap();
            assert_eq!(member, direct.contains(s as usize), "state {s}");
            assert!(size > 0);
        }
    }
}
