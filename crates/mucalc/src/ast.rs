//! The propositional μ-calculus AST.

use std::fmt;

/// A μ-calculus formula.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mu {
    /// Constant.
    Const(bool),
    /// An atomic proposition.
    Prop(String),
    /// A fixpoint variable occurrence.
    Var(String),
    /// Negation (must not cross fixpoint variables oddly —
    /// [`Mu::validate`]).
    Not(Box<Mu>),
    /// Conjunction.
    And(Box<Mu>, Box<Mu>),
    /// Disjunction.
    Or(Box<Mu>, Box<Mu>),
    /// `◇φ`: some successor satisfies φ.
    Diamond(Box<Mu>),
    /// `□φ`: every successor satisfies φ.
    Box_(Box<Mu>),
    /// Least fixpoint `μZ.φ`.
    Mu(String, Box<Mu>),
    /// Greatest fixpoint `νZ.φ`.
    Nu(String, Box<Mu>),
}

/// Errors for μ-calculus formulas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MuError {
    /// A fixpoint variable occurs under an odd number of negations.
    NotPositive(String),
    /// A fixpoint variable occurs free.
    UnboundVariable(String),
    /// Parse error.
    Parse {
        /// Byte position.
        position: usize,
        /// Message.
        message: String,
    },
}

impl fmt::Display for MuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuError::NotPositive(z) => write!(f, "variable `{z}` occurs negatively"),
            MuError::UnboundVariable(z) => write!(f, "unbound fixpoint variable `{z}`"),
            MuError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for MuError {}

impl Mu {
    /// `true`.
    pub fn tt() -> Mu {
        Mu::Const(true)
    }

    /// `false`.
    pub fn ff() -> Mu {
        Mu::Const(false)
    }

    /// A proposition.
    pub fn prop(name: &str) -> Mu {
        Mu::Prop(name.to_string())
    }

    /// A fixpoint variable.
    pub fn var(name: &str) -> Mu {
        Mu::Var(name.to_string())
    }

    /// Negation (collapses double negations).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Mu {
        match self {
            Mu::Const(b) => Mu::Const(!b),
            Mu::Not(inner) => *inner,
            f => Mu::Not(Box::new(f)),
        }
    }

    /// Conjunction.
    pub fn and(self, other: Mu) -> Mu {
        Mu::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Mu) -> Mu {
        Mu::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: Mu) -> Mu {
        self.not().or(other)
    }

    /// `◇self`.
    pub fn diamond(self) -> Mu {
        Mu::Diamond(Box::new(self))
    }

    /// `□self`.
    pub fn boxed(self) -> Mu {
        Mu::Box_(Box::new(self))
    }

    /// `μz. self`.
    #[allow(clippy::self_named_constructors)] // μ is the operator's name
    pub fn mu(z: &str, body: Mu) -> Mu {
        Mu::Mu(z.to_string(), Box::new(body))
    }

    /// `νz. self`.
    pub fn nu(z: &str, body: Mu) -> Mu {
        Mu::Nu(z.to_string(), Box::new(body))
    }

    /// Formula size (AST nodes).
    pub fn size(&self) -> usize {
        match self {
            Mu::Const(_) | Mu::Prop(_) | Mu::Var(_) => 1,
            Mu::Not(g) | Mu::Diamond(g) | Mu::Box_(g) | Mu::Mu(_, g) | Mu::Nu(_, g) => 1 + g.size(),
            Mu::And(a, b) | Mu::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Alternation depth (Emerson–Lei style), matching
    /// `bvq_logic::Formula::alternation_depth` on the translation.
    pub fn alternation_depth(&self) -> usize {
        fn ad(f: &Mu) -> usize {
            match f {
                Mu::Const(_) | Mu::Prop(_) | Mu::Var(_) => 0,
                Mu::Not(g) | Mu::Diamond(g) | Mu::Box_(g) => ad(g),
                Mu::And(a, b) | Mu::Or(a, b) => ad(a).max(ad(b)),
                Mu::Mu(z, g) | Mu::Nu(z, g) => {
                    let least = matches!(f, Mu::Mu(..));
                    let mut d = ad(g).max(1);
                    if let Some(m) = max_alt(g, least, z) {
                        d = d.max(m + 1);
                    }
                    d
                }
            }
        }
        fn max_alt(f: &Mu, outer_least: bool, z: &str) -> Option<usize> {
            match f {
                Mu::Const(_) | Mu::Prop(_) | Mu::Var(_) => None,
                Mu::Not(g) | Mu::Diamond(g) | Mu::Box_(g) => max_alt(g, outer_least, z),
                Mu::And(a, b) | Mu::Or(a, b) => {
                    match (max_alt(a, outer_least, z), max_alt(b, outer_least, z)) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        (x, y) => x.or(y),
                    }
                }
                Mu::Mu(w, g) | Mu::Nu(w, g) => {
                    if w == z {
                        return None;
                    }
                    let this_least = matches!(f, Mu::Mu(..));
                    let own = if this_least != outer_least && mentions(g, z) {
                        Some(ad(f))
                    } else {
                        None
                    };
                    match (own, max_alt(g, outer_least, z)) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        (x, y) => x.or(y),
                    }
                }
            }
        }
        fn mentions(f: &Mu, z: &str) -> bool {
            match f {
                Mu::Var(w) => w == z,
                Mu::Const(_) | Mu::Prop(_) => false,
                Mu::Not(g) | Mu::Diamond(g) | Mu::Box_(g) => mentions(g, z),
                Mu::And(a, b) | Mu::Or(a, b) => mentions(a, z) || mentions(b, z),
                Mu::Mu(w, g) | Mu::Nu(w, g) => w != z && mentions(g, z),
            }
        }
        ad(self)
    }

    /// Validates: all fixpoint variables bound, and each occurs under an
    /// even number of negations within its binder.
    pub fn validate(&self) -> Result<(), MuError> {
        fn go(f: &Mu, bound: &mut Vec<String>, positive: bool) -> Result<(), MuError> {
            match f {
                Mu::Const(_) | Mu::Prop(_) => Ok(()),
                Mu::Var(z) => {
                    if !bound.iter().any(|b| b == z) {
                        Err(MuError::UnboundVariable(z.clone()))
                    } else if !positive {
                        Err(MuError::NotPositive(z.clone()))
                    } else {
                        Ok(())
                    }
                }
                Mu::Not(g) => go(g, bound, !positive),
                Mu::And(a, b) | Mu::Or(a, b) => {
                    go(a, bound, positive)?;
                    go(b, bound, positive)
                }
                Mu::Diamond(g) | Mu::Box_(g) => go(g, bound, positive),
                Mu::Mu(z, g) | Mu::Nu(z, g) => {
                    // Polarity resets per binder: occurrences of z must be
                    // positive relative to this binder. We check by
                    // requiring the body to be positive in z from here,
                    // tracked via the `positive` flag relative to each
                    // binder — conservatively, we require global positive
                    // polarity, which the NNF establishes.
                    bound.push(z.clone());
                    let r = go(g, bound, positive);
                    bound.pop();
                    r
                }
            }
        }
        go(&self.nnf(), &mut Vec::new(), true)
    }

    /// Negation normal form: negations pushed to propositions, fixpoints
    /// dualized (`¬μZ.φ ≡ νZ.¬φ[Z:=¬Z]`).
    pub fn nnf(&self) -> Mu {
        fn neg_var(f: &Mu, z: &str) -> Mu {
            match f {
                Mu::Var(w) if w == z => f.clone().not(),
                Mu::Const(_) | Mu::Prop(_) | Mu::Var(_) => f.clone(),
                Mu::Not(g) => Mu::Not(Box::new(neg_var(g, z))),
                Mu::And(a, b) => neg_var(a, z).and(neg_var(b, z)),
                Mu::Or(a, b) => neg_var(a, z).or(neg_var(b, z)),
                Mu::Diamond(g) => neg_var(g, z).diamond(),
                Mu::Box_(g) => neg_var(g, z).boxed(),
                Mu::Mu(w, g) | Mu::Nu(w, g) => {
                    let body = if w == z { (**g).clone() } else { neg_var(g, z) };
                    if matches!(f, Mu::Mu(..)) {
                        Mu::mu(w, body)
                    } else {
                        Mu::nu(w, body)
                    }
                }
            }
        }
        fn go(f: &Mu, neg: bool) -> Mu {
            match f {
                Mu::Const(b) => Mu::Const(*b != neg),
                Mu::Prop(_) | Mu::Var(_) => {
                    if neg {
                        f.clone().not()
                    } else {
                        f.clone()
                    }
                }
                Mu::Not(g) => go(g, !neg),
                Mu::And(a, b) => {
                    let (a, b) = (go(a, neg), go(b, neg));
                    if neg {
                        a.or(b)
                    } else {
                        a.and(b)
                    }
                }
                Mu::Or(a, b) => {
                    let (a, b) = (go(a, neg), go(b, neg));
                    if neg {
                        a.and(b)
                    } else {
                        a.or(b)
                    }
                }
                Mu::Diamond(g) => {
                    let g = go(g, neg);
                    if neg {
                        g.boxed()
                    } else {
                        g.diamond()
                    }
                }
                Mu::Box_(g) => {
                    let g = go(g, neg);
                    if neg {
                        g.diamond()
                    } else {
                        g.boxed()
                    }
                }
                Mu::Mu(z, g) => {
                    if neg {
                        Mu::nu(z, go(&neg_var(g, z), true))
                    } else {
                        Mu::mu(z, go(g, false))
                    }
                }
                Mu::Nu(z, g) => {
                    if neg {
                        Mu::mu(z, go(&neg_var(g, z), true))
                    } else {
                        Mu::nu(z, go(g, false))
                    }
                }
            }
        }
        go(self, false)
    }
}

impl fmt::Display for Mu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mu::Const(true) => write!(f, "true"),
            Mu::Const(false) => write!(f, "false"),
            Mu::Prop(p) => write!(f, "{p}"),
            Mu::Var(z) => write!(f, "{z}"),
            Mu::Not(g) => write!(f, "!{g}"),
            Mu::And(a, b) => write!(f, "({a} & {b})"),
            Mu::Or(a, b) => write!(f, "({a} | {b})"),
            Mu::Diamond(g) => write!(f, "<>{g}"),
            Mu::Box_(g) => write!(f, "[]{g}"),
            Mu::Mu(z, g) => write!(f, "(mu {z}. {g})"),
            Mu::Nu(z, g) => write!(f, "(nu {z}. {g})"),
        }
    }
}

/// Parses a μ-calculus formula.
///
/// Grammar: `imp := or ('->' imp)?` (right-assoc, desugared to `¬a ∨ b`),
/// `or := and ('|' and)*`, `and := unary ('&' unary)*`,
/// `unary := '!' unary | '<>' unary | '[]' unary | ('mu'|'nu') ident '.'
/// unary | 'true' | 'false' | ident | '(' formula ')'`.
/// An identifier is a variable when a binder of that name is in scope,
/// otherwise a proposition.
pub fn parse_mu(input: &str) -> Result<Mu, MuError> {
    let mut p = MuParser {
        src: input.as_bytes(),
        pos: 0,
        scope: Vec::new(),
    };
    let f = p.imp_level()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(MuError::Parse {
            position: p.pos,
            message: "trailing input".into(),
        });
    }
    f.validate()?;
    Ok(f)
}

struct MuParser<'a> {
    src: &'a [u8],
    pos: usize,
    scope: Vec<String>,
}

impl MuParser<'_> {
    fn err<T>(&self, message: &str) -> Result<T, MuError> {
        Err(MuError::Parse {
            position: self.pos,
            message: message.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn try_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, MuError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start || self.src[start].is_ascii_digit() {
            return self.err("expected identifier");
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn imp_level(&mut self) -> Result<Mu, MuError> {
        let f = self.or_level()?;
        if self.try_str("->") {
            let g = self.imp_level()?;
            return Ok(f.implies(g));
        }
        Ok(f)
    }

    fn or_level(&mut self) -> Result<Mu, MuError> {
        let mut f = self.and_level()?;
        while self.try_str("|") {
            f = f.or(self.and_level()?);
        }
        Ok(f)
    }

    fn and_level(&mut self) -> Result<Mu, MuError> {
        let mut f = self.unary()?;
        while self.try_str("&") {
            f = f.and(self.unary()?);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Mu, MuError> {
        if self.try_str("!") {
            return Ok(self.unary()?.not());
        }
        if self.try_str("<>") {
            return Ok(self.unary()?.diamond());
        }
        if self.try_str("[]") {
            return Ok(self.unary()?.boxed());
        }
        if self.try_str("(") {
            let f = self.imp_level()?;
            if !self.try_str(")") {
                return self.err("expected `)`");
            }
            return Ok(f);
        }
        let id = self.ident()?;
        match id.as_str() {
            "true" => Ok(Mu::tt()),
            "false" => Ok(Mu::ff()),
            "mu" | "nu" => {
                let z = self.ident()?;
                if !self.try_str(".") {
                    return self.err("expected `.` after fixpoint variable");
                }
                self.scope.push(z.clone());
                let body = self.unary();
                self.scope.pop();
                let body = body?;
                Ok(if id == "mu" {
                    Mu::mu(&z, body)
                } else {
                    Mu::nu(&z, body)
                })
            }
            _ => {
                if self.scope.contains(&id) {
                    Ok(Mu::var(&id))
                } else {
                    Ok(Mu::prop(&id))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let f = parse_mu("mu Z. (p | <>Z)").unwrap();
        assert_eq!(f, Mu::mu("Z", Mu::prop("p").or(Mu::var("Z").diamond())));
        assert_eq!(f.to_string(), "(mu Z. (p | <>Z))");
        // Round-trip.
        assert_eq!(parse_mu(&f.to_string()).unwrap(), f);
    }

    #[test]
    fn scope_determines_prop_vs_var() {
        let f = parse_mu("mu Z. (Z | Y)").unwrap();
        // Y is a proposition (unbound name), Z a variable.
        assert_eq!(f, Mu::mu("Z", Mu::var("Z").or(Mu::prop("Y"))));
    }

    #[test]
    fn validation_rejects_negative_variables() {
        assert!(matches!(parse_mu("mu Z. !Z"), Err(MuError::NotPositive(_))));
        assert!(parse_mu("mu Z. !!Z").is_ok());
        assert!(parse_mu("mu Z. !p & Z").is_ok());
    }

    #[test]
    fn nnf_dualizes_fixpoints() {
        let f = parse_mu("mu Z. (p | <>Z)").unwrap();
        let neg = f.clone().not().nnf();
        // ¬μZ.(p ∨ ◇Z) = νZ.(¬p ∧ □Z)
        let expected = Mu::nu("Z", Mu::prop("p").not().and(Mu::var("Z").boxed()));
        assert_eq!(neg, expected);
        assert!(neg.validate().is_ok());
    }

    #[test]
    fn alternation_depth_examples() {
        assert_eq!(parse_mu("p").unwrap().alternation_depth(), 0);
        assert_eq!(parse_mu("mu Z. (p | <>Z)").unwrap().alternation_depth(), 1);
        // νZ.μY.□((p ∧ Z) ∨ Y): alternation 2.
        let f = parse_mu("nu Z. mu Y. []((p & Z) | Y)").unwrap();
        assert_eq!(f.alternation_depth(), 2);
        // Independent nesting stays at 1.
        let g = parse_mu("nu Z. (Z & mu Y. (p | <>Y))").unwrap();
        assert_eq!(g.alternation_depth(), 1);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(parse_mu("p & q").unwrap().size(), 3);
        assert_eq!(parse_mu("<>p").unwrap().size(), 2);
    }
}
