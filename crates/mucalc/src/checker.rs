//! Direct μ-calculus model checkers.
//!
//! Semantics over state sets (bitsets). Two strategies, mirroring
//! `bvq-core`'s fixpoint strategies:
//!
//! * [`CheckStrategy::Naive`] — every fixpoint restarts from ⊥/⊤ at each
//!   application: `O(n^l)` iterations for nesting depth `l`;
//! * [`CheckStrategy::EmersonLei`] — same-polarity fixpoints warm-start
//!   across enclosing iterations, opposite-polarity ones reset.

use bvq_relation::BitSet;

use crate::ast::{Mu, MuError};
use crate::kripke::Kripke;

/// Fixpoint evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckStrategy {
    /// Restart nested fixpoints every time.
    Naive,
    /// Emerson–Lei warm-starting.
    EmersonLei,
}

/// Model checks `f` on `k`: does `state` satisfy `f`?
pub fn check(k: &Kripke, f: &Mu, state: u32) -> Result<bool, MuError> {
    Ok(check_states(k, f, CheckStrategy::EmersonLei)?.contains(state as usize))
}

/// Computes the set of states satisfying `f`.
pub fn check_states(k: &Kripke, f: &Mu, strategy: CheckStrategy) -> Result<BitSet, MuError> {
    let nnf = f.nnf();
    nnf.validate()?;
    let mut env: Vec<(String, BitSet)> = Vec::new();
    let mut counter = IterCounter::default();
    eval(k, &nnf, &mut env, strategy, &mut counter)
}

/// Computes the satisfying set and reports fixpoint iteration counts.
pub fn check_states_counting(
    k: &Kripke,
    f: &Mu,
    strategy: CheckStrategy,
) -> Result<(BitSet, u64), MuError> {
    let nnf = f.nnf();
    nnf.validate()?;
    let mut env: Vec<(String, BitSet)> = Vec::new();
    let mut counter = IterCounter::default();
    let s = eval(k, &nnf, &mut env, strategy, &mut counter)?;
    Ok((s, counter.iterations))
}

#[derive(Default)]
struct IterCounter {
    iterations: u64,
    /// Warm-start storage for Emerson–Lei: formula-identity keyed by the
    /// binder pointer path is impractical here, so we key on the formula
    /// structure address within the NNF tree, which is stable during one
    /// `check_states` call.
    warm: Vec<(usize, BitSet)>,
}

fn pre_diamond(k: &Kripke, target: &BitSet) -> BitSet {
    let mut out = BitSet::new(k.num_states());
    for s in 0..k.num_states() {
        if k.successors(s as u32)
            .iter()
            .any(|&t| target.contains(t as usize))
        {
            out.insert(s);
        }
    }
    out
}

fn pre_box(k: &Kripke, target: &BitSet) -> BitSet {
    let mut out = BitSet::new(k.num_states());
    for s in 0..k.num_states() {
        if k.successors(s as u32)
            .iter()
            .all(|&t| target.contains(t as usize))
        {
            out.insert(s);
        }
    }
    out
}

fn eval(
    k: &Kripke,
    f: &Mu,
    env: &mut Vec<(String, BitSet)>,
    strategy: CheckStrategy,
    counter: &mut IterCounter,
) -> Result<BitSet, MuError> {
    let n = k.num_states();
    Ok(match f {
        Mu::Const(true) => BitSet::full(n),
        Mu::Const(false) => BitSet::new(n),
        Mu::Prop(p) => k.states_with(p),
        Mu::Var(z) => env
            .iter()
            .rev()
            .find(|(w, _)| w == z)
            .map(|(_, s)| s.clone())
            .ok_or_else(|| MuError::UnboundVariable(z.clone()))?,
        Mu::Not(g) => {
            let mut s = eval(k, g, env, strategy, counter)?;
            s.complement();
            s
        }
        Mu::And(a, b) => {
            let mut sa = eval(k, a, env, strategy, counter)?;
            let sb = eval(k, b, env, strategy, counter)?;
            sa.intersect_with(&sb);
            sa
        }
        Mu::Or(a, b) => {
            let mut sa = eval(k, a, env, strategy, counter)?;
            let sb = eval(k, b, env, strategy, counter)?;
            sa.union_with(&sb);
            sa
        }
        Mu::Diamond(g) => pre_diamond(k, &eval(k, g, env, strategy, counter)?),
        Mu::Box_(g) => pre_box(k, &eval(k, g, env, strategy, counter)?),
        Mu::Mu(z, g) | Mu::Nu(z, g) => {
            let least = matches!(f, Mu::Mu(..));
            let node_id = f as *const Mu as usize;
            let mut cur = match strategy {
                CheckStrategy::EmersonLei => counter
                    .warm
                    .iter()
                    .find(|(id, _)| *id == node_id)
                    .map(|(_, s)| s.clone())
                    .unwrap_or_else(|| {
                        if least {
                            BitSet::new(n)
                        } else {
                            BitSet::full(n)
                        }
                    }),
                CheckStrategy::Naive => {
                    if least {
                        BitSet::new(n)
                    } else {
                        BitSet::full(n)
                    }
                }
            };
            loop {
                counter.iterations += 1;
                env.push((z.clone(), cur.clone()));
                let next = eval(k, g, env, strategy, counter);
                env.pop();
                let next = next?;
                if next == cur {
                    break;
                }
                cur = next;
                if strategy == CheckStrategy::EmersonLei {
                    // Reset warm values of opposite-polarity sub-fixpoints.
                    reset_opposite(g, least, counter);
                }
            }
            if strategy == CheckStrategy::EmersonLei {
                match counter.warm.iter_mut().find(|(id, _)| *id == node_id) {
                    Some(slot) => slot.1 = cur.clone(),
                    None => counter.warm.push((node_id, cur.clone())),
                }
            }
            cur
        }
    })
}

/// Removes warm entries for top-level sub-fixpoints of `g` with polarity
/// opposite to `outer_least`.
fn reset_opposite(g: &Mu, outer_least: bool, counter: &mut IterCounter) {
    match g {
        Mu::Const(_) | Mu::Prop(_) | Mu::Var(_) => {}
        Mu::Not(h) | Mu::Diamond(h) | Mu::Box_(h) => reset_opposite(h, outer_least, counter),
        Mu::And(a, b) | Mu::Or(a, b) => {
            reset_opposite(a, outer_least, counter);
            reset_opposite(b, outer_least, counter);
        }
        Mu::Mu(_, _) | Mu::Nu(_, _) => {
            let this_least = matches!(g, Mu::Mu(..));
            if this_least != outer_least {
                let id = g as *const Mu as usize;
                counter.warm.retain(|(w, _)| *w != id);
            }
            // Same-polarity children keep their values; their own updates
            // will reset deeper opposite-polarity descendants.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_mu;

    /// 0 → 1 → 2 → 0 cycle plus a dead-end 3 reachable from 0; `goal` at 2.
    fn model() -> Kripke {
        let mut k = Kripke::new(4);
        k.add_transition(0, 1);
        k.add_transition(1, 2);
        k.add_transition(2, 0);
        k.add_transition(0, 3);
        k.label(2, "goal");
        k
    }

    #[test]
    fn reachability_mu() {
        // μZ. goal ∨ ◇Z — "goal reachable".
        let k = model();
        let f = parse_mu("mu Z. (goal | <>Z)").unwrap();
        let s = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(check(&k, &f, 1).unwrap());
        assert!(!check(&k, &f, 3).unwrap());
    }

    #[test]
    fn safety_nu() {
        // νZ. ¬goal ∧ □Z — "goal never reached" (on all paths).
        let k = model();
        let f = parse_mu("nu Z. (!goal & []Z)").unwrap();
        let s = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        // Only state 3 (dead end, no goal) satisfies it: 0 can reach goal…
        // □ on a dead end is vacuous.
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn infinite_path_nu() {
        // νZ. ◇Z — "some infinite path".
        let k = model();
        let f = parse_mu("nu Z. <>Z").unwrap();
        let s = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn strategies_agree() {
        let k = model();
        for src in [
            "mu Z. (goal | <>Z)",
            "nu Z. mu Y. (((goal & <>Z)) | <>Y)", // infinitely often goal
            "nu Z. (mu Y. (goal | []Y) & []Z)",
            "mu Z. (goal | !<>true | <>Z)",
        ] {
            let f = parse_mu(src).unwrap();
            let a = check_states(&k, &f, CheckStrategy::Naive).unwrap();
            let b = check_states(&k, &f, CheckStrategy::EmersonLei).unwrap();
            assert_eq!(a, b, "formula {src}");
        }
    }

    #[test]
    fn infinitely_often_on_cycle() {
        // νZ.μY.◇((goal ∧ Z) ∨ Y): some path visiting goal infinitely often.
        let k = model();
        let f = parse_mu("nu Z. mu Y. <>((goal & Z) | Y)").unwrap();
        let s = check_states(&k, &f, CheckStrategy::Naive).unwrap();
        // The cycle 0→1→2→0 visits goal (state 2) infinitely often.
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn emerson_lei_uses_fewer_iterations() {
        // Longer chain into a cycle; alternating formula.
        let n = 24;
        let mut k = Kripke::new(n);
        for i in 0..n - 2 {
            k.add_transition(i as u32, i as u32 + 1);
        }
        k.add_transition(n as u32 - 2, n as u32 - 3);
        k.label(n as u32 - 2, "goal");
        let f = parse_mu("nu Z. mu Y. <>((goal & Z) | Y)").unwrap();
        let (a, naive_iters) = check_states_counting(&k, &f, CheckStrategy::Naive).unwrap();
        let (b, el_iters) = check_states_counting(&k, &f, CheckStrategy::EmersonLei).unwrap();
        assert_eq!(a, b);
        assert!(
            el_iters <= naive_iters,
            "EL {el_iters} > naive {naive_iters}"
        );
    }
}
