//! CTL operators as μ-calculus derived forms.
//!
//! The standard embeddings; model checking CTL through these is how the
//! examples and benchmarks phrase their specifications. Alternation depth
//! is 1 throughout (CTL is alternation-free).

use crate::ast::Mu;

/// `EX φ` — some successor satisfies φ.
pub fn ex(phi: Mu) -> Mu {
    phi.diamond()
}

/// `AX φ` — all successors satisfy φ.
pub fn ax(phi: Mu) -> Mu {
    phi.boxed()
}

/// `EF φ` — φ reachable: `μZ. φ ∨ ◇Z`.
pub fn ef(phi: Mu) -> Mu {
    Mu::mu("Zef", phi.or(Mu::var("Zef").diamond()))
}

/// `AF φ` — φ inevitable: `μZ. φ ∨ (◇true ∧ □Z)`.
///
/// The `◇true` conjunct makes dead-end states *not* inevitably reach φ
/// unless they satisfy it, matching the total-path reading on structures
/// with deadlocks.
pub fn af(phi: Mu) -> Mu {
    Mu::mu(
        "Zaf",
        phi.or(Mu::tt().diamond().and(Mu::var("Zaf").boxed())),
    )
}

/// `EG φ` — some path where φ always holds: `νZ. φ ∧ (◇Z ∨ ¬◇true)`.
///
/// Dead ends count as (finite, maximal) paths.
pub fn eg(phi: Mu) -> Mu {
    Mu::nu(
        "Zeg",
        phi.clone()
            .and(Mu::var("Zeg").diamond().or(Mu::tt().diamond().not())),
    )
}

/// `AG φ` — φ holds on all reachable states: `νZ. φ ∧ □Z`.
pub fn ag(phi: Mu) -> Mu {
    Mu::nu("Zag", phi.and(Mu::var("Zag").boxed()))
}

/// `E[φ U ψ]` — `μZ. ψ ∨ (φ ∧ ◇Z)`.
pub fn eu(phi: Mu, psi: Mu) -> Mu {
    Mu::mu("Zeu", psi.or(phi.and(Mu::var("Zeu").diamond())))
}

/// `A[φ U ψ]` — `μZ. ψ ∨ (φ ∧ ◇true ∧ □Z)`.
pub fn au(phi: Mu, psi: Mu) -> Mu {
    Mu::mu(
        "Zau",
        psi.or(phi.and(Mu::tt().diamond()).and(Mu::var("Zau").boxed())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_states, CheckStrategy};
    use crate::kripke::Kripke;

    /// 0 → 1 → 2(goal) → 2 (self-loop); 0 → 3 (dead end).
    fn model() -> Kripke {
        let mut k = Kripke::new(4);
        k.add_transition(0, 1);
        k.add_transition(1, 2);
        k.add_transition(2, 2);
        k.add_transition(0, 3);
        k.label(2, "goal");
        k
    }

    fn sat(k: &Kripke, f: &Mu) -> Vec<usize> {
        check_states(k, f, CheckStrategy::Naive)
            .unwrap()
            .iter()
            .collect()
    }

    #[test]
    fn ef_reachability() {
        let k = model();
        assert_eq!(sat(&k, &ef(Mu::prop("goal"))), vec![0, 1, 2]);
    }

    #[test]
    fn ag_safety() {
        let k = model();
        // AG ¬goal: states from which goal is never reachable.
        assert_eq!(sat(&k, &ag(Mu::prop("goal").not())), vec![3]);
    }

    #[test]
    fn af_inevitability() {
        let k = model();
        // From 1, every path reaches goal; from 0 the path to 3 avoids it.
        assert_eq!(sat(&k, &af(Mu::prop("goal"))), vec![1, 2]);
    }

    #[test]
    fn eg_invariance() {
        let k = model();
        // EG goal: the self-loop at 2.
        assert_eq!(sat(&k, &eg(Mu::prop("goal"))), vec![2]);
        // EG true: everything (dead ends are maximal paths).
        assert_eq!(sat(&k, &eg(Mu::tt())), vec![0, 1, 2, 3]);
    }

    #[test]
    fn until_operators() {
        let k = model();
        // E[¬goal U goal] = EF goal here.
        assert_eq!(
            sat(&k, &eu(Mu::prop("goal").not(), Mu::prop("goal"))),
            vec![0, 1, 2]
        );
        // A[true U goal] = AF goal.
        assert_eq!(sat(&k, &au(Mu::tt(), Mu::prop("goal"))), vec![1, 2]);
    }

    #[test]
    fn ctl_is_alternation_free() {
        for f in [
            ef(Mu::prop("p")),
            ag(ef(Mu::prop("p"))),
            au(Mu::prop("p"), eg(Mu::prop("q"))),
        ] {
            assert!(f.alternation_depth() <= 1, "{f}");
            assert!(f.validate().is_ok());
        }
    }

    #[test]
    fn ex_ax_duality() {
        let k = model();
        let p = Mu::prop("goal");
        let exs = sat(&k, &ex(p.clone()));
        assert_eq!(exs, vec![1, 2]);
        // AX goal: all successors goal — dead end 3 vacuously satisfies.
        assert_eq!(sat(&k, &ax(p)), vec![1, 2, 3]);
    }
}
