//! # bvq-mucalc
//!
//! Propositional μ-calculus model checking as the verification application
//! of Vardi, *On the Complexity of Bounded-Variable Queries* (PODS 1995),
//! §1: a finite-state program is a relational database of unary and binary
//! relations, the specification language Lμ is a fragment of `FP²`, and
//! therefore the Theorem 3.5 bound (`FP^k` ∈ NP ∩ co-NP) re-proves the
//! best known bound for μ-calculus model checking [EJS93] directly from
//! fixpoint principles.
//!
//! * [`Kripke`] — labelled transition systems, convertible to/from
//!   [`Database`](bvq_relation::Database)s of unary + binary relations;
//! * [`Mu`] — the μ-calculus AST with parser, NNF, and CTL-operator sugar;
//! * [`checker`] — direct model checkers (naive Kleene iteration and an
//!   Emerson–Lei variant);
//! * [`translate`] — the embedding Lμ → `FP²` (the variable-reuse trick of
//!   §2.2), differentially tested against the direct checkers;
//! * model checking *with certificates* by running
//!   [`CertifiedChecker`](bvq_core::CertifiedChecker) on the translation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod checker;
pub mod ctl;
pub mod kripke;
pub mod translate;

pub use ast::{parse_mu, Mu, MuError};
pub use checker::{check, check_states, CheckStrategy};
pub use kripke::Kripke;
pub use translate::to_fp2;
