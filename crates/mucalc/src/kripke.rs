//! Kripke structures (labelled transition systems).
//!
//! Per the paper's §1, "a finite-state program can be viewed as a
//! relational database consisting of unary and binary relations": the
//! states form the domain, each atomic proposition is a unary relation,
//! and the transition relation is binary. [`Kripke::to_database`] is that
//! viewing, and [`Kripke::from_database`] the inverse.

use bvq_relation::{BitSet, Database, Relation, Tuple};

/// A Kripke structure: states `0..n`, named atomic propositions, and a
/// transition relation.
#[derive(Clone, Debug)]
pub struct Kripke {
    n: usize,
    props: Vec<(String, BitSet)>,
    /// Successor lists, indexed by state.
    succ: Vec<Vec<u32>>,
}

impl Kripke {
    /// A structure with `n` states and no propositions or transitions.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Kripke structures need at least one state");
        Kripke {
            n,
            props: Vec::new(),
            succ: vec![Vec::new(); n],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Declares a proposition (idempotent) and returns its index.
    pub fn add_prop(&mut self, name: &str) -> usize {
        if let Some(i) = self.props.iter().position(|(p, _)| p == name) {
            return i;
        }
        self.props.push((name.to_string(), BitSet::new(self.n)));
        self.props.len() - 1
    }

    /// Labels `state` with proposition `name`.
    pub fn label(&mut self, state: u32, name: &str) {
        let i = self.add_prop(name);
        self.props[i].1.insert(state as usize);
    }

    /// Whether `state` is labelled with `name`.
    pub fn has_label(&self, state: u32, name: &str) -> bool {
        self.props
            .iter()
            .find(|(p, _)| p == name)
            .is_some_and(|(_, s)| s.contains(state as usize))
    }

    /// The set of states labelled `name` (empty if undeclared).
    pub fn states_with(&self, name: &str) -> BitSet {
        self.props
            .iter()
            .find(|(p, _)| p == name)
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| BitSet::new(self.n))
    }

    /// Declared proposition names.
    pub fn prop_names(&self) -> Vec<&str> {
        self.props.iter().map(|(p, _)| p.as_str()).collect()
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: u32, to: u32) {
        assert!(
            (from as usize) < self.n && (to as usize) < self.n,
            "state out of range"
        );
        if !self.succ[from as usize].contains(&to) {
            self.succ[from as usize].push(to);
        }
    }

    /// The successors of a state.
    pub fn successors(&self, state: u32) -> &[u32] {
        &self.succ[state as usize]
    }

    /// Views the structure as a relational database: one unary relation
    /// per proposition, one binary relation `E` for the transitions.
    ///
    /// # Panics
    /// Panics if a proposition is named `E`.
    pub fn to_database(&self) -> Database {
        let mut db = Database::new(self.n);
        let mut e = Relation::new(2);
        for (from, tos) in self.succ.iter().enumerate() {
            for &to in tos {
                e.insert(Tuple::from_slice(&[from as u32, to]));
            }
        }
        db.add_relation("E", e).expect("fresh database");
        for (name, states) in &self.props {
            let rel = Relation::from_tuples(1, states.iter().map(|s| [s as u32]));
            db.add_relation(name, rel)
                .unwrap_or_else(|e| panic!("proposition `{name}`: {e}"));
        }
        db
    }

    /// Reconstructs a structure from a database with a binary `E` and
    /// unary proposition relations (other relations are ignored).
    pub fn from_database(db: &Database) -> Self {
        let mut k = Kripke::new(db.domain_size());
        if let Some(e) = db.relation_by_name("E") {
            for t in e.iter() {
                k.add_transition(t[0], t[1]);
            }
        }
        for (id, name, arity) in db.schema().iter() {
            if arity == 1 {
                for t in db.relation(id).iter() {
                    k.label(t[0], name);
                }
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut k = Kripke::new(3);
        k.add_transition(0, 1);
        k.add_transition(1, 2);
        k.add_transition(1, 2); // duplicate ignored
        k.label(2, "goal");
        assert_eq!(k.num_transitions(), 2);
        assert_eq!(k.successors(1), &[2]);
        assert!(k.has_label(2, "goal"));
        assert!(!k.has_label(0, "goal"));
        assert!(k.states_with("missing").is_empty());
    }

    #[test]
    fn database_roundtrip() {
        let mut k = Kripke::new(4);
        k.add_transition(0, 1);
        k.add_transition(1, 0);
        k.add_transition(2, 3);
        k.label(0, "init");
        k.label(3, "goal");
        let db = k.to_database();
        assert_eq!(db.relation_by_name("E").unwrap().len(), 3);
        assert!(db.relation_by_name("init").unwrap().contains(&[0]));
        let k2 = Kripke::from_database(&db);
        assert_eq!(k2.num_states(), 4);
        assert_eq!(k2.num_transitions(), 3);
        assert!(k2.has_label(3, "goal"));
        assert!(k2.has_label(0, "init"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transition_bounds_checked() {
        Kripke::new(2).add_transition(0, 5);
    }
}
