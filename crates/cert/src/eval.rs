//! The self-contained membership evaluator shared by the checker and the
//! producers.
//!
//! This is deliberately *not* the engine from `bvq-core`: the whole point
//! of the trusted checker is that it replays certificates with zero
//! reference to the code that produced the answer. Everything here is a
//! direct transcription of the §2.2 semantics — a recursive truth test
//! `member(φ, ᾱ)` over a fixed database, a fixpoint-value store, and (for
//! ESO) a witness environment.
//!
//! Per-tuple membership is the checker's unit of work, so `∃` is the hot
//! path: instead of scanning the whole domain, the evaluator harvests
//! candidate values from a positive conjunct atom that mentions the
//! quantified variable — via a lazily built hash index for database
//! relations (immutable for the life of the check, so indexes are built
//! once), or a filtered scan for in-progress fixpoint relations (which
//! mutate between rounds and must not be cached).

use bvq_logic::{Atom, Formula, RelRef, Term, Var};
use bvq_relation::{Database, Elem, FxHashMap, Relation, Tuple};

use crate::check::Reject;
use crate::fixes::FixIndex;

/// Cap on `n^arity` enumeration work (seeds, sweeps, applications):
/// beyond this the certificate is refused/rejected as [`Reject::TooLarge`]
/// rather than letting a hostile certificate buy unbounded checker time.
pub const MAX_SWEEP: usize = 1 << 22;

/// Odometer over `domain^arity`, yielding tuples in lexicographic order.
pub(crate) struct DomainProduct {
    cur: Vec<Elem>,
    n: Elem,
    done: bool,
}

/// `domain^arity` enumeration, guarded by [`MAX_SWEEP`].
pub(crate) fn domain_product(arity: usize, n: usize) -> Result<DomainProduct, Reject> {
    let count = (n as u128).checked_pow(arity as u32);
    match count {
        Some(c) if c <= MAX_SWEEP as u128 => Ok(DomainProduct {
            cur: vec![0; arity],
            n: n as Elem,
            done: n == 0 && arity > 0,
        }),
        _ => Err(Reject::TooLarge),
    }
}

impl Iterator for DomainProduct {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        let out = Tuple::from_slice(&self.cur);
        // Advance the odometer; carry past the last digit ends the walk.
        let mut i = self.cur.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.cur[i] += 1;
            if self.cur[i] < self.n {
                break;
            }
            self.cur[i] = 0;
        }
        Some(out)
    }
}

type PointIndexMap = FxHashMap<Vec<Elem>, Vec<Elem>>;

/// Evaluation state: the trusted database, the per-fixpoint value store
/// with freshness flags, the ESO witness environment, and the current
/// variable assignment.
pub(crate) struct Ctx<'a, 'd> {
    pub db: &'d Database,
    pub n: usize,
    pub idx: &'a FixIndex<'a>,
    /// Current value of each fixpoint (chain value while iterating,
    /// final value once converged), `None` until begun.
    pub val: Vec<Option<Relation>>,
    /// Whether a fixpoint's value is converged *under the current values
    /// of everything it reads*. Reading a `Fix` node requires freshness;
    /// reading a chain value through a bound atom does not.
    pub fresh: Vec<bool>,
    /// ESO witness relations, by name.
    pub witness: Vec<(String, Relation)>,
    asg: Vec<Option<Elem>>,
    /// Lazy `(relation address, candidate position, bound-position mask)`
    /// → point index, for immutable database relations only.
    indexes: FxHashMap<(usize, usize, u64), PointIndexMap>,
}

impl<'a, 'd> Ctx<'a, 'd> {
    pub fn new(db: &'d Database, idx: &'a FixIndex<'a>) -> Ctx<'a, 'd> {
        let fixes = idx.len();
        Ctx {
            db,
            n: db.domain_size(),
            idx,
            val: vec![None; fixes],
            fresh: vec![false; fixes],
            witness: Vec::new(),
            asg: vec![None; idx.var_space],
            indexes: FxHashMap::default(),
        }
    }

    /// Marks every fixpoint whose subtree reads `fix` as stale. Call
    /// after any change to `val[fix]`.
    pub fn invalidate_readers_of(&mut self, fix: usize) {
        for &r in &self.idx.rdeps[fix] {
            self.fresh[r] = false;
        }
    }

    /// Binds variable `v`, returning the previous binding for restore.
    pub fn bind(&mut self, v: Var, e: Elem) -> Option<Elem> {
        self.asg[v.index()].replace(e)
    }

    /// Restores a binding saved by [`Ctx::bind`].
    pub fn unbind(&mut self, v: Var, prev: Option<Elem>) {
        self.asg[v.index()] = prev;
    }

    /// Binds the tuple `t` to the variables `vars` pairwise, returning
    /// the previous bindings.
    pub fn bind_tuple(&mut self, vars: &[Var], t: &Tuple) -> Vec<Option<Elem>> {
        vars.iter()
            .zip(t.as_slice())
            .map(|(&v, &e)| self.bind(v, e))
            .collect()
    }

    /// Restores bindings saved by [`Ctx::bind_tuple`].
    pub fn unbind_tuple(&mut self, vars: &[Var], saved: Vec<Option<Elem>>) {
        for (&v, prev) in vars.iter().zip(saved) {
            self.unbind(v, prev);
        }
    }

    fn term(&self, t: &Term) -> Result<Elem, Reject> {
        match t {
            Term::Const(c) => Ok(*c),
            Term::Var(v) => self.asg[v.index()]
                .ok_or_else(|| Reject::Unsupported(format!("unbound variable x{}", v.0 + 1))),
        }
    }

    fn atom_tuple(&self, args: &[Term]) -> Result<Tuple, Reject> {
        let mut elems = Vec::with_capacity(args.len());
        for a in args {
            elems.push(self.term(a)?);
        }
        Ok(Tuple::from_slice(&elems))
    }

    /// The §2.2 truth test: does the current assignment satisfy `f`?
    pub fn member(&mut self, f: &'a Formula) -> Result<bool, Reject> {
        match f {
            Formula::Const(b) => Ok(*b),
            Formula::Eq(a, b) => Ok(self.term(a)? == self.term(b)?),
            Formula::Atom(atom) => {
                let t = self.atom_tuple(&atom.args)?;
                match &atom.rel {
                    RelRef::Db(name) => {
                        let rel = self
                            .db
                            .relation_by_name(name)
                            .ok_or_else(|| Reject::UnknownRelation(name.clone()))?;
                        if rel.arity() != t.arity() {
                            return Err(Reject::ArityMismatch(format!(
                                "atom `{name}` has arity {}, relation has {}",
                                t.arity(),
                                rel.arity()
                            )));
                        }
                        Ok(rel.contains(&t))
                    }
                    RelRef::Bound(name) => match self.idx.fix_of_atom(atom) {
                        // In-progress chain value: `Some` required,
                        // freshness not — this *is* the recursive read.
                        Some(fix) => match &self.val[fix] {
                            Some(rel) => Ok(rel.contains(&t)),
                            None => Err(Reject::MissingFix(fix)),
                        },
                        None => {
                            let rel = self
                                .witness
                                .iter()
                                .find(|(n, _)| n == name)
                                .map(|(_, r)| r)
                                .ok_or_else(|| Reject::UnknownRelation(name.clone()))?;
                            if rel.arity() != t.arity() {
                                return Err(Reject::ArityMismatch(format!(
                                    "witness `{name}` has arity {}, atom has {}",
                                    rel.arity(),
                                    t.arity()
                                )));
                            }
                            Ok(rel.contains(&t))
                        }
                    },
                }
            }
            Formula::Not(g) => Ok(!self.member(g)?),
            Formula::And(a, b) => Ok(self.member(a)? && self.member(b)?),
            Formula::Or(a, b) => Ok(self.member(a)? || self.member(b)?),
            Formula::Exists(v, g) => {
                let cands = self.candidates(*v, g)?;
                let prev = self.asg[v.index()].take();
                let mut found = false;
                match cands {
                    Some(cs) => {
                        for c in cs {
                            self.asg[v.index()] = Some(c);
                            if self.member(g)? {
                                found = true;
                                break;
                            }
                        }
                    }
                    None => {
                        for c in 0..self.n as Elem {
                            self.asg[v.index()] = Some(c);
                            if self.member(g)? {
                                found = true;
                                break;
                            }
                        }
                    }
                }
                self.asg[v.index()] = prev;
                Ok(found)
            }
            Formula::Forall(v, g) => {
                let prev = self.asg[v.index()].take();
                let mut holds = true;
                for c in 0..self.n as Elem {
                    self.asg[v.index()] = Some(c);
                    if !self.member(g)? {
                        holds = false;
                        break;
                    }
                }
                self.asg[v.index()] = prev;
                Ok(holds)
            }
            Formula::Fix { args, .. } => {
                // Converged-value read: `Some` *and* fresh required —
                // a stale inner value here is exactly the staleness
                // attack the freshness discipline exists to reject.
                let fix = self
                    .idx
                    .fix_of_node(f)
                    .ok_or_else(|| Reject::Unsupported("unindexed fixpoint node".into()))?;
                let t = self.atom_tuple(args)?;
                match &self.val[fix] {
                    Some(_) if !self.fresh[fix] => Err(Reject::StaleFix(fix)),
                    Some(rel) => Ok(rel.contains(&t)),
                    None => Err(Reject::MissingFix(fix)),
                }
            }
        }
    }

    /// One full application of fixpoint `fix`'s body under the current
    /// store: `{ t̄ ∈ domainᵃ : member(body, t̄) }`.
    pub fn apply_body(&mut self, fix: usize) -> Result<Relation, Reject> {
        let idx = self.idx;
        let info = &idx.fixes[fix];
        let mut out = Relation::new(info.arity);
        for t in domain_product(info.arity, self.n)? {
            let saved = self.bind_tuple(&info.bound, &t);
            let sat = self.member(info.body);
            self.unbind_tuple(&info.bound, saved);
            if sat? {
                out.insert(t);
            }
        }
        Ok(out)
    }

    /// Does the current assignment for `fix`'s bound tuple satisfy its
    /// body? (The per-tuple unit of chain justification.)
    pub fn body_holds_at(&mut self, fix: usize, t: &Tuple) -> Result<bool, Reject> {
        let idx = self.idx;
        let info = &idx.fixes[fix];
        let saved = self.bind_tuple(&info.bound, t);
        let sat = self.member(info.body);
        self.unbind_tuple(&info.bound, saved);
        sat
    }

    /// Candidate values for `∃v` harvested from a positive conjunct atom
    /// of `g` that mentions `v` and whose other arguments are all fixed.
    /// Returns a *superset* of the satisfying values (the caller re-tests
    /// each candidate against the full body), or `None` when no conjunct
    /// constrains `v`.
    fn candidates(&mut self, v: Var, g: &'a Formula) -> Result<Option<Vec<Elem>>, Reject> {
        // First pass: database atoms only (index lookup, cheap).
        // Fixpoint/witness scans are a fallback — they cannot be cached
        // across rounds, so only pay for one when no index applies.
        let mut best: Option<Vec<Elem>> = None;
        let mut stack = vec![g];
        let mut bound_atoms: Vec<&'a Atom> = Vec::new();
        while let Some(f) = stack.pop() {
            match f {
                Formula::And(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Formula::Atom(atom) => match self.atom_shape(v, atom) {
                    None => {}
                    Some(_) if matches!(atom.rel, RelRef::Bound(_)) => bound_atoms.push(atom),
                    Some((pos, mask, key)) => {
                        let cs = self.db_candidates(atom, pos, mask, key)?;
                        best = match best {
                            Some(b) if b.len() <= cs.len() => Some(b),
                            _ => Some(cs),
                        };
                    }
                },
                _ => {}
            }
        }
        if best.is_some() {
            return Ok(best);
        }
        if let Some(atom) = bound_atoms.first() {
            return Ok(Some(self.scan_candidates(v, atom)?));
        }
        Ok(None)
    }

    /// Classifies an atom for candidate harvesting: `v` occurs, and every
    /// other argument is a constant or an already-bound variable. Returns
    /// the first `v` position, the fixed-position mask, and the fixed
    /// values in position order.
    #[allow(clippy::type_complexity)]
    fn atom_shape(&self, v: Var, atom: &Atom) -> Option<(usize, u64, Vec<Elem>)> {
        if atom.args.len() > 64 {
            return None;
        }
        let mut pos = None;
        let mut mask = 0u64;
        let mut key = Vec::new();
        for (i, a) in atom.args.iter().enumerate() {
            match a {
                Term::Var(u) if *u == v => {
                    if pos.is_none() {
                        pos = Some(i);
                    }
                }
                Term::Const(c) => {
                    mask |= 1 << i;
                    key.push(*c);
                }
                Term::Var(u) => match self.asg[u.index()] {
                    Some(e) => {
                        mask |= 1 << i;
                        key.push(e);
                    }
                    None => return None,
                },
            }
        }
        pos.map(|p| (p, mask, key))
    }

    fn db_candidates(
        &mut self,
        atom: &Atom,
        pos: usize,
        mask: u64,
        key: Vec<Elem>,
    ) -> Result<Vec<Elem>, Reject> {
        let RelRef::Db(name) = &atom.rel else {
            unreachable!("db_candidates on a bound atom");
        };
        let rel = self
            .db
            .relation_by_name(name)
            .ok_or_else(|| Reject::UnknownRelation(name.clone()))?;
        let addr = rel as *const Relation as usize;
        let index = self.indexes.entry((addr, pos, mask)).or_insert_with(|| {
            let mut map: PointIndexMap = FxHashMap::default();
            for t in rel.iter() {
                if t.arity() <= pos {
                    continue;
                }
                let k: Vec<Elem> = (0..t.arity())
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| t[i])
                    .collect();
                map.entry(k).or_default().push(t[pos]);
            }
            for v in map.values_mut() {
                v.sort_unstable();
                v.dedup();
            }
            map
        });
        Ok(index.get(&key).cloned().unwrap_or_default())
    }

    fn scan_candidates(&mut self, v: Var, atom: &'a Atom) -> Result<Vec<Elem>, Reject> {
        let RelRef::Bound(name) = &atom.rel else {
            unreachable!("scan_candidates on a db atom");
        };
        let rel: &Relation = match self.idx.fix_of_atom(atom) {
            Some(fix) => self.val[fix].as_ref().ok_or(Reject::MissingFix(fix))?,
            None => self
                .witness
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| r)
                .ok_or_else(|| Reject::UnknownRelation(name.clone()))?,
        };
        let mut out = Vec::new();
        'tuples: for t in rel.iter() {
            if t.arity() != atom.args.len() {
                continue;
            }
            let mut cand = None;
            for (i, a) in atom.args.iter().enumerate() {
                match a {
                    Term::Var(u) if *u == v => match cand {
                        None => cand = Some(t[i]),
                        Some(c) if c == t[i] => {}
                        Some(_) => continue 'tuples,
                    },
                    Term::Const(c) => {
                        if t[i] != *c {
                            continue 'tuples;
                        }
                    }
                    Term::Var(u) => {
                        if self.asg[u.index()] != Some(t[i]) {
                            continue 'tuples;
                        }
                    }
                }
            }
            if let Some(c) = cand {
                out.push(c);
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_logic::Query;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    fn path_db(n: usize) -> Database {
        Database::builder(n)
            .relation("E", 2, (0..n as u32 - 1).map(|i| [i, i + 1]))
            .build()
    }

    #[test]
    fn domain_product_enumerates_lexicographically() {
        let all: Vec<Tuple> = domain_product(2, 2).unwrap().collect();
        let want: Vec<Tuple> = [[0, 0], [0, 1], [1, 0], [1, 1]]
            .iter()
            .map(|t| Tuple::from_slice(&t[..]))
            .collect();
        assert_eq!(all, want);
        assert_eq!(domain_product(0, 5).unwrap().count(), 1);
        assert_eq!(domain_product(3, 0).unwrap().count(), 0);
        assert!(domain_product(64, 100).is_err());
    }

    #[test]
    fn fo_membership_with_indexed_exists() {
        // ∃x2. E(x1, x2) — "x1 has a successor".
        let f = Formula::atom("E", [v(0), v(1)]).exists(Var(1));
        let q = Query::new(vec![Var(0)], f);
        let db = path_db(4);
        let idx = FixIndex::build(&q.formula, &[]).unwrap();
        let mut ctx = Ctx::new(&db, &idx);
        for (e, want) in [(0, true), (1, true), (2, true), (3, false)] {
            let prev = ctx.bind(Var(0), e);
            assert_eq!(ctx.member(&q.formula).unwrap(), want, "x1 = {e}");
            ctx.unbind(Var(0), prev);
        }
    }

    #[test]
    fn chain_read_needs_value_but_not_freshness() {
        // [lfp S(x1). S(x1)](x1) read through the bound atom vs the node.
        let fixf = Formula::lfp("S", vec![Var(0)], Formula::rel_var("S", [v(0)]), vec![v(0)]);
        let db = path_db(2);
        let idx = FixIndex::build(&fixf, &[]).unwrap();
        let mut ctx = Ctx::new(&db, &idx);
        let prev = ctx.bind(Var(0), 0);
        // No value at all: both reads fail.
        assert!(matches!(ctx.member(&fixf), Err(Reject::MissingFix(0))));
        ctx.val[0] = Some(Relation::from_tuples(1, [[0u32]]));
        // Node read while stale: rejected.
        assert!(matches!(ctx.member(&fixf), Err(Reject::StaleFix(0))));
        // Chain read (the body's bound atom) is fine while stale.
        assert!(ctx.body_holds_at(0, &Tuple::from_slice(&[0])).unwrap());
        ctx.fresh[0] = true;
        assert!(ctx.member(&fixf).unwrap());
        ctx.unbind(Var(0), prev);
    }
}
