//! # bvq-cert — certificate-carrying evaluation
//!
//! Theorem 3.5 of the paper places bounded-variable fixpoint queries in
//! NP ∩ co-NP by exhibiting *short certificates*: an `l·n^k` iteration
//! trace pins down a fixpoint answer that costs `n^{k·l}`-flavored work
//! to recompute. This crate turns that observation into machinery:
//!
//! * a [`Certificate`] format — iteration traces for FO/FP/PFP queries,
//!   derivation trees for Datalog, existential witnesses for ESO — with a
//!   canonical line-based text encoding ([`Certificate::encode`] /
//!   [`Certificate::parse`]);
//! * [`produce`]rs that emit certificates while evaluating;
//! * a self-contained trusted [`check`]er that replays the evidence in
//!   one linear pass, with **zero reference to the producing evaluator**,
//!   and rejects with a structured [`Reject`] reason.
//!
//! # Trust boundary
//!
//! The checker trusts three things only: the database, the query (as
//! parsed by the checker's owner), and its own replay. It trusts nothing
//! in the certificate — claims are confirmed against the replayed state,
//! deltas are justified tuple by tuple, convergence is re-verified, and
//! nested fixpoints are subject to a freshness discipline that makes
//! "stale inner value" a structural rejection rather than a lucky catch.
//! A verified [`CheckedAnswer`] is therefore as trustworthy as a local
//! evaluation at a fraction of the cost — which is what lets `bvq-server`
//! fan evaluation out to untrusted replicas and audit what comes back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod eval;
pub mod fixes;
pub mod format;
pub mod produce;

pub use check::{check, check_text, CheckRequest, CheckedAnswer, Reject};
pub use eval::MAX_SWEEP;
pub use fixes::{FixIndex, Unsupported};
pub use format::{Certificate, Claim, DerivStep, Evidence, FixEvent, ParseError, FORMAT_VERSION};
pub use produce::{certify_datalog, certify_query, witness_certificate, CertError};
