//! Structural index of the fixpoint operators in a formula.
//!
//! Certificates identify a fixpoint by its **pre-order index** among the
//! `Fix` nodes of the query formula — a numbering both producer and
//! checker derive independently from the (trusted) query text, so the
//! certificate never has to name engine-internal identifiers. The index
//! also records, per fixpoint, its parent, positivity, and the set of
//! *enclosing* fixpoints its subtree reads — which is exactly the
//! invalidation relation the checker's freshness discipline needs: when
//! an outer chain value changes, every inner fixpoint that read it must
//! re-converge before its value may be read again.

use std::collections::HashMap;

use bvq_logic::{Atom, FixKind, Formula, RelRef, Term, Var};

/// Why a query cannot be certified (neither produced nor checked).
/// Unsupported shapes fall back to plain uncertified evaluation — they are
/// a refusal, not a rejection of evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unsupported(pub String);

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "uncertifiable query: {}", self.0)
    }
}

impl std::error::Error for Unsupported {}

/// Static facts about one fixpoint operator.
#[derive(Debug)]
pub struct FixInfo<'f> {
    /// The `Fix` node itself.
    pub node: &'f Formula,
    /// The operator's body.
    pub body: &'f Formula,
    /// The operator kind.
    pub kind: FixKind,
    /// The recursion variable's name.
    pub rel: String,
    /// The bound individual variables, in binding order.
    pub bound: Vec<Var>,
    /// `bound.len()`.
    pub arity: usize,
    /// The enclosing fixpoint, if any (pre-order index).
    pub parent: Option<usize>,
}

/// Pre-order index over the `Fix` nodes of a formula. See the module
/// docs for the role each field plays in checking.
#[derive(Debug)]
pub struct FixIndex<'f> {
    /// One entry per `Fix` node, in pre-order.
    pub fixes: Vec<FixInfo<'f>>,
    /// `rdeps[a]` = fixpoints whose subtree reads fixpoint `a`'s value
    /// — the ones to invalidate when `a`'s value changes.
    pub rdeps: Vec<Vec<usize>>,
    /// One more than the largest variable index mentioned anywhere —
    /// the assignment-vector length the evaluator needs.
    pub var_space: usize,
    /// `Fix` node address → pre-order index.
    node_ids: HashMap<usize, usize>,
    /// Bound-atom address → pre-order index of the fixpoint it reads.
    /// Bound atoms *not* in this map refer to ESO-quantified relations
    /// and resolve against the witness environment instead.
    atom_ids: HashMap<usize, usize>,
}

impl<'f> FixIndex<'f> {
    /// Builds the index, rejecting shapes the certificate machinery does
    /// not model: parameterized fixpoints (body free variables outside
    /// the bound tuple) and non-positive `Lfp`/`Gfp` recursion (the
    /// chain-justification argument needs monotonicity).
    ///
    /// `witness_rels` names ESO-quantified relations: bound atoms that
    /// resolve to one of these instead of an enclosing fixpoint are
    /// fine; any other dangling relation variable is an error.
    pub fn build(root: &'f Formula, witness_rels: &[String]) -> Result<FixIndex<'f>, Unsupported> {
        let mut idx = FixIndex {
            fixes: Vec::new(),
            rdeps: Vec::new(),
            var_space: 0,
            node_ids: HashMap::new(),
            atom_ids: HashMap::new(),
        };
        // (rel name, fix id) scope of enclosing fixpoints, innermost last.
        let mut scope: Vec<(&'f str, usize)> = Vec::new();
        idx.walk(root, &mut scope, witness_rels)?;
        Ok(idx)
    }

    /// Number of fixpoints.
    pub fn len(&self) -> usize {
        self.fixes.len()
    }

    /// Whether the formula has no fixpoints at all (plain FO).
    pub fn is_empty(&self) -> bool {
        self.fixes.is_empty()
    }

    /// The pre-order index of a `Fix` node of the indexed formula.
    pub fn fix_of_node(&self, node: &Formula) -> Option<usize> {
        self.node_ids
            .get(&(node as *const Formula as usize))
            .copied()
    }

    /// The fixpoint a bound atom of the indexed formula reads, or `None`
    /// for ESO-witness atoms.
    pub fn fix_of_atom(&self, atom: &Atom) -> Option<usize> {
        self.atom_ids.get(&(atom as *const Atom as usize)).copied()
    }

    fn note_term(&mut self, t: &Term) {
        if let Term::Var(v) = t {
            self.var_space = self.var_space.max(v.index() + 1);
        }
    }

    fn walk(
        &mut self,
        f: &'f Formula,
        scope: &mut Vec<(&'f str, usize)>,
        witness_rels: &[String],
    ) -> Result<(), Unsupported> {
        match f {
            Formula::Const(_) => Ok(()),
            Formula::Eq(a, b) => {
                self.note_term(a);
                self.note_term(b);
                Ok(())
            }
            Formula::Atom(atom) => {
                for t in &atom.args {
                    self.note_term(t);
                }
                if let RelRef::Bound(name) = &atom.rel {
                    if let Some(&(_, id)) = scope.iter().rev().find(|(n, _)| n == name) {
                        self.atom_ids.insert(atom as *const Atom as usize, id);
                        // Every fixpoint open *inside* `id` reads `id`'s
                        // chain value through this atom: invalidate them
                        // when `id` steps.
                        let from = scope.iter().position(|&(_, i)| i == id).unwrap();
                        for &(_, inner) in &scope[from + 1..] {
                            if !self.rdeps[id].contains(&inner) {
                                self.rdeps[id].push(inner);
                            }
                        }
                    } else if !witness_rels.iter().any(|w| w == name) {
                        return Err(Unsupported(format!(
                            "relation variable `{name}` is bound by no enclosing fixpoint"
                        )));
                    }
                }
                Ok(())
            }
            Formula::Not(g) => self.walk(g, scope, witness_rels),
            Formula::And(a, b) | Formula::Or(a, b) => {
                self.walk(a, scope, witness_rels)?;
                self.walk(b, scope, witness_rels)
            }
            Formula::Exists(v, g) | Formula::Forall(v, g) => {
                self.var_space = self.var_space.max(v.index() + 1);
                self.walk(g, scope, witness_rels)
            }
            Formula::Fix {
                kind,
                rel,
                bound,
                body,
                args,
            } => {
                for t in args {
                    self.note_term(t);
                }
                for v in bound {
                    self.var_space = self.var_space.max(v.index() + 1);
                }
                // A parameterized fixpoint's value varies with outer
                // individual bindings; a single stored relation per
                // fixpoint cannot represent that.
                let stray: Vec<Var> = body
                    .free_vars()
                    .into_iter()
                    .filter(|v| !bound.contains(v))
                    .collect();
                if !stray.is_empty() {
                    return Err(Unsupported(format!(
                        "parameterized fixpoint `{rel}`: body mentions free variable x{} \
                         outside its bound tuple",
                        stray[0].0 + 1
                    )));
                }
                if matches!(kind, FixKind::Lfp | FixKind::Gfp) && !body.is_positive_in(rel) {
                    return Err(Unsupported(format!(
                        "`{rel}` occurs non-positively in its {kind:?} body"
                    )));
                }
                // §3.2: the Theorem 3.5 certificate technique does not
                // apply to IFP^k — an inflationary chain admits no
                // per-tuple justification, so IFP queries stay uncertified.
                if matches!(kind, FixKind::Ifp) {
                    return Err(Unsupported(format!(
                        "inflationary fixpoint `{rel}`: IFP is outside the Theorem 3.5 \
                         certificate fragment"
                    )));
                }
                let id = self.fixes.len();
                self.fixes.push(FixInfo {
                    node: f,
                    body,
                    kind: *kind,
                    rel: rel.clone(),
                    bound: bound.clone(),
                    arity: bound.len(),
                    parent: scope.last().map(|&(_, p)| p),
                });
                self.rdeps.push(Vec::new());
                self.node_ids.insert(f as *const Formula as usize, id);
                scope.push((rel.as_str(), id));
                let r = self.walk(body, scope, witness_rels);
                scope.pop();
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn preorder_ids_parents_and_rdeps() {
        // [lfp S(x1). P(x1) | [lfp T(x2). S(x2) | T(x2)](x1)](x1)
        let inner = Formula::lfp(
            "T",
            vec![Var(1)],
            Formula::rel_var("S", [v(1)]).or(Formula::rel_var("T", [v(1)])),
            vec![v(0)],
        );
        let outer = Formula::lfp(
            "S",
            vec![Var(0)],
            Formula::atom("P", [v(0)]).or(inner),
            vec![v(0)],
        );
        let idx = FixIndex::build(&outer, &[]).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.fixes[0].rel, "S");
        assert_eq!(idx.fixes[0].parent, None);
        assert_eq!(idx.fixes[1].rel, "T");
        assert_eq!(idx.fixes[1].parent, Some(0));
        // The inner T reads S's chain value, so stepping S invalidates T.
        assert_eq!(idx.rdeps[0], vec![1]);
        assert!(idx.rdeps[1].is_empty());
        assert!(idx.var_space >= 2);
    }

    #[test]
    fn parameterized_fix_is_unsupported() {
        // [lfp S(x1). S(x1) & x1 = x2](x1) — x2 leaks in from outside.
        let fix = Formula::lfp(
            "S",
            vec![Var(0)],
            Formula::rel_var("S", [v(0)]).and(Formula::Eq(v(0), v(1))),
            vec![v(0)],
        );
        let err = FixIndex::build(&fix, &[]).unwrap_err();
        assert!(err.0.contains("parameterized"));
    }

    #[test]
    fn negative_lfp_is_unsupported_but_pfp_is_fine() {
        let neg = |k: fn(&str, Vec<Var>, Formula, Vec<Term>) -> Formula| {
            k(
                "S",
                vec![Var(0)],
                Formula::rel_var("S", [v(0)]).not(),
                vec![v(0)],
            )
        };
        fn lfp(r: &str, b: Vec<Var>, f: Formula, a: Vec<Term>) -> Formula {
            Formula::lfp(r, b, f, a)
        }
        fn pfp(r: &str, b: Vec<Var>, f: Formula, a: Vec<Term>) -> Formula {
            Formula::pfp(r, b, f, a)
        }
        assert!(FixIndex::build(&neg(lfp), &[]).is_err());
        assert!(FixIndex::build(&neg(pfp), &[]).is_ok());
    }

    #[test]
    fn dangling_rel_var_needs_a_witness_declaration() {
        let atom = Formula::rel_var("W", [v(0)]);
        let q = atom.exists(Var(0));
        assert!(FixIndex::build(&q, &[]).is_err());
        let idx = FixIndex::build(&q, &["W".to_string()]).unwrap();
        assert!(idx.is_empty());
        // The witness atom resolves to no fixpoint.
        if let Formula::Exists(_, g) = &q {
            if let Formula::Atom(a) = g.as_ref() {
                assert_eq!(idx.fix_of_atom(a), None);
            } else {
                panic!("shape");
            }
        }
    }
}
