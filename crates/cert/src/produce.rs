//! Certificate producers: the untrusted half of the protocol.
//!
//! Producers run a straightforward evaluation and write down what a
//! checker needs to replay it: per-round deltas for fixpoint chains,
//! rule + premises per derived Datalog tuple. They share the [`Ctx`]
//! membership machinery with the checker, but nothing downstream trusts
//! their output — callers always run [`crate::check`] (or compare
//! against an independent evaluation) before serving a certified answer.

use bvq_datalog::{eval_recorded, Program};
use bvq_logic::{FixKind, Query};
use bvq_relation::{Database, EvalConfig, Relation};

use crate::check::Reject;
use crate::eval::{domain_product, Ctx, MAX_SWEEP};
use crate::fixes::{FixIndex, Unsupported};
use crate::format::{Certificate, Claim, DerivStep, Evidence, FixEvent};

/// Iteration-round cap for producers: a PFP that has not converged or
/// cycled by then is refused rather than certified.
const MAX_ROUNDS: usize = 1 << 14;

/// Why a certificate could not be produced. Callers fall back to plain
/// uncertified evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The query is outside the certifiable fragment.
    Unsupported(String),
    /// Production would exceed the work caps.
    TooLarge,
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::Unsupported(s) => write!(f, "{s}"),
            CertError::TooLarge => write!(f, "certificate production exceeds the work caps"),
        }
    }
}

impl std::error::Error for CertError {}

impl From<Unsupported> for CertError {
    fn from(u: Unsupported) -> CertError {
        CertError::Unsupported(u.to_string())
    }
}

impl From<Reject> for CertError {
    fn from(r: Reject) -> CertError {
        match r {
            Reject::TooLarge => CertError::TooLarge,
            Reject::Unsupported(s) => CertError::Unsupported(s),
            other => CertError::Unsupported(format!("production failed: {other}")),
        }
    }
}

/// Produces an iteration-trace certificate for an FO/FP/PFP query: every
/// fixpoint is iterated to convergence (or to a detected cycle, for PFP)
/// with per-round deltas recorded, then the answer is computed and
/// claimed.
pub fn certify_query(db: &Database, query: &Query) -> Result<Certificate, CertError> {
    for (i, v) in query.output.iter().enumerate() {
        if query.output[..i].contains(v) {
            return Err(CertError::Unsupported(
                "repeated output variables are not certified".into(),
            ));
        }
    }
    let idx = FixIndex::build(&query.formula, &[])?;
    let mut ctx = Ctx::new(db, &idx);
    let mut events: Vec<FixEvent> = Vec::new();
    for fix in 0..idx.len() {
        if idx.fixes[fix].parent.is_none() {
            converge(&mut ctx, &idx, fix, &mut events)?;
        }
    }
    let claim = if query.output.is_empty() {
        Claim::Boolean(ctx.member(&query.formula)?)
    } else {
        let mut rows = Relation::new(query.output.len());
        for t in domain_product(query.output.len(), ctx.n)? {
            let saved = ctx.bind_tuple(&query.output, &t);
            let sat = ctx.member(&query.formula);
            ctx.unbind_tuple(&query.output, saved);
            if sat? {
                rows.insert(t);
            }
        }
        Claim::from_relation(&rows)
    };
    Ok(Certificate {
        claim,
        evidence: Evidence::Trace { events },
    })
}

/// Iterates fixpoint `fix` to its value, emitting trace events, with
/// stale direct children re-converged before every round (the same
/// freshness discipline the checker enforces on replay).
fn converge(
    ctx: &mut Ctx<'_, '_>,
    idx: &FixIndex<'_>,
    fix: usize,
    events: &mut Vec<FixEvent>,
) -> Result<(), CertError> {
    let kind = idx.fixes[fix].kind;
    let arity = idx.fixes[fix].arity;
    events.push(FixEvent::Begin { fix });
    let seed = match kind {
        FixKind::Lfp | FixKind::Pfp => Relation::new(arity),
        FixKind::Gfp => {
            domain_product(arity, ctx.n)?;
            Relation::full(arity, ctx.n)
        }
        FixKind::Ifp => unreachable!("IFP refused at index build"),
    };
    let mut snaps: Vec<Relation> = if kind == FixKind::Pfp {
        vec![seed.clone()]
    } else {
        Vec::new()
    };
    ctx.val[fix] = Some(seed);
    ctx.fresh[fix] = false;
    ctx.invalidate_readers_of(fix);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS || events.len() > MAX_SWEEP {
            return Err(CertError::TooLarge);
        }
        for c in 0..idx.len() {
            if idx.fixes[c].parent == Some(fix) && !ctx.fresh[c] {
                converge(ctx, idx, c, events)?;
            }
        }
        let next = ctx.apply_body(fix)?;
        let cur = ctx.val[fix].as_ref().expect("seeded above");
        if next == *cur {
            events.push(FixEvent::Converged { fix });
            ctx.fresh[fix] = true;
            return Ok(());
        }
        let add = next.difference(cur).sorted();
        let del = cur.difference(&next).sorted();
        events.push(FixEvent::Step { fix, add, del });
        if kind == FixKind::Pfp {
            if let Some(back_to) = snaps.iter().position(|s| *s == next) {
                // The iteration revisited an earlier state: it diverges,
                // and the fixpoint denotes ∅ (§2.2).
                events.push(FixEvent::Cycle { fix, back_to });
                ctx.val[fix] = Some(Relation::new(arity));
                ctx.invalidate_readers_of(fix);
                ctx.fresh[fix] = true;
                return Ok(());
            }
            snaps.push(next.clone());
        }
        ctx.val[fix] = Some(next);
        ctx.invalidate_readers_of(fix);
    }
}

/// Produces a derivation-tree certificate for a positive Datalog program
/// and its designated output predicate.
pub fn certify_datalog(
    db: &Database,
    program: &Program,
    output: &str,
) -> Result<Certificate, CertError> {
    let derivations = eval_recorded(program, db, &EvalConfig::sequential())
        .map_err(|e| CertError::Unsupported(format!("datalog evaluation failed: {e}")))?;
    let out_rel = derivations
        .get(output)
        .ok_or_else(|| CertError::Unsupported(format!("`{output}` is not an IDB predicate")))?;
    let claim = Claim::from_relation(out_rel);
    let steps = derivations
        .steps
        .iter()
        .map(|s| DerivStep {
            rule: s.rule,
            tuple: s.head.clone(),
            premises: s.premises.clone(),
        })
        .collect();
    Ok(Certificate {
        claim,
        evidence: Evidence::Derivation {
            rounds: derivations.rounds,
            steps,
        },
    })
}

/// Packages an ESO existential witness (as found by an evaluator) into a
/// certificate for `claim bool true`.
pub fn witness_certificate(rels: Vec<(String, Relation)>) -> Certificate {
    let mut rels = rels;
    rels.sort_by(|(a, _), (b, _)| a.cmp(b));
    Certificate {
        claim: Claim::Boolean(true),
        evidence: Evidence::Witness { rels },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check, CheckRequest, CheckedAnswer};
    use bvq_logic::{Formula, Term, Var};

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    fn path_db(n: usize) -> Database {
        Database::builder(n)
            .relation("E", 2, (0..n as u32 - 1).map(|i| [i, i + 1]))
            .build()
    }

    /// reach(x1) ≡ [lfp S(x1). x1 = 0 ∨ ∃x2. S(x2) ∧ E(x2, x1)](x1)
    fn reach_query() -> Query {
        let body = Formula::Eq(v(0), Term::Const(0)).or(Formula::rel_var("S", [v(1)])
            .and(Formula::atom("E", [v(1), v(0)]))
            .exists(Var(1)));
        Query::new(
            vec![Var(0)],
            Formula::lfp("S", vec![Var(0)], body, vec![v(0)]),
        )
    }

    #[test]
    fn lfp_reach_certificate_round_trips_through_the_checker() {
        let db = path_db(6);
        let q = reach_query();
        let cert = certify_query(&db, &q).unwrap();
        // Re-encode through the wire format, then check.
        let text = cert.encode();
        let parsed = Certificate::parse(&text).unwrap();
        let ans = check(&db, &CheckRequest::Query(&q), &parsed).unwrap();
        let CheckedAnswer::Rows(rel) = ans else {
            panic!("row answer expected")
        };
        assert_eq!(rel.len(), 6); // every node reachable from 0 on a path
    }

    #[test]
    fn tampered_delta_is_rejected() {
        let db = path_db(6);
        let q = reach_query();
        let mut cert = certify_query(&db, &q).unwrap();
        // Smuggle an extra tuple into the first step.
        let Evidence::Trace { events } = &mut cert.evidence else {
            panic!("trace")
        };
        let step = events
            .iter_mut()
            .find_map(|e| match e {
                FixEvent::Step { add, .. } => Some(add),
                _ => None,
            })
            .unwrap();
        step.push(bvq_relation::Tuple::from_slice(&[5]));
        let err = check(&db, &CheckRequest::Query(&q), &cert).unwrap_err();
        assert!(
            matches!(err, Reject::Unjustified { .. } | Reject::BadDelta { .. }),
            "{err}"
        );
    }

    #[test]
    fn wrong_claim_with_honest_trace_is_rejected() {
        let db = path_db(4);
        let q = reach_query();
        let mut cert = certify_query(&db, &q).unwrap();
        let Claim::Rows { rows, .. } = &mut cert.claim else {
            panic!("rows")
        };
        rows.pop(); // drop a correct answer row
        let err = check(&db, &CheckRequest::Query(&q), &cert).unwrap_err();
        assert_eq!(err.code(), "claim_mismatch");
    }

    #[test]
    fn gfp_certificate_checks() {
        // [gfp S(x1). ∃x2. E(x1,x2) ∧ S(x2)](x1): nodes with an infinite
        // outgoing path — none on a finite path graph.
        let body = Formula::atom("E", [v(0), v(1)])
            .and(Formula::rel_var("S", [v(1)]))
            .exists(Var(1));
        let q = Query::new(
            vec![Var(0)],
            Formula::gfp("S", vec![Var(0)], body, vec![v(0)]),
        );
        let db = path_db(5);
        let cert = certify_query(&db, &q).unwrap();
        let ans = check(&db, &CheckRequest::Query(&q), &cert).unwrap();
        assert_eq!(ans, CheckedAnswer::Rows(Relation::new(1)));
    }

    #[test]
    fn pfp_cycle_certificate_checks_and_denotes_empty() {
        // [pfp S(x1). ¬S(x1)](x1) flips between ∅ and the full domain:
        // a 2-cycle, so the fixpoint is empty.
        let q = Query::new(
            vec![Var(0)],
            Formula::pfp(
                "S",
                vec![Var(0)],
                Formula::rel_var("S", [v(0)]).not(),
                vec![v(0)],
            ),
        );
        let db = path_db(3);
        let cert = certify_query(&db, &q).unwrap();
        let Evidence::Trace { events } = &cert.evidence else {
            panic!("trace")
        };
        assert!(events.iter().any(|e| matches!(e, FixEvent::Cycle { .. })));
        let ans = check(&db, &CheckRequest::Query(&q), &cert).unwrap();
        assert_eq!(ans, CheckedAnswer::Rows(Relation::new(1)));
    }

    #[test]
    fn nested_fixpoint_staleness_discipline_round_trips() {
        // Outer lfp whose only recursive route runs *through* an inner
        // gfp reading the outer chain value — so every outer step's
        // justification reads the inner converged value, and the inner
        // fixpoint must re-converge between outer rounds.
        //
        // outer(x1) = [lfp S(x1). x1 = 0
        //                       ∨ ∃x2. E(x2,x1) ∧ [gfp T(x3). S(x3)](x2)](x1)
        //
        // The inner gfp's operator is constant in T, so its value is
        // just the current S — the query is plain reachability, routed
        // through a nested fixpoint.
        let inner = Formula::gfp("T", vec![Var(2)], Formula::rel_var("S", [v(2)]), vec![v(1)]);
        let body = Formula::Eq(v(0), Term::Const(0))
            .or(Formula::atom("E", [v(1), v(0)]).and(inner).exists(Var(1)));
        let q = Query::new(
            vec![Var(0)],
            Formula::lfp("S", vec![Var(0)], body, vec![v(0)]),
        );
        let db = path_db(4);
        let cert = certify_query(&db, &q).unwrap();
        let Evidence::Trace { events } = &cert.evidence else {
            panic!("trace")
        };
        // The inner fixpoint must re-converge more than once.
        let inner_begins: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, FixEvent::Begin { fix: 1 }))
            .map(|(i, _)| i)
            .collect();
        assert!(
            inner_begins.len() > 2,
            "inner fixpoint re-converged only {} times",
            inner_begins.len()
        );
        let ans = check(&db, &CheckRequest::Query(&q), &cert).unwrap();
        let CheckedAnswer::Rows(rel) = ans else {
            panic!("rows")
        };
        assert_eq!(rel.len(), 4);
        // Dropping a *middle* inner re-convergence block leaves the next
        // outer step justifying against a stale inner value: StaleFix.
        let mut forged = cert.clone();
        let Evidence::Trace { events } = &mut forged.evidence else {
            panic!("trace")
        };
        let begin = inner_begins[1];
        let conv = events[begin..]
            .iter()
            .position(|e| matches!(e, FixEvent::Converged { fix: 1 }))
            .map(|i| begin + i)
            .unwrap();
        events.drain(begin..=conv);
        let err = check(&db, &CheckRequest::Query(&q), &forged).unwrap_err();
        assert_eq!(err.code(), "stale_fix", "{err}");
    }

    #[test]
    fn datalog_certificate_round_trips() {
        use bvq_datalog::ast::AtomTerm::Var as DV;
        let prog = Program::new()
            .rule("T", &[0, 1], &[("E", &[DV(0), DV(1)])])
            .rule(
                "T",
                &[0, 2],
                &[("E", &[DV(0), DV(1)]), ("T", &[DV(1), DV(2)])],
            );
        let db = path_db(4);
        let cert = certify_datalog(&db, &prog, "T").unwrap();
        let req = CheckRequest::Datalog {
            program: &prog,
            output: "T",
        };
        let parsed = Certificate::parse(&cert.encode()).unwrap();
        let CheckedAnswer::Rows(rel) = check(&db, &req, &parsed).unwrap() else {
            panic!("rows")
        };
        assert_eq!(rel.len(), 6);

        // Truncating the tree (dropping a leaf someone depends on) must
        // fail with an underived premise; dropping a final step fails
        // saturation.
        let Evidence::Derivation { steps, rounds } = &cert.evidence else {
            panic!("derivation")
        };
        let mut truncated = cert.clone();
        let Evidence::Derivation { steps: ts, .. } = &mut truncated.evidence else {
            panic!()
        };
        ts.remove(0);
        let err = check(&db, &req, &truncated).unwrap_err();
        assert!(
            matches!(
                err,
                Reject::UnderivedPremise { .. }
                    | Reject::IncompleteDerivation { .. }
                    | Reject::ClaimMismatch(_)
            ),
            "{err}"
        );

        // Off-by-one round count.
        let mut off = Certificate {
            claim: cert.claim.clone(),
            evidence: Evidence::Derivation {
                rounds: rounds + 1,
                steps: steps.clone(),
            },
        };
        assert_eq!(check(&db, &req, &off).unwrap_err().code(), "round_mismatch");
        let Evidence::Derivation { rounds: r, .. } = &mut off.evidence else {
            panic!()
        };
        *r = rounds.saturating_sub(1);
        assert_eq!(check(&db, &req, &off).unwrap_err().code(), "round_mismatch");
    }

    #[test]
    fn fo_query_gets_an_empty_trace() {
        let q = Query::new(
            vec![Var(0)],
            Formula::atom("E", [v(0), v(1)]).exists(Var(1)),
        );
        let db = path_db(3);
        let cert = certify_query(&db, &q).unwrap();
        assert!(matches!(&cert.evidence, Evidence::Trace { events } if events.is_empty()));
        let CheckedAnswer::Rows(rel) = check(&db, &CheckRequest::Query(&q), &cert).unwrap() else {
            panic!("rows")
        };
        assert_eq!(rel.len(), 2);
    }
}
