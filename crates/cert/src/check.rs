//! The trusted checker: replays a certificate against the (trusted)
//! query and database in one linear pass over the evidence, with zero
//! reference to the evaluator that produced it.
//!
//! # What each evidence kind proves
//!
//! **Iteration traces** (Theorem 3.5). For `lfp S.φ`, each `step`'s added
//! tuples are justified individually — `t̄ ∈ φ(Q_prev)` — which by
//! positivity keeps every chain value inside the least fixpoint; the
//! `conv` record triggers one full sweep `φ(Q) ⊆ Q`, so the final value
//! is also a prefixpoint and hence *equals* the least fixpoint. `gfp` is
//! the mirror image (justified deletions + a per-tuple `Q ⊆ φ(Q)`
//! sweep). `pfp` has no order to lean on, so each round is replayed as an
//! exact application (`Q_next = φ(Q_prev)`, verified by one sweep), with
//! `cycle r` verified against the recorded round-`r` snapshot — a
//! genuine cycle, since every replayed step had a non-empty delta, and a
//! cycling PFP denotes ∅ (§2.2). Checking costs `l·n^k` membership tests
//! against the `n^{k·l}`-flavored evaluation — the NP ∩ co-NP gap the
//! certificate exploits.
//!
//! Nested fixpoints replay under a *freshness discipline*: reading an
//! inner fixpoint's converged value (a `Fix` node) requires that value to
//! have re-converged since any enclosing chain value it reads last
//! changed; reading an in-progress chain value (a bound atom) does not.
//! A certificate that omits an inner re-convergence is rejected with
//! [`Reject::StaleFix`] — the staleness attack is structural, not a
//! matter of luck.
//!
//! **Derivation trees.** Each step must unify its rule's body with
//! premise tuples that are EDB facts or *previously derived* tuples and
//! reproduce the claimed head — so everything derived is in the least
//! model. One naive application of every rule over the final IDB must
//! then derive nothing new — so nothing of the least model is missing.
//! The `rounds` field must equal the tree's depth (longest premise
//! chain), pinning the producer's round accounting.
//!
//! **ESO witnesses** substitute the witness relations and evaluate the
//! first-order body once; only satisfiability (`claim bool true`) is
//! certifiable — Theorem 3.5's NP side.
//!
//! In every case the *claim* is confirmed last, against the replayed
//! state — a certificate whose evidence is impeccable but whose claim
//! disagrees is rejected with [`Reject::ClaimMismatch`]. Nothing is ever
//! accepted because the evidence "looks plausible": acceptance means the
//! claim was re-derived from trusted inputs plus verified evidence.

use std::fmt;

use bvq_datalog::{AtomTerm, Program, Rule};
use bvq_logic::{Eso, Query};
use bvq_relation::{Database, Elem, FxHashMap, Relation, Tuple};

use crate::eval::{domain_product, Ctx, MAX_SWEEP};
use crate::fixes::{FixIndex, Unsupported};
use crate::format::{Certificate, Claim, DerivStep, Evidence, FixEvent, ParseError};

/// Why the checker refused a certificate. Every variant carries enough
/// detail to be actionable and maps to a stable token via
/// [`Reject::code`] — the server reports that token, tests pin it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The text did not parse as a certificate at all.
    Malformed(ParseError),
    /// Evidence kind does not match the request (e.g. a Datalog
    /// derivation offered for a fixpoint query).
    WrongKind {
        /// Kind the request calls for.
        expected: &'static str,
        /// Kind the certificate carries.
        found: &'static str,
    },
    /// The query itself is outside the certifiable fragment — a refusal,
    /// not evidence of tampering.
    Unsupported(String),
    /// Replay would exceed the checker's work cap.
    TooLarge,
    /// A tuple mentions an element outside the database domain.
    OutOfDomain(Tuple),
    /// An event names a fixpoint index the formula does not have.
    UnknownFix(usize),
    /// An event arrived for a fixpoint that is not the innermost open
    /// one (or `begin` under the wrong parent).
    BadNesting(usize),
    /// A `step` with an empty delta — padding is not evidence.
    EmptyStep(usize),
    /// A delta is inconsistent with the chain (re-added tuple, deletion
    /// of an absent tuple, wrong delta side for the operator kind).
    BadDelta {
        /// The fixpoint.
        fix: usize,
        /// What was wrong.
        detail: String,
    },
    /// A chain move with no justification: an `lfp` addition not in
    /// `φ(Q_prev)`, or a `gfp` deletion still in `φ(Q_prev)`.
    Unjustified {
        /// The fixpoint.
        fix: usize,
        /// The unjustified tuple.
        tuple: Tuple,
    },
    /// A PFP round's delta does not equal the exact application, or a
    /// Datalog `rounds` field disagrees with the derivation tree depth.
    RoundMismatch(String),
    /// `conv` claimed on a value that is not a fixpoint of the body.
    NotAFixpoint(usize),
    /// A `cycle` record that does not close a genuine cycle (bad round
    /// reference, state mismatch, or non-PFP operator).
    BadCycle(usize),
    /// A converged value was read after something it depends on changed,
    /// without re-convergence in between.
    StaleFix(usize),
    /// A fixpoint value was read before any `begin` established one.
    MissingFix(usize),
    /// The trace ended with a fixpoint still open.
    UnfinishedFix(usize),
    /// A relation (database, witness, or predicate) the evidence names
    /// does not exist.
    UnknownRelation(String),
    /// Arities disagree between evidence and schema.
    ArityMismatch(String),
    /// A derivation step names a rule index outside the program.
    UnknownRule(usize),
    /// A derivation step's premise count differs from its rule's body.
    PremiseCount(usize),
    /// A premise tuple does not unify with its body atom under a single
    /// consistent substitution.
    PremiseMismatch {
        /// The derivation step (0-based).
        step: usize,
        /// The body atom position.
        atom: usize,
    },
    /// A premise tuple is neither an EDB fact nor previously derived.
    UnderivedPremise {
        /// The derivation step (0-based).
        step: usize,
        /// The offending premise tuple.
        tuple: Tuple,
    },
    /// The instantiated head does not equal the step's claimed tuple.
    HeadMismatch(usize),
    /// The same tuple was derived twice.
    DuplicateDerivation(usize),
    /// Saturation failed: a rule still derives a tuple the tree lacks.
    IncompleteDerivation {
        /// The rule index.
        rule: usize,
        /// A tuple the tree should have derived but did not.
        tuple: Tuple,
    },
    /// The witness relations do not satisfy the ESO body.
    WitnessViolation,
    /// The evidence verified but the claimed answer is not what it
    /// supports.
    ClaimMismatch(String),
}

impl Reject {
    /// Stable machine-readable token for this rejection class.
    pub fn code(&self) -> &'static str {
        match self {
            Reject::Malformed(_) => "malformed",
            Reject::WrongKind { .. } => "wrong_kind",
            Reject::Unsupported(_) => "unsupported",
            Reject::TooLarge => "too_large",
            Reject::OutOfDomain(_) => "out_of_domain",
            Reject::UnknownFix(_) => "unknown_fix",
            Reject::BadNesting(_) => "bad_nesting",
            Reject::EmptyStep(_) => "empty_step",
            Reject::BadDelta { .. } => "bad_delta",
            Reject::Unjustified { .. } => "unjustified",
            Reject::RoundMismatch(_) => "round_mismatch",
            Reject::NotAFixpoint(_) => "not_a_fixpoint",
            Reject::BadCycle(_) => "bad_cycle",
            Reject::StaleFix(_) => "stale_fix",
            Reject::MissingFix(_) => "missing_fix",
            Reject::UnfinishedFix(_) => "unfinished_fix",
            Reject::UnknownRelation(_) => "unknown_relation",
            Reject::ArityMismatch(_) => "arity_mismatch",
            Reject::UnknownRule(_) => "unknown_rule",
            Reject::PremiseCount(_) => "premise_count",
            Reject::PremiseMismatch { .. } => "premise_mismatch",
            Reject::UnderivedPremise { .. } => "underived_premise",
            Reject::HeadMismatch(_) => "head_mismatch",
            Reject::DuplicateDerivation(_) => "duplicate_derivation",
            Reject::IncompleteDerivation { .. } => "incomplete_derivation",
            Reject::WitnessViolation => "witness_violation",
            Reject::ClaimMismatch(_) => "claim_mismatch",
        }
    }
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reject::Malformed(e) => write!(f, "malformed certificate: {e}"),
            Reject::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong evidence kind: request needs `{expected}`, got `{found}`"
                )
            }
            Reject::Unsupported(s) => write!(f, "{s}"),
            Reject::TooLarge => write!(f, "replay exceeds the checker work cap"),
            Reject::OutOfDomain(t) => write!(f, "tuple {t:?} outside the database domain"),
            Reject::UnknownFix(i) => write!(f, "no fixpoint #{i} in the query"),
            Reject::BadNesting(i) => write!(f, "event for fixpoint #{i} violates nesting"),
            Reject::EmptyStep(i) => write!(f, "empty step for fixpoint #{i}"),
            Reject::BadDelta { fix, detail } => {
                write!(f, "inconsistent delta for fixpoint #{fix}: {detail}")
            }
            Reject::Unjustified { fix, tuple } => {
                write!(f, "unjustified chain move {tuple:?} for fixpoint #{fix}")
            }
            Reject::RoundMismatch(s) => write!(f, "round mismatch: {s}"),
            Reject::NotAFixpoint(i) => {
                write!(f, "claimed convergence of fixpoint #{i} is not a fixpoint")
            }
            Reject::BadCycle(i) => write!(f, "invalid cycle declaration for fixpoint #{i}"),
            Reject::StaleFix(i) => {
                write!(f, "fixpoint #{i} read while stale (missing re-convergence)")
            }
            Reject::MissingFix(i) => write!(f, "fixpoint #{i} read before any `begin`"),
            Reject::UnfinishedFix(i) => write!(f, "trace ends with fixpoint #{i} open"),
            Reject::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            Reject::ArityMismatch(s) => write!(f, "arity mismatch: {s}"),
            Reject::UnknownRule(i) => write!(f, "no rule #{i} in the program"),
            Reject::PremiseCount(i) => write!(f, "step {i}: premise count differs from rule body"),
            Reject::PremiseMismatch { step, atom } => {
                write!(
                    f,
                    "step {step}: premise {atom} does not unify with its body atom"
                )
            }
            Reject::UnderivedPremise { step, tuple } => {
                write!(
                    f,
                    "step {step}: premise {tuple:?} is neither EDB nor derived"
                )
            }
            Reject::HeadMismatch(i) => write!(f, "step {i}: head does not match the substitution"),
            Reject::DuplicateDerivation(i) => write!(f, "step {i}: tuple already derived"),
            Reject::IncompleteDerivation { rule, tuple } => {
                write!(f, "incomplete: rule #{rule} still derives {tuple:?}")
            }
            Reject::WitnessViolation => write!(f, "witness does not satisfy the sentence body"),
            Reject::ClaimMismatch(s) => write!(f, "claim mismatch: {s}"),
        }
    }
}

impl std::error::Error for Reject {}

impl From<Unsupported> for Reject {
    fn from(u: Unsupported) -> Reject {
        Reject::Unsupported(u.to_string())
    }
}

/// What a verified claim amounts to — safe to serve, cache, or compare.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckedAnswer {
    /// A verified sentence value.
    Boolean(bool),
    /// A verified answer relation.
    Rows(Relation),
}

/// The trusted side of a check: the query/program/sentence as parsed by
/// the *checker's* owner, never taken from the certificate.
pub enum CheckRequest<'q> {
    /// An FO/FP/PFP query expecting trace evidence.
    Query(&'q Query),
    /// A Datalog program and its designated output predicate, expecting
    /// derivation-tree evidence.
    Datalog {
        /// The program.
        program: &'q Program,
        /// The output predicate.
        output: &'q str,
    },
    /// An ESO sentence expecting witness evidence.
    Eso(&'q Eso),
}

impl CheckRequest<'_> {
    fn expected_kind(&self) -> &'static str {
        match self {
            CheckRequest::Query(_) => "fp",
            CheckRequest::Datalog { .. } => "datalog",
            CheckRequest::Eso(_) => "eso",
        }
    }
}

/// Parses and checks a certificate in its text encoding.
pub fn check_text(
    db: &Database,
    req: &CheckRequest<'_>,
    text: &str,
) -> Result<CheckedAnswer, Reject> {
    let cert = Certificate::parse(text).map_err(Reject::Malformed)?;
    check(db, req, &cert)
}

/// Checks a certificate against a request and database. `Ok` returns the
/// now-trusted answer; `Err` explains the rejection.
pub fn check(
    db: &Database,
    req: &CheckRequest<'_>,
    cert: &Certificate,
) -> Result<CheckedAnswer, Reject> {
    match (req, &cert.evidence) {
        (CheckRequest::Query(q), Evidence::Trace { events }) => {
            check_trace(db, q, events, &cert.claim)
        }
        (CheckRequest::Datalog { program, output }, Evidence::Derivation { rounds, steps }) => {
            check_derivation(db, program, output, *rounds, steps, &cert.claim)
        }
        (CheckRequest::Eso(eso), Evidence::Witness { rels }) => {
            check_witness(db, eso, rels, &cert.claim)
        }
        _ => Err(Reject::WrongKind {
            expected: req.expected_kind(),
            found: cert.kind(),
        }),
    }
}

fn tuple_in_domain(t: &Tuple, n: usize) -> Result<(), Reject> {
    if t.as_slice().iter().any(|&e| e as usize >= n) {
        return Err(Reject::OutOfDomain(t.clone()));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Iteration traces
// ---------------------------------------------------------------------

fn check_trace(
    db: &Database,
    query: &Query,
    events: &[FixEvent],
    claim: &Claim,
) -> Result<CheckedAnswer, Reject> {
    for (i, v) in query.output.iter().enumerate() {
        if query.output[..i].contains(v) {
            return Err(Reject::Unsupported(
                "repeated output variables are not certified".into(),
            ));
        }
    }
    if events.len() > MAX_SWEEP {
        return Err(Reject::TooLarge);
    }
    let idx = FixIndex::build(&query.formula, &[])?;
    let mut ctx = Ctx::new(db, &idx);
    let mut stack: Vec<usize> = Vec::new();
    // Per-PFP-fixpoint snapshots of every round state (index 0 = seed),
    // for cycle verification.
    let mut snaps: FxHashMap<usize, Vec<Relation>> = FxHashMap::default();

    use bvq_logic::FixKind;
    for ev in events {
        let fix = ev.fix();
        if fix >= idx.len() {
            return Err(Reject::UnknownFix(fix));
        }
        let kind = idx.fixes[fix].kind;
        let arity = idx.fixes[fix].arity;
        match ev {
            FixEvent::Begin { .. } => {
                if idx.fixes[fix].parent != stack.last().copied() {
                    return Err(Reject::BadNesting(fix));
                }
                let seed = match kind {
                    FixKind::Lfp | FixKind::Pfp => Relation::new(arity),
                    FixKind::Gfp => {
                        if domain_product(arity, ctx.n).is_err() {
                            return Err(Reject::TooLarge);
                        }
                        Relation::full(arity, ctx.n)
                    }
                    FixKind::Ifp => unreachable!("IFP rejected at index build"),
                };
                if kind == FixKind::Pfp {
                    snaps.insert(fix, vec![seed.clone()]);
                }
                ctx.val[fix] = Some(seed);
                ctx.fresh[fix] = false;
                ctx.invalidate_readers_of(fix);
                stack.push(fix);
            }
            FixEvent::Step { add, del, .. } => {
                if stack.last() != Some(&fix) {
                    return Err(Reject::BadNesting(fix));
                }
                if add.is_empty() && del.is_empty() {
                    return Err(Reject::EmptyStep(fix));
                }
                for t in add.iter().chain(del) {
                    if t.arity() != arity {
                        return Err(Reject::ArityMismatch(format!(
                            "delta tuple of arity {} for fixpoint #{fix} of arity {arity}",
                            t.arity()
                        )));
                    }
                    tuple_in_domain(t, ctx.n)?;
                }
                match kind {
                    FixKind::Lfp => {
                        if !del.is_empty() {
                            return Err(Reject::BadDelta {
                                fix,
                                detail: "lfp chains never delete".into(),
                            });
                        }
                        // Justify every addition against Q_prev, then apply.
                        for t in add {
                            let cur = ctx.val[fix].as_ref().ok_or(Reject::MissingFix(fix))?;
                            if cur.contains(t) {
                                return Err(Reject::BadDelta {
                                    fix,
                                    detail: format!("{t:?} already present"),
                                });
                            }
                            if !ctx.body_holds_at(fix, t)? {
                                return Err(Reject::Unjustified {
                                    fix,
                                    tuple: t.clone(),
                                });
                            }
                        }
                        let cur = ctx.val[fix].as_mut().unwrap();
                        for t in add {
                            cur.insert(t.clone());
                        }
                    }
                    FixKind::Gfp => {
                        if !add.is_empty() {
                            return Err(Reject::BadDelta {
                                fix,
                                detail: "gfp chains never add".into(),
                            });
                        }
                        for t in del {
                            let cur = ctx.val[fix].as_ref().ok_or(Reject::MissingFix(fix))?;
                            if !cur.contains(t) {
                                return Err(Reject::BadDelta {
                                    fix,
                                    detail: format!("{t:?} not present"),
                                });
                            }
                            if ctx.body_holds_at(fix, t)? {
                                return Err(Reject::Unjustified {
                                    fix,
                                    tuple: t.clone(),
                                });
                            }
                        }
                        let cur = ctx.val[fix].as_mut().unwrap();
                        for t in del {
                            cur.remove(t);
                        }
                    }
                    FixKind::Pfp => {
                        // No order to lean on: replay the round exactly.
                        let next = ctx.apply_body(fix)?;
                        let cur = ctx.val[fix].as_ref().ok_or(Reject::MissingFix(fix))?;
                        let want_add = next.difference(cur);
                        let want_del = cur.difference(&next);
                        let (mut got_add, mut got_del) =
                            (Relation::new(arity), Relation::new(arity));
                        for t in add {
                            got_add.insert(t.clone());
                        }
                        for t in del {
                            got_del.insert(t.clone());
                        }
                        if got_add != want_add || got_del != want_del {
                            return Err(Reject::RoundMismatch(format!(
                                "pfp #{fix} round delta does not match the exact application"
                            )));
                        }
                        snaps.get_mut(&fix).unwrap().push(next.clone());
                        ctx.val[fix] = Some(next);
                    }
                    FixKind::Ifp => unreachable!("IFP rejected at index build"),
                }
                ctx.invalidate_readers_of(fix);
            }
            FixEvent::Converged { .. } => {
                if stack.last() != Some(&fix) {
                    return Err(Reject::BadNesting(fix));
                }
                match kind {
                    FixKind::Lfp => {
                        // φ(Q) ⊆ Q: one sweep; with the justified chain
                        // this pins Q = lfp.
                        for t in domain_product(arity, ctx.n)? {
                            let inside = ctx.val[fix]
                                .as_ref()
                                .ok_or(Reject::MissingFix(fix))?
                                .contains(&t);
                            if !inside && ctx.body_holds_at(fix, &t)? {
                                return Err(Reject::NotAFixpoint(fix));
                            }
                        }
                    }
                    FixKind::Gfp => {
                        // Q ⊆ φ(Q): per-tuple, dual of the above.
                        let members = ctx.val[fix]
                            .as_ref()
                            .ok_or(Reject::MissingFix(fix))?
                            .sorted();
                        for t in members {
                            if !ctx.body_holds_at(fix, &t)? {
                                return Err(Reject::NotAFixpoint(fix));
                            }
                        }
                    }
                    FixKind::Pfp => {
                        let next = ctx.apply_body(fix)?;
                        if Some(&next) != ctx.val[fix].as_ref() {
                            return Err(Reject::NotAFixpoint(fix));
                        }
                    }
                    FixKind::Ifp => unreachable!("IFP rejected at index build"),
                }
                stack.pop();
                ctx.fresh[fix] = true;
            }
            FixEvent::Cycle { back_to, .. } => {
                if stack.last() != Some(&fix) {
                    return Err(Reject::BadNesting(fix));
                }
                if kind != FixKind::Pfp {
                    return Err(Reject::BadCycle(fix));
                }
                let states = snaps.get(&fix).ok_or(Reject::BadCycle(fix))?;
                // The reference must be a strictly earlier state equal to
                // the current one. Every replayed step had a non-empty
                // (exact) delta, so no state in the cycle is a fixpoint:
                // the iteration genuinely diverges and denotes ∅.
                if *back_to + 1 >= states.len() || states[*back_to] != *states.last().unwrap() {
                    return Err(Reject::BadCycle(fix));
                }
                ctx.val[fix] = Some(Relation::new(arity));
                ctx.invalidate_readers_of(fix);
                stack.pop();
                ctx.fresh[fix] = true;
            }
        }
    }
    if let Some(&open) = stack.last() {
        return Err(Reject::UnfinishedFix(open));
    }

    // Evidence replayed; now confirm the claim against the final state.
    if query.output.is_empty() {
        let Claim::Boolean(b) = claim else {
            return Err(Reject::ClaimMismatch(
                "sentence query needs a boolean claim".into(),
            ));
        };
        let actual = ctx.member(&query.formula)?;
        if actual != *b {
            return Err(Reject::ClaimMismatch(format!(
                "sentence evaluates to {actual}, claim says {b}"
            )));
        }
        Ok(CheckedAnswer::Boolean(actual))
    } else {
        let Claim::Rows { arity, rows } = claim else {
            return Err(Reject::ClaimMismatch("row query needs a row claim".into()));
        };
        if *arity != query.output.len() {
            return Err(Reject::ClaimMismatch(format!(
                "claim arity {arity} vs output arity {}",
                query.output.len()
            )));
        }
        let mut claimed = Relation::new(*arity);
        for t in rows {
            if t.arity() != *arity {
                return Err(Reject::ClaimMismatch("ragged claim rows".into()));
            }
            tuple_in_domain(t, ctx.n)?;
            claimed.insert(t.clone());
        }
        for t in domain_product(*arity, ctx.n)? {
            let saved = ctx.bind_tuple(&query.output, &t);
            let sat = ctx.member(&query.formula);
            ctx.unbind_tuple(&query.output, saved);
            if sat? != claimed.contains(&t) {
                return Err(Reject::ClaimMismatch(format!(
                    "row {t:?} {} the claim but {} the replayed answer",
                    if claimed.contains(&t) {
                        "is in"
                    } else {
                        "is missing from"
                    },
                    if claimed.contains(&t) { "not in" } else { "in" },
                )));
            }
        }
        Ok(CheckedAnswer::Rows(claimed))
    }
}

// ---------------------------------------------------------------------
// Datalog derivation trees
// ---------------------------------------------------------------------

fn unify_atom(args: &[AtomTerm], tuple: &Tuple, theta: &mut FxHashMap<u32, Elem>) -> bool {
    if args.len() != tuple.arity() {
        return false;
    }
    for (a, &e) in args.iter().zip(tuple.as_slice()) {
        match a {
            AtomTerm::Const(c) => {
                if *c != e {
                    return false;
                }
            }
            AtomTerm::Var(v) => match theta.get(v) {
                Some(&bound) => {
                    if bound != e {
                        return false;
                    }
                }
                None => {
                    theta.insert(*v, e);
                }
            },
        }
    }
    true
}

fn check_derivation(
    db: &Database,
    program: &Program,
    output: &str,
    rounds: u64,
    steps: &[DerivStep],
    claim: &Claim,
) -> Result<CheckedAnswer, Reject> {
    if steps.len() > MAX_SWEEP {
        return Err(Reject::TooLarge);
    }
    let idb = program.idb_predicates();
    if !idb.iter().any(|(p, _)| p == output) {
        return Err(Reject::UnknownRelation(output.to_string()));
    }
    let mut derived: FxHashMap<&str, Relation> = idb
        .iter()
        .map(|(p, a)| (p.as_str(), Relation::new(*a)))
        .collect();
    let mut depth: FxHashMap<(&str, Tuple), u64> = FxHashMap::default();

    for (i, step) in steps.iter().enumerate() {
        let rule: &Rule = program
            .rules
            .get(step.rule)
            .ok_or(Reject::UnknownRule(step.rule))?;
        if step.premises.len() != rule.body.len() {
            return Err(Reject::PremiseCount(i));
        }
        let mut theta: FxHashMap<u32, Elem> = FxHashMap::default();
        let mut step_depth = 0u64;
        for (j, (atom, premise)) in rule.body.iter().zip(&step.premises).enumerate() {
            if !unify_atom(&atom.args, premise, &mut theta) {
                return Err(Reject::PremiseMismatch { step: i, atom: j });
            }
            if derived.contains_key(atom.pred.as_str()) {
                let rel = &derived[atom.pred.as_str()];
                if !rel.contains(premise) {
                    return Err(Reject::UnderivedPremise {
                        step: i,
                        tuple: premise.clone(),
                    });
                }
                step_depth = step_depth.max(
                    depth
                        .get(&(atom.pred.as_str(), premise.clone()))
                        .copied()
                        .unwrap_or(0)
                        + 1,
                );
            } else {
                let rel = db
                    .relation_by_name(&atom.pred)
                    .ok_or_else(|| Reject::UnknownRelation(atom.pred.clone()))?;
                if !rel.contains(premise) {
                    return Err(Reject::UnderivedPremise {
                        step: i,
                        tuple: premise.clone(),
                    });
                }
                step_depth = step_depth.max(1);
            }
        }
        let mut head = Vec::with_capacity(rule.head.vars.len());
        for v in &rule.head.vars {
            match theta.get(v) {
                Some(&e) => head.push(e),
                None => return Err(Reject::HeadMismatch(i)),
            }
        }
        if Tuple::from_slice(&head) != step.tuple {
            return Err(Reject::HeadMismatch(i));
        }
        let pred = idb
            .iter()
            .find(|(p, _)| *p == rule.head.pred)
            .map(|(p, _)| p.as_str())
            .ok_or_else(|| Reject::UnknownRelation(rule.head.pred.clone()))?;
        let rel = derived.get_mut(pred).unwrap();
        if rel.arity() != step.tuple.arity() {
            return Err(Reject::ArityMismatch(format!(
                "derived tuple arity {} for `{pred}` of arity {}",
                step.tuple.arity(),
                rel.arity()
            )));
        }
        if !rel.insert(step.tuple.clone()) {
            return Err(Reject::DuplicateDerivation(i));
        }
        depth.insert((pred, step.tuple.clone()), step_depth);
    }

    let tree_depth = depth.values().copied().max().unwrap_or(0);
    if tree_depth != rounds {
        return Err(Reject::RoundMismatch(format!(
            "certificate says {rounds} rounds, derivation tree has depth {tree_depth}"
        )));
    }

    // Saturation: one naive application of every rule over the final IDB
    // must derive nothing new.
    let mut work = 0usize;
    for (ri, rule) in program.rules.iter().enumerate() {
        let mut theta: FxHashMap<u32, Elem> = FxHashMap::default();
        saturated(db, &derived, rule, ri, 0, &mut theta, &mut work)?;
    }

    // Confirm the claim: it must be exactly the derived output relation.
    let Claim::Rows { arity, rows } = claim else {
        return Err(Reject::ClaimMismatch(
            "datalog claims are row claims".into(),
        ));
    };
    let out_rel = &derived[output];
    if *arity != out_rel.arity() {
        return Err(Reject::ClaimMismatch(format!(
            "claim arity {arity} vs `{output}` arity {}",
            out_rel.arity()
        )));
    }
    let mut claimed = Relation::new(*arity);
    for t in rows {
        if t.arity() != *arity {
            return Err(Reject::ClaimMismatch("ragged claim rows".into()));
        }
        claimed.insert(t.clone());
    }
    if claimed != *out_rel {
        return Err(Reject::ClaimMismatch(format!(
            "claimed `{output}` has {} rows, derivation supports {}",
            claimed.len(),
            out_rel.len()
        )));
    }
    Ok(CheckedAnswer::Rows(claimed))
}

/// Backtracking join over one rule's body; errors with
/// [`Reject::IncompleteDerivation`] on any satisfying valuation whose
/// head is not already derived.
fn saturated(
    db: &Database,
    derived: &FxHashMap<&str, Relation>,
    rule: &Rule,
    rule_idx: usize,
    atom: usize,
    theta: &mut FxHashMap<u32, Elem>,
    work: &mut usize,
) -> Result<(), Reject> {
    *work += 1;
    if *work > MAX_SWEEP {
        return Err(Reject::TooLarge);
    }
    if atom == rule.body.len() {
        let mut head = Vec::with_capacity(rule.head.vars.len());
        for v in &rule.head.vars {
            match theta.get(v) {
                Some(&e) => head.push(e),
                // Not range-restricted: the program itself is invalid;
                // surface as unsupported rather than guessing.
                None => {
                    return Err(Reject::Unsupported(format!(
                        "rule #{rule_idx} is not range-restricted"
                    )))
                }
            }
        }
        let t = Tuple::from_slice(&head);
        let ok = derived
            .get(rule.head.pred.as_str())
            .is_some_and(|r| r.contains(&t));
        if !ok {
            return Err(Reject::IncompleteDerivation {
                rule: rule_idx,
                tuple: t,
            });
        }
        return Ok(());
    }
    let a = &rule.body[atom];
    let rel: &Relation = match derived.get(a.pred.as_str()) {
        Some(r) => r,
        None => db
            .relation_by_name(&a.pred)
            .ok_or_else(|| Reject::UnknownRelation(a.pred.clone()))?,
    };
    for t in rel.iter() {
        let saved: Vec<(u32, bool)> = a
            .args
            .iter()
            .filter_map(|at| match at {
                AtomTerm::Var(v) => Some((*v, theta.contains_key(v))),
                AtomTerm::Const(_) => None,
            })
            .collect();
        if unify_atom(&a.args, t, theta) {
            saturated(db, derived, rule, rule_idx, atom + 1, theta, work)?;
        }
        // Roll back bindings this atom introduced.
        for (v, was_bound) in saved {
            if !was_bound {
                theta.remove(&v);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// ESO witnesses
// ---------------------------------------------------------------------

fn check_witness(
    db: &Database,
    eso: &Eso,
    rels: &[(String, Relation)],
    claim: &Claim,
) -> Result<CheckedAnswer, Reject> {
    let Claim::Boolean(b) = claim else {
        return Err(Reject::ClaimMismatch("witness claims are boolean".into()));
    };
    if !*b {
        return Err(Reject::Unsupported(
            "only satisfiability is witness-certifiable (the NP side)".into(),
        ));
    }
    if !eso.body.free_vars().is_empty() {
        return Err(Reject::Unsupported(
            "only ESO sentences are witness-certifiable".into(),
        ));
    }
    let names: Vec<String> = eso.rels.iter().map(|(n, _)| n.clone()).collect();
    for (name, rel) in rels {
        let Some((_, want)) = eso.rels.iter().find(|(n, _)| n == name) else {
            return Err(Reject::UnknownRelation(name.clone()));
        };
        if rel.arity() != *want {
            return Err(Reject::ArityMismatch(format!(
                "witness `{name}` has arity {}, sentence declares {want}",
                rel.arity()
            )));
        }
        for t in rel.iter() {
            tuple_in_domain(t, db.domain_size())?;
        }
    }
    let idx = FixIndex::build(&eso.body, &names)?;
    if !idx.is_empty() {
        return Err(Reject::Unsupported(
            "fixpoints inside an ESO body are not witness-certifiable".into(),
        ));
    }
    let mut ctx = Ctx::new(db, &idx);
    // Quantified symbols without a witness block default to empty — the
    // evaluator's `check_with_witness` leaves unreferenced relations out.
    ctx.witness = eso
        .rels
        .iter()
        .map(|(n, a)| {
            rels.iter()
                .find(|(rn, _)| rn == n)
                .map(|(rn, r)| (rn.clone(), r.clone()))
                .unwrap_or_else(|| (n.clone(), Relation::new(*a)))
        })
        .collect();
    if !ctx.member(&eso.body)? {
        return Err(Reject::WitnessViolation);
    }
    Ok(CheckedAnswer::Boolean(true))
}
