//! The certificate format and its compact line-based wire encoding.
//!
//! A [`Certificate`] pairs a *claim* (the answer an untrusted producer
//! asserts) with *evidence* the trusted checker can replay:
//!
//! * **`Trace`** — Theorem 3.5's iteration trace for FO/FP/PFP queries: a
//!   flat event stream of `begin`/`step`/`conv`/`cycle` records per
//!   fixpoint, carrying only the per-round relation *deltas* (`l·n^k`
//!   tuples instead of the `n^{kl}` evaluation);
//! * **`Derivation`** — a Datalog derivation tree: one step per derived
//!   tuple naming the rule and the premise tuples of every body atom, plus
//!   the semi-naive round count as metadata;
//! * **`Witness`** — the existential witness relations of a satisfiable
//!   ESO sentence.
//!
//! The encoding is a stable, line-oriented text format (one token-separated
//! record per line) so certificates can be pinned in golden tests, diffed,
//! and carried over the server's line-JSON protocol as a single string
//! field. Encoding is canonical: claim rows, witness rows and step deltas
//! are sorted, so `parse(encode(c)) == c` and goldens are deterministic.

use std::fmt;

use bvq_relation::{Elem, Relation, Tuple};

/// Format version emitted in the header line.
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on the number of lines a certificate may decode from —
/// denial-of-service hygiene for certificates arriving off the wire.
pub const MAX_LINES: usize = 1 << 22;

/// The answer the producer claims; the checker validates the evidence and
/// then confirms the claim against its own replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Claim {
    /// A sentence's truth value.
    Boolean(bool),
    /// A query answer relation (rows sorted and deduplicated).
    Rows {
        /// The answer arity (`|output|`).
        arity: usize,
        /// The claimed tuples, sorted.
        rows: Vec<Tuple>,
    },
}

impl Claim {
    /// Builds a canonical (sorted, deduplicated) row claim.
    pub fn rows(arity: usize, mut rows: Vec<Tuple>) -> Claim {
        rows.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        rows.dedup();
        Claim::Rows { arity, rows }
    }

    /// Builds a row claim from a relation.
    pub fn from_relation(rel: &Relation) -> Claim {
        Claim::Rows {
            arity: rel.arity(),
            rows: rel.sorted(),
        }
    }
}

/// One record of a fixpoint iteration trace. `fix` identifies the
/// `Fix` operator by its pre-order index in the query formula — the
/// checker derives the same numbering independently, so the certificate
/// never names engine-internal identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FixEvent {
    /// Iteration of fixpoint `fix` (re)starts from its seed value
    /// (∅ for lfp/ifp/pfp, the full space for gfp).
    Begin {
        /// Pre-order fixpoint index.
        fix: usize,
    },
    /// One iteration round's delta: `add` joins the relation, `del`
    /// leaves it. Monotone traces use one side only; PFP rounds may use
    /// both.
    Step {
        /// Pre-order fixpoint index.
        fix: usize,
        /// Tuples added this round (sorted).
        add: Vec<Tuple>,
        /// Tuples removed this round (sorted).
        del: Vec<Tuple>,
    },
    /// The iteration reached a fixpoint; the current value is final.
    Converged {
        /// Pre-order fixpoint index.
        fix: usize,
    },
    /// The PFP iteration revisited the state it had after round
    /// `back_to` — a cycle, so the iteration diverges and the fixpoint
    /// denotes the empty relation (§2.2).
    Cycle {
        /// Pre-order fixpoint index.
        fix: usize,
        /// The earlier round whose state recurred (0 = the seed).
        back_to: usize,
    },
}

impl FixEvent {
    /// The fixpoint index the event belongs to.
    pub fn fix(&self) -> usize {
        match self {
            FixEvent::Begin { fix }
            | FixEvent::Step { fix, .. }
            | FixEvent::Converged { fix }
            | FixEvent::Cycle { fix, .. } => *fix,
        }
    }
}

/// One derived tuple of a Datalog derivation tree: the rule that produced
/// it and the premise tuple matched against each body atom, in body
/// order. Premises must be EDB tuples or tuples derived by *earlier*
/// steps, which is what makes the list a tree (pointers only go
/// backwards).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivStep {
    /// Index of the producing rule in the program.
    pub rule: usize,
    /// The derived head tuple.
    pub tuple: Tuple,
    /// One premise tuple per body atom, in body order.
    pub premises: Vec<Tuple>,
}

/// The evidence side of a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Evidence {
    /// Fixpoint iteration trace (FO queries have an empty event list —
    /// the claim replay is the entire check).
    Trace {
        /// The event stream, in emission order.
        events: Vec<FixEvent>,
    },
    /// Datalog derivation tree.
    Derivation {
        /// Semi-naive rounds the producer needed (completeness
        /// metadata; the checker's one-round saturation check is the
        /// binding evidence).
        rounds: u64,
        /// Derivation steps, in derivation order.
        steps: Vec<DerivStep>,
    },
    /// ESO existential witness: one relation per quantified symbol.
    Witness {
        /// `(name, relation)` pairs, sorted by name.
        rels: Vec<(String, Relation)>,
    },
}

/// A certificate: a claimed answer plus replayable evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The claimed answer.
    pub claim: Claim,
    /// The evidence the checker replays.
    pub evidence: Evidence,
}

impl Certificate {
    /// The kind tag used in the header line: `fp`, `datalog` or `eso`.
    pub fn kind(&self) -> &'static str {
        match self.evidence {
            Evidence::Trace { .. } => "fp",
            Evidence::Derivation { .. } => "datalog",
            Evidence::Witness { .. } => "eso",
        }
    }

    /// Serializes to the canonical text encoding.
    pub fn encode(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "bvqcert {} {}", FORMAT_VERSION, self.kind());
        match &self.claim {
            Claim::Boolean(b) => {
                let _ = writeln!(out, "claim bool {b}");
            }
            Claim::Rows { arity, rows } => {
                let _ = writeln!(out, "claim rows {arity} {}", rows.len());
                for r in rows {
                    let _ = writeln!(out, "row {}", encode_tuple(r));
                }
            }
        }
        match &self.evidence {
            Evidence::Trace { events } => {
                for e in events {
                    match e {
                        FixEvent::Begin { fix } => {
                            let _ = writeln!(out, "begin {fix}");
                        }
                        FixEvent::Step { fix, add, del } => {
                            let _ = write!(out, "step {fix}");
                            for t in add {
                                let _ = write!(out, " +{}", encode_tuple(t));
                            }
                            for t in del {
                                let _ = write!(out, " -{}", encode_tuple(t));
                            }
                            out.push('\n');
                        }
                        FixEvent::Converged { fix } => {
                            let _ = writeln!(out, "conv {fix}");
                        }
                        FixEvent::Cycle { fix, back_to } => {
                            let _ = writeln!(out, "cycle {fix} {back_to}");
                        }
                    }
                }
            }
            Evidence::Derivation { rounds, steps } => {
                let _ = writeln!(out, "rounds {rounds}");
                for s in steps {
                    let _ = write!(out, "step {} {} :", s.rule, encode_tuple(&s.tuple));
                    for p in &s.premises {
                        let _ = write!(out, " {}", encode_tuple(p));
                    }
                    out.push('\n');
                }
            }
            Evidence::Witness { rels } => {
                for (name, rel) in rels {
                    let _ = writeln!(out, "witness {name} {} {}", rel.arity(), rel.len());
                    for t in rel.sorted() {
                        let _ = writeln!(out, "row {}", encode_tuple(&t));
                    }
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text encoding produced by [`Certificate::encode`].
    pub fn parse(text: &str) -> Result<Certificate, ParseError> {
        Parser::new(text).parse()
    }
}

/// A parse failure: the offending 1-based line and a reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// `e1,e2,…` — the empty tuple encodes as `()`.
fn encode_tuple(t: &Tuple) -> String {
    if t.arity() == 0 {
        return "()".to_string();
    }
    t.as_slice()
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_tuple(s: &str) -> Result<Tuple, String> {
    if s == "()" {
        return Ok(Tuple::unit());
    }
    let mut elems: Vec<Elem> = Vec::new();
    for part in s.split(',') {
        elems.push(
            part.parse::<Elem>()
                .map_err(|_| format!("bad tuple element `{part}`"))?,
        );
    }
    Ok(Tuple::from_slice(&elems))
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().enumerate(),
            line: 0,
        }
    }

    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            reason: reason.into(),
        }
    }

    fn next_line(&mut self) -> Result<&'a str, ParseError> {
        match self.lines.next() {
            Some((i, l)) => {
                self.line = i + 1;
                if self.line > MAX_LINES {
                    return Err(self.err("certificate exceeds the line cap"));
                }
                Ok(l.trim_end())
            }
            None => {
                self.line += 1;
                Err(self.err("unexpected end of certificate (missing `end`)"))
            }
        }
    }

    fn parse_usize(&self, s: &str, what: &str) -> Result<usize, ParseError> {
        s.parse::<usize>()
            .map_err(|_| self.err(format!("bad {what} `{s}`")))
    }

    fn parse(mut self) -> Result<Certificate, ParseError> {
        let header = self.next_line()?;
        let mut h = header.split_whitespace();
        if h.next() != Some("bvqcert") {
            return Err(self.err("missing `bvqcert` header"));
        }
        let version = h.next().ok_or_else(|| self.err("missing version"))?;
        if version != FORMAT_VERSION.to_string() {
            return Err(self.err(format!("unsupported version `{version}`")));
        }
        let kind = h
            .next()
            .ok_or_else(|| self.err("missing kind"))?
            .to_string();
        if h.next().is_some() {
            return Err(self.err("trailing tokens after header"));
        }
        let claim = self.parse_claim()?;
        let evidence = match kind.as_str() {
            "fp" => self.parse_trace()?,
            "datalog" => self.parse_derivation()?,
            "eso" => self.parse_witness()?,
            other => return Err(self.err(format!("unknown certificate kind `{other}`"))),
        };
        if self.lines.next().is_some() {
            self.line += 1;
            return Err(self.err("trailing lines after `end`"));
        }
        Ok(Certificate { claim, evidence })
    }

    fn parse_claim(&mut self) -> Result<Claim, ParseError> {
        let line = self.next_line()?;
        let mut it = line.split_whitespace();
        if it.next() != Some("claim") {
            return Err(self.err("expected `claim` line"));
        }
        match it.next() {
            Some("bool") => {
                let v = match it.next() {
                    Some("true") => true,
                    Some("false") => false,
                    other => return Err(self.err(format!("bad boolean claim `{other:?}`"))),
                };
                Ok(Claim::Boolean(v))
            }
            Some("rows") => {
                let arity =
                    self.parse_usize(it.next().ok_or_else(|| self.err("missing arity"))?, "arity")?;
                let count =
                    self.parse_usize(it.next().ok_or_else(|| self.err("missing count"))?, "count")?;
                if count > MAX_LINES {
                    return Err(self.err("row count exceeds the line cap"));
                }
                let mut rows = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    let l = self.next_line()?;
                    let rest = l
                        .strip_prefix("row ")
                        .or(if l == "row" { Some("()") } else { None })
                        .ok_or_else(|| self.err("expected `row` line"))?;
                    let t = parse_tuple(rest.trim()).map_err(|e| self.err(e))?;
                    if t.arity() != arity {
                        return Err(self.err(format!(
                            "row arity {} does not match claim arity {arity}",
                            t.arity()
                        )));
                    }
                    rows.push(t);
                }
                Ok(Claim::Rows { arity, rows })
            }
            other => Err(self.err(format!("bad claim form `{other:?}`"))),
        }
    }

    fn parse_trace(&mut self) -> Result<Evidence, ParseError> {
        let mut events = Vec::new();
        loop {
            let line = self.next_line()?;
            let mut it = line.split_whitespace();
            match it.next() {
                Some("end") => break,
                Some("begin") => {
                    let fix =
                        self.parse_usize(it.next().ok_or_else(|| self.err("missing fix"))?, "fix")?;
                    events.push(FixEvent::Begin { fix });
                }
                Some("conv") => {
                    let fix =
                        self.parse_usize(it.next().ok_or_else(|| self.err("missing fix"))?, "fix")?;
                    events.push(FixEvent::Converged { fix });
                }
                Some("cycle") => {
                    let fix =
                        self.parse_usize(it.next().ok_or_else(|| self.err("missing fix"))?, "fix")?;
                    let back_to = self.parse_usize(
                        it.next().ok_or_else(|| self.err("missing round"))?,
                        "round",
                    )?;
                    events.push(FixEvent::Cycle { fix, back_to });
                }
                Some("step") => {
                    let fix =
                        self.parse_usize(it.next().ok_or_else(|| self.err("missing fix"))?, "fix")?;
                    let mut add = Vec::new();
                    let mut del = Vec::new();
                    for tok in it {
                        if let Some(rest) = tok.strip_prefix('+') {
                            add.push(parse_tuple(rest).map_err(|e| self.err(e))?);
                        } else if let Some(rest) = tok.strip_prefix('-') {
                            del.push(parse_tuple(rest).map_err(|e| self.err(e))?);
                        } else {
                            return Err(self.err(format!("bad delta token `{tok}`")));
                        }
                    }
                    events.push(FixEvent::Step { fix, add, del });
                }
                other => return Err(self.err(format!("bad trace record `{other:?}`"))),
            }
        }
        Ok(Evidence::Trace { events })
    }

    fn parse_derivation(&mut self) -> Result<Evidence, ParseError> {
        let line = self.next_line()?;
        let mut it = line.split_whitespace();
        if it.next() != Some("rounds") {
            return Err(self.err("expected `rounds` line"));
        }
        let rounds = it
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| self.err("bad round count"))?;
        let mut steps = Vec::new();
        loop {
            let line = self.next_line()?;
            if line == "end" {
                break;
            }
            let mut it = line.split_whitespace();
            if it.next() != Some("step") {
                return Err(self.err("expected `step` or `end`"));
            }
            let rule =
                self.parse_usize(it.next().ok_or_else(|| self.err("missing rule"))?, "rule")?;
            let tuple = parse_tuple(it.next().ok_or_else(|| self.err("missing head tuple"))?)
                .map_err(|e| self.err(e))?;
            if it.next() != Some(":") {
                return Err(self.err("expected `:` before premises"));
            }
            let mut premises = Vec::new();
            for tok in it {
                premises.push(parse_tuple(tok).map_err(|e| self.err(e))?);
            }
            steps.push(DerivStep {
                rule,
                tuple,
                premises,
            });
        }
        Ok(Evidence::Derivation { rounds, steps })
    }

    fn parse_witness(&mut self) -> Result<Evidence, ParseError> {
        let mut rels = Vec::new();
        loop {
            let line = self.next_line()?;
            if line == "end" {
                break;
            }
            let mut it = line.split_whitespace();
            if it.next() != Some("witness") {
                return Err(self.err("expected `witness` or `end`"));
            }
            let name = it
                .next()
                .ok_or_else(|| self.err("missing witness name"))?
                .to_string();
            let arity =
                self.parse_usize(it.next().ok_or_else(|| self.err("missing arity"))?, "arity")?;
            let count =
                self.parse_usize(it.next().ok_or_else(|| self.err("missing count"))?, "count")?;
            if count > MAX_LINES {
                return Err(self.err("row count exceeds the line cap"));
            }
            let mut rel = Relation::new(arity);
            for _ in 0..count {
                let l = self.next_line()?;
                let rest = l
                    .strip_prefix("row ")
                    .or(if l == "row" { Some("()") } else { None })
                    .ok_or_else(|| self.err("expected `row` line"))?;
                let t = parse_tuple(rest.trim()).map_err(|e| self.err(e))?;
                if t.arity() != arity {
                    return Err(self.err(format!(
                        "witness row arity {} does not match {arity}",
                        t.arity()
                    )));
                }
                rel.insert(t);
            }
            rels.push((name, rel));
        }
        Ok(Evidence::Witness { rels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(elems: &[Elem]) -> Tuple {
        Tuple::from_slice(elems)
    }

    #[test]
    fn trace_round_trips() {
        let cert = Certificate {
            claim: Claim::rows(1, vec![t(&[2]), t(&[0]), t(&[1])]),
            evidence: Evidence::Trace {
                events: vec![
                    FixEvent::Begin { fix: 0 },
                    FixEvent::Step {
                        fix: 0,
                        add: vec![t(&[0])],
                        del: vec![],
                    },
                    FixEvent::Step {
                        fix: 0,
                        add: vec![t(&[1]), t(&[2])],
                        del: vec![t(&[0])],
                    },
                    FixEvent::Cycle { fix: 0, back_to: 1 },
                ],
            },
        };
        let text = cert.encode();
        assert!(text.starts_with("bvqcert 1 fp\nclaim rows 1 3\nrow 0\n"));
        assert!(text.ends_with("end\n"));
        assert_eq!(Certificate::parse(&text).unwrap(), cert);
    }

    #[test]
    fn derivation_round_trips() {
        let cert = Certificate {
            claim: Claim::rows(2, vec![t(&[0, 1])]),
            evidence: Evidence::Derivation {
                rounds: 3,
                steps: vec![DerivStep {
                    rule: 1,
                    tuple: t(&[0, 1]),
                    premises: vec![t(&[0, 2]), t(&[2, 1])],
                }],
            },
        };
        let text = cert.encode();
        assert!(text.contains("step 1 0,1 : 0,2 2,1\n"));
        assert_eq!(Certificate::parse(&text).unwrap(), cert);
    }

    #[test]
    fn witness_round_trips_including_nullary() {
        let mut prop = Relation::new(0);
        prop.insert(Tuple::unit());
        let cert = Certificate {
            claim: Claim::Boolean(true),
            evidence: Evidence::Witness {
                rels: vec![
                    ("C1".to_string(), Relation::from_tuples(1, [[0u32], [2]])),
                    ("P".to_string(), prop),
                ],
            },
        };
        let text = cert.encode();
        assert!(text.contains("witness P 0 1\nrow ()\n"));
        assert_eq!(Certificate::parse(&text).unwrap(), cert);
    }

    #[test]
    fn malformed_inputs_are_structured_errors() {
        for (text, needle) in [
            ("", "end of certificate"),
            ("bvqzert 1 fp\nclaim bool true\nend\n", "header"),
            ("bvqcert 9 fp\nclaim bool true\nend\n", "version"),
            ("bvqcert 1 zap\nclaim bool true\nend\n", "kind"),
            ("bvqcert 1 fp\nclaim rows 2 1\nrow 0\nend\n", "arity"),
            (
                "bvqcert 1 fp\nclaim rows 1 2\nrow 0\nend\n",
                "expected `row`",
            ),
            ("bvqcert 1 fp\nclaim bool true\nstep 0 *3\nend\n", "delta"),
            ("bvqcert 1 fp\nclaim bool true\n", "end of certificate"),
            ("bvqcert 1 fp\nclaim bool true\nend\nextra\n", "trailing"),
        ] {
            let err = Certificate::parse(text).unwrap_err();
            assert!(
                err.reason.contains(needle),
                "`{text}` → `{}` (wanted `{needle}`)",
                err.reason
            );
        }
    }
}
