//! Differential tests: the partitioned parallel kernels and cylinder
//! backends must be tuple-for-tuple identical to the sequential paths for
//! every thread count. Input sizes are chosen above the parallel
//! thresholds so the partitioned code actually runs (not just the
//! sequential fallback).

use bvq_prng::Rng;
use bvq_relation::backend::{DenseCylinder, SparseCylinder};
use bvq_relation::parallel;
use bvq_relation::{CoordSource, CylCtx, CylinderOps, EvalConfig, Relation, Tuple};

fn rand_relation(arity: usize, n: u32, tuples: usize, seed: u64) -> Relation {
    let mut rng = Rng::seed_from_u64(seed);
    let mut r = Relation::new(arity);
    for _ in 0..tuples {
        let t: Vec<u32> = (0..arity).map(|_| rng.gen_range(0..n)).collect();
        r.insert(Tuple::from_slice(&t));
    }
    r
}

const THREADS: [usize; 3] = [2, 4, 7];

#[test]
fn parallel_relation_kernels_match_sequential() {
    // ~6000 inserts over a 500-element domain: well above PAR_THRESHOLD.
    let a = rand_relation(2, 500, 6000, 1);
    let b = rand_relation(2, 500, 6000, 2);
    assert!(a.len() >= parallel::PAR_THRESHOLD);
    let pairs = [(1usize, 0usize)];
    for t in THREADS {
        let cfg = EvalConfig::with_threads(t);
        assert_eq!(
            parallel::join_on(&a, &b, &pairs, &cfg).sorted(),
            a.join_on(&b, &pairs).sorted(),
            "join, {t} threads"
        );
        assert_eq!(
            parallel::project(&a, &[1], &cfg).sorted(),
            a.project(&[1]).sorted(),
            "project, {t} threads"
        );
        assert_eq!(
            parallel::union(&a, &b, &cfg).sorted(),
            a.union(&b).sorted(),
            "union, {t} threads"
        );
        assert_eq!(
            parallel::difference(&a, &b, &cfg).sorted(),
            a.difference(&b).sorted(),
            "difference, {t} threads"
        );
        assert_eq!(
            parallel::semijoin(&a, &b, &pairs, &cfg).sorted(),
            a.semijoin(&b, &pairs).sorted(),
            "semijoin, {t} threads"
        );
        assert_eq!(
            parallel::antijoin(&a, &b, &pairs, &cfg).sorted(),
            a.antijoin(&b, &pairs).sorted(),
            "antijoin, {t} threads"
        );
    }
}

#[test]
fn parallel_kernels_handle_empty_inputs() {
    let empty = Relation::new(2);
    let a = rand_relation(2, 50, 5000, 3);
    let pairs = [(0usize, 0usize)];
    for t in THREADS {
        let cfg = EvalConfig::with_threads(t);
        assert!(parallel::join_on(&empty, &a, &pairs, &cfg).is_empty());
        assert!(parallel::join_on(&a, &empty, &pairs, &cfg).is_empty());
        assert_eq!(parallel::union(&a, &empty, &cfg).sorted(), a.sorted());
        assert_eq!(parallel::difference(&a, &empty, &cfg).sorted(), a.sorted());
        assert!(parallel::difference(&empty, &a, &cfg).is_empty());
        assert!(parallel::semijoin(&empty, &a, &pairs, &cfg).is_empty());
        assert_eq!(
            parallel::antijoin(&a, &empty, &pairs, &cfg).sorted(),
            a.sorted()
        );
        assert!(parallel::project(&empty, &[0], &cfg).is_empty());
    }
}

#[test]
fn parallel_join_with_no_pairs_is_product() {
    let a = rand_relation(1, 100, 5000, 4);
    let b = rand_relation(1, 30, 40, 5);
    for t in THREADS {
        let cfg = EvalConfig::with_threads(t);
        assert_eq!(
            parallel::join_on(&a, &b, &[], &cfg).sorted(),
            a.join_on(&b, &[]).sorted()
        );
    }
}

/// Runs one backend through every cylinder operation at the given thread
/// count and compares against the sequential context, point for point.
fn check_backend<C: CylinderOps>(n: usize, k: usize, atom: &Relation, threads: usize) {
    let seq = CylCtx::new(n, k);
    let par = CylCtx::new(n, k).with_threads(threads);
    let coords: Vec<usize> = (0..k).collect();
    let eq = |a: &C, b: &C| {
        assert_eq!(
            a.to_relation(&par, &coords).sorted(),
            b.to_relation(&seq, &coords).sorted(),
            "{threads} threads, n={n} k={k}"
        );
    };
    eq(&C::full(&par), &C::full(&seq));
    eq(&C::equality(&par, 0, k - 1), &C::equality(&seq, 0, k - 1));
    eq(&C::const_eq(&par, 1, 3), &C::const_eq(&seq, 1, 3));
    let vars: Vec<usize> = (0..atom.arity()).collect();
    let ap = C::from_atom(&par, atom, &vars);
    let aseq = C::from_atom(&seq, atom, &vars);
    eq(&ap, &aseq);
    eq(&ap.exists(&par, 0), &aseq.exists(&seq, 0));
    let mut np = ap.clone();
    np.not(&par);
    let mut nseq = aseq.clone();
    nseq.not(&seq);
    eq(&np, &nseq);
    let map: Vec<CoordSource> = (0..k)
        .map(|i| {
            if i == 0 {
                CoordSource::Const(2)
            } else {
                CoordSource::Coord(i - 1)
            }
        })
        .collect();
    eq(&ap.preimage(&par, &map), &aseq.preimage(&seq, &map));
}

#[test]
fn dense_backend_thread_count_independent() {
    // n^k = 27000 points and ~5000 distinct atom tuples: above both dense
    // parallel thresholds.
    let atom = rand_relation(3, 30, 6000, 6);
    for t in THREADS {
        check_backend::<DenseCylinder>(30, 3, &atom, t);
    }
}

#[test]
fn sparse_backend_thread_count_independent() {
    let atom = rand_relation(3, 30, 6000, 6);
    for t in THREADS {
        check_backend::<SparseCylinder>(30, 3, &atom, t);
    }
}

#[test]
fn backends_agree_below_parallel_thresholds() {
    // Domain smaller than the thread count: everything falls back to the
    // sequential scans, and chunking must still cover the space exactly.
    let atom = rand_relation(2, 2, 3, 7);
    for t in [2usize, 8, 16] {
        check_backend::<DenseCylinder>(2, 2, &atom, t);
        check_backend::<SparseCylinder>(2, 2, &atom, t);
    }
}

#[test]
fn empty_relation_atoms_across_threads() {
    let empty = Relation::new(2);
    for t in THREADS {
        let ctx = CylCtx::new(20, 3).with_threads(t);
        let c = DenseCylinder::from_atom(&ctx, &empty, &[0, 1]);
        assert!(c.is_empty(&ctx));
        let s = SparseCylinder::from_atom(&ctx, &empty, &[0, 1]);
        assert!(s.is_empty(&ctx));
    }
}
