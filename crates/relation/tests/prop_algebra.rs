//! Seeded property tests for the relational substrate: algebraic laws of
//! the relation operations and agreement of the dense and sparse cylinder
//! backends on random inputs.
//!
//! Each test loops over deterministic [`bvq_prng::for_each_case`] seeds, so
//! failures reproduce by case number without any external test framework.

use bvq_prng::{for_each_case, Rng};
use bvq_relation::backend::{DenseCylinder, SparseCylinder};
use bvq_relation::{BitSet, CylCtx, CylinderOps, PointIndex, Relation, Tuple};

/// A random relation of the given arity over `0..n` with at most
/// `max_tuples` rows.
fn rand_relation(rng: &mut Rng, arity: usize, n: u32, max_tuples: usize) -> Relation {
    let rows = rng.gen_range(0..max_tuples + 1);
    Relation::from_tuples(
        arity,
        (0..rows).map(|_| Tuple::from_fn(arity, |_| rng.gen_range(0..n))),
    )
}

#[test]
fn union_commutes() {
    for_each_case(64, |_, rng| {
        let a = rand_relation(rng, 2, 5, 20);
        let b = rand_relation(rng, 2, 5, 20);
        assert_eq!(a.union(&b).sorted(), b.union(&a).sorted());
    });
}

#[test]
fn intersect_commutes() {
    for_each_case(64, |_, rng| {
        let a = rand_relation(rng, 2, 5, 20);
        let b = rand_relation(rng, 2, 5, 20);
        assert_eq!(a.intersect(&b).sorted(), b.intersect(&a).sorted());
    });
}

#[test]
fn de_morgan() {
    for_each_case(64, |_, rng| {
        // ¬(A ∪ B) = ¬A ∩ ¬B over D².
        let a = rand_relation(rng, 2, 4, 16);
        let b = rand_relation(rng, 2, 4, 16);
        let lhs = a.union(&b).complement(4);
        let rhs = a.complement(4).intersect(&b.complement(4));
        assert_eq!(lhs.sorted(), rhs.sorted());
    });
}

#[test]
fn difference_via_complement() {
    for_each_case(64, |_, rng| {
        let a = rand_relation(rng, 2, 4, 16);
        let b = rand_relation(rng, 2, 4, 16);
        let lhs = a.difference(&b);
        let rhs = a.intersect(&b.complement(4));
        assert_eq!(lhs.sorted(), rhs.sorted());
    });
}

#[test]
fn join_subsumed_by_product() {
    for_each_case(64, |_, rng| {
        let a = rand_relation(rng, 2, 4, 12);
        let b = rand_relation(rng, 2, 4, 12);
        let j = a.join_on(&b, &[(1, 0)]);
        let p = a.product(&b).select_eq(1, 2);
        assert_eq!(j.sorted(), p.sorted());
    });
}

#[test]
fn semijoin_is_join_projection() {
    for_each_case(64, |_, rng| {
        let a = rand_relation(rng, 2, 4, 12);
        let b = rand_relation(rng, 2, 4, 12);
        let s = a.semijoin(&b, &[(0, 1)]);
        let via_join = a.join_on(&b, &[(0, 1)]).project(&[0, 1]);
        assert_eq!(s.sorted(), via_join.sorted());
    });
}

#[test]
fn antijoin_complements_semijoin() {
    for_each_case(64, |_, rng| {
        let a = rand_relation(rng, 2, 4, 12);
        let b = rand_relation(rng, 2, 4, 12);
        let s = a.semijoin(&b, &[(0, 1)]);
        let t = a.antijoin(&b, &[(0, 1)]);
        assert_eq!(s.union(&t).sorted(), a.sorted());
        assert!(s.intersect(&t).is_empty());
    });
}

#[test]
fn project_select_consistency() {
    for_each_case(64, |_, rng| {
        let a = rand_relation(rng, 3, 4, 20);
        // Projecting [0,1,2] is the identity.
        assert_eq!(a.project(&[0, 1, 2]).sorted(), a.sorted());
        // Double-permutation returns to the original.
        assert_eq!(
            a.project(&[2, 0, 1]).project(&[1, 2, 0]).sorted(),
            a.sorted()
        );
    });
}

#[test]
fn rank_unrank_random() {
    for_each_case(64, |_, rng| {
        let n = rng.gen_range(1..8usize);
        let k = rng.gen_range(0..4usize);
        let ix = PointIndex::new(n, k).unwrap();
        let idx = rng.next_u64() as usize % ix.size();
        assert_eq!(ix.rank(&ix.unrank(idx)), idx);
    });
}

#[test]
fn bitset_complement_count() {
    for_each_case(64, |_, rng| {
        let cap = rng.gen_range(1..300usize);
        let mut s = BitSet::new(cap);
        for _ in 0..rng.gen_range(0..40usize) {
            s.insert(rng.next_u64() as usize % cap);
        }
        let c = s.count();
        let mut t = s.clone();
        t.complement();
        assert_eq!(t.count(), cap - c);
    });
}

/// Runs the same cylindrical pipeline on both backends and compares.
fn check_backends_agree(n: usize, k: usize, rel: &Relation, vars: &[usize]) {
    let ctx = CylCtx::new(n, k);
    let d = DenseCylinder::from_atom(&ctx, rel, vars);
    let s = SparseCylinder::from_atom(&ctx, rel, vars);
    let coords: Vec<usize> = (0..k).collect();
    assert_eq!(
        d.to_relation(&ctx, &coords).sorted(),
        s.to_relation(&ctx, &coords).sorted(),
        "from_atom disagrees"
    );
    for i in 0..k {
        assert_eq!(
            d.exists(&ctx, i).to_relation(&ctx, &coords).sorted(),
            s.exists(&ctx, i).to_relation(&ctx, &coords).sorted(),
            "exists({i}) disagrees"
        );
        assert_eq!(
            d.forall(&ctx, i).to_relation(&ctx, &coords).sorted(),
            s.forall(&ctx, i).to_relation(&ctx, &coords).sorted(),
            "forall({i}) disagrees"
        );
    }
    let mut dn = d.clone();
    dn.not(&ctx);
    let mut sn = s.clone();
    sn.not(&ctx);
    assert_eq!(
        dn.to_relation(&ctx, &coords).sorted(),
        sn.to_relation(&ctx, &coords).sorted(),
        "not disagrees"
    );
    assert_eq!(d.count(&ctx), s.count(&ctx));
    // Preimage under a rotation map with one pinned constant.
    use bvq_relation::CoordSource;
    let map: Vec<CoordSource> = (0..k)
        .map(|i| {
            if i == 0 {
                CoordSource::Const(1)
            } else {
                CoordSource::Coord((i + 1) % k)
            }
        })
        .collect();
    assert_eq!(
        d.preimage(&ctx, &map).to_relation(&ctx, &coords).sorted(),
        s.preimage(&ctx, &map).to_relation(&ctx, &coords).sorted(),
        "preimage disagrees"
    );
}

#[test]
fn dense_sparse_agree() {
    for_each_case(48, |_, rng| {
        // Relation elements may exceed the domain; from_atom must drop them
        // identically in both backends.
        let n = rng.gen_range(2..5usize);
        let rel = rand_relation(rng, 2, 4, 10);
        let v0 = rng.gen_range(0..3usize);
        let v1 = rng.gen_range(0..3usize);
        check_backends_agree(n, 3, &rel, &[v0, v1]);
    });
}

#[test]
fn dense_sparse_agree_unary() {
    for_each_case(48, |_, rng| {
        let n = rng.gen_range(2..6usize);
        let rel = rand_relation(rng, 1, 5, 6);
        let v = rng.gen_range(0..2usize);
        check_backends_agree(n, 2, &rel, &[v]);
    });
}

#[test]
fn exists_idempotent_dense() {
    for_each_case(48, |_, rng| {
        let n = rng.gen_range(2..5usize);
        let rel = rand_relation(rng, 2, 4, 10);
        let ctx = CylCtx::new(n, 2);
        let d = DenseCylinder::from_atom(&ctx, &rel, &[0, 1]);
        let e1 = d.exists(&ctx, 0);
        let e2 = e1.exists(&ctx, 0);
        assert!(e1 == e2, "∃x∃x φ must equal ∃x φ");
    });
}

#[test]
fn exists_monotone_dense() {
    for_each_case(48, |_, rng| {
        let n = rng.gen_range(2..5usize);
        let a = rand_relation(rng, 2, 4, 10);
        let b = rand_relation(rng, 2, 4, 10);
        let ctx = CylCtx::new(n, 2);
        let da = DenseCylinder::from_atom(&ctx, &a, &[0, 1]);
        let mut dab = da.clone();
        dab.or_with(&ctx, &DenseCylinder::from_atom(&ctx, &b, &[0, 1]));
        assert!(da.exists(&ctx, 1).is_subset(&ctx, &dab.exists(&ctx, 1)));
    });
}
