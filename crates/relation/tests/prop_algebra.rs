//! Property-based tests for the relational substrate: algebraic laws of the
//! relation operations and agreement of the dense and sparse cylinder
//! backends on random inputs.

use bvq_relation::{
    BitSet, CylCtx, CylinderOps, DenseCylinder, PointIndex, Relation, SparseCylinder, Tuple,
};
use proptest::prelude::*;

/// Strategy: a random relation of the given arity over `0..n`.
fn arb_relation(arity: usize, n: u32, max_tuples: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..n, arity), 0..=max_tuples).prop_map(
        move |rows| {
            Relation::from_tuples(arity, rows.into_iter().map(Tuple::from))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_commutes(a in arb_relation(2, 5, 20), b in arb_relation(2, 5, 20)) {
        prop_assert_eq!(a.union(&b).sorted(), b.union(&a).sorted());
    }

    #[test]
    fn intersect_commutes(a in arb_relation(2, 5, 20), b in arb_relation(2, 5, 20)) {
        prop_assert_eq!(a.intersect(&b).sorted(), b.intersect(&a).sorted());
    }

    #[test]
    fn de_morgan(a in arb_relation(2, 4, 16), b in arb_relation(2, 4, 16)) {
        // ¬(A ∪ B) = ¬A ∩ ¬B over D².
        let lhs = a.union(&b).complement(4);
        let rhs = a.complement(4).intersect(&b.complement(4));
        prop_assert_eq!(lhs.sorted(), rhs.sorted());
    }

    #[test]
    fn difference_via_complement(a in arb_relation(2, 4, 16), b in arb_relation(2, 4, 16)) {
        let lhs = a.difference(&b);
        let rhs = a.intersect(&b.complement(4));
        prop_assert_eq!(lhs.sorted(), rhs.sorted());
    }

    #[test]
    fn join_subsumed_by_product(a in arb_relation(2, 4, 12), b in arb_relation(2, 4, 12)) {
        let j = a.join_on(&b, &[(1, 0)]);
        let p = a.product(&b).select_eq(1, 2);
        prop_assert_eq!(j.sorted(), p.sorted());
    }

    #[test]
    fn semijoin_is_join_projection(a in arb_relation(2, 4, 12), b in arb_relation(2, 4, 12)) {
        let s = a.semijoin(&b, &[(0, 1)]);
        let via_join = a.join_on(&b, &[(0, 1)]).project(&[0, 1]);
        prop_assert_eq!(s.sorted(), via_join.sorted());
    }

    #[test]
    fn antijoin_complements_semijoin(a in arb_relation(2, 4, 12), b in arb_relation(2, 4, 12)) {
        let s = a.semijoin(&b, &[(0, 1)]);
        let t = a.antijoin(&b, &[(0, 1)]);
        prop_assert_eq!(s.union(&t).sorted(), a.sorted());
        prop_assert!(s.intersect(&t).is_empty());
    }

    #[test]
    fn project_select_consistency(a in arb_relation(3, 4, 20)) {
        // Projecting [0,1,2] is the identity.
        prop_assert_eq!(a.project(&[0, 1, 2]).sorted(), a.sorted());
        // Double-permutation returns to the original.
        prop_assert_eq!(a.project(&[2, 0, 1]).project(&[1, 2, 0]).sorted(), a.sorted());
    }

    #[test]
    fn rank_unrank_random(n in 1usize..8, k in 0usize..4, seed in any::<u64>()) {
        let ix = PointIndex::new(n, k).unwrap();
        let idx = (seed as usize) % ix.size();
        prop_assert_eq!(ix.rank(&ix.unrank(idx)), idx);
    }

    #[test]
    fn bitset_complement_count(cap in 1usize..300, bits in prop::collection::vec(any::<u64>(), 0..40)) {
        let mut s = BitSet::new(cap);
        for b in &bits {
            s.insert((*b as usize) % cap);
        }
        let c = s.count();
        let mut t = s.clone();
        t.complement();
        prop_assert_eq!(t.count(), cap - c);
    }
}

/// Runs the same cylindrical pipeline on both backends and compares.
fn check_backends_agree(n: usize, k: usize, rel: &Relation, vars: &[usize]) {
    let ctx = CylCtx::new(n, k);
    let d = DenseCylinder::from_atom(&ctx, rel, vars);
    let s = SparseCylinder::from_atom(&ctx, rel, vars);
    let coords: Vec<usize> = (0..k).collect();
    assert_eq!(
        d.to_relation(&ctx, &coords).sorted(),
        s.to_relation(&ctx, &coords).sorted(),
        "from_atom disagrees"
    );
    for i in 0..k {
        assert_eq!(
            d.exists(&ctx, i).to_relation(&ctx, &coords).sorted(),
            s.exists(&ctx, i).to_relation(&ctx, &coords).sorted(),
            "exists({i}) disagrees"
        );
        assert_eq!(
            d.forall(&ctx, i).to_relation(&ctx, &coords).sorted(),
            s.forall(&ctx, i).to_relation(&ctx, &coords).sorted(),
            "forall({i}) disagrees"
        );
    }
    let mut dn = d.clone();
    dn.not(&ctx);
    let mut sn = s.clone();
    sn.not(&ctx);
    assert_eq!(
        dn.to_relation(&ctx, &coords).sorted(),
        sn.to_relation(&ctx, &coords).sorted(),
        "not disagrees"
    );
    assert_eq!(d.count(&ctx), s.count(&ctx));
    // Preimage under a rotation map with one pinned constant.
    use bvq_relation::CoordSource;
    let map: Vec<CoordSource> = (0..k)
        .map(|i| if i == 0 { CoordSource::Const(1) } else { CoordSource::Coord((i + 1) % k) })
        .collect();
    assert_eq!(
        d.preimage(&ctx, &map).to_relation(&ctx, &coords).sorted(),
        s.preimage(&ctx, &map).to_relation(&ctx, &coords).sorted(),
        "preimage disagrees"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_sparse_agree(
        n in 2usize..5,
        rel in arb_relation(2, 4, 10),
        v0 in 0usize..3,
        v1 in 0usize..3,
    ) {
        // Relation elements may exceed the domain; from_atom must drop them
        // identically in both backends.
        check_backends_agree(n, 3, &rel, &[v0, v1]);
    }

    #[test]
    fn dense_sparse_agree_unary(n in 2usize..6, rel in arb_relation(1, 5, 6), v in 0usize..2) {
        check_backends_agree(n, 2, &rel, &[v]);
    }

    #[test]
    fn exists_idempotent_dense(n in 2usize..5, rel in arb_relation(2, 4, 10)) {
        let ctx = CylCtx::new(n, 2);
        let d = DenseCylinder::from_atom(&ctx, &rel, &[0, 1]);
        let e1 = d.exists(&ctx, 0);
        let e2 = e1.exists(&ctx, 0);
        prop_assert!(e1 == e2, "∃x∃x φ must equal ∃x φ");
    }

    #[test]
    fn exists_monotone_dense(n in 2usize..5, a in arb_relation(2, 4, 10), b in arb_relation(2, 4, 10)) {
        let ctx = CylCtx::new(n, 2);
        let da = DenseCylinder::from_atom(&ctx, &a, &[0, 1]);
        let mut dab = da.clone();
        dab.or_with(&ctx, &DenseCylinder::from_atom(&ctx, &b, &[0, 1]));
        prop_assert!(da.exists(&ctx, 1).is_subset(&ctx, &dab.exists(&ctx, 1)));
    }
}
