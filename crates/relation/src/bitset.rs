//! A fixed-capacity bit set.
//!
//! [`BitSet`] is the storage backing [`DenseCylinder`](crate::dense::DenseCylinder):
//! a subset of `D^k` is a subset of `{0, …, n^k - 1}` under the mixed-radix
//! point index, and the Boolean connectives of `FO^k` become word-parallel
//! bit operations.

use std::fmt;

const WORD_BITS: usize = 64;

/// A set of integers in `0..capacity`, stored one bit each.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    capacity: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set over `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            capacity,
            words: vec![0; capacity.div_ceil(WORD_BITS)],
        }
    }

    /// The full set `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.clear_tail();
        s
    }

    /// The number of representable elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Builds `{ i ∈ 0..capacity : pred(i) }`, evaluating `pred` on up to
    /// `threads` scoped workers over word-aligned chunks. Word alignment
    /// means no two workers ever touch the same word, so the result is
    /// identical to the sequential construction for every thread count.
    pub fn from_fn<P>(capacity: usize, threads: usize, pred: P) -> Self
    where
        P: Fn(usize) -> bool + Sync,
    {
        let n_words = capacity.div_ceil(WORD_BITS);
        let chunks = crate::parallel::map_chunks(threads, n_words, |range| {
            let mut words = Vec::with_capacity(range.len());
            for w in range {
                let base = w * WORD_BITS;
                let hi = WORD_BITS.min(capacity - base);
                let mut word = 0u64;
                for bit in 0..hi {
                    if pred(base + bit) {
                        word |= 1 << bit;
                    }
                }
                words.push(word);
            }
            words
        });
        let mut words = Vec::with_capacity(n_words);
        for c in chunks {
            words.extend(c);
        }
        BitSet { capacity, words }
    }

    /// Zeroes the bits beyond `capacity` in the last word, maintaining the
    /// invariant that tail bits are always clear (so `PartialEq`, `count`
    /// and `is_empty` can operate word-wise).
    fn clear_tail(&mut self) {
        let tail = self.capacity % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Tests whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        self.words[i / WORD_BITS] & (1 << (i % WORD_BITS)) != 0
    }

    /// Inserts `i`. Returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1 << (i % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1 << (i % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// The number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`). Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place complement with respect to `0..capacity`.
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Whether `self ⊆ other`. Panics if capacities differ.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set bits, lowest first.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
    }

    #[test]
    fn full_of_word_multiple() {
        let s = BitSet::full(128);
        assert_eq!(s.count(), 128);
    }

    #[test]
    fn complement_twice_is_identity() {
        let mut s = BitSet::new(100);
        s.insert(3);
        s.insert(77);
        let orig = s.clone();
        s.complement();
        assert_eq!(s.count(), 98);
        assert!(!s.contains(3));
        s.complement();
        assert_eq!(s, orig);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(10);
        b.insert(2);
        b.insert(3);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);

        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for i in [0, 63, 64, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn empty_capacity_zero() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = BitSet::full(0);
        assert!(f.is_empty());
    }

    #[test]
    fn from_fn_matches_sequential_insert() {
        for threads in [1usize, 2, 4, 7] {
            for capacity in [0usize, 1, 63, 64, 65, 1000] {
                let par = BitSet::from_fn(capacity, threads, |i| i % 3 == 0);
                let mut seq = BitSet::new(capacity);
                for i in (0..capacity).step_by(3) {
                    seq.insert(i);
                }
                assert_eq!(par, seq, "threads {threads} capacity {capacity}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacity_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }
}
