//! Evaluation statistics.
//!
//! The paper's argument is about the *size of intermediate results*:
//! unrestricted query evaluation can build relations of arity linear in the
//! query (exponential size), bounded-variable evaluation cannot. Every
//! evaluator in `bvq` therefore reports an [`EvalStats`], and the benchmark
//! harness prints the maxima alongside running times — the measured
//! counterpart of the paper's Tables 1–3.

use std::fmt;

/// Counters collected during one query evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Largest arity of any intermediate relation.
    pub max_arity: usize,
    /// Largest cardinality (tuple count / point count) of any intermediate
    /// relation.
    pub max_cardinality: usize,
    /// Total tuples materialised across all intermediate relations.
    pub total_tuples: u64,
    /// Relational-algebra / cylinder operator applications.
    pub operator_applications: u64,
    /// Fixpoint iterations performed (FP/PFP evaluators).
    pub fixpoint_iterations: u64,
    /// Largest estimated representation footprint of any intermediate
    /// relation, in bytes — backend-dependent (`n^k` bits for dense,
    /// cardinality for sparse, reachable nodes for the BDD); the space
    /// measure Chen–Elberfeld's parameterized analysis makes first-class.
    pub peak_bytes: usize,
}

impl EvalStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        EvalStats::default()
    }

    /// Records an intermediate relation of the given shape.
    pub fn record_intermediate(&mut self, arity: usize, cardinality: usize) {
        self.max_arity = self.max_arity.max(arity);
        self.max_cardinality = self.max_cardinality.max(cardinality);
        self.total_tuples += cardinality as u64;
        self.operator_applications += 1;
    }

    /// Records one fixpoint iteration.
    pub fn record_iteration(&mut self) {
        self.fixpoint_iterations += 1;
    }

    /// Records the representation footprint of an intermediate relation.
    pub fn record_bytes(&mut self, bytes: usize) {
        self.peak_bytes = self.peak_bytes.max(bytes);
    }

    /// Pointwise maximum / sum combination of two runs.
    #[must_use]
    pub fn merge(&self, other: &EvalStats) -> EvalStats {
        EvalStats {
            max_arity: self.max_arity.max(other.max_arity),
            max_cardinality: self.max_cardinality.max(other.max_cardinality),
            total_tuples: self.total_tuples + other.total_tuples,
            operator_applications: self.operator_applications + other.operator_applications,
            fixpoint_iterations: self.fixpoint_iterations + other.fixpoint_iterations,
            peak_bytes: self.peak_bytes.max(other.peak_bytes),
        }
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max_arity={} max_card={} total_tuples={} ops={} iters={} peak_bytes={}",
            self.max_arity,
            self.max_cardinality,
            self.total_tuples,
            self.operator_applications,
            self.fixpoint_iterations,
            self.peak_bytes
        )
    }
}

/// A mutable statistics recorder threaded through evaluators.
///
/// Wrapping the counters in a struct (rather than passing `&mut EvalStats`
/// everywhere) leaves room for recording policies; today it is a thin
/// wrapper that can also be disabled for benchmarking the evaluators
/// without instrumentation overhead.
#[derive(Debug)]
pub struct StatsRecorder {
    stats: EvalStats,
    enabled: bool,
}

impl Default for StatsRecorder {
    fn default() -> Self {
        StatsRecorder::new()
    }
}

impl StatsRecorder {
    /// An enabled recorder.
    pub fn new() -> Self {
        StatsRecorder {
            stats: EvalStats::new(),
            enabled: true,
        }
    }

    /// A disabled recorder (all records are no-ops).
    pub fn disabled() -> Self {
        StatsRecorder {
            stats: EvalStats::new(),
            enabled: false,
        }
    }

    /// Records an intermediate relation.
    #[inline]
    pub fn intermediate(&mut self, arity: usize, cardinality: usize) {
        if self.enabled {
            self.stats.record_intermediate(arity, cardinality);
        }
    }

    /// Records a fixpoint iteration.
    #[inline]
    pub fn iteration(&mut self) {
        if self.enabled {
            self.stats.record_iteration();
        }
    }

    /// Records an intermediate relation's representation footprint.
    #[inline]
    pub fn bytes(&mut self, bytes: usize) {
        if self.enabled {
            self.stats.record_bytes(bytes);
        }
    }

    /// Merges statistics collected elsewhere (e.g. by a worker thread's
    /// local recorder) into this one.
    pub fn absorb(&mut self, other: &EvalStats) {
        if self.enabled {
            self.stats = self.stats.merge(other);
        }
    }

    /// Whether recording is enabled (callers can skip expensive counts
    /// when it is not).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_maxima_and_totals() {
        let mut s = EvalStats::new();
        s.record_intermediate(2, 10);
        s.record_intermediate(4, 3);
        s.record_intermediate(1, 100);
        assert_eq!(s.max_arity, 4);
        assert_eq!(s.max_cardinality, 100);
        assert_eq!(s.total_tuples, 113);
        assert_eq!(s.operator_applications, 3);
    }

    #[test]
    fn merge_combines() {
        let mut a = EvalStats::new();
        a.record_intermediate(2, 5);
        a.record_iteration();
        let mut b = EvalStats::new();
        b.record_intermediate(3, 2);
        let m = a.merge(&b);
        assert_eq!(m.max_arity, 3);
        assert_eq!(m.max_cardinality, 5);
        assert_eq!(m.total_tuples, 7);
        assert_eq!(m.fixpoint_iterations, 1);
    }

    /// Deterministic sample statistics for the algebraic-law tests.
    fn sample(seed: u64) -> EvalStats {
        let mut s = EvalStats::new();
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..4 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.record_intermediate((x >> 60) as usize, (x >> 48) as usize & 0xff);
            if x & 1 == 0 {
                s.record_iteration();
            }
        }
        s
    }

    #[test]
    fn merge_identity_is_zero() {
        // EvalStats::new() is a two-sided identity: maxima against 0 and
        // sums with 0 both leave the operand unchanged.
        for seed in 0..8 {
            let s = sample(seed);
            assert_eq!(s.merge(&EvalStats::new()), s);
            assert_eq!(EvalStats::new().merge(&s), s);
        }
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        // max and + are both commutative monoids, so worker-local stats
        // can be combined in any grouping; the engine still fixes chunk
        // order so even a non-commutative future field would stay
        // deterministic.
        for seed in 0..8 {
            let (a, b, c) = (sample(seed), sample(seed + 100), sample(seed + 200));
            assert_eq!(a.merge(&b), b.merge(&a));
            assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        }
    }

    #[test]
    fn absorb_equals_merge() {
        // A recorder absorbing worker stats must agree exactly with the
        // pure merge of the underlying EvalStats values.
        let (a, b) = (sample(1), sample(2));
        let mut rec = StatsRecorder::new();
        rec.absorb(&a);
        rec.absorb(&b);
        assert_eq!(rec.stats(), a.merge(&b));
        // Absorbing into a disabled recorder is a no-op.
        let mut off = StatsRecorder::disabled();
        off.absorb(&a);
        assert_eq!(off.stats(), EvalStats::new());
        assert!(!off.is_enabled());
    }

    #[test]
    fn absorb_matches_interleaved_recording() {
        // Recording everything on one recorder equals recording on two
        // and absorbing: merge loses no information for these counters.
        let mut one = StatsRecorder::new();
        one.intermediate(2, 5);
        one.intermediate(3, 1);
        one.iteration();
        let mut left = StatsRecorder::new();
        left.intermediate(2, 5);
        let mut right = StatsRecorder::new();
        right.intermediate(3, 1);
        right.iteration();
        let mut combined = StatsRecorder::new();
        combined.absorb(&left.stats());
        combined.absorb(&right.stats());
        assert_eq!(combined.stats(), one.stats());
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = StatsRecorder::disabled();
        r.intermediate(9, 9);
        r.iteration();
        assert_eq!(r.stats(), EvalStats::new());
    }

    #[test]
    fn display_is_stable() {
        let mut s = EvalStats::new();
        s.record_intermediate(2, 7);
        s.record_bytes(96);
        assert_eq!(
            s.to_string(),
            "max_arity=2 max_card=7 total_tuples=7 ops=1 iters=0 peak_bytes=96"
        );
    }
}
