//! Databases: named relations over a common domain.
//!
//! Following the paper (§2.1), a database is a tuple `B = (D, R₁, …, R_ℓ)`
//! where `D` is a finite set and each `Rᵢ ⊆ D^{aᵢ}`. We normalise `D` to
//! `{0, …, n-1}`; examples that need meaningful constants attach labels.
//! [`Database::encoded_len`] computes the length of the paper's standard
//! string encoding (elements written in binary), the input-size measure for
//! data and combined complexity.

use std::fmt;
use std::sync::Arc;

use crate::hasher::FxHashMap;
use crate::{Arity, Elem, Relation, RelationError, Tuple};

/// Identifier of a relation within a database schema.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

/// A database schema: relation names and arities.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    names: Vec<String>,
    arities: Vec<Arity>,
    by_name: FxHashMap<String, RelId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds a relation symbol; returns its id.
    ///
    /// # Errors
    /// Fails if the name is already taken.
    pub fn add(&mut self, name: &str, arity: Arity) -> Result<RelId, RelationError> {
        if self.by_name.contains_key(name) {
            return Err(RelationError::DuplicateRelation(name.to_string()));
        }
        let id = RelId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.arities.push(arity);
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a relation by name.
    pub fn resolve(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The name of a relation.
    pub fn name(&self, id: RelId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The arity of a relation.
    pub fn arity(&self, id: RelId) -> Arity {
        self.arities[id.0 as usize]
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name, arity)`.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &str, Arity)> + '_ {
        (0..self.names.len()).map(|i| (RelId(i as u32), self.names[i].as_str(), self.arities[i]))
    }
}

/// A relational database: a domain `{0,…,n-1}` plus relations per schema.
///
/// Relations are stored behind [`Arc`], so cloning a database is O(ℓ) in
/// the number of relations, not the number of tuples — the property the
/// serving layer's epoch snapshots rely on. Mutating one relation
/// (`insert_tuple` / `delete_tuple` / `set_relation`) copies only that
/// relation when it is shared with an older snapshot (copy-on-write).
#[derive(Clone)]
pub struct Database {
    domain_size: usize,
    schema: Schema,
    relations: Vec<Arc<Relation>>,
    /// Optional human-readable labels for domain elements (examples only).
    labels: Option<Vec<String>>,
}

impl Database {
    /// Creates a database with an empty schema.
    ///
    /// # Panics
    /// Panics if `domain_size` is 0 — the paper's databases have nonempty
    /// domains, and several constructions (e.g. Theorem 4.6's `B₀`) rely on
    /// at least one element existing.
    pub fn new(domain_size: usize) -> Self {
        assert!(domain_size > 0, "domain must be nonempty");
        Database {
            domain_size,
            schema: Schema::new(),
            relations: Vec::new(),
            labels: None,
        }
    }

    /// The builder interface.
    pub fn builder(domain_size: usize) -> DatabaseBuilder {
        DatabaseBuilder {
            db: Database::new(domain_size),
        }
    }

    /// Domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds a relation. Tuples must be within the domain.
    ///
    /// # Errors
    /// Fails on duplicate names or out-of-domain elements.
    pub fn add_relation(&mut self, name: &str, rel: Relation) -> Result<RelId, RelationError> {
        for t in rel.iter() {
            for &e in t.as_slice() {
                if e as usize >= self.domain_size {
                    return Err(RelationError::OutOfDomain {
                        element: e,
                        domain_size: self.domain_size,
                    });
                }
            }
        }
        let id = self.schema.add(name, rel.arity())?;
        self.relations.push(Arc::new(rel));
        Ok(id)
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// Inserts one tuple into relation `id`; returns whether it was new.
    /// Copy-on-write: when the relation is shared with a snapshot, only
    /// this relation is copied — every other relation stays shared.
    ///
    /// # Errors
    /// Fails on arity mismatch or out-of-domain elements.
    pub fn insert_tuple(&mut self, id: RelId, t: &[Elem]) -> Result<bool, RelationError> {
        self.check_tuple(id, t)?;
        Ok(Arc::make_mut(&mut self.relations[id.0 as usize]).insert(Tuple::from_slice(t)))
    }

    /// Deletes one tuple from relation `id`; returns whether it was
    /// present. Copy-on-write, like [`Database::insert_tuple`].
    ///
    /// # Errors
    /// Fails on arity mismatch or out-of-domain elements.
    pub fn delete_tuple(&mut self, id: RelId, t: &[Elem]) -> Result<bool, RelationError> {
        self.check_tuple(id, t)?;
        if !self.relations[id.0 as usize].contains(t) {
            return Ok(false);
        }
        Ok(Arc::make_mut(&mut self.relations[id.0 as usize]).remove(t))
    }

    fn check_tuple(&self, id: RelId, t: &[Elem]) -> Result<(), RelationError> {
        if t.len() != self.schema.arity(id) {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(id),
                found: t.len(),
            });
        }
        for &e in t {
            if e as usize >= self.domain_size {
                return Err(RelationError::OutOfDomain {
                    element: e,
                    domain_size: self.domain_size,
                });
            }
        }
        Ok(())
    }

    /// The relation with the given name, if any.
    pub fn relation_by_name(&self, name: &str) -> Option<&Relation> {
        self.schema.resolve(name).map(|id| self.relation(id))
    }

    /// Replaces the contents of relation `id` (same arity required).
    ///
    /// # Errors
    /// Fails on arity mismatch or out-of-domain elements.
    pub fn set_relation(&mut self, id: RelId, rel: Relation) -> Result<(), RelationError> {
        if rel.arity() != self.schema.arity(id) {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(id),
                found: rel.arity(),
            });
        }
        for t in rel.iter() {
            for &e in t.as_slice() {
                if e as usize >= self.domain_size {
                    return Err(RelationError::OutOfDomain {
                        element: e,
                        domain_size: self.domain_size,
                    });
                }
            }
        }
        self.relations[id.0 as usize] = Arc::new(rel);
        Ok(())
    }

    /// Attaches human-readable labels to domain elements.
    ///
    /// # Panics
    /// Panics if the label count differs from the domain size.
    pub fn set_labels(&mut self, labels: Vec<String>) {
        assert_eq!(
            labels.len(),
            self.domain_size,
            "one label per domain element"
        );
        self.labels = Some(labels);
    }

    /// The label of element `e`, or its number if unlabelled.
    pub fn label(&self, e: u32) -> String {
        match &self.labels {
            Some(l) => l[e as usize].clone(),
            None => e.to_string(),
        }
    }

    /// The length (in bits) of the paper's standard string encoding: every
    /// element is written in binary using `⌈log₂ n⌉` bits (at least 1), and
    /// we charge that for every position of every tuple plus once per
    /// domain element. This is the `|B|` against which data and combined
    /// complexity are measured.
    pub fn encoded_len(&self) -> usize {
        let bits = usize::BITS as usize - (self.domain_size.max(2) - 1).leading_zeros() as usize;
        let mut len = self.domain_size * bits;
        for r in &self.relations {
            len += r.len() * r.arity() * bits;
        }
        len
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// A deterministic structural fingerprint of one relation's
    /// *contents* (tuples hashed in sorted order, so insertion order is
    /// irrelevant) together with its name and arity. Mutating one
    /// relation changes only that relation's fingerprint — the property
    /// the serving layer's per-relation cache keys rely on.
    pub fn relation_fingerprint(&self, id: RelId) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::hasher::FxHasher::default();
        h.write(self.schema.name(id).as_bytes());
        h.write_u8(0xff); // name terminator: ("ab","c") ≠ ("a","bc")
        h.write_usize(self.schema.arity(id));
        let rel = self.relation(id);
        h.write_usize(rel.len());
        for t in rel.sorted() {
            for &e in t.as_slice() {
                h.write_u32(e);
            }
        }
        h.finish()
    }

    /// Per-relation fingerprints in schema declaration order.
    pub fn relation_fingerprints(&self) -> Vec<(String, u64)> {
        self.schema
            .iter()
            .map(|(id, name, _)| (name.to_string(), self.relation_fingerprint(id)))
            .collect()
    }

    /// A deterministic structural fingerprint of the database: domain
    /// size, schema (names and arities in declaration order), and the
    /// *contents* of every relation, combined from the per-relation
    /// fingerprints of [`Database::relation_fingerprint`]. Two databases
    /// have the same fingerprint iff they are the same instance up to
    /// tuple insertion order — the property the serving layer's result
    /// cache keys on.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::hasher::FxHasher::default();
        h.write_usize(self.domain_size);
        h.write_usize(self.schema.len());
        for (id, _, _) in self.schema.iter() {
            h.write_u64(self.relation_fingerprint(id));
        }
        h.finish()
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database(n={})", self.domain_size)?;
        for (id, name, arity) in self.schema.iter() {
            writeln!(f, "  {name}/{arity}: {} tuples", self.relation(id).len())?;
        }
        Ok(())
    }
}

/// Fluent builder for [`Database`].
pub struct DatabaseBuilder {
    db: Database,
}

impl DatabaseBuilder {
    /// Adds a relation from explicit tuples.
    ///
    /// # Panics
    /// Panics on duplicate names or out-of-domain elements — the builder is
    /// for statically-known test/example data; use
    /// [`Database::add_relation`] for fallible construction.
    #[must_use]
    pub fn relation<I, T>(mut self, name: &str, arity: Arity, tuples: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Tuple>,
    {
        let rel = Relation::from_tuples(arity, tuples);
        self.db
            .add_relation(name, rel)
            .unwrap_or_else(|e| panic!("builder: {e}"));
        self
    }

    /// Adds an already-built relation.
    #[must_use]
    pub fn relation_from(mut self, name: &str, rel: Relation) -> Self {
        self.db
            .add_relation(name, rel)
            .unwrap_or_else(|e| panic!("builder: {e}"));
        self
    }

    /// Attaches element labels.
    #[must_use]
    pub fn labels<S: Into<String>>(mut self, labels: impl IntoIterator<Item = S>) -> Self {
        self.db
            .set_labels(labels.into_iter().map(Into::into).collect());
        self
    }

    /// Finishes building.
    pub fn build(self) -> Database {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
            .relation("P", 1, [[0u32]])
            .build();
        assert_eq!(db.domain_size(), 4);
        assert_eq!(db.relation_by_name("E").unwrap().len(), 3);
        assert_eq!(db.schema().arity(db.schema().resolve("P").unwrap()), 1);
        assert!(db.relation_by_name("Q").is_none());
    }

    #[test]
    fn rejects_out_of_domain() {
        let mut db = Database::new(2);
        let r = Relation::from_tuples(1, [[5u32]]);
        assert!(matches!(
            db.add_relation("P", r),
            Err(RelationError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut db = Database::new(2);
        db.add_relation("P", Relation::new(1)).unwrap();
        assert!(matches!(
            db.add_relation("P", Relation::new(2)),
            Err(RelationError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn set_relation_checks_arity() {
        let mut db = Database::new(3);
        let id = db.add_relation("E", Relation::new(2)).unwrap();
        assert!(db
            .set_relation(id, Relation::from_tuples(2, [[0u32, 1]]))
            .is_ok());
        assert!(matches!(
            db.set_relation(id, Relation::new(3)),
            Err(RelationError::ArityMismatch { .. })
        ));
        assert_eq!(db.relation(id).len(), 1);
    }

    #[test]
    fn encoded_len_grows_with_data() {
        let small = Database::builder(4).relation("E", 2, [[0u32, 1]]).build();
        let big = Database::builder(4)
            .relation("E", 2, (0u32..3).map(|i| [i, i + 1]))
            .build();
        assert!(big.encoded_len() > small.encoded_len());
        // 4 elements × 2 bits + 1 tuple × 2 positions × 2 bits = 12.
        assert_eq!(small.encoded_len(), 12);
    }

    #[test]
    fn labels() {
        let mut db = Database::new(2);
        assert_eq!(db.label(1), "1");
        db.set_labels(vec!["alice".into(), "bob".into()]);
        assert_eq!(db.label(1), "bob");
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_domain_rejected() {
        Database::new(0);
    }

    #[test]
    fn fingerprint_ignores_insertion_order() {
        let a = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
            .build();
        let b = Database::builder(4)
            .relation("E", 2, [[2u32, 3], [0, 1], [1, 2]])
            .build();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn insert_and_delete_tuples() {
        let mut db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2]])
            .build();
        let e = db.schema().resolve("E").unwrap();
        assert!(db.insert_tuple(e, &[2, 3]).unwrap());
        assert!(!db.insert_tuple(e, &[2, 3]).unwrap(), "already present");
        assert_eq!(db.relation(e).len(), 3);
        assert!(db.delete_tuple(e, &[0, 1]).unwrap());
        assert!(!db.delete_tuple(e, &[0, 1]).unwrap(), "already gone");
        assert_eq!(db.relation(e).len(), 2);
        assert!(matches!(
            db.insert_tuple(e, &[0]),
            Err(RelationError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert_tuple(e, &[0, 9]),
            Err(RelationError::OutOfDomain { .. })
        ));
        assert!(matches!(
            db.delete_tuple(e, &[9, 0]),
            Err(RelationError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn mutating_one_relation_leaves_other_fingerprints_unchanged() {
        let mut db = Database::builder(6)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
            .relation("P", 1, [[0u32], [3]])
            .relation("Q", 1, [[5u32]])
            .build();
        let before = db.relation_fingerprints();
        let whole_before = db.fingerprint();
        let e = db.schema().resolve("E").unwrap();
        db.insert_tuple(e, &[3, 4]).unwrap();
        let after = db.relation_fingerprints();
        assert_eq!(before.len(), after.len());
        assert_ne!(before[0], after[0], "mutated relation changes");
        assert_eq!(before[1], after[1], "untouched P unchanged");
        assert_eq!(before[2], after[2], "untouched Q unchanged");
        assert_ne!(db.fingerprint(), whole_before);
        // Deleting the tuple restores every fingerprint.
        db.delete_tuple(e, &[3, 4]).unwrap();
        assert_eq!(db.relation_fingerprints(), before);
        assert_eq!(db.fingerprint(), whole_before);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut db = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2]])
            .relation("P", 1, [[0u32]])
            .build();
        let snapshot = db.clone();
        let e = db.schema().resolve("E").unwrap();
        let p = db.schema().resolve("P").unwrap();
        // Both relations are shared with the snapshot until mutated.
        assert!(Arc::ptr_eq(&db.relations[0], &snapshot.relations[0]));
        assert!(Arc::ptr_eq(&db.relations[1], &snapshot.relations[1]));
        db.insert_tuple(e, &[2, 3]).unwrap();
        // Only the mutated relation was copied; the snapshot is unchanged.
        assert!(!Arc::ptr_eq(&db.relations[0], &snapshot.relations[0]));
        assert!(Arc::ptr_eq(&db.relations[1], &snapshot.relations[1]));
        assert_eq!(snapshot.relation(e).len(), 2);
        assert_eq!(db.relation(e).len(), 3);
        assert_eq!(snapshot.relation(p).len(), 1);
    }

    #[test]
    fn fingerprint_sensitive_to_content_and_schema() {
        let base = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2]])
            .build();
        let more = Database::builder(4)
            .relation("E", 2, [[0u32, 1], [1, 2], [2, 3]])
            .build();
        let renamed = Database::builder(4)
            .relation("F", 2, [[0u32, 1], [1, 2]])
            .build();
        let bigger_domain = Database::builder(5)
            .relation("E", 2, [[0u32, 1], [1, 2]])
            .build();
        assert_ne!(base.fingerprint(), more.fingerprint());
        assert_ne!(base.fingerprint(), renamed.fingerprint());
        assert_ne!(base.fingerprint(), bigger_domain.fingerprint());
    }
}
