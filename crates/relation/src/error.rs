//! Error types for the relational substrate.

use std::fmt;

/// Errors arising when constructing or manipulating relations and databases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelationError {
    /// A relation name was registered twice in one schema.
    DuplicateRelation(String),
    /// A tuple element lies outside the database domain.
    OutOfDomain {
        /// The offending element.
        element: u32,
        /// The domain size `n` (domain is `0..n`).
        domain_size: usize,
    },
    /// A relation of one arity was used where another was required.
    ArityMismatch {
        /// Expected arity.
        expected: usize,
        /// Actual arity.
        found: usize,
    },
    /// A relation name was not found in the schema.
    UnknownRelation(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists in the schema")
            }
            RelationError::OutOfDomain {
                element,
                domain_size,
            } => {
                write!(f, "element {element} outside domain of size {domain_size}")
            }
            RelationError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected}, found {found}")
            }
            RelationError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            RelationError::DuplicateRelation("E".into()).to_string(),
            "relation `E` already exists in the schema"
        );
        assert_eq!(
            RelationError::OutOfDomain {
                element: 9,
                domain_size: 4
            }
            .to_string(),
            "element 9 outside domain of size 4"
        );
        assert_eq!(
            RelationError::ArityMismatch {
                expected: 2,
                found: 3
            }
            .to_string(),
            "arity mismatch: expected 2, found 3"
        );
        assert_eq!(
            RelationError::UnknownRelation("X".into()).to_string(),
            "unknown relation `X`"
        );
    }
}
