//! Symbolic cylinder backend: a reduced ordered BDD over `k·⌈log₂ n⌉` bits.
//!
//! A subset of `D^k` is a boolean function of the `k` coordinates, and each
//! coordinate is `⌈log₂ n⌉` bits, so every cylinder is a boolean function
//! over `k·⌈log₂ n⌉` variables — representable as a reduced ordered binary
//! decision diagram whose size tracks the *structure* of the set rather
//! than its cardinality. Structured intermediate results (diagonals,
//! reachability frontiers, fairness regions) stay polynomial in `log n`
//! where the dense bitset always pays `n^k` bits.
//!
//! Design (DESIGN.md §12):
//!
//! * **Node store.** An arena of `(level, lo, hi)` nodes with two sentinel
//!   ids for the terminals ([`NID_FALSE`], [`NID_TRUE`]) and a unique table
//!   keyed on `(level, lo, hi)` — hash-consing, so equal functions have
//!   equal node ids and cylinder equality (the fixpoint convergence test)
//!   is O(1). Ids are plain `u32`s in the spirit of `bex`'s universal NIDs.
//! * **Variable order.** Interleaved bit order, most significant bits on
//!   top: level `ℓ` holds bit `⌈log₂ n⌉ - 1 - ℓ/k` of coordinate `ℓ mod k`.
//!   Interleaving keeps the equality diagonal `xᵢ = xⱼ` linear-size.
//! * **Memo policy.** Global memo tables for the binary apply kernels
//!   (`∧`, `∨`, `∖`), if-then-else, per-coordinate `∃`, and model counting,
//!   all living as long as the owning [`CylCtx`]; `preimage` keeps a
//!   per-call substitution memo on top of the shared ITE memo.
//! * **Domain constraint.** `n` need not be a power of two, so the space
//!   carries a `valid` BDD (every coordinate's encoding `< n`) and every
//!   cylinder maintains the invariant `self ⊆ valid`. Complement is
//!   `valid ∖ self`, `full` *is* `valid`, and `∃` re-cylindrifies by
//!   conjoining `valid` — which also makes [`satcount`](BddSpace) exact.
//! * **Enumeration.** [`BddCursor`] walks satisfying assignments with an
//!   explicit register/stack pair (the `bex` `Reg` + `Cursor` shape), so
//!   conversion to sparse tuples streams instead of materialising.
//!
//! The store sits behind a mutex inside [`BddSpace`], shared by every
//! clone of the owning context; operations are sequential (the evaluator's
//! thread knob does not partition symbolic kernels).

use std::sync::{Arc, Mutex, OnceLock};

use crate::cylinder::{CoordSource, CylCtx, CylinderOps};
use crate::hasher::{FxHashMap, FxHashSet};
use crate::{Elem, Relation, Tuple};

/// A node id: an index into the arena offset by the two terminals.
pub type Nid = u32;

/// The `false` terminal.
pub const NID_FALSE: Nid = 0;

/// The `true` terminal.
pub const NID_TRUE: Nid = 1;

/// Pseudo-level of the terminals: below every decision level.
const LEVEL_TERMINAL: u32 = u32::MAX;

/// One decision node: branch on the variable at `level`, following `lo`
/// when the bit is 0 and `hi` when it is 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Node {
    level: u32,
    lo: Nid,
    hi: Nid,
}

/// The binary apply kernels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum BinOp {
    And,
    Or,
    /// Fused difference `a ∧ ¬b`; with `a = ⊤` this is plain negation.
    Diff,
}

/// The mutable node store: arena, unique table and operation memos.
#[derive(Default)]
struct BddStore {
    nodes: Vec<Node>,
    unique: FxHashMap<(u32, Nid, Nid), Nid>,
    bin_memo: FxHashMap<(BinOp, Nid, Nid), Nid>,
    ite_memo: FxHashMap<(Nid, Nid, Nid), Nid>,
    /// `∃`-collapse memo, keyed `(node, coordinate)`.
    exists_memo: FxHashMap<(Nid, u32), Nid>,
    /// Model-count memo, relative to the node's own level.
    count_memo: FxHashMap<Nid, u128>,
    peak_nodes: usize,
}

impl BddStore {
    fn level(&self, x: Nid) -> u32 {
        if x <= NID_TRUE {
            LEVEL_TERMINAL
        } else {
            self.nodes[(x - 2) as usize].level
        }
    }

    fn node(&self, x: Nid) -> Node {
        self.nodes[(x - 2) as usize]
    }

    /// Cofactors of `x` with respect to the variable at `level`.
    fn cof(&self, x: Nid, level: u32) -> (Nid, Nid) {
        if self.level(x) == level {
            let n = self.node(x);
            (n.lo, n.hi)
        } else {
            (x, x)
        }
    }

    /// Hash-consing constructor: the only way nodes enter the arena.
    fn mk(&mut self, level: u32, lo: Nid, hi: Nid) -> Nid {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(level, lo, hi)) {
            return id;
        }
        let id = (self.nodes.len() + 2) as Nid;
        self.nodes.push(Node { level, lo, hi });
        self.unique.insert((level, lo, hi), id);
        self.peak_nodes = self.peak_nodes.max(self.nodes.len());
        id
    }

    fn apply(&mut self, op: BinOp, a: Nid, b: Nid) -> Nid {
        match op {
            BinOp::And => {
                if a == NID_FALSE || b == NID_FALSE {
                    return NID_FALSE;
                }
                if a == NID_TRUE || a == b {
                    return b;
                }
                if b == NID_TRUE {
                    return a;
                }
            }
            BinOp::Or => {
                if a == NID_TRUE || b == NID_TRUE {
                    return NID_TRUE;
                }
                if a == NID_FALSE || a == b {
                    return b;
                }
                if b == NID_FALSE {
                    return a;
                }
            }
            BinOp::Diff => {
                if a == NID_FALSE || b == NID_TRUE || a == b {
                    return NID_FALSE;
                }
                if b == NID_FALSE {
                    return a;
                }
                // a == ⊤ continues: the recursion computes ¬b.
            }
        }
        // ∧ and ∨ are commutative: normalise the memo key.
        let key = match op {
            BinOp::And | BinOp::Or if a > b => (op, b, a),
            _ => (op, a, b),
        };
        if let Some(&r) = self.bin_memo.get(&key) {
            return r;
        }
        let level = self.level(a).min(self.level(b));
        let (a0, a1) = self.cof(a, level);
        let (b0, b1) = self.cof(b, level);
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(level, lo, hi);
        self.bin_memo.insert(key, r);
        r
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    fn ite(&mut self, f: Nid, g: Nid, h: Nid) -> Nid {
        if f == NID_TRUE {
            return g;
        }
        if f == NID_FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == NID_TRUE && h == NID_FALSE {
            return f;
        }
        if let Some(&r) = self.ite_memo.get(&(f, g, h)) {
            return r;
        }
        let level = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cof(f, level);
        let (g0, g1) = self.cof(g, level);
        let (h0, h1) = self.cof(h, level);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(level, lo, hi);
        self.ite_memo.insert((f, g, h), r);
        r
    }

    /// Existentially quantifies every level belonging to `coord`
    /// (`level mod k == coord`).
    fn exists_coord(&mut self, x: Nid, coord: u32, k: u32) -> Nid {
        if x <= NID_TRUE {
            return x;
        }
        if let Some(&r) = self.exists_memo.get(&(x, coord)) {
            return r;
        }
        let n = self.node(x);
        let lo = self.exists_coord(n.lo, coord, k);
        let hi = self.exists_coord(n.hi, coord, k);
        let r = if n.level % k == coord {
            self.apply(BinOp::Or, lo, hi)
        } else {
            self.mk(n.level, lo, hi)
        };
        self.exists_memo.insert((x, coord), r);
        r
    }

    /// Vector composition for [`CylinderOps::preimage`]: substitutes the
    /// variable at each level by the mapped target variable (same bit
    /// significance, mapped coordinate) or the constant's bit.
    fn compose(
        &mut self,
        x: Nid,
        map: &[CoordSource],
        k: u32,
        bits: u32,
        memo: &mut FxHashMap<Nid, Nid>,
    ) -> Nid {
        if x <= NID_TRUE {
            return x;
        }
        if let Some(&r) = memo.get(&x) {
            return r;
        }
        let n = self.node(x);
        let coord = n.level % k;
        let row = n.level / k;
        let lo = self.compose(n.lo, map, k, bits, memo);
        let hi = self.compose(n.hi, map, k, bits, memo);
        let r = match map[coord as usize] {
            CoordSource::Coord(j) => {
                let var = self.mk(row * k + j as u32, NID_FALSE, NID_TRUE);
                self.ite(var, hi, lo)
            }
            CoordSource::Const(c) => {
                let significance = bits - 1 - row;
                if (c >> significance) & 1 == 1 {
                    hi
                } else {
                    lo
                }
            }
        };
        memo.insert(x, r);
        r
    }

    /// Saturating model count over the levels `[level(x), num_vars)`.
    fn satcount(&mut self, x: Nid, num_vars: u32) -> u128 {
        if x == NID_FALSE {
            return 0;
        }
        if x == NID_TRUE {
            return 1;
        }
        if let Some(&c) = self.count_memo.get(&x) {
            return c;
        }
        let n = self.node(x);
        let scale = |count: u128, child: Nid, this: &mut Self| -> u128 {
            let child_level = if child <= NID_TRUE {
                num_vars
            } else {
                this.level(child)
            };
            let shift = child_level - n.level - 1;
            count.checked_shl(shift).unwrap_or(u128::MAX)
        };
        let lo = self.satcount(n.lo, num_vars);
        let lo = scale(lo, n.lo, self);
        let hi = self.satcount(n.hi, num_vars);
        let hi = scale(hi, n.hi, self);
        let c = lo.saturating_add(hi);
        self.count_memo.insert(x, c);
        c
    }

    /// Number of nodes reachable from `root` (terminals excluded).
    fn reachable(&self, root: Nid) -> usize {
        let mut seen: FxHashSet<Nid> = FxHashSet::default();
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            if x <= NID_TRUE || !seen.insert(x) {
                continue;
            }
            let n = self.node(x);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }
}

/// The shared symbolic space for one [`CylCtx`]: encoding parameters plus
/// the mutex-guarded node store. Created empty (no allocation beyond the
/// struct) by every context; nodes only appear once a [`BddCylinder`] is
/// actually built.
pub struct BddSpace {
    n: usize,
    k: usize,
    /// Bits per coordinate, `⌈log₂ n⌉` (0 when `n ≤ 1`).
    bits: usize,
    store: Mutex<BddStore>,
    /// The domain constraint `∧ᵢ (xᵢ < n)`, built on first use.
    valid: OnceLock<Nid>,
}

impl std::fmt::Debug for BddSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BddSpace")
            .field("n", &self.n)
            .field("k", &self.k)
            .field("bits", &self.bits)
            .field("nodes", &self.node_count())
            .finish()
    }
}

impl BddSpace {
    /// Creates the (empty) space for width `k` over a domain of size `n`.
    pub fn new(n: usize, k: usize) -> Self {
        let bits = if n <= 1 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        BddSpace {
            n,
            k,
            bits,
            store: Mutex::new(BddStore::default()),
            valid: OnceLock::new(),
        }
    }

    /// Bits per coordinate (`⌈log₂ n⌉`).
    pub fn bits_per_coord(&self) -> usize {
        self.bits
    }

    /// Total decision variables, `k·⌈log₂ n⌉`.
    pub fn num_vars(&self) -> usize {
        self.k * self.bits
    }

    /// Nodes currently in the arena (shared across all cylinders).
    pub fn node_count(&self) -> usize {
        self.store.lock().unwrap().nodes.len()
    }

    /// High-water mark of the arena size.
    pub fn peak_nodes(&self) -> usize {
        self.store.lock().unwrap().peak_nodes
    }

    /// Estimated bytes per stored node: the arena slot plus the amortised
    /// unique-table entry.
    pub fn bytes_per_node() -> usize {
        std::mem::size_of::<Node>() + std::mem::size_of::<(u32, Nid, Nid)>() + 4
    }

    /// Peak node-store footprint in bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_nodes() * Self::bytes_per_node()
    }

    /// The level holding bit `significance` of coordinate `coord`
    /// (interleaved, most significant bits on top).
    fn level_of(&self, coord: usize, significance: usize) -> u32 {
        ((self.bits - 1 - significance) * self.k + coord) as u32
    }

    /// The domain-constraint root `∧ᵢ (xᵢ < n)`, built once.
    fn valid_root(&self) -> Nid {
        *self.valid.get_or_init(|| {
            if self.n >= (1usize << self.bits) || self.k == 0 {
                return NID_TRUE;
            }
            let st = &mut *self.store.lock().unwrap();
            let mut acc = NID_TRUE;
            for coord in 0..self.k {
                let lt = self.coord_lt_n(st, coord);
                acc = st.apply(BinOp::And, acc, lt);
            }
            acc
        })
    }

    /// Builds `x_coord < n` bottom-up from the least significant bit:
    /// `x < n` at bits `s..0` iff `x_s < n_s`, or `x_s = n_s` and the
    /// suffix is already less.
    fn coord_lt_n(&self, st: &mut BddStore, coord: usize) -> Nid {
        let mut acc = NID_FALSE; // empty suffix: not strictly less
        for s in 0..self.bits {
            let level = self.level_of(coord, s);
            acc = if (self.n >> s) & 1 == 1 {
                st.mk(level, NID_TRUE, acc)
            } else {
                st.mk(level, acc, NID_FALSE)
            };
        }
        acc
    }

    /// The conjunction of bit literals pinning `coord` to `value`
    /// (assumed `< n`), threaded onto `below` from the bottom up.
    fn pin_coord(&self, st: &mut BddStore, acc: Nid, coord: usize, value: Elem) -> Nid {
        let mut acc = acc;
        for s in 0..self.bits {
            let level = self.level_of(coord, s);
            acc = if (value >> s) & 1 == 1 {
                st.mk(level, NID_FALSE, acc)
            } else {
                st.mk(level, acc, NID_FALSE)
            };
        }
        acc
    }
}

/// A subset of `D^k` as a shared-node BDD: the third [`CylinderOps`]
/// backend. Clones share the space; equality compares hash-consed roots,
/// so the fixpoint convergence test is O(1).
#[derive(Clone, Debug)]
pub struct BddCylinder {
    space: Arc<BddSpace>,
    root: Nid,
}

impl BddCylinder {
    fn wrap(ctx: &CylCtx, root: Nid) -> Self {
        BddCylinder {
            space: Arc::clone(ctx.bdd()),
            root,
        }
    }

    /// The root node id (diagnostics).
    pub fn root(&self) -> Nid {
        self.root
    }

    /// Nodes reachable from the root — the cylinder's own footprint.
    pub fn node_count(&self) -> usize {
        self.space.store.lock().unwrap().reachable(self.root)
    }

    /// A streaming cursor over the satisfying `k`-tuples.
    pub fn cursor(&self) -> BddCursor {
        BddCursor::new(Arc::clone(&self.space), self.root)
    }
}

impl PartialEq for BddCylinder {
    fn eq(&self, other: &Self) -> bool {
        // Hash-consing makes roots canonical within one space; cylinders
        // from different spaces are never compared by the evaluator.
        Arc::ptr_eq(&self.space, &other.space) && self.root == other.root
    }
}

impl CylinderOps for BddCylinder {
    fn empty(ctx: &CylCtx) -> Self {
        Self::wrap(ctx, NID_FALSE)
    }

    fn full(ctx: &CylCtx) -> Self {
        let root = ctx.bdd().valid_root();
        Self::wrap(ctx, root)
    }

    fn from_atom(ctx: &CylCtx, rel: &Relation, vars: &[usize]) -> Self {
        assert_eq!(
            rel.arity(),
            vars.len(),
            "atom variable count ≠ relation arity"
        );
        let sp = ctx.bdd();
        let k = ctx.width();
        let n = ctx.domain_size();
        for &v in vars {
            assert!(v < k, "atom variable index {v} out of width {k}");
        }
        let valid = sp.valid_root();
        let st = &mut *sp.store.lock().unwrap();
        // One cube per tuple (repeated variables select the diagonal, as
        // in the dense backend), built bottom-up over the mentioned
        // coordinates in descending level order, then OR-folded.
        let mut point = vec![0 as Elem; k];
        let mut assigned = vec![false; k];
        let mut root = NID_FALSE;
        'tuples: for t in rel.iter() {
            for a in assigned.iter_mut() {
                *a = false;
            }
            for (j, &v) in vars.iter().enumerate() {
                if t[j] as usize >= n || (assigned[v] && point[v] != t[j]) {
                    continue 'tuples;
                }
                point[v] = t[j];
                assigned[v] = true;
            }
            let mut cube = NID_TRUE;
            // Bottom-up by *global* level: the interleaved order puts
            // every coordinate's low bits below every coordinate's high
            // bits, so coordinate-at-a-time construction would invert
            // levels mid-cube.
            for level in (0..sp.num_vars()).rev() {
                let coord = level % k;
                if !assigned[coord] {
                    continue;
                }
                let significance = sp.bits - 1 - level / k;
                cube = if (point[coord] >> significance) & 1 == 1 {
                    st.mk(level as u32, NID_FALSE, cube)
                } else {
                    st.mk(level as u32, cube, NID_FALSE)
                };
            }
            root = st.apply(BinOp::Or, root, cube);
        }
        let root = st.apply(BinOp::And, root, valid);
        Self::wrap(ctx, root)
    }

    fn equality(ctx: &CylCtx, i: usize, j: usize) -> Self {
        if i == j {
            return Self::full(ctx);
        }
        let sp = ctx.bdd();
        let valid = sp.valid_root();
        let st = &mut *sp.store.lock().unwrap();
        let (lo_coord, hi_coord) = if i < j { (i, j) } else { (j, i) };
        // Bottom-up chain of per-significance bit equalities: linear size
        // thanks to the interleaved order.
        let mut acc = NID_TRUE;
        for s in 0..sp.bits {
            let a = sp.level_of(lo_coord, s); // shallower of the pair
            let b = sp.level_of(hi_coord, s);
            let both_zero = st.mk(b, acc, NID_FALSE);
            let both_one = st.mk(b, NID_FALSE, acc);
            acc = st.mk(a, both_zero, both_one);
        }
        let root = st.apply(BinOp::And, acc, valid);
        Self::wrap(ctx, root)
    }

    fn const_eq(ctx: &CylCtx, i: usize, c: Elem) -> Self {
        if (c as usize) >= ctx.domain_size() {
            return Self::empty(ctx);
        }
        let sp = ctx.bdd();
        let valid = sp.valid_root();
        let st = &mut *sp.store.lock().unwrap();
        let cube = sp.pin_coord(st, NID_TRUE, i, c);
        let root = st.apply(BinOp::And, cube, valid);
        Self::wrap(ctx, root)
    }

    fn and_with(&mut self, ctx: &CylCtx, other: &Self) {
        let st = &mut *ctx.bdd().store.lock().unwrap();
        self.root = st.apply(BinOp::And, self.root, other.root);
    }

    fn or_with(&mut self, ctx: &CylCtx, other: &Self) {
        let st = &mut *ctx.bdd().store.lock().unwrap();
        self.root = st.apply(BinOp::Or, self.root, other.root);
    }

    fn not(&mut self, ctx: &CylCtx) {
        // Complement relative to the domain constraint, preserving the
        // `self ⊆ valid` invariant.
        let valid = ctx.bdd().valid_root();
        let st = &mut *ctx.bdd().store.lock().unwrap();
        self.root = st.apply(BinOp::Diff, valid, self.root);
    }

    fn and_not_with(&mut self, ctx: &CylCtx, other: &Self) {
        let st = &mut *ctx.bdd().store.lock().unwrap();
        self.root = st.apply(BinOp::Diff, self.root, other.root);
    }

    fn exists(&self, ctx: &CylCtx, i: usize) -> Self {
        let sp = ctx.bdd();
        let valid = sp.valid_root();
        let st = &mut *sp.store.lock().unwrap();
        let projected = st.exists_coord(self.root, i as u32, sp.k.max(1) as u32);
        // Re-cylindrify over the *domain* values of coordinate i.
        let root = st.apply(BinOp::And, projected, valid);
        Self::wrap(ctx, root)
    }

    fn preimage(&self, ctx: &CylCtx, map: &[CoordSource]) -> Self {
        let sp = ctx.bdd();
        let k = ctx.width();
        assert_eq!(map.len(), k, "preimage map must cover all {k} coordinates");
        for m in map {
            if let CoordSource::Const(c) = m {
                if *c as usize >= ctx.domain_size() {
                    return Self::empty(ctx);
                }
            }
        }
        let valid = sp.valid_root();
        let st = &mut *sp.store.lock().unwrap();
        let mut memo = FxHashMap::default();
        let composed = st.compose(
            self.root,
            map,
            sp.k.max(1) as u32,
            sp.bits as u32,
            &mut memo,
        );
        // Coordinates the map never reads are cylindrical: constrain them
        // back to the domain.
        let root = st.apply(BinOp::And, composed, valid);
        Self::wrap(ctx, root)
    }

    fn contains(&self, ctx: &CylCtx, point: &[Elem]) -> bool {
        let sp = ctx.bdd();
        if point.iter().any(|&c| c as usize >= sp.n) {
            return false;
        }
        let st = self.space.store.lock().unwrap();
        let _ = ctx;
        let mut cur = self.root;
        while cur > NID_TRUE {
            let node = st.node(cur);
            let coord = node.level as usize % sp.k.max(1);
            let significance = sp.bits - 1 - node.level as usize / sp.k.max(1);
            cur = if (point[coord] >> significance) & 1 == 1 {
                node.hi
            } else {
                node.lo
            };
        }
        cur == NID_TRUE
    }

    fn count(&self, ctx: &CylCtx) -> usize {
        let sp = ctx.bdd();
        let st = &mut *sp.store.lock().unwrap();
        let num_vars = sp.num_vars() as u32;
        let total = if self.root <= NID_TRUE {
            if self.root == NID_TRUE {
                1u128 << num_vars.min(127)
            } else {
                0
            }
        } else {
            let below = st.satcount(self.root, num_vars);
            below.checked_shl(st.level(self.root)).unwrap_or(u128::MAX)
        };
        // A full `⊤` root only happens when every bit pattern is a valid
        // tuple; in general the ⊆-valid invariant makes the count exact.
        usize::try_from(total).unwrap_or(usize::MAX)
    }

    fn is_empty(&self, _ctx: &CylCtx) -> bool {
        self.root == NID_FALSE
    }

    fn is_subset(&self, ctx: &CylCtx, other: &Self) -> bool {
        let st = &mut *ctx.bdd().store.lock().unwrap();
        st.apply(BinOp::Diff, self.root, other.root) == NID_FALSE
    }

    fn to_relation(&self, ctx: &CylCtx, coords: &[usize]) -> Relation {
        let mut r = Relation::new(coords.len());
        let mut cursor = self.cursor();
        while let Some(point) = cursor.next_point() {
            r.insert(Tuple::from_fn(coords.len(), |j| point[coords[j]]));
        }
        let _ = ctx;
        r
    }

    fn points(&self, ctx: &CylCtx) -> Vec<Tuple> {
        let _ = ctx;
        let mut out = Vec::new();
        let mut cursor = self.cursor();
        while let Some(point) = cursor.next_point() {
            out.push(Tuple::from_slice(point));
        }
        out
    }

    fn size_bytes(&self, _ctx: &CylCtx) -> usize {
        self.node_count() * BddSpace::bytes_per_node()
    }
}

/// One pending branch of the cursor's depth-first walk.
struct CursorFrame {
    /// Node governing the subtree (may sit below `level` when levels in
    /// between are skipped — those bits are free).
    node: Nid,
    /// The level whose 1-branch is still unexplored.
    level: u32,
}

/// A streaming enumerator of satisfying assignments: a register holding
/// the current partial point plus a stack of unexplored 1-branches (the
/// `bex` `Reg`/`Cursor` shape). Each [`next_point`](BddCursor::next_point)
/// yields one `k`-tuple without materialising the set; the `⊆ valid`
/// invariant guarantees every emitted tuple is in-domain.
pub struct BddCursor {
    space: Arc<BddSpace>,
    /// Unexplored 1-branches, deepest last.
    stack: Vec<CursorFrame>,
    /// The current point's coordinates (the register).
    point: Vec<Elem>,
    /// Next branch to explore on start-up, `None` once exhausted.
    start: Option<Nid>,
    done: bool,
}

impl BddCursor {
    fn new(space: Arc<BddSpace>, root: Nid) -> Self {
        let k = space.k;
        BddCursor {
            space,
            stack: Vec::new(),
            point: vec![0; k],
            start: Some(root),
            done: false,
        }
    }

    fn set_bit(&mut self, level: u32, value: bool) {
        let k = self.space.k.max(1);
        let coord = level as usize % k;
        let significance = self.space.bits - 1 - level as usize / k;
        if value {
            self.point[coord] |= 1 << significance;
        } else {
            self.point[coord] &= !(1 << significance);
        }
    }

    /// Descends from `(node, level)` along all-0 branches to the next
    /// satisfying assignment, pushing every untaken 1-branch. Returns
    /// whether a satisfying point was reached.
    fn descend(&mut self, mut node: Nid, mut level: u32) -> bool {
        let num_vars = self.space.num_vars() as u32;
        loop {
            if level == num_vars {
                return node == NID_TRUE;
            }
            let (lo, node_level) = {
                let st = self.space.store.lock().unwrap();
                if node <= NID_TRUE {
                    (node, LEVEL_TERMINAL)
                } else {
                    let n = st.node(node);
                    (n.lo, n.level)
                }
            };
            if level < node_level {
                // Skipped level: the bit is free; try 0 first, keep 1.
                self.set_bit(level, false);
                self.stack.push(CursorFrame { node, level });
                level += 1;
                if node == NID_FALSE {
                    return false;
                }
            } else {
                self.set_bit(level, false);
                self.stack.push(CursorFrame { node, level });
                node = lo;
                level += 1;
                if node == NID_FALSE {
                    // Dead 0-branch: backtrack via the caller's loop.
                    return false;
                }
            }
        }
    }

    /// Advances to the next satisfying `k`-tuple, or `None` when the walk
    /// is exhausted. The returned slice is valid until the next call.
    pub fn next_point(&mut self) -> Option<&[Elem]> {
        if self.done {
            return None;
        }
        // Initial descent from the root.
        if let Some(root) = self.start.take() {
            if self.descend(root, 0) {
                return Some(&self.point);
            }
        }
        // Backtrack: pop frames, taking each pending 1-branch.
        while let Some(frame) = self.stack.pop() {
            let (next, level) = {
                let st = self.space.store.lock().unwrap();
                let node_level = if frame.node <= NID_TRUE {
                    LEVEL_TERMINAL
                } else {
                    st.level(frame.node)
                };
                if frame.level < node_level {
                    // Free bit: flipping to 1 keeps the same subtree.
                    (frame.node, frame.level)
                } else {
                    (st.node(frame.node).hi, frame.level)
                }
            };
            if next == NID_FALSE {
                continue;
            }
            self.set_bit(level, true);
            if self.descend(next, level + 1) {
                return Some(&self.point);
            }
        }
        self.done = true;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseCylinder;
    use bvq_prng::Rng;

    fn ctx(n: usize, k: usize) -> CylCtx {
        CylCtx::new(n, k)
    }

    fn rel_of(c: &BddCylinder, ctx: &CylCtx) -> Vec<Tuple> {
        let coords: Vec<usize> = (0..ctx.width()).collect();
        let mut v: Vec<Tuple> = c.to_relation(ctx, &coords).iter().cloned().collect();
        v.sort();
        v
    }

    #[test]
    fn empty_full_and_count_on_non_power_of_two_domain() {
        for (n, k) in [(3usize, 2usize), (5, 2), (7, 3), (1, 2), (4, 1), (6, 2)] {
            let c = ctx(n, k);
            assert_eq!(BddCylinder::empty(&c).count(&c), 0);
            assert_eq!(BddCylinder::full(&c).count(&c), n.pow(k as u32));
            assert!(BddCylinder::empty(&c).is_empty(&c));
        }
    }

    #[test]
    fn hash_consing_is_canonical() {
        // Structurally equal functions built along different routes share
        // one root: the O(1) equality the fixpoint test relies on.
        let c = ctx(5, 2);
        let e = Relation::from_tuples(2, [[0u32, 1], [1, 2], [3, 4]]);
        let a = BddCylinder::from_atom(&c, &e, &[0, 1]);
        let b = BddCylinder::from_atom(&c, &e, &[0, 1]);
        assert_eq!(a.root(), b.root());
        // (A ∪ B) ∖ B with disjoint B returns A's exact root.
        let f = Relation::from_tuples(2, [[2u32, 2]]);
        let bf = BddCylinder::from_atom(&c, &f, &[0, 1]);
        let mut u = a.clone();
        u.or_with(&c, &bf);
        u.and_not_with(&c, &bf);
        assert_eq!(u.root(), a.root());
        assert!(u == a);
        // Double negation is the identity on roots.
        let mut nn = a.clone();
        nn.not(&c);
        nn.not(&c);
        assert_eq!(nn.root(), a.root());
    }

    #[test]
    fn apply_and_exists_idempotence() {
        let c = ctx(6, 2);
        let e = Relation::from_tuples(2, [[0u32, 1], [1, 2], [4, 5], [5, 0]]);
        let a = BddCylinder::from_atom(&c, &e, &[0, 1]);
        let mut aa = a.clone();
        aa.and_with(&c, &a);
        assert_eq!(aa.root(), a.root(), "x ∧ x = x");
        let mut ao = a.clone();
        ao.or_with(&c, &a);
        assert_eq!(ao.root(), a.root(), "x ∨ x = x");
        let ex = a.exists(&c, 1);
        let exex = ex.exists(&c, 1);
        assert_eq!(ex.root(), exex.root(), "∃ is idempotent per coordinate");
    }

    #[test]
    fn equality_and_const_eq_match_dense() {
        for n in [3usize, 4, 5, 8] {
            let c = ctx(n, 3);
            for (i, j) in [(0usize, 1usize), (1, 2), (0, 2), (2, 2)] {
                let b = BddCylinder::equality(&c, i, j);
                let d = DenseCylinder::equality(&c, i, j);
                assert_eq!(b.count(&c), d.count(&c), "eq({i},{j}) over n={n}");
            }
            for v in 0..n as Elem {
                let b = BddCylinder::const_eq(&c, 1, v);
                assert_eq!(b.count(&c), n * n, "x1={v} over n={n}");
            }
            assert_eq!(BddCylinder::const_eq(&c, 0, n as Elem).count(&c), 0);
        }
    }

    #[test]
    fn equality_diagonal_is_linear_sized() {
        // The interleaved order keeps x0 = x1 at O(bits) nodes; a
        // non-interleaved order would pay 2^bits.
        for n in [16usize, 64, 256, 1024] {
            let c = ctx(n, 2);
            let eq = BddCylinder::equality(&c, 0, 1);
            let bits = c.bdd().bits_per_coord();
            assert!(
                eq.node_count() <= 4 * bits + 4,
                "diagonal over n={n} took {} nodes",
                eq.node_count()
            );
        }
    }

    #[test]
    fn enumeration_round_trips_through_cursor() {
        let mut rng = Rng::seed_from_u64(0xbdd0);
        for case in 0..40 {
            let n = 2 + (rng.next_u64() % 7) as usize;
            let k = 1 + (rng.next_u64() % 3) as usize;
            let c = ctx(n, k);
            let arity = 1 + (rng.next_u64() % k as u64) as usize;
            let tuples: Vec<Vec<Elem>> = (0..(rng.next_u64() % 12))
                .map(|_| {
                    (0..arity)
                        .map(|_| (rng.next_u64() % n as u64) as Elem)
                        .collect()
                })
                .collect();
            let rel = Relation::from_tuples(arity, tuples.iter().map(|t| Tuple::from_slice(t)));
            let vars: Vec<usize> = (0..arity).collect();
            let b = BddCylinder::from_atom(&c, &rel, &vars);
            // from_atom → cursor → from_atom is the identity.
            let coords: Vec<usize> = (0..k).collect();
            let back = b.to_relation(&c, &coords);
            let again = BddCylinder::from_atom(&c, &back, &coords);
            assert_eq!(b.root(), again.root(), "case {case}: round trip");
            assert_eq!(b.count(&c), back.len(), "case {case}: cursor count");
            // Every streamed point is in-domain and contained.
            let mut cursor = b.cursor();
            let mut streamed = 0usize;
            while let Some(p) = cursor.next_point() {
                assert!(p.iter().all(|&e| (e as usize) < n), "case {case}");
                let owned: Vec<Elem> = p.to_vec();
                assert!(b.contains(&c, &owned), "case {case}");
                streamed += 1;
            }
            assert_eq!(streamed, b.count(&c), "case {case}: stream length");
        }
    }

    #[test]
    fn random_algebra_agrees_with_dense() {
        let mut rng = Rng::seed_from_u64(0xbdd1);
        for case in 0..30 {
            let n = 2 + (rng.next_u64() % 6) as usize;
            let k = 2 + (rng.next_u64() % 2) as usize;
            let c = ctx(n, k);
            let mut tuples = Vec::new();
            for _ in 0..(rng.next_u64() % 10) {
                tuples.push(Tuple::from_fn(2, |_| (rng.next_u64() % n as u64) as Elem));
            }
            let r = Relation::from_tuples(2, tuples);
            let vars = [
                (rng.next_u64() % k as u64) as usize,
                (rng.next_u64() % k as u64) as usize,
            ];
            let b = BddCylinder::from_atom(&c, &r, &vars);
            let d = DenseCylinder::from_atom(&c, &r, &vars);
            let coords: Vec<usize> = (0..k).collect();
            assert_eq!(
                rel_of(&b, &c),
                {
                    let mut v: Vec<Tuple> = d.to_relation(&c, &coords).iter().cloned().collect();
                    v.sort();
                    v
                },
                "case {case}: atom load"
            );
            // ¬, ∃, ∀ agree with the dense backend point-for-point.
            for i in 0..k {
                assert_eq!(
                    b.exists(&c, i).count(&c),
                    d.exists(&c, i).count(&c),
                    "case {case}: exists {i}"
                );
                assert_eq!(
                    b.forall(&c, i).count(&c),
                    d.forall(&c, i).count(&c),
                    "case {case}: forall {i}"
                );
            }
            let mut bn = b.clone();
            bn.not(&c);
            let mut dn = d.clone();
            dn.not(&c);
            assert_eq!(bn.count(&c), dn.count(&c), "case {case}: complement");
            assert!(b.is_subset(&c, &BddCylinder::full(&c)), "case {case}");
        }
    }

    #[test]
    fn preimage_matches_dense_on_swaps_constants_and_duplicates() {
        let c = ctx(5, 2);
        let e = Relation::from_tuples(2, [[0u32, 1], [2, 0], [4, 4], [1, 3]]);
        let b = BddCylinder::from_atom(&c, &e, &[0, 1]);
        let d = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        let maps = [
            vec![CoordSource::Coord(0), CoordSource::Coord(1)],
            vec![CoordSource::Coord(1), CoordSource::Coord(0)],
            vec![CoordSource::Coord(0), CoordSource::Coord(0)],
            vec![CoordSource::Const(2), CoordSource::Coord(1)],
            vec![CoordSource::Const(4), CoordSource::Const(4)],
            vec![CoordSource::Const(9), CoordSource::Coord(0)],
        ];
        for map in &maps {
            let bp = b.preimage(&c, map);
            let dp = d.preimage(&c, map);
            let coords = [0usize, 1];
            assert_eq!(
                bp.to_relation(&c, &coords).sorted(),
                dp.to_relation(&c, &coords).sorted(),
                "map {map:?}"
            );
        }
    }

    #[test]
    fn symbolic_reachability_stays_small() {
        // Transitive closure of a path by iterative squaring, entirely
        // symbolic: reach ← reach ∪ ∃z (reach(x₀,z) ∧ reach(z,x₁)), the
        // 3-variable FP^k shape from the paper's Example 1.3 run on k = 3.
        let n = 256usize;
        let c = ctx(n, 3);
        let edges = Relation::from_tuples(
            2,
            (0..n as Elem - 1).map(|i| Tuple::from_slice(&[i, i + 1])),
        );
        let e = BddCylinder::from_atom(&c, &edges, &[0, 1]);
        let mut reach = e.clone();
        let mut rounds = 0usize;
        loop {
            // left(ā) = reach(ā[0], ā[2]); right(ā) = reach(ā[2], ā[1]).
            let left = reach.preimage(
                &c,
                &[
                    CoordSource::Coord(0),
                    CoordSource::Coord(2),
                    CoordSource::Coord(2),
                ],
            );
            let mut step = reach.preimage(
                &c,
                &[
                    CoordSource::Coord(2),
                    CoordSource::Coord(1),
                    CoordSource::Coord(2),
                ],
            );
            step.and_with(&c, &left);
            let step = step.exists(&c, 2);
            let mut grown = reach.clone();
            grown.or_with(&c, &step);
            rounds += 1;
            if grown == reach {
                break;
            }
            reach = grown;
        }
        // Squaring converges in O(log n) rounds, and the closure of an
        // n-path is the strict order: n(n-1)/2 pairs per free-z slice.
        assert!(rounds <= 10, "took {rounds} squaring rounds");
        assert_eq!(reach.count(&c), n * (n - 1) / 2 * n);
        // Pin the free coordinate before enumerating the pair projection.
        let mut pinned = reach.clone();
        pinned.and_with(&c, &BddCylinder::const_eq(&c, 2, 0));
        let pairs = pinned.to_relation(&c, &[0, 1]);
        assert_eq!(pairs.len(), n * (n - 1) / 2);
        assert!(pairs.iter().all(|t| t[0] < t[1]), "path closure is <");
        // The symbolic closure is far below even the k = 2 dense bitset
        // (n²/8 = 8192 bytes at n = 256), let alone the n³ this context
        // would pay densely.
        let dense_pair_bytes = (n * n).div_ceil(64) * 8;
        assert!(
            reach.size_bytes(&c) < dense_pair_bytes,
            "closure took {} bytes vs dense {dense_pair_bytes}",
            reach.size_bytes(&c)
        );
    }

    #[test]
    fn count_is_exact_on_wide_spaces() {
        // k·bits near the usize boundary still count correctly for small
        // actual sets.
        let c = ctx(1000, 2);
        assert!(!c.dense_feasible() || c.dense_feasible()); // context builds fine
        let r = Relation::from_tuples(2, [[999u32, 0], [0, 999], [500, 500]]);
        let b = BddCylinder::from_atom(&c, &r, &[0, 1]);
        assert_eq!(b.count(&c), 3);
        assert_eq!(BddCylinder::full(&c).count(&c), 1_000_000);
        assert!(b.contains(&c, &[999, 0]));
        assert!(!b.contains(&c, &[999, 1]));
    }
}
