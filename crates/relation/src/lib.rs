//! # bvq-relation
//!
//! The relational substrate underlying the `bvq` reproduction of
//! Vardi, *On the Complexity of Bounded-Variable Queries* (PODS 1995).
//!
//! The paper's central quantity is the **size of intermediate relations**
//! arising during query evaluation: evaluating an unrestricted relational
//! query may build relations whose arity is linear in the length of the
//! query (hence of exponential size), while bounded-variable queries only
//! ever build relations of arity at most `k` (hence of size at most `n^k`).
//! This crate provides everything needed to make that quantity concrete and
//! measurable:
//!
//! * [`Tuple`] — a compact tuple of domain elements with inline storage for
//!   the small arities that dominate bounded-variable evaluation;
//! * [`Relation`] — a sparse (hash-set backed) finite relation with a full
//!   relational algebra (selection, projection, permutation, joins,
//!   semijoins, set operations, complement);
//! * the [`backend`] module — the [`CylinderOps`] interface used by the
//!   cylindrical `FO^k` evaluator (every subformula denotes a subset of
//!   `D^k`) together with its three implementations: a dense bitset, a
//!   sparse tuple set, and a shared-node BDD over `k·⌈log₂ n⌉` bits, plus
//!   the cost model choosing between them;
//! * [`Database`] — a named collection of relations over a common domain,
//!   with the paper's string-encoding length as the input-size measure;
//! * [`EvalStats`] — instrumentation recording maximum intermediate arity
//!   and cardinality, operator applications, and fixpoint iterations;
//! * [`Span`] and [`Tracer`] — structured per-operator tracing (arity,
//!   cardinality, wall time, fixpoint round) nested to mirror formula
//!   structure, with thread-count-independent structural content;
//! * [`EvalConfig`] and the [`parallel`] kernels — a thread-count knob and
//!   partitioned (std-only, `std::thread::scope`) implementations of the
//!   hot relational operators; `threads = 1` is exactly the sequential
//!   engine, and every thread count yields tuple-for-tuple identical
//!   results.
//!
//! All code is safe Rust (`#![forbid(unsafe_code)]`) and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bdd;
pub mod bitset;
pub mod config;
pub mod cylinder;
pub mod database;
pub mod dbtext;
pub mod dense;
pub mod error;
pub mod hasher;
pub mod index;
pub mod parallel;
pub mod relation;
pub mod sparse;
pub mod stats;
pub mod trace;
pub mod tuple;

pub use backend::{choose, BackendKind, BackendMode, ChoiceHints};
pub use bitset::BitSet;
pub use config::EvalConfig;
pub use cylinder::{preimage_table, CoordSource, CylCtx, CylinderOps};
pub use database::{Database, DatabaseBuilder, RelId, Schema};
pub use dbtext::{parse_database, write_database, DbTextError};
pub use error::RelationError;
pub use hasher::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::PointIndex;
pub use relation::Relation;
pub use stats::{EvalStats, StatsRecorder};
pub use trace::{Span, Tracer};
pub use tuple::Tuple;

/// A domain element. Domains are always `0..n` for some size `n`; examples
/// that need meaningful values attach labels at the [`Database`] level.
pub type Elem = u32;

/// The arity of a relation or tuple.
pub type Arity = usize;
