//! The documented entry point for cylinder backends.
//!
//! Everything an embedder needs to evaluate bounded-variable queries over
//! subsets of `D^k` lives here: the [`CylinderOps`] trait, the shared
//! [`CylCtx`] context, and the three implementations —
//!
//! * [`DenseCylinder`] — a bitset over the ranked `n^k` point space.
//!   Fastest when `n^k` fits the dense budget; memory is always `n^k` bits.
//! * [`SparseCylinder`] — a hash set of tuples. Memory tracks cardinality;
//!   the only option (besides BDDs) when `n^k` overflows the dense budget.
//! * [`BddCylinder`] — a shared-node binary decision diagram over
//!   `k·⌈log₂ n⌉` bits. Memory tracks *structure*: diagonals, reachability
//!   frontiers and other regular sets stay polylogarithmic in `n` where
//!   dense pays `n^k` and sparse pays the cardinality.
//!
//! [`BackendKind`] names the implementations, [`BackendMode`] is the
//! user-facing request (`auto` or a forced backend), and [`choose`] is the
//! cost model mapping a context + formula shape to a concrete kind.

pub use crate::bdd::{BddCursor, BddCylinder, BddSpace};
pub use crate::cylinder::{preimage_table, CoordSource, CylCtx, CylinderOps};
pub use crate::dense::DenseCylinder;
pub use crate::sparse::SparseCylinder;

/// A concrete cylinder implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Bitset over the ranked `n^k` space.
    Dense,
    /// Hash set of tuples.
    Sparse,
    /// Shared-node BDD over `k·⌈log₂ n⌉` bits.
    Bdd,
}

impl BackendKind {
    /// Stable lower-case label (used by `explain` and bench output).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Sparse => "sparse",
            BackendKind::Bdd => "bdd",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The user-facing backend request: let the cost model pick, or force one
/// implementation. Flows CLI → protocol → cache key exactly like the
/// compile mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendMode {
    /// Cost-based per-query choice (the default).
    #[default]
    Auto,
    /// Force the dense bitset (errors when `n^k` exceeds the budget).
    Dense,
    /// Force the sparse tuple set.
    Sparse,
    /// Force the symbolic BDD backend.
    Bdd,
}

impl BackendMode {
    /// Parses the wire/CLI spelling. Accepts `auto|dense|sparse|bdd`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(BackendMode::Auto),
            "dense" => Some(BackendMode::Dense),
            "sparse" => Some(BackendMode::Sparse),
            "bdd" => Some(BackendMode::Bdd),
            _ => None,
        }
    }

    /// Stable lower-case label (inverse of [`BackendMode::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            BackendMode::Auto => "auto",
            BackendMode::Dense => "dense",
            BackendMode::Sparse => "sparse",
            BackendMode::Bdd => "bdd",
        }
    }

    /// The forced kind, or `None` for `auto`.
    pub fn forced(self) -> Option<BackendKind> {
        match self {
            BackendMode::Auto => None,
            BackendMode::Dense => Some(BackendKind::Dense),
            BackendMode::Sparse => Some(BackendKind::Sparse),
            BackendMode::Bdd => Some(BackendKind::Bdd),
        }
    }
}

impl std::fmt::Display for BackendMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shape hints the cost model extracts from the compiled query, feeding
/// [`choose`] alongside the context's density estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChoiceHints {
    /// The query complements or universally quantifies somewhere (¬, ∀) or
    /// iterates a fixpoint — shapes where sparse materialises near-full
    /// cylinders but a BDD keeps them in a handful of shared nodes.
    pub needs_complement: bool,
}

/// The per-operation cost model: picks the backend for a `(n, k)` space.
///
/// * A forced mode always wins (callers reject infeasible `dense` before
///   evaluating).
/// * `auto` on a dense-feasible space picks the bitset: at `n^k ≤ 2³²`
///   bits its word-parallel kernels beat both alternatives and the memory
///   ceiling is bounded by construction.
/// * `auto` past the dense budget picks the BDD when the query needs
///   complements, universals or fixpoints (sparse would enumerate up to
///   `n^k` tuples; the symbolic representation stays structural) and the
///   sparse tuple set otherwise (positive-existential queries only shrink,
///   and tuple streaming beats node management).
pub fn choose(ctx: &CylCtx, mode: BackendMode, hints: ChoiceHints) -> BackendKind {
    if let Some(kind) = mode.forced() {
        return kind;
    }
    if ctx.dense_feasible() {
        BackendKind::Dense
    } else if hints.needs_complement {
        BackendKind::Bdd
    } else {
        BackendKind::Sparse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_labels_round_trip() {
        for s in ["auto", "dense", "sparse", "bdd"] {
            assert_eq!(BackendMode::parse(s).unwrap().label(), s);
        }
        assert_eq!(BackendMode::parse("symbolic"), None);
        assert_eq!(BackendMode::parse("AUTO"), None);
        assert_eq!(BackendMode::default(), BackendMode::Auto);
    }

    #[test]
    fn auto_choice_matches_the_documented_policy() {
        let small = CylCtx::new(16, 3);
        assert!(small.dense_feasible());
        assert_eq!(
            choose(&small, BackendMode::Auto, ChoiceHints::default()),
            BackendKind::Dense
        );
        let huge = CylCtx::new(1 << 20, 4);
        assert!(!huge.dense_feasible());
        assert_eq!(
            choose(&huge, BackendMode::Auto, ChoiceHints::default()),
            BackendKind::Sparse
        );
        assert_eq!(
            choose(
                &huge,
                BackendMode::Auto,
                ChoiceHints {
                    needs_complement: true
                }
            ),
            BackendKind::Bdd
        );
        // Forced modes ignore both feasibility and hints.
        assert_eq!(
            choose(&huge, BackendMode::Bdd, ChoiceHints::default()),
            BackendKind::Bdd
        );
        assert_eq!(
            choose(&small, BackendMode::Sparse, ChoiceHints::default()),
            BackendKind::Sparse
        );
    }
}
