//! The cylindrical-relation interface used by the bounded-variable
//! evaluator.
//!
//! The proof of Proposition 3.1 evaluates an `FO^k` query bottom-up, with
//! every subformula denoting a relation over *all* of `x₁,…,x_k` — a
//! "cylinder" in `D^k`. Under that representation:
//!
//! * conjunction, disjunction and negation are intersection, union and
//!   complement in `D^k`;
//! * an existential quantifier `∃xᵢ φ` keeps a point iff *some* point in its
//!   coordinate-`i` fiber satisfies `φ` (project out coordinate `i`, then
//!   cylindrify back);
//! * an atom `R(x_{i₁},…,x_{i_m})` is loaded as the set of points whose
//!   selected coordinates form a tuple of `R`.
//!
//! Every operation maps `D^k → D^k`, so intermediate results never exceed
//! `n^k` — the paper's polynomial bound, made structural. [`CylinderOps`]
//! abstracts the backend so the evaluator can run on a dense bitset
//! ([`DenseCylinder`](crate::dense::DenseCylinder)), a sparse tuple set
//! ([`SparseCylinder`](crate::sparse::SparseCylinder)), or a shared-node
//! BDD ([`BddCylinder`](crate::bdd::BddCylinder)); see
//! [`backend`](crate::backend) for the selection policy. Agreement between
//! the backends is property-tested here and in `bvq-core`.

use std::sync::Arc;

use crate::bdd::BddSpace;
use crate::{Elem, PointIndex, Relation, Tuple};

/// Where a source-point coordinate comes from in a [`CylinderOps::preimage`]
/// operation: a coordinate of the target point, or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordSource {
    /// Copy coordinate `j` of the target point.
    Coord(usize),
    /// Use the constant element.
    Const(Elem),
}

/// Shared context for cylindrical operations: the domain size `n` and the
/// variable bound `k`, plus the point index for dense backends.
#[derive(Clone, Debug)]
pub struct CylCtx {
    n: usize,
    k: usize,
    index: Option<PointIndex>,
    threads: usize,
    bdd: Arc<BddSpace>,
}

impl CylCtx {
    /// Creates a context for width `k` over a domain of size `n`.
    ///
    /// The dense point index is prepared when `n^k` is within
    /// [`PointIndex::MAX_SIZE`]; otherwise only sparse backends can be used.
    /// The context starts sequential (`threads = 1`); see
    /// [`CylCtx::with_threads`].
    pub fn new(n: usize, k: usize) -> Self {
        CylCtx {
            n,
            k,
            index: PointIndex::new(n, k),
            threads: 1,
            bdd: Arc::new(BddSpace::new(n, k)),
        }
    }

    /// Returns the context with the given worker-thread count (clamped to
    /// ≥ 1). Backends use this to select the partitioned construction
    /// paths; `threads = 1` keeps the exact sequential code.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The worker-thread count for cylinder operations.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// Variable bound `k`.
    pub fn width(&self) -> usize {
        self.k
    }

    /// Whether the dense backend is usable (`n^k` small enough).
    pub fn dense_feasible(&self) -> bool {
        self.index.is_some()
    }

    /// The point index.
    ///
    /// # Panics
    /// Panics if `n^k` exceeded the dense budget.
    pub fn index(&self) -> &PointIndex {
        self.index
            .as_ref()
            .expect("dense space too large; use the sparse backend")
    }

    /// The shared symbolic node space for the BDD backend. Created lazily
    /// empty by [`CylCtx::new`]; clones of the context share one store so
    /// cylinders built anywhere in an evaluation hash-cons together.
    pub fn bdd(&self) -> &Arc<BddSpace> {
        &self.bdd
    }
}

/// Operations on subsets of `D^k` needed by the `FO^k` evaluator.
///
/// Implementations must satisfy the Boolean-algebra laws and the
/// quantifier law `exists(i)` = "union over the coordinate-`i` fibers";
/// these are checked by property tests against a model implementation.
pub trait CylinderOps: Sized + Clone + PartialEq {
    /// Whether [`CylinderOps::preimage_table`] is implemented: backends
    /// with positional storage (the dense bitset) gather through a
    /// precomputed index table much faster than recomputing the
    /// coordinate arithmetic of [`CylinderOps::preimage`] per point.
    /// Callers must not build tables when this is `false`.
    const TABLE_GATHER: bool = false;

    /// The empty subset of `D^k`.
    fn empty(ctx: &CylCtx) -> Self;

    /// All of `D^k`.
    fn full(ctx: &CylCtx) -> Self;

    /// Loads a database atom: the set of points `ā ∈ D^k` such that
    /// `(ā[vars[0]], …, ā[vars[m-1]]) ∈ rel`, where `m = rel.arity()`.
    ///
    /// `vars[j]` is the index (0-based) of the variable in position `j` of
    /// the atom; variables may repeat, which realises the equality-pattern
    /// selections discussed in Lemma 3.6.
    fn from_atom(ctx: &CylCtx, rel: &Relation, vars: &[usize]) -> Self;

    /// The diagonal `xᵢ = xⱼ`.
    fn equality(ctx: &CylCtx, i: usize, j: usize) -> Self;

    /// The hyperplane `xᵢ = c` for a constant `c`.
    fn const_eq(ctx: &CylCtx, i: usize, c: Elem) -> Self;

    /// In-place intersection (conjunction).
    fn and_with(&mut self, ctx: &CylCtx, other: &Self);

    /// In-place union (disjunction).
    fn or_with(&mut self, ctx: &CylCtx, other: &Self);

    /// In-place complement (negation).
    fn not(&mut self, ctx: &CylCtx);

    /// Fused in-place set difference: `self ← self ∖ other`, i.e. the
    /// conjunction `self ∧ ¬other` without materialising the complement.
    ///
    /// The bytecode compiler emits this for the ubiquitous `φ ∧ ¬ψ` shape;
    /// backends override it with a one-pass kernel (word-parallel
    /// `AND NOT` on the dense bitset, a retain on the sparse tuple set).
    /// The default is the unfused two-pass definition, which overrides
    /// must agree with.
    fn and_not_with(&mut self, ctx: &CylCtx, other: &Self) {
        let mut complement = other.clone();
        complement.not(ctx);
        self.and_with(ctx, &complement);
    }

    /// Existential quantification over coordinate `i`: the result contains
    /// `ā` iff `ā[i := b]` is in `self` for some `b ∈ D`.
    #[must_use]
    fn exists(&self, ctx: &CylCtx, i: usize) -> Self;

    /// Substitution: the set `{ā ∈ D^k : σ(ā) ∈ self}` where
    /// `σ(ā)[i] = ā[j]` when `map[i] = Coord(j)` and `σ(ā)[i] = c` when
    /// `map[i] = Const(c)` (`map.len() == k`).
    ///
    /// This is how atoms over fixpoint relation variables and fixpoint
    /// applications are loaded: the recursion variable's current value is a
    /// cylinder, and `S(t₁,…,t_m)` holds at `ā` iff the point obtained by
    /// rewriting the bound coordinates to the argument terms lies in it.
    /// An out-of-domain constant yields the empty set.
    #[must_use]
    fn preimage(&self, ctx: &CylCtx, map: &[CoordSource]) -> Self;

    /// [`CylinderOps::preimage`] through a precomputed target→source
    /// table (see [`preimage_table`]): point `t` of the result is set
    /// iff point `table[t]` of `self` is. Only called when
    /// [`CylinderOps::TABLE_GATHER`] is `true`; the default panics.
    #[must_use]
    fn preimage_with_table(&self, ctx: &CylCtx, table: &[u32]) -> Self {
        let _ = (ctx, table);
        unreachable!("preimage_with_table called on a backend without TABLE_GATHER")
    }

    /// Membership of a full `k`-tuple.
    fn contains(&self, ctx: &CylCtx, point: &[Elem]) -> bool;

    /// Number of points in the set.
    fn count(&self, ctx: &CylCtx) -> usize;

    /// Whether the set is empty.
    fn is_empty(&self, ctx: &CylCtx) -> bool {
        self.count(ctx) == 0
    }

    /// Whether `self ⊆ other`.
    fn is_subset(&self, ctx: &CylCtx, other: &Self) -> bool;

    /// Converts to a sparse [`Relation`] over the chosen coordinates
    /// (deduplicating as projection does).
    fn to_relation(&self, ctx: &CylCtx, coords: &[usize]) -> Relation;

    /// Builds a cylinder from an `m`-ary relation placed on coordinates
    /// `coords` (distinct), cylindrical in the remaining coordinates.
    /// This is `from_atom` restricted to distinct variables; provided as a
    /// default in terms of `from_atom`.
    fn from_relation(ctx: &CylCtx, rel: &Relation, coords: &[usize]) -> Self {
        Self::from_atom(ctx, rel, coords)
    }

    /// Universal quantification over coordinate `i`, derived as ¬∃¬.
    #[must_use]
    fn forall(&self, ctx: &CylCtx, i: usize) -> Self {
        let mut inner = self.clone();
        inner.not(ctx);
        let mut ex = inner.exists(ctx, i);
        ex.not(ctx);
        ex
    }

    /// Iterates the points of the set as full `k`-tuples (sorted order not
    /// required). Default goes through `to_relation`.
    fn points(&self, ctx: &CylCtx) -> Vec<Tuple> {
        let coords: Vec<usize> = (0..ctx.width()).collect();
        self.to_relation(ctx, &coords).iter().cloned().collect()
    }

    /// Estimated heap footprint of this cylinder's representation, in
    /// bytes. Backends override with their actual storage cost (bitset
    /// words, tuple-set entries, reachable BDD nodes); the default counts
    /// one tuple per point, matching the sparse layout.
    fn size_bytes(&self, ctx: &CylCtx) -> usize {
        self.count(ctx) * (ctx.width() * std::mem::size_of::<Elem>() + 32)
    }
}

/// Precomputes the target→source index table that realizes
/// [`CylinderOps::preimage`] for `map` as a plain gather: entry `t` is
/// the rank of `σ(t̄)`, so point `t` of the preimage is set iff entry
/// `table[t]` of the source is. Loop drivers build the table once and
/// reuse it every round via [`CylinderOps::preimage_with_table`],
/// replacing the per-point coordinate arithmetic with one lookup.
///
/// Returns `None` when the map mentions an out-of-domain constant (the
/// preimage is empty; callers fall back to the plain method). The table
/// has `n^k` entries — only build it for dense-feasible contexts.
pub fn preimage_table(ctx: &CylCtx, map: &[CoordSource]) -> Option<Vec<u32>> {
    let ix = ctx.index();
    let k = ctx.width();
    assert_eq!(map.len(), k, "preimage map must cover all {k} coordinates");
    for m in map {
        if let CoordSource::Const(c) = m {
            if *c as usize >= ctx.domain_size() {
                return None;
            }
        }
    }
    let mut table = Vec::with_capacity(ix.size());
    for target in 0..ix.size() {
        let mut source = 0usize;
        for (i, m) in map.iter().enumerate() {
            let digit = match m {
                CoordSource::Coord(j) => ix.digit(target, *j),
                CoordSource::Const(c) => *c,
            };
            source += digit as usize * ix.stride(i);
        }
        table.push(source as u32);
    }
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_reports_feasibility() {
        let small = CylCtx::new(10, 3);
        assert!(small.dense_feasible());
        let huge = CylCtx::new(1 << 20, 4);
        assert!(!huge.dense_feasible());
        assert_eq!(huge.width(), 4);
        assert_eq!(huge.domain_size(), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn index_panics_when_infeasible() {
        let huge = CylCtx::new(1 << 20, 4);
        let _ = huge.index();
    }
}
