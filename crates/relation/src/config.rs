//! Evaluation configuration: the thread-count knob shared by every layer
//! of the engine (relational kernels, cylinder backends, Datalog rounds),
//! plus an optional per-evaluation deadline.

use std::time::Instant;

/// Configuration for parallel evaluation.
///
/// `threads = 1` selects the exact sequential code paths that predate the
/// parallel engine; higher values enable the partitioned kernels. Results
/// are tuple-for-tuple identical for every thread count — all kernels
/// produce *sets*, and partitioned workers only ever merge disjoint or
/// idempotent contributions (see DESIGN.md, "Parallel evaluation").
///
/// An optional [`deadline`](EvalConfig::with_deadline) bounds wall-clock
/// time: fixpoint engines (FP/IFP/PFP Kleene rounds, Datalog rounds) check
/// it *between* rounds and abort cleanly with a deadline error, so a
/// partially-computed fixpoint is never observable. The check is
/// cooperative and between-rounds by design — a single round is at most
/// one pass over an `n^k`-bounded cylinder, which is exactly the paper's
/// guarantee that per-round work stays polynomially small.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    threads: usize,
    deadline: Option<Instant>,
    trace: bool,
}

impl EvalConfig {
    /// A config using exactly `threads` workers (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        EvalConfig {
            threads: threads.max(1),
            deadline: None,
            trace: false,
        }
    }

    /// The sequential configuration (`threads = 1`): bit-for-bit the
    /// pre-parallel evaluation paths.
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// Returns this config with an absolute wall-clock deadline attached.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the attached deadline (if any) has already passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Returns this config with span tracing enabled or disabled.
    /// Tracing records one [`Span`](crate::Span) per operator
    /// application; the default (off) keeps evaluation overhead-free.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Whether span tracing is enabled.
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// Reads the configuration from the environment: `BVQ_THREADS` if set
    /// (and parseable), otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("BVQ_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self::with_threads(threads)
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the sequential paths are selected.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }
}

impl Default for EvalConfig {
    /// Defaults to [`EvalConfig::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(EvalConfig::with_threads(0).threads(), 1);
        assert!(EvalConfig::with_threads(0).is_sequential());
    }

    #[test]
    fn sequential_is_one() {
        assert_eq!(EvalConfig::sequential().threads(), 1);
    }

    #[test]
    fn from_env_is_positive() {
        assert!(EvalConfig::from_env().threads() >= 1);
    }

    #[test]
    fn trace_defaults_off_and_toggles() {
        assert!(!EvalConfig::sequential().trace());
        assert!(!EvalConfig::from_env().trace());
        let cfg = EvalConfig::with_threads(2).with_trace(true);
        assert!(cfg.trace());
        assert!(!cfg.with_trace(false).trace());
    }

    #[test]
    fn deadline_attaches_and_expires() {
        let cfg = EvalConfig::sequential();
        assert!(cfg.deadline().is_none());
        assert!(!cfg.deadline_exceeded());
        let past = cfg.with_deadline(
            Instant::now()
                .checked_sub(std::time::Duration::from_millis(1))
                .unwrap_or_else(Instant::now),
        );
        assert!(past.deadline_exceeded());
        let future = cfg.with_deadline(Instant::now() + std::time::Duration::from_secs(3600));
        assert!(!future.deadline_exceeded());
        assert!(future.deadline().is_some());
    }
}
