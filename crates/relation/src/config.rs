//! Evaluation configuration: the thread-count knob shared by every layer
//! of the engine (relational kernels, cylinder backends, Datalog rounds).

/// Configuration for parallel evaluation.
///
/// `threads = 1` selects the exact sequential code paths that predate the
/// parallel engine; higher values enable the partitioned kernels. Results
/// are tuple-for-tuple identical for every thread count — all kernels
/// produce *sets*, and partitioned workers only ever merge disjoint or
/// idempotent contributions (see DESIGN.md, "Parallel evaluation").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    threads: usize,
}

impl EvalConfig {
    /// A config using exactly `threads` workers (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        EvalConfig {
            threads: threads.max(1),
        }
    }

    /// The sequential configuration (`threads = 1`): bit-for-bit the
    /// pre-parallel evaluation paths.
    pub fn sequential() -> Self {
        EvalConfig { threads: 1 }
    }

    /// Reads the configuration from the environment: `BVQ_THREADS` if set
    /// (and parseable), otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("BVQ_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self::with_threads(threads)
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the sequential paths are selected.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }
}

impl Default for EvalConfig {
    /// Defaults to [`EvalConfig::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clamps_to_one() {
        assert_eq!(EvalConfig::with_threads(0).threads(), 1);
        assert!(EvalConfig::with_threads(0).is_sequential());
    }

    #[test]
    fn sequential_is_one() {
        assert_eq!(EvalConfig::sequential().threads(), 1);
    }

    #[test]
    fn from_env_is_positive() {
        assert!(EvalConfig::from_env().threads() >= 1);
    }
}
