//! Partitioned parallel kernels for the hot relational operators.
//!
//! The paper's bound is what makes this easy: every intermediate relation
//! in bounded-variable evaluation is a subset of `D^k`, so the hot
//! operators (join, projection, union, difference, semijoin) are
//! data-parallel over tuple partitions. Each kernel splits the probe side
//! into per-thread chunks evaluated under [`std::thread::scope`], then
//! merges per-thread result buffers into one hash set.
//!
//! **Determinism.** Results are sets ([`Relation`] is backed by a hash
//! set), every worker computes a pure function of its chunk, and set
//! insertion is idempotent and commutative — so the merged result contains
//! exactly the tuples the sequential operator produces, regardless of
//! thread count or merge order. The differential tests in
//! `tests/parallel_kernels.rs` and `bvq-core` enforce tuple-for-tuple
//! equality against the sequential paths.
//!
//! With `threads = 1` (or inputs below [`PAR_THRESHOLD`]) every kernel
//! delegates to the corresponding sequential [`Relation`] method, so the
//! sequential path is exactly the pre-parallel code.

use std::ops::Range;

use crate::config::EvalConfig;
use crate::hasher::{FxHashMap, FxHashSet};
use crate::{Relation, Tuple};

/// Inputs smaller than this run sequentially: below a few thousand tuples
/// the cost of spawning scoped threads exceeds the work being split.
pub const PAR_THRESHOLD: usize = 4096;

/// Splits `0..len` into at most `parts` non-empty contiguous ranges of
/// near-equal size.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `f` over the chunks of `0..len` on up to `threads` scoped workers
/// and returns the per-chunk results in chunk order.
///
/// With one chunk (or `threads <= 1`) `f` runs on the calling thread.
pub fn map_chunks<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(move || f(r))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel kernel worker panicked"))
            .collect()
    })
}

/// Collects per-thread tuple buffers into a relation of the given arity.
fn merge(arity: usize, buffers: Vec<Vec<Tuple>>) -> Relation {
    let mut r = Relation::new(arity);
    for buf in buffers {
        for t in buf {
            r.insert(t);
        }
    }
    r
}

fn use_sequential(cfg: &EvalConfig, probe_len: usize) -> bool {
    cfg.threads() <= 1 || probe_len < PAR_THRESHOLD
}

/// Parallel equi-join (see [`Relation::join_on`]): builds the hash table on
/// the right side once, then probes left-side chunks concurrently.
pub fn join_on(
    left: &Relation,
    right: &Relation,
    pairs: &[(usize, usize)],
    cfg: &EvalConfig,
) -> Relation {
    if use_sequential(cfg, left.len()) || pairs.is_empty() {
        return left.join_on(right, pairs);
    }
    let left_keys: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let right_keys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let mut table: FxHashMap<Tuple, Vec<&Tuple>> = FxHashMap::default();
    for t in right.iter() {
        table.entry(t.select(&right_keys)).or_default().push(t);
    }
    let probe: Vec<&Tuple> = left.iter().collect();
    let buffers = map_chunks(cfg.threads(), probe.len(), |range| {
        let mut out = Vec::new();
        for a in &probe[range] {
            if let Some(matches) = table.get(&a.select(&left_keys)) {
                for b in matches {
                    out.push(a.concat(b));
                }
            }
        }
        out
    });
    merge(left.arity() + right.arity(), buffers)
}

/// Parallel generalised projection (see [`Relation::project`]): workers map
/// chunks through the column selection; deduplication happens in the merge.
pub fn project(rel: &Relation, positions: &[usize], cfg: &EvalConfig) -> Relation {
    if use_sequential(cfg, rel.len()) {
        return rel.project(positions);
    }
    for &p in positions {
        assert!(
            p < rel.arity(),
            "projection position {p} out of arity {}",
            rel.arity()
        );
    }
    let input: Vec<&Tuple> = rel.iter().collect();
    let buffers = map_chunks(cfg.threads(), input.len(), |range| {
        input[range]
            .iter()
            .map(|t| t.select(positions))
            .collect::<Vec<_>>()
    });
    merge(positions.len(), buffers)
}

/// Parallel union (see [`Relation::union`]): workers filter the smaller
/// side down to the tuples absent from the larger, which are then inserted
/// into a clone of the larger side.
pub fn union(a: &Relation, b: &Relation, cfg: &EvalConfig) -> Relation {
    assert_eq!(a.arity(), b.arity(), "union arity mismatch");
    let (big, small) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    if use_sequential(cfg, small.len()) {
        return a.union(b);
    }
    let probe: Vec<&Tuple> = small.iter().collect();
    let buffers = map_chunks(cfg.threads(), probe.len(), |range| {
        probe[range]
            .iter()
            .filter(|t| !big.contains(t.as_slice()))
            .map(|t| (*t).clone())
            .collect::<Vec<_>>()
    });
    let mut r = big.clone();
    for buf in buffers {
        for t in buf {
            r.insert(t);
        }
    }
    r
}

/// Parallel difference `a \ b` (see [`Relation::difference`]): workers
/// probe `b` membership over chunks of `a`.
pub fn difference(a: &Relation, b: &Relation, cfg: &EvalConfig) -> Relation {
    assert_eq!(a.arity(), b.arity(), "difference arity mismatch");
    if use_sequential(cfg, a.len()) {
        return a.difference(b);
    }
    let probe: Vec<&Tuple> = a.iter().collect();
    let buffers = map_chunks(cfg.threads(), probe.len(), |range| {
        probe[range]
            .iter()
            .filter(|t| !b.contains(t.as_slice()))
            .map(|t| (*t).clone())
            .collect::<Vec<_>>()
    });
    merge(a.arity(), buffers)
}

/// Parallel semijoin (see [`Relation::semijoin`]).
pub fn semijoin(
    left: &Relation,
    right: &Relation,
    pairs: &[(usize, usize)],
    cfg: &EvalConfig,
) -> Relation {
    if use_sequential(cfg, left.len()) {
        return left.semijoin(right, pairs);
    }
    let left_keys: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let right_keys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let keys: FxHashSet<Tuple> = right.iter().map(|t| t.select(&right_keys)).collect();
    let probe: Vec<&Tuple> = left.iter().collect();
    let buffers = map_chunks(cfg.threads(), probe.len(), |range| {
        probe[range]
            .iter()
            .filter(|t| keys.contains(&t.select(&left_keys)))
            .map(|t| (*t).clone())
            .collect::<Vec<_>>()
    });
    merge(left.arity(), buffers)
}

/// Parallel antijoin (see [`Relation::antijoin`]).
pub fn antijoin(
    left: &Relation,
    right: &Relation,
    pairs: &[(usize, usize)],
    cfg: &EvalConfig,
) -> Relation {
    if use_sequential(cfg, left.len()) {
        return left.antijoin(right, pairs);
    }
    let left_keys: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let right_keys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let keys: FxHashSet<Tuple> = right.iter().map(|t| t.select(&right_keys)).collect();
    let probe: Vec<&Tuple> = left.iter().collect();
    let buffers = map_chunks(cfg.threads(), probe.len(), |range| {
        probe[range]
            .iter()
            .filter(|t| !keys.contains(&t.select(&left_keys)))
            .map(|t| (*t).clone())
            .collect::<Vec<_>>()
    });
    merge(left.arity(), buffers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 7, 100, 4097] {
            for parts in [1usize, 2, 4, 7] {
                let ranges = chunk_ranges(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len, "len {len} parts {parts}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn map_chunks_orders_results() {
        let got = map_chunks(4, 100, |r| r.start);
        assert_eq!(got, vec![0, 25, 50, 75]);
        let one = map_chunks(1, 100, |r| r.len());
        assert_eq!(one, vec![100]);
        let empty: Vec<usize> = map_chunks(4, 0, |r| r.len());
        assert!(empty.is_empty());
    }
}
