//! Dense cylinder backend: a bitset over the ranked space `D^k`.
//!
//! When `n^k` fits in memory this is by far the fastest backend: the
//! Boolean connectives are word-parallel, and `∃xᵢ` is two linear passes
//! (collapse the coordinate-`i` fiber, then re-broadcast), i.e. `O(n^k)`
//! regardless of how full the set is.
//!
//! When the context carries `threads > 1` (see [`CylCtx::with_threads`]),
//! the point-loop constructions (`equality`, `const_eq`, `preimage`,
//! `exists`, `from_atom`) run partitioned over word-aligned chunks of the
//! ranked space via [`BitSet::from_fn`] — no two workers touch the same
//! word, so the result is bit-for-bit the sequential one. The Boolean
//! connectives stay sequential: they are already single word ops per 64
//! points and memory-bound.

use crate::bitset::BitSet;
use crate::cylinder::{CoordSource, CylCtx, CylinderOps};
use crate::parallel::map_chunks;
use crate::{Elem, Relation, Tuple};

/// Below this many points the partitioned dense constructions fall back to
/// the sequential loops (thread spawn would dominate).
const DENSE_PAR_POINTS: usize = 1 << 14;

/// Below this many atom tuples `from_atom` stays sequential.
const DENSE_PAR_TUPLES: usize = 1024;

/// A subset of `D^k` stored as a bitset of size `n^k`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenseCylinder {
    bits: BitSet,
}

impl DenseCylinder {
    /// Direct access to the underlying bitset.
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }
}

impl CylinderOps for DenseCylinder {
    const TABLE_GATHER: bool = true;

    fn empty(ctx: &CylCtx) -> Self {
        DenseCylinder {
            bits: BitSet::new(ctx.index().size()),
        }
    }

    fn full(ctx: &CylCtx) -> Self {
        DenseCylinder {
            bits: BitSet::full(ctx.index().size()),
        }
    }

    fn from_atom(ctx: &CylCtx, rel: &Relation, vars: &[usize]) -> Self {
        assert_eq!(
            rel.arity(),
            vars.len(),
            "atom variable count ≠ relation arity"
        );
        let ix = ctx.index();
        let k = ctx.width();
        let n = ctx.domain_size();
        // Coordinates not mentioned by the atom are cylindrical: enumerate
        // the matching tuples and broadcast over the free coordinates.
        let mentioned: Vec<bool> = {
            let mut m = vec![false; k];
            for &v in vars {
                assert!(v < k, "atom variable index {v} out of width {k}");
                m[v] = true;
            }
            m
        };
        let free: Vec<usize> = (0..k).filter(|&i| !mentioned[i]).collect();
        let add_tuple = |bits: &mut BitSet, t: &Tuple| {
            // Check internal consistency for repeated variables, and build
            // the partial point.
            let mut point = vec![0 as Elem; k];
            let mut assigned = vec![false; k];
            for (j, &v) in vars.iter().enumerate() {
                if t[j] as usize >= n {
                    return; // tuple outside the domain
                }
                if assigned[v] && point[v] != t[j] {
                    return;
                }
                point[v] = t[j];
                assigned[v] = true;
            }
            // Broadcast over free coordinates with an odometer.
            let mut digits = vec![0usize; free.len()];
            loop {
                for (d, &c) in digits.iter().zip(&free) {
                    point[c] = *d as Elem;
                }
                bits.insert(ix.rank(&point));
                let mut i = free.len();
                loop {
                    if i == 0 {
                        // Done with this tuple.
                        break;
                    }
                    i -= 1;
                    digits[i] += 1;
                    if digits[i] < n {
                        break;
                    }
                    digits[i] = 0;
                }
                if free.is_empty() || digits.iter().all(|&d| d == 0) {
                    break;
                }
            }
        };
        if ctx.threads() > 1 && rel.len() >= DENSE_PAR_TUPLES {
            // Partition the atom's tuples; workers fill private bitsets
            // that are OR-merged (idempotent, so order is irrelevant).
            let tuples: Vec<&Tuple> = rel.iter().collect();
            let locals = map_chunks(ctx.threads(), tuples.len(), |range| {
                let mut bits = BitSet::new(ix.size());
                for t in &tuples[range] {
                    add_tuple(&mut bits, t);
                }
                bits
            });
            let mut out = Self::empty(ctx);
            for local in locals {
                out.bits.union_with(&local);
            }
            out
        } else {
            let mut out = Self::empty(ctx);
            for t in rel.iter() {
                add_tuple(&mut out.bits, t);
            }
            out
        }
    }

    fn equality(ctx: &CylCtx, i: usize, j: usize) -> Self {
        let ix = ctx.index();
        if i == j {
            return Self::full(ctx);
        }
        if ctx.threads() > 1 && ix.size() >= DENSE_PAR_POINTS {
            let bits = BitSet::from_fn(ix.size(), ctx.threads(), |idx| {
                ix.digit(idx, i) == ix.digit(idx, j)
            });
            return DenseCylinder { bits };
        }
        let mut out = Self::empty(ctx);
        for idx in 0..ix.size() {
            if ix.digit(idx, i) == ix.digit(idx, j) {
                out.bits.insert(idx);
            }
        }
        out
    }

    fn const_eq(ctx: &CylCtx, i: usize, c: Elem) -> Self {
        let ix = ctx.index();
        if (c as usize) >= ctx.domain_size() {
            return Self::empty(ctx);
        }
        if ctx.threads() > 1 && ix.size() >= DENSE_PAR_POINTS {
            let bits = BitSet::from_fn(ix.size(), ctx.threads(), |idx| ix.digit(idx, i) == c);
            return DenseCylinder { bits };
        }
        let mut out = Self::empty(ctx);
        for idx in 0..ix.size() {
            if ix.digit(idx, i) == c {
                out.bits.insert(idx);
            }
        }
        out
    }

    fn and_with(&mut self, _ctx: &CylCtx, other: &Self) {
        self.bits.intersect_with(&other.bits);
    }

    fn or_with(&mut self, _ctx: &CylCtx, other: &Self) {
        self.bits.union_with(&other.bits);
    }

    fn not(&mut self, _ctx: &CylCtx) {
        self.bits.complement();
    }

    fn and_not_with(&mut self, _ctx: &CylCtx, other: &Self) {
        self.bits.difference_with(&other.bits);
    }

    fn exists(&self, ctx: &CylCtx, i: usize) -> Self {
        let ix = ctx.index();
        let n = ctx.domain_size();
        let collapsed_size = ix.size().checked_div(n).unwrap_or(0);
        if ctx.threads() > 1 && ix.size() >= DENSE_PAR_POINTS && n > 0 {
            // Pass 1 (partitioned over the collapsed space): a fiber is
            // kept iff some point of it is set.
            let collapsed = BitSet::from_fn(collapsed_size, ctx.threads(), |c| {
                (0..n).any(|b| self.bits.contains(ix.expand(c, i, b as Elem)))
            });
            // Pass 2 (partitioned over the full space): broadcast back.
            let bits = BitSet::from_fn(ix.size(), ctx.threads(), |idx| {
                collapsed.contains(ix.collapse(idx, i))
            });
            return DenseCylinder { bits };
        }
        // Pass 1: collapse coordinate i.
        let mut collapsed = BitSet::new(collapsed_size);
        for idx in self.bits.iter() {
            collapsed.insert(ix.collapse(idx, i));
        }
        // Pass 2: broadcast back over coordinate i.
        let mut out = Self::empty(ctx);
        for c in collapsed.iter() {
            for b in 0..n {
                out.bits.insert(ix.expand(c, i, b as Elem));
            }
        }
        out
    }

    fn preimage(&self, ctx: &CylCtx, map: &[CoordSource]) -> Self {
        let ix = ctx.index();
        let k = ctx.width();
        let n = ctx.domain_size();
        assert_eq!(map.len(), k, "preimage map must cover all {k} coordinates");
        // Reject out-of-domain constants up front.
        for m in map {
            if let CoordSource::Const(c) = m {
                if *c as usize >= n {
                    return Self::empty(ctx);
                }
            }
        }
        let source_of = |target: usize| {
            let mut source = 0usize;
            for (i, m) in map.iter().enumerate() {
                let digit = match m {
                    CoordSource::Coord(j) => ix.digit(target, *j),
                    CoordSource::Const(c) => *c,
                };
                source += digit as usize * ix.stride(i);
            }
            source
        };
        if ctx.threads() > 1 && ix.size() >= DENSE_PAR_POINTS {
            let bits = BitSet::from_fn(ix.size(), ctx.threads(), |target| {
                self.bits.contains(source_of(target))
            });
            return DenseCylinder { bits };
        }
        let mut out = Self::empty(ctx);
        for target in 0..ix.size() {
            if self.bits.contains(source_of(target)) {
                out.bits.insert(target);
            }
        }
        out
    }

    fn preimage_with_table(&self, ctx: &CylCtx, table: &[u32]) -> Self {
        if ctx.threads() > 1 && table.len() >= DENSE_PAR_POINTS {
            let bits = BitSet::from_fn(table.len(), ctx.threads(), |target| {
                self.bits.contains(table[target] as usize)
            });
            return DenseCylinder { bits };
        }
        let mut out = Self::empty(ctx);
        for (target, &source) in table.iter().enumerate() {
            if self.bits.contains(source as usize) {
                out.bits.insert(target);
            }
        }
        out
    }

    fn contains(&self, ctx: &CylCtx, point: &[Elem]) -> bool {
        self.bits.contains(ctx.index().rank(point))
    }

    fn count(&self, _ctx: &CylCtx) -> usize {
        self.bits.count()
    }

    fn is_empty(&self, _ctx: &CylCtx) -> bool {
        self.bits.is_empty()
    }

    fn is_subset(&self, _ctx: &CylCtx, other: &Self) -> bool {
        self.bits.is_subset(&other.bits)
    }

    fn to_relation(&self, ctx: &CylCtx, coords: &[usize]) -> Relation {
        let ix = ctx.index();
        let mut r = Relation::new(coords.len());
        for idx in self.bits.iter() {
            r.insert(Tuple::from_fn(coords.len(), |j| ix.digit(idx, coords[j])));
        }
        r
    }

    fn size_bytes(&self, _ctx: &CylCtx) -> usize {
        // The bitset always holds n^k bits regardless of cardinality.
        self.bits.capacity().div_ceil(64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CylCtx {
        CylCtx::new(3, 2)
    }

    #[test]
    fn empty_and_full() {
        let c = ctx();
        assert_eq!(DenseCylinder::empty(&c).count(&c), 0);
        assert_eq!(DenseCylinder::full(&c).count(&c), 9);
    }

    #[test]
    fn and_not_matches_unfused_definition() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[0u32, 1], [1, 2], [2, 2]]);
        let r = Relation::from_tuples(2, [[1u32, 2], [0, 0]]);
        let a = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        let b = DenseCylinder::from_atom(&c, &r, &[0, 1]);
        // Fused kernel.
        let mut fused = a.clone();
        fused.and_not_with(&c, &b);
        // Unfused a ∧ ¬b.
        let mut neg = b.clone();
        neg.not(&c);
        let mut plain = a.clone();
        plain.and_with(&c, &neg);
        assert_eq!(fused, plain);
        assert!(fused.contains(&c, &[0, 1]));
        assert!(!fused.contains(&c, &[1, 2]));
    }

    #[test]
    fn atom_load_distinct_vars() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[0u32, 1], [1, 2]]);
        // E(x0, x1): exactly the relation itself.
        let cyl = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        assert_eq!(cyl.count(&c), 2);
        assert!(cyl.contains(&c, &[0, 1]));
        assert!(!cyl.contains(&c, &[1, 0]));
        // E(x1, x0): transposed.
        let t = DenseCylinder::from_atom(&c, &e, &[1, 0]);
        assert!(t.contains(&c, &[1, 0]));
        assert!(!t.contains(&c, &[0, 1]));
    }

    #[test]
    fn atom_load_repeated_vars_select_diagonal() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[0u32, 0], [1, 2]]);
        // E(x0, x0): only tuples with equal components survive; cylindrical in x1.
        let cyl = DenseCylinder::from_atom(&c, &e, &[0, 0]);
        assert_eq!(cyl.count(&c), 3); // (0,*) for * in 0..3
        assert!(cyl.contains(&c, &[0, 2]));
        assert!(!cyl.contains(&c, &[1, 0]));
    }

    #[test]
    fn atom_load_unary_is_cylindrical() {
        let c = ctx();
        let p = Relation::from_tuples(1, [[2u32]]);
        let cyl = DenseCylinder::from_atom(&c, &p, &[1]);
        assert_eq!(cyl.count(&c), 3);
        assert!(cyl.contains(&c, &[0, 2]));
        assert!(cyl.contains(&c, &[2, 2]));
        assert!(!cyl.contains(&c, &[2, 0]));
    }

    #[test]
    fn atom_ignores_out_of_domain_tuples() {
        let c = ctx();
        let p = Relation::from_tuples(1, [[7u32]]);
        let cyl = DenseCylinder::from_atom(&c, &p, &[0]);
        assert_eq!(cyl.count(&c), 0);
    }

    #[test]
    fn equality_diagonal() {
        let c = ctx();
        let d = DenseCylinder::equality(&c, 0, 1);
        assert_eq!(d.count(&c), 3);
        assert!(d.contains(&c, &[2, 2]));
        let refl = DenseCylinder::equality(&c, 1, 1);
        assert_eq!(refl.count(&c), 9);
    }

    #[test]
    fn const_eq_hyperplane() {
        let c = ctx();
        let h = DenseCylinder::const_eq(&c, 0, 1);
        assert_eq!(h.count(&c), 3);
        assert!(h.contains(&c, &[1, 0]));
        let out = DenseCylinder::const_eq(&c, 0, 99);
        assert_eq!(out.count(&c), 0);
    }

    #[test]
    fn exists_projects_fibers() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[0u32, 1]]);
        let cyl = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        // ∃x1 E(x0,x1): true iff x0 = 0, any x1.
        let ex = cyl.exists(&c, 1);
        assert_eq!(ex.count(&c), 3);
        assert!(ex.contains(&c, &[0, 0]));
        assert!(ex.contains(&c, &[0, 2]));
        assert!(!ex.contains(&c, &[1, 0]));
    }

    #[test]
    fn forall_dual() {
        let c = ctx();
        // ∀x1 (x0 = x1) holds for no x0 when n > 1.
        let d = DenseCylinder::equality(&c, 0, 1);
        assert_eq!(d.forall(&c, 1).count(&c), 0);
        // ∀x1 true = true.
        assert_eq!(DenseCylinder::full(&c).forall(&c, 1).count(&c), 9);
    }

    #[test]
    fn preimage_identity_and_swap() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[0u32, 1], [2, 0]]);
        let cyl = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        // Identity map.
        let id = cyl.preimage(&c, &[CoordSource::Coord(0), CoordSource::Coord(1)]);
        assert!(id == cyl);
        // Swap coordinates: membership of (a,b) iff (b,a) ∈ E.
        let sw = cyl.preimage(&c, &[CoordSource::Coord(1), CoordSource::Coord(0)]);
        assert!(sw.contains(&c, &[1, 0]));
        assert!(sw.contains(&c, &[0, 2]));
        assert!(!sw.contains(&c, &[0, 1]));
    }

    #[test]
    fn preimage_with_constants() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[0u32, 1], [2, 0]]);
        let cyl = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        // b̄ = (0, ā[1]): membership iff (0, x1) ∈ E, cylindrical in x0.
        let pin = cyl.preimage(&c, &[CoordSource::Const(0), CoordSource::Coord(1)]);
        assert_eq!(pin.count(&c), 3); // (·, 1) for all 3 values of x0
        assert!(pin.contains(&c, &[2, 1]));
        assert!(!pin.contains(&c, &[2, 0]));
        // Out-of-domain constant → empty.
        let oob = cyl.preimage(&c, &[CoordSource::Const(9), CoordSource::Coord(1)]);
        assert_eq!(oob.count(&c), 0);
    }

    #[test]
    fn preimage_table_gather_agrees() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[0u32, 1], [2, 0], [1, 1]]);
        let cyl = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        for map in [
            vec![CoordSource::Coord(0), CoordSource::Coord(1)],
            vec![CoordSource::Coord(1), CoordSource::Coord(0)],
            vec![CoordSource::Coord(0), CoordSource::Coord(0)],
            vec![CoordSource::Const(2), CoordSource::Coord(1)],
        ] {
            let table = crate::cylinder::preimage_table(&c, &map).expect("in-domain map");
            assert!(cyl.preimage_with_table(&c, &table) == cyl.preimage(&c, &map));
        }
        // Out-of-domain constants refuse a table (callers fall back).
        let oob = [CoordSource::Const(9), CoordSource::Coord(1)];
        assert!(crate::cylinder::preimage_table(&c, &oob).is_none());
    }

    #[test]
    fn preimage_duplicate_source() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[1u32, 1], [0, 2]]);
        let cyl = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        // b̄ = (ā[0], ā[0]): membership iff (x0,x0) ∈ E — diagonal test.
        let d = cyl.preimage(&c, &[CoordSource::Coord(0), CoordSource::Coord(0)]);
        assert!(d.contains(&c, &[1, 2]));
        assert!(!d.contains(&c, &[0, 2]));
    }

    #[test]
    fn to_relation_roundtrip() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[0u32, 1], [2, 2]]);
        let cyl = DenseCylinder::from_atom(&c, &e, &[0, 1]);
        let back = cyl.to_relation(&c, &[0, 1]);
        assert_eq!(back.sorted(), e.sorted());
        // Projection onto one coordinate deduplicates.
        let ones = cyl.to_relation(&c, &[0]);
        assert_eq!(ones.len(), 2);
    }
}
