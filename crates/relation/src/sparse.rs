//! Sparse cylinder backend: an explicit set of `k`-tuples.
//!
//! Used when `n^k` is too large to materialise as a bitset, or when the
//! sets involved are known to stay small (e.g. negation-free queries over
//! sparse data). Negation and the cylindrical broadcast of atoms still cost
//! up to `n^k` — that bound is inherent to the representation of Prop 3.1 —
//! but positive connectives cost only the number of tuples present.

//!
//! With `threads > 1` in the context, the full-space scans (`full`,
//! `equality`, `const_eq`, `not`, `preimage`) partition the `n^k` point
//! space by the value of the *first* coordinate, so workers enumerate
//! disjoint slabs and their private hash sets merge without overlap;
//! `from_atom` and `exists` partition the tuple set instead and merge
//! idempotently. Either way the result set is identical to the sequential
//! one for every thread count.

use crate::cylinder::{CoordSource, CylCtx, CylinderOps};
use crate::hasher::FxHashSet;
use crate::parallel::map_chunks;
use crate::{Elem, Relation, Tuple};

/// Below this many points (`n^k`) the full-space scans stay sequential.
const SPARSE_PAR_POINTS: usize = 1 << 14;

/// Below this many stored tuples `from_atom` / `exists` stay sequential.
const SPARSE_PAR_TUPLES: usize = 4096;

/// A subset of `D^k` stored as a hash set of `k`-tuples.
#[derive(Clone, Debug)]
pub struct SparseCylinder {
    tuples: FxHashSet<Tuple>,
}

impl PartialEq for SparseCylinder {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

/// Enumerates all `k`-tuples over a domain of size `n`, calling `f` on each.
fn for_each_point(n: usize, k: usize, mut f: impl FnMut(&[Elem])) {
    let mut t = vec![0 as Elem; k];
    loop {
        f(&t);
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            t[i] += 1;
            if (t[i] as usize) < n {
                break;
            }
            t[i] = 0;
        }
    }
}

/// Enumerates the `k`-tuples (`k ≥ 1`) whose first coordinate lies in
/// `first`, calling `f` on each — one slab of the point space.
fn for_each_point_in(
    n: usize,
    k: usize,
    first: std::ops::Range<usize>,
    mut f: impl FnMut(&[Elem]),
) {
    debug_assert!(k >= 1);
    let mut t = vec![0 as Elem; k];
    for a in first {
        t[0] = a as Elem;
        for c in t[1..].iter_mut() {
            *c = 0;
        }
        loop {
            f(&t);
            let mut i = k;
            let mut done = false;
            loop {
                if i == 1 {
                    done = true;
                    break;
                }
                i -= 1;
                t[i] += 1;
                if (t[i] as usize) < n {
                    break;
                }
                t[i] = 0;
            }
            if done {
                break;
            }
        }
    }
}

/// Partitioned point-space filter: returns `Some(set)` of the points
/// satisfying `pred` when the parallel path applies (`threads > 1`, `k ≥ 1`
/// and at least [`SPARSE_PAR_POINTS`] points), `None` to signal the caller
/// to run the sequential scan. Workers own disjoint first-coordinate slabs,
/// so the merged set is exactly the sequential result.
fn par_filter_points<P>(ctx: &CylCtx, pred: P) -> Option<FxHashSet<Tuple>>
where
    P: Fn(&[Elem]) -> bool + Sync,
{
    let n = ctx.domain_size();
    let k = ctx.width();
    if ctx.threads() <= 1 || k == 0 || n == 0 {
        return None;
    }
    if n.checked_pow(k as u32)
        .is_some_and(|total| total < SPARSE_PAR_POINTS)
    {
        return None;
    }
    let locals = map_chunks(ctx.threads(), n, |first| {
        let mut set = FxHashSet::default();
        for_each_point_in(n, k, first, |t| {
            if pred(t) {
                set.insert(Tuple::from_slice(t));
            }
        });
        set
    });
    let mut out = FxHashSet::default();
    for local in locals {
        out.extend(local);
    }
    Some(out)
}

impl CylinderOps for SparseCylinder {
    fn empty(_ctx: &CylCtx) -> Self {
        SparseCylinder {
            tuples: FxHashSet::default(),
        }
    }

    fn full(ctx: &CylCtx) -> Self {
        if let Some(tuples) = par_filter_points(ctx, |_| true) {
            return SparseCylinder { tuples };
        }
        let mut s = Self::empty(ctx);
        for_each_point(ctx.domain_size(), ctx.width(), |t| {
            s.tuples.insert(Tuple::from_slice(t));
        });
        s
    }

    fn from_atom(ctx: &CylCtx, rel: &Relation, vars: &[usize]) -> Self {
        assert_eq!(
            rel.arity(),
            vars.len(),
            "atom variable count ≠ relation arity"
        );
        let k = ctx.width();
        let n = ctx.domain_size();
        let mut mentioned = vec![false; k];
        for &v in vars {
            assert!(v < k, "atom variable index {v} out of width {k}");
            mentioned[v] = true;
        }
        let free: Vec<usize> = (0..k).filter(|&i| !mentioned[i]).collect();
        let add_tuple = |set: &mut FxHashSet<Tuple>, t: &Tuple| {
            let mut point = vec![0 as Elem; k];
            let mut assigned = vec![false; k];
            for (j, &v) in vars.iter().enumerate() {
                if t[j] as usize >= n || (assigned[v] && point[v] != t[j]) {
                    return;
                }
                point[v] = t[j];
                assigned[v] = true;
            }
            // Broadcast over the free coordinates.
            let mut stack = vec![(0usize, point)];
            while let Some((fi, p)) = stack.pop() {
                if fi == free.len() {
                    set.insert(Tuple::from_slice(&p));
                    continue;
                }
                for b in 0..n {
                    let mut q = p.clone();
                    q[free[fi]] = b as Elem;
                    stack.push((fi + 1, q));
                }
            }
        };
        let mut out = Self::empty(ctx);
        if ctx.threads() > 1 && rel.len() >= SPARSE_PAR_TUPLES {
            let tuples: Vec<&Tuple> = rel.iter().collect();
            let locals = map_chunks(ctx.threads(), tuples.len(), |range| {
                let mut set = FxHashSet::default();
                for t in &tuples[range] {
                    add_tuple(&mut set, t);
                }
                set
            });
            for local in locals {
                out.tuples.extend(local);
            }
        } else {
            for t in rel.iter() {
                add_tuple(&mut out.tuples, t);
            }
        }
        out
    }

    fn equality(ctx: &CylCtx, i: usize, j: usize) -> Self {
        if i == j {
            return Self::full(ctx);
        }
        if let Some(tuples) = par_filter_points(ctx, |t| t[i] == t[j]) {
            return SparseCylinder { tuples };
        }
        let mut out = Self::empty(ctx);
        for_each_point(ctx.domain_size(), ctx.width(), |t| {
            if t[i] == t[j] {
                out.tuples.insert(Tuple::from_slice(t));
            }
        });
        out
    }

    fn const_eq(ctx: &CylCtx, i: usize, c: Elem) -> Self {
        if (c as usize) >= ctx.domain_size() {
            return Self::empty(ctx);
        }
        if let Some(tuples) = par_filter_points(ctx, |t| t[i] == c) {
            return SparseCylinder { tuples };
        }
        let mut out = Self::empty(ctx);
        for_each_point(ctx.domain_size(), ctx.width(), |t| {
            if t[i] == c {
                out.tuples.insert(Tuple::from_slice(t));
            }
        });
        out
    }

    fn and_with(&mut self, _ctx: &CylCtx, other: &Self) {
        self.tuples.retain(|t| other.tuples.contains(t));
    }

    fn and_not_with(&mut self, _ctx: &CylCtx, other: &Self) {
        self.tuples.retain(|t| !other.tuples.contains(t));
    }

    fn or_with(&mut self, _ctx: &CylCtx, other: &Self) {
        for t in &other.tuples {
            self.tuples.insert(t.clone());
        }
    }

    fn not(&mut self, ctx: &CylCtx) {
        if let Some(tuples) = par_filter_points(ctx, |t| !self.tuples.contains(t)) {
            self.tuples = tuples;
            return;
        }
        let mut out = FxHashSet::default();
        for_each_point(ctx.domain_size(), ctx.width(), |t| {
            if !self.tuples.contains(t) {
                out.insert(Tuple::from_slice(t));
            }
        });
        self.tuples = out;
    }

    fn exists(&self, ctx: &CylCtx, i: usize) -> Self {
        let n = ctx.domain_size();
        // Collapse: the set of tuples with coordinate i zeroed.
        let mut collapsed: FxHashSet<Tuple> = FxHashSet::default();
        if ctx.threads() > 1 && self.tuples.len() >= SPARSE_PAR_TUPLES {
            let tuples: Vec<&Tuple> = self.tuples.iter().collect();
            let locals = map_chunks(ctx.threads(), tuples.len(), |range| {
                tuples[range]
                    .iter()
                    .map(|t| t.with(i, 0))
                    .collect::<FxHashSet<_>>()
            });
            for local in locals {
                collapsed.extend(local);
            }
        } else {
            for t in &self.tuples {
                collapsed.insert(t.with(i, 0));
            }
        }
        // Broadcast coordinate i back over the domain.
        let mut out = Self::empty(ctx);
        for t in collapsed {
            for b in 0..n {
                out.tuples.insert(t.with(i, b as Elem));
            }
        }
        out
    }

    fn preimage(&self, ctx: &CylCtx, map: &[CoordSource]) -> Self {
        let k = ctx.width();
        let n = ctx.domain_size();
        assert_eq!(map.len(), k, "preimage map must cover all {k} coordinates");
        let mut out = Self::empty(ctx);
        for m in map {
            if let CoordSource::Const(c) = m {
                if *c as usize >= n {
                    return out;
                }
            }
        }
        if let Some(tuples) = par_filter_points(ctx, |target| {
            let source = Tuple::from_fn(k, |i| match map[i] {
                CoordSource::Coord(j) => target[j],
                CoordSource::Const(c) => c,
            });
            self.tuples.contains(source.as_slice())
        }) {
            return SparseCylinder { tuples };
        }
        let mut source = vec![0 as Elem; k];
        for_each_point(n, k, |target| {
            for (i, m) in map.iter().enumerate() {
                source[i] = match m {
                    CoordSource::Coord(j) => target[*j],
                    CoordSource::Const(c) => *c,
                };
            }
            if self.tuples.contains(source.as_slice()) {
                out.tuples.insert(Tuple::from_slice(target));
            }
        });
        out
    }

    fn contains(&self, _ctx: &CylCtx, point: &[Elem]) -> bool {
        self.tuples.contains(point)
    }

    fn count(&self, _ctx: &CylCtx) -> usize {
        self.tuples.len()
    }

    fn is_empty(&self, _ctx: &CylCtx) -> bool {
        self.tuples.is_empty()
    }

    fn is_subset(&self, _ctx: &CylCtx, other: &Self) -> bool {
        self.tuples.iter().all(|t| other.tuples.contains(t))
    }

    fn to_relation(&self, _ctx: &CylCtx, coords: &[usize]) -> Relation {
        let mut r = Relation::new(coords.len());
        for t in &self.tuples {
            r.insert(t.select(coords));
        }
        r
    }

    fn size_bytes(&self, ctx: &CylCtx) -> usize {
        // Per-tuple payload plus the hash-set entry overhead.
        self.tuples.len() * (ctx.width() * std::mem::size_of::<Elem>() + 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CylCtx {
        CylCtx::new(3, 2)
    }

    #[test]
    fn sparse_matches_expected_sizes() {
        let c = ctx();
        assert_eq!(SparseCylinder::empty(&c).count(&c), 0);
        assert_eq!(SparseCylinder::full(&c).count(&c), 9);
        assert_eq!(SparseCylinder::equality(&c, 0, 1).count(&c), 3);
    }

    #[test]
    fn not_complements() {
        let c = ctx();
        let mut s = SparseCylinder::equality(&c, 0, 1);
        s.not(&c);
        assert_eq!(s.count(&c), 6);
        assert!(!s.contains(&c, &[1, 1]));
        assert!(s.contains(&c, &[1, 2]));
    }

    #[test]
    fn and_not_matches_unfused_definition() {
        let c = ctx();
        let a = SparseCylinder::equality(&c, 0, 1);
        let b = SparseCylinder::const_eq(&c, 0, 1);
        let mut fused = a.clone();
        fused.and_not_with(&c, &b);
        let mut neg = b.clone();
        neg.not(&c);
        let mut plain = a.clone();
        plain.and_with(&c, &neg);
        assert_eq!(fused, plain);
        assert!(fused.contains(&c, &[0, 0]));
        assert!(!fused.contains(&c, &[1, 1]));
    }

    #[test]
    fn exists_broadcasts() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[2u32, 0]]);
        let cyl = SparseCylinder::from_atom(&c, &e, &[0, 1]);
        let ex = cyl.exists(&c, 1);
        assert_eq!(ex.count(&c), 3);
        assert!(ex.contains(&c, &[2, 1]));
    }

    #[test]
    fn sparse_agrees_with_dense_on_random_ops() {
        use crate::dense::DenseCylinder;
        // A miniature differential test; the full property-based version
        // lives in bvq-core where the evaluator drives both backends.
        let c = CylCtx::new(4, 3);
        let r = Relation::from_tuples(3, [[0u32, 1, 2], [1, 1, 1], [3, 0, 3]]);
        let s = SparseCylinder::from_atom(&c, &r, &[2, 0, 1]);
        let d = DenseCylinder::from_atom(&c, &r, &[2, 0, 1]);
        assert_eq!(s.count(&c), d.count(&c));
        for i in 0..3 {
            let se = s.exists(&c, i);
            let de = d.exists(&c, i);
            assert_eq!(
                se.to_relation(&c, &[0, 1, 2]).sorted(),
                de.to_relation(&c, &[0, 1, 2]).sorted()
            );
        }
        let mut sn = s.clone();
        sn.not(&c);
        let mut dn = d.clone();
        dn.not(&c);
        assert_eq!(
            sn.to_relation(&c, &[0, 1, 2]).sorted(),
            dn.to_relation(&c, &[0, 1, 2]).sorted()
        );
    }
}
