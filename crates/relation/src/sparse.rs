//! Sparse cylinder backend: an explicit set of `k`-tuples.
//!
//! Used when `n^k` is too large to materialise as a bitset, or when the
//! sets involved are known to stay small (e.g. negation-free queries over
//! sparse data). Negation and the cylindrical broadcast of atoms still cost
//! up to `n^k` — that bound is inherent to the representation of Prop 3.1 —
//! but positive connectives cost only the number of tuples present.

use crate::cylinder::{CoordSource, CylCtx, CylinderOps};
use crate::hasher::FxHashSet;
use crate::{Elem, Relation, Tuple};

/// A subset of `D^k` stored as a hash set of `k`-tuples.
#[derive(Clone, Debug)]
pub struct SparseCylinder {
    tuples: FxHashSet<Tuple>,
}

impl PartialEq for SparseCylinder {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

/// Enumerates all `k`-tuples over a domain of size `n`, calling `f` on each.
fn for_each_point(n: usize, k: usize, mut f: impl FnMut(&[Elem])) {
    let mut t = vec![0 as Elem; k];
    loop {
        f(&t);
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            t[i] += 1;
            if (t[i] as usize) < n {
                break;
            }
            t[i] = 0;
        }
    }
}

impl CylinderOps for SparseCylinder {
    fn empty(_ctx: &CylCtx) -> Self {
        SparseCylinder { tuples: FxHashSet::default() }
    }

    fn full(ctx: &CylCtx) -> Self {
        let mut s = Self::empty(ctx);
        for_each_point(ctx.domain_size(), ctx.width(), |t| {
            s.tuples.insert(Tuple::from_slice(t));
        });
        s
    }

    fn from_atom(ctx: &CylCtx, rel: &Relation, vars: &[usize]) -> Self {
        assert_eq!(rel.arity(), vars.len(), "atom variable count ≠ relation arity");
        let k = ctx.width();
        let n = ctx.domain_size();
        let mut out = Self::empty(ctx);
        let mut mentioned = vec![false; k];
        for &v in vars {
            assert!(v < k, "atom variable index {v} out of width {k}");
            mentioned[v] = true;
        }
        let free: Vec<usize> = (0..k).filter(|&i| !mentioned[i]).collect();
        for t in rel.iter() {
            let mut point = vec![0 as Elem; k];
            let mut assigned = vec![false; k];
            let mut consistent = true;
            for (j, &v) in vars.iter().enumerate() {
                if t[j] as usize >= n || (assigned[v] && point[v] != t[j]) {
                    consistent = false;
                    break;
                }
                point[v] = t[j];
                assigned[v] = true;
            }
            if !consistent {
                continue;
            }
            // Broadcast over the free coordinates.
            let mut stack = vec![(0usize, point)];
            while let Some((fi, p)) = stack.pop() {
                if fi == free.len() {
                    out.tuples.insert(Tuple::from_slice(&p));
                    continue;
                }
                for b in 0..n {
                    let mut q = p.clone();
                    q[free[fi]] = b as Elem;
                    stack.push((fi + 1, q));
                }
            }
        }
        out
    }

    fn equality(ctx: &CylCtx, i: usize, j: usize) -> Self {
        if i == j {
            return Self::full(ctx);
        }
        let mut out = Self::empty(ctx);
        for_each_point(ctx.domain_size(), ctx.width(), |t| {
            if t[i] == t[j] {
                out.tuples.insert(Tuple::from_slice(t));
            }
        });
        out
    }

    fn const_eq(ctx: &CylCtx, i: usize, c: Elem) -> Self {
        let mut out = Self::empty(ctx);
        if (c as usize) >= ctx.domain_size() {
            return out;
        }
        for_each_point(ctx.domain_size(), ctx.width(), |t| {
            if t[i] == c {
                out.tuples.insert(Tuple::from_slice(t));
            }
        });
        out
    }

    fn and_with(&mut self, _ctx: &CylCtx, other: &Self) {
        self.tuples.retain(|t| other.tuples.contains(t));
    }

    fn or_with(&mut self, _ctx: &CylCtx, other: &Self) {
        for t in &other.tuples {
            self.tuples.insert(t.clone());
        }
    }

    fn not(&mut self, ctx: &CylCtx) {
        let mut out = FxHashSet::default();
        for_each_point(ctx.domain_size(), ctx.width(), |t| {
            if !self.tuples.contains(t) {
                out.insert(Tuple::from_slice(t));
            }
        });
        self.tuples = out;
    }

    fn exists(&self, ctx: &CylCtx, i: usize) -> Self {
        let n = ctx.domain_size();
        // Collapse: the set of tuples with coordinate i zeroed.
        let mut collapsed: FxHashSet<Tuple> = FxHashSet::default();
        for t in &self.tuples {
            collapsed.insert(t.with(i, 0));
        }
        // Broadcast coordinate i back over the domain.
        let mut out = Self::empty(ctx);
        for t in collapsed {
            for b in 0..n {
                out.tuples.insert(t.with(i, b as Elem));
            }
        }
        out
    }

    fn preimage(&self, ctx: &CylCtx, map: &[CoordSource]) -> Self {
        let k = ctx.width();
        let n = ctx.domain_size();
        assert_eq!(map.len(), k, "preimage map must cover all {k} coordinates");
        let mut out = Self::empty(ctx);
        for m in map {
            if let CoordSource::Const(c) = m {
                if *c as usize >= n {
                    return out;
                }
            }
        }
        let mut source = vec![0 as Elem; k];
        for_each_point(n, k, |target| {
            for (i, m) in map.iter().enumerate() {
                source[i] = match m {
                    CoordSource::Coord(j) => target[*j],
                    CoordSource::Const(c) => *c,
                };
            }
            if self.tuples.contains(source.as_slice()) {
                out.tuples.insert(Tuple::from_slice(target));
            }
        });
        out
    }

    fn contains(&self, _ctx: &CylCtx, point: &[Elem]) -> bool {
        self.tuples.contains(point)
    }

    fn count(&self, _ctx: &CylCtx) -> usize {
        self.tuples.len()
    }

    fn is_empty(&self, _ctx: &CylCtx) -> bool {
        self.tuples.is_empty()
    }

    fn is_subset(&self, _ctx: &CylCtx, other: &Self) -> bool {
        self.tuples.iter().all(|t| other.tuples.contains(t))
    }

    fn to_relation(&self, _ctx: &CylCtx, coords: &[usize]) -> Relation {
        let mut r = Relation::new(coords.len());
        for t in &self.tuples {
            r.insert(t.select(coords));
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CylCtx {
        CylCtx::new(3, 2)
    }

    #[test]
    fn sparse_matches_expected_sizes() {
        let c = ctx();
        assert_eq!(SparseCylinder::empty(&c).count(&c), 0);
        assert_eq!(SparseCylinder::full(&c).count(&c), 9);
        assert_eq!(SparseCylinder::equality(&c, 0, 1).count(&c), 3);
    }

    #[test]
    fn not_complements() {
        let c = ctx();
        let mut s = SparseCylinder::equality(&c, 0, 1);
        s.not(&c);
        assert_eq!(s.count(&c), 6);
        assert!(!s.contains(&c, &[1, 1]));
        assert!(s.contains(&c, &[1, 2]));
    }

    #[test]
    fn exists_broadcasts() {
        let c = ctx();
        let e = Relation::from_tuples(2, [[2u32, 0]]);
        let cyl = SparseCylinder::from_atom(&c, &e, &[0, 1]);
        let ex = cyl.exists(&c, 1);
        assert_eq!(ex.count(&c), 3);
        assert!(ex.contains(&c, &[2, 1]));
    }

    #[test]
    fn sparse_agrees_with_dense_on_random_ops() {
        use crate::DenseCylinder;
        // A miniature differential test; the full property-based version
        // lives in bvq-core where the evaluator drives both backends.
        let c = CylCtx::new(4, 3);
        let r = Relation::from_tuples(3, [[0u32, 1, 2], [1, 1, 1], [3, 0, 3]]);
        let s = SparseCylinder::from_atom(&c, &r, &[2, 0, 1]);
        let d = DenseCylinder::from_atom(&c, &r, &[2, 0, 1]);
        assert_eq!(s.count(&c), d.count(&c));
        for i in 0..3 {
            let se = s.exists(&c, i);
            let de = d.exists(&c, i);
            assert_eq!(
                se.to_relation(&c, &[0, 1, 2]).sorted(),
                de.to_relation(&c, &[0, 1, 2]).sorted()
            );
        }
        let mut sn = s.clone();
        sn.not(&c);
        let mut dn = d.clone();
        dn.not(&c);
        assert_eq!(
            sn.to_relation(&c, &[0, 1, 2]).sorted(),
            dn.to_relation(&c, &[0, 1, 2]).sorted()
        );
    }
}
