//! Structured query tracing: nested spans mirroring formula structure.
//!
//! A [`Span`] records one evaluation step — the operator kind, the
//! subformula it evaluated (pretty-printed and truncated), the output
//! arity and cardinality, an optional fixpoint round index, the wall
//! time, and child spans for subcomputations. A [`Tracer`] collects
//! spans during evaluation; it is threaded through
//! [`EvalConfig`](crate::EvalConfig) exactly like
//! [`StatsRecorder`](crate::StatsRecorder): a disabled tracer is a
//! couple of branch instructions per operator, so the default
//! (trace off) costs nothing measurable.
//!
//! **Determinism rule.** Everything in a span except `elapsed_ns` is
//! *structural*: it depends only on the query, the database, and the
//! evaluation strategy — never on the thread count. Parallel evaluators
//! build child spans from per-chunk results merged in chunk order, so
//! [`Span::structure`] is bit-identical across `threads = 1/2/4…`; the
//! integration suite asserts this. Timings are the one field excluded
//! from the structural view.

use std::time::Instant;

/// One node of a trace or plan tree.
///
/// In a *measured* trace (`explain analyze`, `--trace`), `rows` is the
/// cardinality actually produced and `elapsed_ns` the wall time. In a
/// *static* plan (`explain`), `rows` is the `n^arity` upper bound of
/// Proposition 3.1 and `elapsed_ns` is zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Operator kind (`"and"`, `"exists"`, `"lfp"`, `"round"`, …).
    pub kind: &'static str,
    /// Pretty-printed subformula / rule / phase detail (truncated).
    pub detail: String,
    /// Arity of the produced (or estimated) relation.
    pub arity: usize,
    /// Output cardinality (measured) or `n^arity` bound (static plan).
    pub rows: usize,
    /// Fixpoint round index, for per-round spans.
    pub round: Option<u64>,
    /// Wall time in nanoseconds (zero in static plans; **not**
    /// structural — excluded from [`Span::structure`]).
    pub elapsed_ns: u64,
    /// Subcomputations, in evaluation order.
    pub children: Vec<Span>,
}

impl Span {
    /// A childless span with zero elapsed time.
    pub fn leaf(kind: &'static str, detail: impl Into<String>, arity: usize, rows: usize) -> Span {
        Span {
            kind,
            detail: detail.into(),
            arity,
            rows,
            round: None,
            elapsed_ns: 0,
            children: Vec::new(),
        }
    }

    /// Total number of spans in this tree (including `self`).
    pub fn total_spans(&self) -> usize {
        1 + self.children.iter().map(Span::total_spans).sum::<usize>()
    }

    /// A canonical serialisation of the *structural* content — every
    /// field except `elapsed_ns`, recursively. Two traces of the same
    /// query at different thread counts must produce byte-identical
    /// structure strings; this is what the determinism tests compare.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        self.write_structure(&mut out);
        out
    }

    fn write_structure(&self, out: &mut String) {
        out.push_str(self.kind);
        out.push('|');
        out.push_str(&self.detail);
        out.push('|');
        out.push_str(&self.arity.to_string());
        out.push('|');
        out.push_str(&self.rows.to_string());
        if let Some(r) = self.round {
            out.push('#');
            out.push_str(&r.to_string());
        }
        out.push('{');
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            c.write_structure(out);
        }
        out.push('}');
    }

    /// True when the structural content (everything but timings) of the
    /// two trees is identical.
    pub fn same_structure(&self, other: &Span) -> bool {
        self.structure() == other.structure()
    }

    /// Renders the tree as indented text, one span per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.kind);
        if let Some(r) = self.round {
            out.push('#');
            out.push_str(&r.to_string());
        }
        if !self.detail.is_empty() {
            out.push(' ');
            out.push_str(&self.detail);
        }
        out.push_str(&format!("  [arity={} rows={}", self.arity, self.rows));
        if self.elapsed_ns > 0 {
            out.push_str(&format!(" t={}", format_ns(self.elapsed_ns)));
        }
        out.push_str("]\n");
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// Formats nanoseconds as a human-readable duration.
fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// A frame on the open-span stack: its start time and the child spans
/// closed so far underneath it.
#[derive(Debug)]
struct Frame {
    start: Instant,
    children: Vec<Span>,
}

/// Collects [`Span`]s during evaluation.
///
/// Mirrors [`StatsRecorder`](crate::StatsRecorder): a disabled tracer
/// makes every method a no-op behind one branch. Usage is
/// [`open`](Tracer::open) before a subcomputation,
/// [`close`](Tracer::close) after it (supplying the structural fields),
/// and [`finish`](Tracer::finish) to extract the tree.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    frames: Vec<Frame>,
    roots: Vec<Span>,
}

impl Tracer {
    /// A tracer that records iff `enabled`.
    pub fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            frames: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// A tracer that records nothing (the default).
    pub fn disabled() -> Tracer {
        Tracer::new(false)
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span; pair with [`close`](Tracer::close). No-op when
    /// disabled. On error paths the frame may be abandoned — `finish`
    /// folds orphaned children upward rather than losing them.
    pub fn open(&mut self) {
        if self.enabled {
            self.frames.push(Frame {
                start: Instant::now(),
                children: Vec::new(),
            });
        }
    }

    /// Closes the innermost open span, filling in its structural
    /// fields; elapsed time is measured from the matching `open`.
    pub fn close(
        &mut self,
        kind: &'static str,
        detail: impl Into<String>,
        arity: usize,
        rows: usize,
        round: Option<u64>,
    ) {
        if !self.enabled {
            return;
        }
        let Some(frame) = self.frames.pop() else {
            return;
        };
        let span = Span {
            kind,
            detail: detail.into(),
            arity,
            rows,
            round,
            elapsed_ns: frame.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            children: frame.children,
        };
        self.attach(span);
    }

    /// Attaches a pre-built span under the innermost open span (or as a
    /// root). Used when child spans are built out-of-band — e.g. from
    /// per-chunk worker results merged in chunk order.
    pub fn attach(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        match self.frames.last_mut() {
            Some(f) => f.children.push(span),
            None => self.roots.push(span),
        }
    }

    /// Extracts the recorded tree: `None` when disabled or empty, the
    /// single root when there is one, a synthetic `"trace"` root when
    /// several spans were recorded at top level.
    pub fn finish(mut self) -> Option<Span> {
        if !self.enabled {
            return None;
        }
        // Fold children of abandoned frames (error paths) upward.
        while let Some(f) = self.frames.pop() {
            match self.frames.last_mut() {
                Some(p) => p.children.extend(f.children),
                None => self.roots.extend(f.children),
            }
        }
        match self.roots.len() {
            0 => None,
            1 => self.roots.pop(),
            _ => Some(Span {
                kind: "trace",
                detail: String::new(),
                arity: 0,
                rows: 0,
                round: None,
                elapsed_ns: self.roots.iter().map(|s| s.elapsed_ns).sum(),
                children: std::mem::take(&mut self.roots),
            }),
        }
    }
}

/// Truncates a rendered detail string to at most `max` characters,
/// appending `…` when anything was cut (always cutting at a char
/// boundary).
pub fn truncate_detail(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_string();
    }
    let mut out: String = s.chars().take(max.saturating_sub(1)).collect();
    out.push('…');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_mirror_open_close_order() {
        let mut t = Tracer::new(true);
        t.open(); // root
        t.open(); // child 1
        t.close("atom", "E(x1,x2)", 2, 3, None);
        t.open(); // child 2
        t.open(); // grandchild
        t.close("atom", "P(x1)", 1, 1, None);
        t.close("exists", "exists x2. P(x2)", 1, 1, None);
        t.close("and", "(E(x1,x2) & …)", 2, 2, None);
        let root = t.finish().unwrap();
        assert_eq!(root.kind, "and");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].kind, "atom");
        assert_eq!(root.children[1].children[0].detail, "P(x1)");
        assert_eq!(root.total_spans(), 4);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        t.open();
        t.close("atom", "E", 2, 9, None);
        t.attach(Span::leaf("x", "", 0, 0));
        assert!(!t.is_enabled());
        assert!(t.finish().is_none());
    }

    #[test]
    fn structure_excludes_timings() {
        let mut a = Span::leaf("and", "φ", 2, 4);
        a.children.push(Span::leaf("atom", "E(x1,x2)", 2, 7));
        let mut b = a.clone();
        b.elapsed_ns = 123_456;
        b.children[0].elapsed_ns = 789;
        assert!(a.same_structure(&b));
        let mut c = a.clone();
        c.children[0].rows = 8;
        assert!(!a.same_structure(&c));
    }

    #[test]
    fn multiple_roots_get_a_synthetic_parent() {
        let mut t = Tracer::new(true);
        t.attach(Span::leaf("a", "", 0, 0));
        t.attach(Span::leaf("b", "", 0, 0));
        let root = t.finish().unwrap();
        assert_eq!(root.kind, "trace");
        assert_eq!(root.children.len(), 2);
    }

    #[test]
    fn abandoned_frames_fold_upward() {
        let mut t = Tracer::new(true);
        t.open();
        t.open();
        t.close("atom", "E", 2, 1, None);
        // Outer frame never closed (simulates an error path).
        let root = t.finish().unwrap();
        assert_eq!(root.kind, "atom");
    }

    #[test]
    fn render_indents_and_marks_rounds() {
        let mut root = Span::leaf("lfp", "S", 1, 3);
        let mut r1 = Span::leaf("round", "S", 1, 1);
        r1.round = Some(1);
        r1.elapsed_ns = 1500;
        root.children.push(r1);
        let text = root.render();
        assert!(text.contains("lfp S  [arity=1 rows=3]"));
        assert!(text.contains("  round#1 S  [arity=1 rows=1 t=1.5µs]"));
    }

    #[test]
    fn truncation_is_char_safe() {
        assert_eq!(truncate_detail("short", 10), "short");
        let t = truncate_detail("∀x∀y∀z long tail", 5);
        assert_eq!(t.chars().count(), 5);
        assert!(t.ends_with('…'));
    }
}
