//! The plain-text database format.
//!
//! Lives in `bvq-relation` (rather than the CLI) so every front-end —
//! the `bvq` binary, the query server's `load_db` protocol command, and
//! tests — shares one parser. `# comment`, `domain <n>`, then
//! `rel NAME/ARITY` … tuple rows … `end` blocks.

use crate::{Database, Relation, Tuple};

/// Errors parsing database text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbTextError {
    /// The `domain <n>` line is missing or malformed.
    MissingDomain,
    /// A malformed `rel NAME/ARITY` line.
    BadRelHeader(String),
    /// A tuple row with the wrong number of elements.
    BadTuple {
        /// Relation name.
        rel: String,
        /// The offending line.
        line: String,
    },
    /// An element outside the domain or not a number.
    BadElement(String),
    /// `end` without an open relation, or a relation without `end`.
    Structure(String),
    /// Database-level error (duplicate relation, out-of-domain element).
    Database(String),
}

impl std::fmt::Display for DbTextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbTextError::MissingDomain => write!(f, "expected `domain <n>` first"),
            DbTextError::BadRelHeader(l) => write!(f, "bad relation header: `{l}`"),
            DbTextError::BadTuple { rel, line } => {
                write!(f, "bad tuple for `{rel}`: `{line}`")
            }
            DbTextError::BadElement(t) => write!(f, "bad element: `{t}`"),
            DbTextError::Structure(m) => write!(f, "{m}"),
            DbTextError::Database(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for DbTextError {}

/// Parses the text format into a [`Database`].
pub fn parse_database(input: &str) -> Result<Database, DbTextError> {
    let mut lines = input
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty());
    let first = lines.next().ok_or(DbTextError::MissingDomain)?;
    let n: usize = first
        .strip_prefix("domain")
        .map(str::trim)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .ok_or(DbTextError::MissingDomain)?;
    let mut db = Database::new(n);
    let mut current: Option<(String, usize, Relation)> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("rel ") {
            if current.is_some() {
                return Err(DbTextError::Structure(
                    "`rel` inside an unterminated relation (missing `end`?)".into(),
                ));
            }
            let (name, arity) = rest
                .split_once('/')
                .ok_or_else(|| DbTextError::BadRelHeader(line.to_string()))?;
            let arity: usize = arity
                .trim()
                .parse()
                .map_err(|_| DbTextError::BadRelHeader(line.to_string()))?;
            current = Some((name.trim().to_string(), arity, Relation::new(arity)));
        } else if line == "end" {
            let (name, _, rel) = current
                .take()
                .ok_or_else(|| DbTextError::Structure("`end` without an open relation".into()))?;
            db.add_relation(&name, rel)
                .map_err(|e| DbTextError::Database(e.to_string()))?;
        } else {
            let (name, arity, rel) = current.as_mut().ok_or_else(|| {
                DbTextError::Structure(format!("tuple `{line}` outside a relation"))
            })?;
            let elems: Vec<u32> = line
                .split_whitespace()
                .map(|t| {
                    t.parse()
                        .map_err(|_| DbTextError::BadElement(t.to_string()))
                })
                .collect::<Result<_, _>>()?;
            if elems.len() != *arity {
                return Err(DbTextError::BadTuple {
                    rel: name.clone(),
                    line: line.to_string(),
                });
            }
            rel.insert(Tuple::from_slice(&elems));
        }
    }
    if current.is_some() {
        return Err(DbTextError::Structure(
            "unterminated relation at EOF".into(),
        ));
    }
    Ok(db)
}

/// Serialises a database back into the text format.
pub fn write_database(db: &Database) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "domain {}", db.domain_size());
    for (id, name, arity) in db.schema().iter() {
        let _ = writeln!(out, "rel {name}/{arity}");
        for t in db.relation(id).sorted() {
            let row: Vec<String> = t.iter().map(u32::to_string).collect();
            let _ = writeln!(out, "{}", row.join(" "));
        }
        let _ = writeln!(out, "end");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a path with a label
domain 4
rel E/2
0 1
1 2   # mid edge
2 3
end
rel P/1
2
end
";

    #[test]
    fn parses_sample() {
        let db = parse_database(SAMPLE).unwrap();
        assert_eq!(db.domain_size(), 4);
        assert_eq!(db.relation_by_name("E").unwrap().len(), 3);
        assert!(db.relation_by_name("P").unwrap().contains(&[2]));
    }

    #[test]
    fn roundtrip() {
        let db = parse_database(SAMPLE).unwrap();
        let text = write_database(&db);
        let back = parse_database(&text).unwrap();
        assert_eq!(back.domain_size(), db.domain_size());
        assert_eq!(
            back.relation_by_name("E").unwrap().sorted(),
            db.relation_by_name("E").unwrap().sorted()
        );
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_database(""),
            Err(DbTextError::MissingDomain)
        ));
        assert!(matches!(
            parse_database("domain 0"),
            Err(DbTextError::MissingDomain)
        ));
        assert!(matches!(
            parse_database("domain 2\nrel E\n0 1\nend"),
            Err(DbTextError::BadRelHeader(_))
        ));
        assert!(matches!(
            parse_database("domain 2\nrel E/2\n0\nend"),
            Err(DbTextError::BadTuple { .. })
        ));
        assert!(matches!(
            parse_database("domain 2\nrel E/2\n0 1"),
            Err(DbTextError::Structure(_))
        ));
        assert!(matches!(
            parse_database("domain 2\nrel E/2\n0 5\nend"),
            Err(DbTextError::Database(_))
        ));
        assert!(matches!(
            parse_database("domain 2\n0 1\nend"),
            Err(DbTextError::Structure(_))
        ));
    }

    #[test]
    fn arity_zero_relations() {
        let db = parse_database("domain 1\nrel T/0\n\nend").unwrap();
        // An empty line is skipped; T stays empty (false).
        assert!(!db.relation_by_name("T").unwrap().as_boolean());
    }
}
