//! Finite relations and their algebra.
//!
//! [`Relation`] is the user-facing, sparse (hash-set backed) relation type:
//! a set of [`Tuple`]s of a fixed arity. It provides the operations of the
//! relational algebra that both the naive (unbounded) evaluator and the
//! join-based planners in `bvq-optimizer` are built from. The cylindrical
//! `FO^k` evaluator uses the [`CylinderOps`](crate::CylinderOps) backends
//! instead, converting to and from `Relation` at the boundary.
//!
//! Arity 0 is fully supported: an arity-0 relation is either `{}` (false)
//! or `{⟨⟩}` (true), which is how Boolean queries and the propositional
//! quantifiers of Theorem 4.5 are represented.

use std::fmt;

use crate::hasher::FxHashSet;
use crate::{Arity, Elem, Tuple};

/// A finite relation: a set of tuples of fixed arity.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Relation {
    arity: Arity,
    tuples: FxHashSet<Tuple>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn new(arity: Arity) -> Self {
        Relation {
            arity,
            tuples: FxHashSet::default(),
        }
    }

    /// The arity-0 relation representing Boolean `value`.
    pub fn boolean(value: bool) -> Self {
        let mut r = Relation::new(0);
        if value {
            r.insert(Tuple::unit());
        }
        r
    }

    /// Interprets an arity-0 relation as a Boolean.
    ///
    /// # Panics
    /// Panics if the arity is not 0.
    pub fn as_boolean(&self) -> bool {
        assert_eq!(self.arity, 0, "as_boolean on arity-{} relation", self.arity);
        !self.tuples.is_empty()
    }

    /// Builds a relation from tuples. Panics if any tuple has the wrong arity.
    pub fn from_tuples<I, T>(arity: Arity, tuples: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Tuple>,
    {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t.into());
        }
        r
    }

    /// The full relation `D^arity` over a domain of size `n`.
    pub fn full(arity: Arity, n: usize) -> Self {
        let mut r = Relation::new(arity);
        let mut t = vec![0 as Elem; arity];
        loop {
            r.insert(Tuple::from_slice(&t));
            // Odometer increment.
            let mut i = arity;
            loop {
                if i == 0 {
                    return r;
                }
                i -= 1;
                t[i] += 1;
                if (t[i] as usize) < n {
                    break;
                }
                t[i] = 0;
            }
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> Arity {
        self.arity
    }

    /// The number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns whether it was new.
    ///
    /// # Panics
    /// Panics if the tuple arity differs from the relation arity.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "tuple arity {} ≠ relation arity {}",
            t.arity(),
            self.arity
        );
        self.tuples.insert(t)
    }

    /// Removes a tuple; returns whether it was present.
    pub fn remove(&mut self, t: &[Elem]) -> bool {
        self.tuples.remove(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &[Elem]) -> bool {
        t.len() == self.arity && self.tuples.contains(t)
    }

    /// Iterates over the tuples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// The tuples in sorted order (for deterministic output).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// The set of elements appearing anywhere in the relation.
    pub fn active_domain(&self) -> Vec<Elem> {
        let mut seen = FxHashSet::default();
        for t in &self.tuples {
            for &e in t.as_slice() {
                seen.insert(e);
            }
        }
        let mut v: Vec<Elem> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Set union. Panics on arity mismatch.
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        let (big, small) = if self.len() >= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut r = big.clone();
        for t in small.iter() {
            r.tuples.insert(t.clone());
        }
        r
    }

    /// Set intersection. Panics on arity mismatch.
    #[must_use]
    pub fn intersect(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "intersect arity mismatch");
        let (big, small) = if self.len() >= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut r = Relation::new(self.arity);
        for t in small.iter() {
            if big.tuples.contains(t) {
                r.tuples.insert(t.clone());
            }
        }
        r
    }

    /// Set difference `self \ other`. Panics on arity mismatch.
    #[must_use]
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "difference arity mismatch");
        let mut r = Relation::new(self.arity);
        for t in self.iter() {
            if !other.tuples.contains(t.as_slice()) {
                r.tuples.insert(t.clone());
            }
        }
        r
    }

    /// Complement with respect to `D^arity`, `|D| = n`.
    ///
    /// This materialises up to `n^arity` tuples — the exponential cost the
    /// paper associates with unrestricted evaluation. The bounded evaluator
    /// only ever calls this with `arity ≤ k`.
    #[must_use]
    pub fn complement(&self, n: usize) -> Relation {
        Relation::full(self.arity, n).difference(self)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.iter().all(|t| other.tuples.contains(t.as_slice()))
    }

    /// Selection σ: keeps tuples where positions `i` and `j` are equal.
    #[must_use]
    pub fn select_eq(&self, i: usize, j: usize) -> Relation {
        let mut r = Relation::new(self.arity);
        for t in self.iter() {
            if t[i] == t[j] {
                r.tuples.insert(t.clone());
            }
        }
        r
    }

    /// Selection σ: keeps tuples where position `i` equals `value`.
    #[must_use]
    pub fn select_const(&self, i: usize, value: Elem) -> Relation {
        let mut r = Relation::new(self.arity);
        for t in self.iter() {
            if t[i] == value {
                r.tuples.insert(t.clone());
            }
        }
        r
    }

    /// Generalised projection π: the result tuple is
    /// `(t[positions[0]], t[positions[1]], …)`. Positions may repeat and
    /// permute, so this subsumes column permutation (renaming).
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> Relation {
        for &p in positions {
            assert!(
                p < self.arity,
                "projection position {p} out of arity {}",
                self.arity
            );
        }
        let mut r = Relation::new(positions.len());
        for t in self.iter() {
            r.tuples.insert(t.select(positions));
        }
        r
    }

    /// Cartesian product; the result has arity `self.arity + other.arity`.
    #[must_use]
    pub fn product(&self, other: &Relation) -> Relation {
        let mut r = Relation::new(self.arity + other.arity);
        for a in self.iter() {
            for b in other.iter() {
                r.tuples.insert(a.concat(b));
            }
        }
        r
    }

    /// Equi-join: pairs `(i, j)` require `left[i] == right[j]`. The result
    /// is the concatenation of the left and right tuples (all columns kept);
    /// apply [`project`](Self::project) afterwards to drop duplicates.
    ///
    /// Implemented as a hash join, building on the smaller side.
    #[must_use]
    pub fn join_on(&self, other: &Relation, pairs: &[(usize, usize)]) -> Relation {
        use crate::hasher::FxHashMap;
        let mut r = Relation::new(self.arity + other.arity);
        if pairs.is_empty() {
            return self.product(other);
        }
        let left_keys: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let right_keys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        // Build on the right side, probe with the left.
        let mut table: FxHashMap<Tuple, Vec<&Tuple>> = FxHashMap::default();
        for t in other.iter() {
            table.entry(t.select(&right_keys)).or_default().push(t);
        }
        for a in self.iter() {
            if let Some(matches) = table.get(&a.select(&left_keys)) {
                for b in matches {
                    r.tuples.insert(a.concat(b));
                }
            }
        }
        r
    }

    /// Semijoin: the tuples of `self` that join with at least one tuple of
    /// `other` under the given column pairs. The workhorse of Yannakakis's
    /// algorithm [Yan81].
    #[must_use]
    pub fn semijoin(&self, other: &Relation, pairs: &[(usize, usize)]) -> Relation {
        let left_keys: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let right_keys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let keys: FxHashSet<Tuple> = other.iter().map(|t| t.select(&right_keys)).collect();
        let mut r = Relation::new(self.arity);
        for t in self.iter() {
            if keys.contains(&t.select(&left_keys)) {
                r.tuples.insert(t.clone());
            }
        }
        r
    }

    /// Antijoin: the tuples of `self` that join with *no* tuple of `other`.
    #[must_use]
    pub fn antijoin(&self, other: &Relation, pairs: &[(usize, usize)]) -> Relation {
        let left_keys: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let right_keys: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let keys: FxHashSet<Tuple> = other.iter().map(|t| t.select(&right_keys)).collect();
        let mut r = Relation::new(self.arity);
        for t in self.iter() {
            if !keys.contains(&t.select(&left_keys)) {
                r.tuples.insert(t.clone());
            }
        }
        r
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, ", self.arity)?;
        f.debug_set().entries(self.sorted()).finish()?;
        write!(f, ")")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collects tuples into a relation; the arity is taken from the first
    /// tuple (empty iterators yield an empty arity-0 relation).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, Tuple::arity);
        let mut r = Relation::new(arity);
        for t in it {
            r.insert(t);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(Elem, Elem)]) -> Relation {
        Relation::from_tuples(2, pairs.iter().map(|&(a, b)| Tuple::from_slice(&[a, b])))
    }

    #[test]
    fn boolean_relations() {
        assert!(!Relation::boolean(false).as_boolean());
        assert!(Relation::boolean(true).as_boolean());
        assert_eq!(Relation::boolean(true).len(), 1);
    }

    #[test]
    #[should_panic(expected = "as_boolean")]
    fn as_boolean_rejects_positive_arity() {
        Relation::new(2).as_boolean();
    }

    #[test]
    fn full_relation_size() {
        assert_eq!(Relation::full(3, 4).len(), 64);
        assert_eq!(Relation::full(0, 5).len(), 1); // D^0 = {⟨⟩}
    }

    #[test]
    fn insert_contains() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::from_slice(&[1, 2])));
        assert!(!r.insert(Tuple::from_slice(&[1, 2])));
        assert!(r.contains(&[1, 2]));
        assert!(!r.contains(&[2, 1]));
        assert!(!r.contains(&[1])); // wrong arity is just "not a member"
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn insert_wrong_arity_panics() {
        Relation::new(2).insert(Tuple::from_slice(&[1]));
    }

    #[test]
    fn set_operations() {
        let a = edges(&[(1, 2), (2, 3)]);
        let b = edges(&[(2, 3), (3, 4)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersect(&b).len(), 1);
        assert!(a.intersect(&b).contains(&[2, 3]));
        assert_eq!(a.difference(&b).len(), 1);
        assert!(a.difference(&b).contains(&[1, 2]));
    }

    #[test]
    fn complement_has_complementary_size() {
        let a = edges(&[(0, 1), (1, 0)]);
        let c = a.complement(3);
        assert_eq!(c.len(), 9 - 2);
        assert!(!c.contains(&[0, 1]));
        assert!(c.contains(&[2, 2]));
    }

    #[test]
    fn select_and_project() {
        let r = Relation::from_tuples(3, [[1u32, 1, 2], [1, 2, 2], [3, 3, 3]]);
        let eq01 = r.select_eq(0, 1);
        assert_eq!(eq01.len(), 2);
        let c = r.select_const(2, 2);
        assert_eq!(c.len(), 2);
        let p = r.project(&[2, 0]);
        assert!(p.contains(&[2, 1]));
        assert_eq!(p.arity(), 2);
        // Projection can merge tuples.
        let q = r.project(&[2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn join_composes_edges() {
        let e = edges(&[(1, 2), (2, 3), (3, 4)]);
        // Paths of length 2: join E(x,y) with E(y,z) on y.
        let paths = e.join_on(&e, &[(1, 0)]).project(&[0, 3]);
        assert_eq!(paths.sorted(), edges(&[(1, 3), (2, 4)]).sorted());
    }

    #[test]
    fn join_with_empty_pairs_is_product() {
        let a = edges(&[(1, 2)]);
        let b = edges(&[(3, 4), (5, 6)]);
        let j = a.join_on(&b, &[]);
        assert_eq!(j.arity(), 4);
        assert_eq!(j.len(), 2);
        assert!(j.contains(&[1, 2, 3, 4]));
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let e = edges(&[(1, 2), (2, 3), (5, 6)]);
        let nodes = Relation::from_tuples(1, [[2u32], [6]]);
        let semi = e.semijoin(&nodes, &[(1, 0)]);
        let anti = e.antijoin(&nodes, &[(1, 0)]);
        assert_eq!(semi.len() + anti.len(), e.len());
        assert!(semi.contains(&[1, 2]));
        assert!(semi.contains(&[5, 6]));
        assert!(anti.contains(&[2, 3]));
    }

    #[test]
    fn subset() {
        let a = edges(&[(1, 2)]);
        let b = edges(&[(1, 2), (2, 3)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(Relation::new(2).is_subset(&a));
        assert!(!Relation::new(3).is_subset(&a)); // arity mismatch
    }

    #[test]
    fn active_domain_sorted() {
        let e = edges(&[(7, 2), (2, 9)]);
        assert_eq!(e.active_domain(), vec![2, 7, 9]);
    }

    #[test]
    fn from_iterator_infers_arity() {
        let r: Relation = [[1u32, 2], [3, 4]].into_iter().map(Tuple::from).collect();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }
}
