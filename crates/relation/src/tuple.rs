//! Compact tuples of domain elements.
//!
//! Bounded-variable evaluation manipulates enormous numbers of short tuples
//! (arity at most `k`, typically 2–5), so [`Tuple`] stores up to
//! [`Tuple::INLINE`] elements inline and only spills to the heap for the
//! wide tuples produced by *unrestricted* query plans — exactly the plans
//! whose cost the paper analyses.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

use crate::Elem;

/// A tuple of domain elements.
///
/// Tuples of arity up to [`Tuple::INLINE`] are stored without allocation.
/// `Tuple` dereferences to `[Elem]`, so all slice methods are available.
///
/// ```
/// use bvq_relation::Tuple;
/// let t = Tuple::from_slice(&[3, 5, 7]);
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[1], 5);
/// let wide = Tuple::from_slice(&[0; 12]); // heap-allocated
/// assert_eq!(wide.arity(), 12);
/// ```
#[derive(Clone)]
pub enum Tuple {
    /// Inline storage: `data[..len]` are the elements.
    Inline {
        /// Number of valid elements.
        len: u8,
        /// Element storage; positions `>= len` are zero.
        data: [Elem; Tuple::INLINE],
    },
    /// Heap storage for tuples wider than [`Tuple::INLINE`].
    Heap(Box<[Elem]>),
}

impl Tuple {
    /// Maximum arity stored inline.
    pub const INLINE: usize = 7;

    /// The empty (arity-0) tuple. Arity-0 relations are Boolean values:
    /// the empty relation is *false*, the relation `{()}` is *true*.
    pub fn unit() -> Self {
        Tuple::Inline {
            len: 0,
            data: [0; Tuple::INLINE],
        }
    }

    /// Builds a tuple from a slice of elements.
    pub fn from_slice(elems: &[Elem]) -> Self {
        if elems.len() <= Tuple::INLINE {
            let mut data = [0; Tuple::INLINE];
            data[..elems.len()].copy_from_slice(elems);
            Tuple::Inline {
                len: elems.len() as u8,
                data,
            }
        } else {
            Tuple::Heap(elems.to_vec().into_boxed_slice())
        }
    }

    /// Builds a tuple by evaluating `f` at each position.
    pub fn from_fn(arity: usize, mut f: impl FnMut(usize) -> Elem) -> Self {
        if arity <= Tuple::INLINE {
            let mut data = [0; Tuple::INLINE];
            for (i, slot) in data[..arity].iter_mut().enumerate() {
                *slot = f(i);
            }
            Tuple::Inline {
                len: arity as u8,
                data,
            }
        } else {
            Tuple::Heap((0..arity).map(f).collect())
        }
    }

    /// The number of elements in the tuple.
    pub fn arity(&self) -> usize {
        match self {
            Tuple::Inline { len, .. } => *len as usize,
            Tuple::Heap(v) => v.len(),
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[Elem] {
        match self {
            Tuple::Inline { len, data } => &data[..*len as usize],
            Tuple::Heap(v) => v,
        }
    }

    /// A copy of this tuple with position `i` replaced by `value`.
    #[must_use]
    pub fn with(&self, i: usize, value: Elem) -> Self {
        let mut t = self.clone();
        t.set(i, value);
        t
    }

    /// Replaces position `i` by `value` in place.
    pub fn set(&mut self, i: usize, value: Elem) {
        match self {
            Tuple::Inline { len, data } => {
                assert!(i < *len as usize, "tuple index {i} out of range");
                data[i] = value;
            }
            Tuple::Heap(v) => v[i] = value,
        }
    }

    /// The tuple `(self[positions[0]], self[positions[1]], …)`.
    ///
    /// This is simultaneously projection and permutation; `positions` may
    /// repeat and may omit positions.
    #[must_use]
    pub fn select(&self, positions: &[usize]) -> Self {
        let s = self.as_slice();
        Tuple::from_fn(positions.len(), |i| s[positions[i]])
    }

    /// Concatenates two tuples.
    #[must_use]
    pub fn concat(&self, other: &Tuple) -> Self {
        let a = self.as_slice();
        let b = other.as_slice();
        Tuple::from_fn(a.len() + b.len(), |i| {
            if i < a.len() {
                a[i]
            } else {
                b[i - a.len()]
            }
        })
    }
}

impl Deref for Tuple {
    type Target = [Elem];
    fn deref(&self) -> &[Elem] {
        self.as_slice()
    }
}

impl Borrow<[Elem]> for Tuple {
    fn borrow(&self) -> &[Elem] {
        self.as_slice()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash as a slice so `Borrow<[Elem]>` lookups agree.
        self.as_slice().hash(state);
    }
}

fn fmt_tuple(t: &Tuple, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "⟨")?;
    for (i, e) in t.as_slice().iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{e}")?;
    }
    write!(f, "⟩")
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_tuple(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_tuple(self, f)
    }
}

impl From<&[Elem]> for Tuple {
    fn from(v: &[Elem]) -> Self {
        Tuple::from_slice(v)
    }
}

impl From<Vec<Elem>> for Tuple {
    fn from(v: Vec<Elem>) -> Self {
        Tuple::from_slice(&v)
    }
}

impl<const N: usize> From<[Elem; N]> for Tuple {
    fn from(v: [Elem; N]) -> Self {
        Tuple::from_slice(&v)
    }
}

impl FromIterator<Elem> for Tuple {
    fn from_iter<I: IntoIterator<Item = Elem>>(iter: I) -> Self {
        let v: Vec<Elem> = iter.into_iter().collect();
        Tuple::from_slice(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(t: &Tuple) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn unit_tuple_has_arity_zero() {
        assert_eq!(Tuple::unit().arity(), 0);
        assert_eq!(Tuple::unit().as_slice(), &[] as &[Elem]);
    }

    #[test]
    fn inline_and_heap_agree() {
        let small = Tuple::from_slice(&[1, 2, 3]);
        assert!(matches!(small, Tuple::Inline { .. }));
        let wide = Tuple::from_slice(&(0..10).collect::<Vec<_>>());
        assert!(matches!(wide, Tuple::Heap(_)));
        assert_eq!(wide.arity(), 10);
        assert_eq!(wide[9], 9);
    }

    #[test]
    fn boundary_arity_is_inline() {
        let t = Tuple::from_slice(&[0; Tuple::INLINE]);
        assert!(matches!(t, Tuple::Inline { .. }));
        let t = Tuple::from_slice(&[0; Tuple::INLINE + 1]);
        assert!(matches!(t, Tuple::Heap(_)));
    }

    #[test]
    fn equality_ignores_representation() {
        // An inline tuple and a heap tuple can never have the same arity,
        // but padding must not leak into equality for inline tuples.
        let a = Tuple::from_slice(&[5, 6]);
        let mut b = Tuple::from_slice(&[5, 7]);
        b.set(1, 6);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn with_and_set() {
        let t = Tuple::from_slice(&[1, 2, 3]);
        let u = t.with(0, 9);
        assert_eq!(u.as_slice(), &[9, 2, 3]);
        assert_eq!(t.as_slice(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut t = Tuple::from_slice(&[1]);
        t.set(1, 0);
    }

    #[test]
    fn select_projects_and_permutes() {
        let t = Tuple::from_slice(&[10, 20, 30, 40]);
        assert_eq!(t.select(&[3, 0]).as_slice(), &[40, 10]);
        assert_eq!(t.select(&[1, 1, 1]).as_slice(), &[20, 20, 20]);
        assert_eq!(t.select(&[]).as_slice(), &[] as &[Elem]);
    }

    #[test]
    fn concat_joins_tuples() {
        let a = Tuple::from_slice(&[1, 2]);
        let b = Tuple::from_slice(&[3]);
        assert_eq!(a.concat(&b).as_slice(), &[1, 2, 3]);
        assert_eq!(b.concat(&a).as_slice(), &[3, 1, 2]);
        // Crossing the inline boundary.
        let long = Tuple::from_slice(&[0; 5]);
        assert_eq!(long.concat(&long).arity(), 10);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tuple::from_slice(&[1, 2]);
        let b = Tuple::from_slice(&[1, 3]);
        let c = Tuple::from_slice(&[1, 2, 0]);
        assert!(a < b);
        assert!(a < c);
    }

    #[test]
    fn borrow_slice_lookup() {
        use std::collections::HashSet;
        let mut s: HashSet<Tuple> = HashSet::new();
        s.insert(Tuple::from_slice(&[4, 4]));
        assert!(s.contains(&[4u32, 4u32] as &[Elem]));
    }
}
