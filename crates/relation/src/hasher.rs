//! A fast, deterministic hash function for small keys.
//!
//! Bounded-variable evaluation hashes millions of short tuples; the standard
//! library's SipHash is DoS-resistant but slow for this workload. This is a
//! from-scratch implementation of the Fx multiply-rotate scheme used by the
//! Rust compiler: not cryptographic, but excellent distribution on the dense
//! small-integer keys that dominate here, and fully deterministic (important
//! for reproducible benchmark results).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant for the Fx scheme (64-bit golden-ratio prime).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash(&42u64), hash(&42u64));
        assert_eq!(hash(&"hello"), hash(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a strong statistical test, just a sanity check that the
        // low bits differ for consecutive keys (HashMap uses the low bits).
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..1000 {
            seen.insert(hash(&i) & 0xFFFF);
        }
        assert!(
            seen.len() > 900,
            "too many low-bit collisions: {}",
            seen.len()
        );
    }

    #[test]
    fn partial_word_writes_differ_by_length() {
        let mut a = FxHasher::default();
        a.write(&[0, 0, 0]);
        let mut b = FxHasher::default();
        b.write(&[0, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn slice_and_tuple_hash_consistency() {
        use crate::Tuple;
        let t = Tuple::from_slice(&[1, 2, 3]);
        let s: &[u32] = &[1, 2, 3];
        assert_eq!(
            hash(&t),
            hash(&s),
            "Tuple must hash like its slice for Borrow lookups"
        );
    }
}
