//! Ranking of `k`-tuples over a domain of size `n`.
//!
//! The cylindrical `FO^k` evaluator identifies the assignment space `D^k`
//! with `{0, …, n^k - 1}` via the base-`n` positional encoding
//! `rank(a₁,…,a_k) = a₁·n^(k-1) + … + a_k`. [`PointIndex`] precomputes the
//! strides and provides rank/unrank plus the decompositions needed by the
//! existential-quantifier operation.

use crate::{Elem, Tuple};

/// Rank/unrank for tuples in `D^k`, `D = {0,…,n-1}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointIndex {
    n: usize,
    k: usize,
    /// `strides[i] = n^(k-1-i)`: the weight of coordinate `i`.
    strides: Vec<usize>,
    /// `n^k`.
    size: usize,
}

impl PointIndex {
    /// Creates an index for `D^k` with `|D| = n`.
    ///
    /// Returns `None` if `n^k` overflows `usize` or exceeds
    /// [`PointIndex::MAX_SIZE`] (a guard against accidentally materialising
    /// an astronomically large dense space; callers fall back to the sparse
    /// backend).
    pub fn new(n: usize, k: usize) -> Option<Self> {
        let mut size: usize = 1;
        let mut strides = vec![0; k];
        for i in (0..k).rev() {
            strides[i] = size;
            size = size.checked_mul(n)?;
            if size > Self::MAX_SIZE {
                return None;
            }
        }
        Some(PointIndex {
            n,
            k,
            strides,
            size,
        })
    }

    /// Maximum dense space size (bits): 2^32 bits = 512 MiB.
    pub const MAX_SIZE: usize = 1 << 32;

    /// The domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// The tuple width `k`.
    pub fn width(&self) -> usize {
        self.k
    }

    /// `n^k`, the number of points.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The stride (weight) of coordinate `i`.
    pub fn stride(&self, i: usize) -> usize {
        self.strides[i]
    }

    /// Ranks a tuple. Panics if the tuple has the wrong arity or an element
    /// is outside the domain (debug builds).
    #[inline]
    pub fn rank(&self, t: &[Elem]) -> usize {
        debug_assert_eq!(t.len(), self.k);
        let mut idx = 0;
        for (e, s) in t.iter().zip(&self.strides) {
            debug_assert!((*e as usize) < self.n);
            idx += *e as usize * s;
        }
        idx
    }

    /// Unranks an index back into a tuple.
    pub fn unrank(&self, mut idx: usize) -> Tuple {
        debug_assert!(idx < self.size);
        Tuple::from_fn(self.k, |i| {
            let v = idx / self.strides[i];
            idx %= self.strides[i];
            v as Elem
        })
    }

    /// The coordinate-`i` digit of `idx`.
    #[inline]
    pub fn digit(&self, idx: usize, i: usize) -> Elem {
        ((idx / self.strides[i]) % self.n) as Elem
    }

    /// Replaces the coordinate-`i` digit of `idx` by `value`.
    #[inline]
    pub fn with_digit(&self, idx: usize, i: usize, value: Elem) -> usize {
        idx - self.digit(idx, i) as usize * self.strides[i] + value as usize * self.strides[i]
    }

    /// Collapses `idx` by removing coordinate `i`: the result is a rank in a
    /// `(k-1)`-dimensional space formed by the remaining coordinates in
    /// order, compressed so that outer digits keep their relative weights.
    ///
    /// Concretely, writing `idx = outer·(n·s) + d·s + inner` with
    /// `s = strides[i]`, the collapsed index is `outer·s + inner`.
    #[inline]
    pub fn collapse(&self, idx: usize, i: usize) -> usize {
        let s = self.strides[i];
        let outer = idx / (s * self.n);
        let inner = idx % s;
        outer * s + inner
    }

    /// Inverse of [`collapse`](Self::collapse): re-inserts digit `d` at
    /// coordinate `i` into a collapsed index.
    #[inline]
    pub fn expand(&self, collapsed: usize, i: usize, d: Elem) -> usize {
        let s = self.strides[i];
        let outer = collapsed / s;
        let inner = collapsed % s;
        outer * (s * self.n) + d as usize * s + inner
    }

    /// Iterates over all points as tuples, in rank order.
    pub fn points(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.size).map(|i| self.unrank(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_unrank_roundtrip() {
        let ix = PointIndex::new(5, 3).unwrap();
        assert_eq!(ix.size(), 125);
        for i in 0..125 {
            let t = ix.unrank(i);
            assert_eq!(ix.rank(&t), i);
        }
    }

    #[test]
    fn rank_is_positional() {
        let ix = PointIndex::new(10, 3).unwrap();
        assert_eq!(ix.rank(&[1, 2, 3]), 123);
        assert_eq!(ix.unrank(907).as_slice(), &[9, 0, 7]);
    }

    #[test]
    fn digit_and_with_digit() {
        let ix = PointIndex::new(10, 4).unwrap();
        let idx = ix.rank(&[4, 5, 6, 7]);
        assert_eq!(ix.digit(idx, 0), 4);
        assert_eq!(ix.digit(idx, 3), 7);
        let idx2 = ix.with_digit(idx, 1, 9);
        assert_eq!(ix.unrank(idx2).as_slice(), &[4, 9, 6, 7]);
    }

    #[test]
    fn collapse_expand_roundtrip() {
        let ix = PointIndex::new(4, 3).unwrap();
        for idx in 0..ix.size() {
            for i in 0..3 {
                let d = ix.digit(idx, i);
                let c = ix.collapse(idx, i);
                assert!(c < ix.size() / 4);
                assert_eq!(ix.expand(c, i, d), idx);
            }
        }
    }

    #[test]
    fn collapse_merges_exactly_the_fiber() {
        // Two indices collapse to the same value at coordinate i iff they
        // differ only in coordinate i.
        let ix = PointIndex::new(3, 3).unwrap();
        for a in 0..ix.size() {
            for b in 0..ix.size() {
                let same_fiber = (0..3)
                    .filter(|&j| j != 1)
                    .all(|j| ix.digit(a, j) == ix.digit(b, j));
                assert_eq!(ix.collapse(a, 1) == ix.collapse(b, 1), same_fiber);
            }
        }
    }

    #[test]
    fn zero_width() {
        let ix = PointIndex::new(7, 0).unwrap();
        assert_eq!(ix.size(), 1);
        assert_eq!(ix.rank(&[]), 0);
        assert_eq!(ix.unrank(0).arity(), 0);
    }

    #[test]
    fn overflow_returns_none() {
        assert!(PointIndex::new(1 << 20, 4).is_none());
        assert!(PointIndex::new(2, 40).is_none()); // 2^40 > MAX_SIZE? 2^40 bits > 2^32
    }

    #[test]
    fn domain_one() {
        let ix = PointIndex::new(1, 5).unwrap();
        assert_eq!(ix.size(), 1);
        assert_eq!(ix.unrank(0).as_slice(), &[0, 0, 0, 0, 0]);
    }
}
