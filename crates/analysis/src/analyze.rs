//! One-call analysis front end: verdicts plus the certificate.

use bvq_logic::{Formula, Query};

use crate::certificate::{validate, WidthCertificate};
use crate::hypergraph::conjunctive_core;

/// The static-analysis verdict for one query.
///
/// Produced by [`analyze_query`]/[`analyze_formula`]; consumed by lint,
/// the compile-time cost model, `explain`, and the server's admission
/// control.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAnalysis {
    /// Effective syntactic width of the original query (slots used,
    /// floored by the output arity, at least 1).
    pub width: usize,
    /// The certified minimum width: the width of the validated rewrite
    /// when one exists, otherwise equal to [`width`](Self::width).
    pub k_min: usize,
    /// `Some(true)` when the query has a conjunctive core whose
    /// hypergraph is α-acyclic (GYO reduces it), `Some(false)` when the
    /// core is cyclic, `None` when no conjunctive core exists (the
    /// formula uses `∨`, `¬`, `∀`, `=`, or fixpoints at the top).
    pub acyclic: Option<bool>,
    /// Number of atoms in the conjunctive core (0 when none).
    pub core_atoms: usize,
    /// The elimination order chosen over the core's bound variables
    /// (empty when no core).
    pub order: Vec<u32>,
    /// The largest elimination bag along [`order`](Self::order) — the
    /// maximum number of simultaneously live variables, i.e. the
    /// operational `n^max_bag` bound for bucket elimination over the
    /// core.
    pub max_bag: Option<usize>,
    /// `Some(true)` when a width-reducing rewrite exists and its
    /// certificate validated; `Some(false)` when a rewrite was produced
    /// but its certificate was *rejected* (a bug — the rewrite must not
    /// be used); `None` when the query is already width-minimal or not
    /// first-order.
    pub certified: Option<bool>,
    /// The validated certificate, present iff `certified == Some(true)`.
    pub certificate: Option<WidthCertificate>,
}

impl QueryAnalysis {
    /// Human-readable verdict lines for `explain` output.
    pub fn verdict_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        let acyclic = match self.acyclic {
            Some(true) => format!("acyclic ({} atoms)", self.core_atoms),
            Some(false) => format!("cyclic ({} atoms)", self.core_atoms),
            None => "no conjunctive core".to_string(),
        };
        let kmin = if self.k_min < self.width {
            format!("{} (certified rewrite)", self.k_min)
        } else {
            format!("{} (minimal)", self.k_min)
        };
        lines.push(format!(
            "analysis: width {}, k_min {}, core {}",
            self.width, kmin, acyclic
        ));
        if !self.order.is_empty() {
            let order: Vec<String> = self.order.iter().map(|v| format!("x{}", v + 1)).collect();
            let bag = self
                .max_bag
                .map(|b| format!(" (max bag {b})"))
                .unwrap_or_default();
            lines.push(format!("analysis order: {}{}", order.join(", "), bag));
        }
        if self.certified == Some(false) {
            lines.push("analysis: rewrite certificate REJECTED; rewrite unusable".to_string());
        }
        lines
    }
}

/// Analyzes a query: the floor is the largest output slot, so the
/// rewrite can never rename an output variable away.
pub fn analyze_query(q: &Query) -> QueryAnalysis {
    let floor = q.output.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    analyze_formula(&q.formula, floor)
}

/// Analyzes a bare formula with an externally imposed width floor
/// (use 0 when all free variables may be renamed).
pub fn analyze_formula(f: &Formula, floor: usize) -> QueryAnalysis {
    let width = f.width().max(floor).max(1);
    let core = conjunctive_core(f);
    let (acyclic, core_atoms) = match &core {
        Some(c) => (Some(c.hypergraph().is_acyclic()), c.atoms.len()),
        None => (None, 0),
    };
    // Elimination order and bags over the core of the *rewrite* when
    // one exists (its variable names are what the certificate speaks
    // about), otherwise over the original's core.
    let rewrite = f.minimize_width();
    let order_source = match &rewrite {
        Some(rw) => conjunctive_core(rw),
        None => core,
    };
    let (order, bags, max_bag) = match &order_source {
        Some(c) => {
            let g = c.hypergraph();
            let (o, mb) = g.best_order(&c.free);
            let (bags, _) = g.elimination_bags(&o);
            (o, bags, Some(mb))
        }
        None => (Vec::new(), Vec::new(), None),
    };
    let mut analysis = QueryAnalysis {
        width,
        k_min: width,
        acyclic,
        core_atoms,
        order,
        max_bag,
        certified: None,
        certificate: None,
    };
    if let Some(rw) = rewrite {
        let k2 = rw.width().max(floor).max(1);
        if k2 < width {
            let cert = WidthCertificate {
                k_min: k2,
                order: analysis.order.clone(),
                bags,
                rewritten: rw,
            };
            if validate(f, &cert).is_ok() {
                analysis.k_min = k2;
                analysis.certified = Some(true);
                analysis.certificate = Some(cert);
            } else {
                analysis.certified = Some(false);
            }
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_logic::parser::parse_query;

    fn analyze(src: &str) -> QueryAnalysis {
        analyze_query(&parse_query(src).unwrap())
    }

    #[test]
    fn wasteful_chain_is_certified_down() {
        let a = analyze("(x1) exists x2. exists x3. exists x4. (E(x1,x2) & E(x2,x3) & E(x3,x4))");
        assert_eq!(a.width, 4);
        assert_eq!(a.k_min, 2);
        assert_eq!(a.acyclic, Some(true));
        assert_eq!(a.certified, Some(true));
        let cert = a.certificate.expect("certificate");
        assert_eq!(cert.k_min, 2);
        assert!(crate::certificate::validate(
            &parse_query("(x1) exists x2. exists x3. exists x4. (E(x1,x2) & E(x2,x3) & E(x3,x4))")
                .unwrap()
                .formula,
            &cert
        )
        .is_ok());
    }

    #[test]
    fn triangle_is_cyclic_and_not_reducible_below_three() {
        let a = analyze("() exists x1. exists x2. exists x3. (E(x1,x2) & E(x2,x3) & E(x3,x1))");
        assert_eq!(a.acyclic, Some(false));
        assert_eq!(a.k_min, 3);
        assert_eq!(a.max_bag, Some(3));
    }

    #[test]
    fn minimal_queries_report_no_certificate() {
        let a = analyze("(x1,x2) E(x1,x2)");
        assert_eq!(a.width, 2);
        assert_eq!(a.k_min, 2);
        assert_eq!(a.acyclic, Some(true));
        assert_eq!(a.certified, None);
        assert!(a.certificate.is_none());
    }

    #[test]
    fn fixpoints_have_no_core_and_no_rewrite() {
        let a = analyze("(x1) [lfp S(x1). (P(x1) | exists x2. (S(x2) & E(x2,x1)))](x1)");
        assert_eq!(a.acyclic, None);
        assert_eq!(a.certified, None);
        assert_eq!(a.k_min, a.width);
    }

    #[test]
    fn output_floor_pins_k_min() {
        // All three variables are outputs: nothing to reduce.
        let a = analyze("(x1,x2,x3) (E(x1,x2) & E(x2,x3))");
        assert_eq!(a.width, 3);
        assert_eq!(a.k_min, 3);
        assert_eq!(a.certified, None);
    }

    #[test]
    fn verdict_lines_render() {
        let a = analyze("(x1) exists x2. exists x3. (E(x1,x2) & E(x2,x3))");
        let lines = a.verdict_lines();
        assert!(lines[0].contains("width 3"));
        assert!(lines[0].contains("k_min 2 (certified rewrite)"));
        assert!(lines[0].contains("acyclic"));
    }
}
