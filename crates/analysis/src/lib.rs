//! # bvq-analysis
//!
//! Hypergraph static analysis for the `bvq` reproduction of Vardi,
//! *On the Complexity of Bounded-Variable Queries* (PODS 1995).
//!
//! The paper's complexity story is governed by the variable width `k`
//! (evaluation in `n^k`, Prop 3.1). This crate computes that structure
//! instead of pattern-matching for it:
//!
//! * [`hypergraph`] — the query hypergraph of the conjunctive core of an
//!   FO formula (atoms as hyperedges over their variables, nested
//!   `∃`/`∧` structure renamed apart), the GYO ear-removal reduction
//!   deciding α-acyclicity [BFMY83], and elimination orderings
//!   (min-degree and min-fill) with their induced widths and per-step
//!   bags;
//! * [`certificate`] — [`WidthCertificate`]: a variable-minimizing
//!   rewrite *together with the evidence that it is correct* — the
//!   rewritten formula, its claimed width `k_min`, and the elimination
//!   order with per-step bags. [`certificate::validate`] replays the
//!   evidence with no reference to the heuristics that produced it:
//!   syntactic width, free-variable preservation, α-equivalence against
//!   the normalized original, and bag containment along the order;
//! * [`analyze`] — [`QueryAnalysis`], the one-call front end: verdicts
//!   (acyclic? width? `k_min`?) plus the certificate when the query is
//!   width-reducible.
//!
//! Everything is purely syntactic; no database is ever consulted. The
//! crate depends only on `bvq-logic`, so every layer of the stack (lint,
//! the compile-time cost model, the optimizer, the server's admission
//! control) can consume the same facts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod certificate;
pub mod hypergraph;

pub use analyze::{analyze_formula, analyze_query, QueryAnalysis};
pub use certificate::{validate, CertError, WidthCertificate};
pub use hypergraph::{conjunctive_core, Core, Hypergraph};
