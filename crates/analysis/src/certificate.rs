//! Certified variable-minimizing rewrites.
//!
//! A [`WidthCertificate`] packages a rewrite *with the evidence that it
//! is correct*: the rewritten formula, the claimed width `k_min`, and an
//! elimination order with its per-step bags over the rewritten
//! conjunctive core. [`validate`] replays that evidence independently of
//! whatever heuristic produced it:
//!
//! 1. **width** — the rewritten formula syntactically uses at most
//!    `k_min` variable slots (Prop 3.1 then bounds every intermediate
//!    relation by `n^k_min`);
//! 2. **interface** — the rewrite introduces no new free variables
//!    (normalization may *erase* free occurrences by constant folding,
//!    which preserves equivalence, but a fresh free variable would
//!    change the query's interface);
//! 3. **equivalence** — the rewritten formula is α-equivalent to the
//!    normalized original (`simplify` + `miniscope`, both
//!    semantics-preserving normalizations of `bvq-logic`); α-equivalence
//!    is checked with binder stacks, so any renaming that captured a
//!    variable is rejected;
//! 4. **bags** — for conjunctive cores, replaying the elimination order
//!    reproduces the recorded bags, every bag fits in `k_min`, and the
//!    order eliminates exactly the non-free variables — the operational
//!    witness that evaluation needs only `k_min` simultaneous variables.
//!
//! The validator never calls the slot-allocation heuristic
//! (`minimize_width`): a bogus rewrite cannot certify itself.

use bvq_logic::{Formula, Term, Var};

use crate::hypergraph::conjunctive_core;

/// A variable-minimizing rewrite with its checkable evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WidthCertificate {
    /// The claimed width of the rewrite (`k_min ≤` original width).
    pub k_min: usize,
    /// Elimination order over the rewritten conjunctive core's bound
    /// variables (empty when the formula has no conjunctive core).
    pub order: Vec<u32>,
    /// The bag produced at each elimination step (sorted), parallel to
    /// `order`.
    pub bags: Vec<Vec<u32>>,
    /// The rewritten formula, claimed equivalent to the original.
    pub rewritten: Formula,
}

/// Why a certificate failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The rewritten formula uses more slots than claimed.
    WidthClaim {
        /// The certificate's claim.
        claimed: usize,
        /// The rewrite's actual syntactic width.
        actual: usize,
    },
    /// The rewrite introduced a free variable the original lacks.
    FreeVarsChanged,
    /// The rewrite is not α-equivalent to the normalized original.
    NotEquivalent,
    /// The elimination order does not cover exactly the core's bound
    /// variables.
    OrderMismatch,
    /// A replayed bag disagrees with the recorded one or exceeds
    /// `k_min`.
    BadBag {
        /// Index into `order`/`bags` of the offending step.
        step: usize,
    },
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::WidthClaim { claimed, actual } => {
                write!(f, "rewrite claims width {claimed} but uses {actual} slots")
            }
            CertError::FreeVarsChanged => {
                write!(f, "rewrite introduced a free variable the original lacks")
            }
            CertError::NotEquivalent => {
                write!(f, "rewrite is not α-equivalent to the normalized original")
            }
            CertError::OrderMismatch => {
                write!(
                    f,
                    "elimination order does not cover the core's bound variables"
                )
            }
            CertError::BadBag { step } => {
                write!(f, "elimination bag at step {step} fails containment")
            }
        }
    }
}

impl std::error::Error for CertError {}

/// Validates `cert` against the `original` formula. See the module docs
/// for the four checks.
pub fn validate(original: &Formula, cert: &WidthCertificate) -> Result<(), CertError> {
    let actual = cert.rewritten.width();
    if actual > cert.k_min {
        return Err(CertError::WidthClaim {
            claimed: cert.k_min,
            actual,
        });
    }
    let original_free = original.free_vars();
    if !cert
        .rewritten
        .free_vars()
        .iter()
        .all(|v| original_free.contains(v))
    {
        return Err(CertError::FreeVarsChanged);
    }
    let normalized = original.simplify().miniscope();
    if !alpha_equivalent(&normalized, &cert.rewritten) {
        return Err(CertError::NotEquivalent);
    }
    if let Some(core) = conjunctive_core(&cert.rewritten) {
        let g = core.hypergraph();
        // The order must eliminate exactly the non-free vertices.
        let mut bound: Vec<u32> = g
            .vertices()
            .into_iter()
            .filter(|v| !core.free.contains(v))
            .collect();
        let mut claimed: Vec<u32> = cert.order.clone();
        bound.sort_unstable();
        claimed.sort_unstable();
        claimed.dedup();
        if bound != claimed || cert.order.len() != bound.len() {
            return Err(CertError::OrderMismatch);
        }
        let (bags, residual) = g.elimination_bags(&cert.order);
        if bags.len() != cert.bags.len() {
            return Err(CertError::OrderMismatch);
        }
        for (step, bag) in bags.iter().enumerate() {
            if bag.len() > cert.k_min || *bag != cert.bags[step] {
                return Err(CertError::BadBag { step });
            }
        }
        if let Some(step) = residual.iter().position(|s| s.len() > cert.k_min) {
            return Err(CertError::BadBag {
                step: cert.order.len() + step,
            });
        }
    } else if !cert.order.is_empty() || !cert.bags.is_empty() {
        return Err(CertError::OrderMismatch);
    }
    Ok(())
}

/// Whether `f` and `g` are α-equivalent: identical up to a capture-free
/// renaming of bound (individual and relation) variables. Free
/// variables must match exactly.
pub fn alpha_equivalent(f: &Formula, g: &Formula) -> bool {
    let mut vars: Vec<(Var, Var)> = Vec::new();
    let mut rels: Vec<(String, String)> = Vec::new();
    alpha_eq(f, g, &mut vars, &mut rels)
}

/// Two bound-variable stacks make the comparison capture-aware: a
/// variable pair matches iff both sides resolve to the *same* binder
/// frame (or both are free and identical).
fn term_eq(a: &Term, b: &Term, vars: &[(Var, Var)]) -> bool {
    match (a, b) {
        (Term::Const(c), Term::Const(d)) => c == d,
        (Term::Var(v), Term::Var(w)) => {
            let li = vars.iter().rposition(|(x, _)| x == v);
            let ri = vars.iter().rposition(|(_, y)| y == w);
            match (li, ri) {
                (Some(i), Some(j)) => i == j,
                (None, None) => v == w,
                _ => false,
            }
        }
        _ => false,
    }
}

fn rel_eq(a: &str, b: &str, rels: &[(String, String)]) -> bool {
    let li = rels.iter().rposition(|(x, _)| x == a);
    let ri = rels.iter().rposition(|(_, y)| y == b);
    match (li, ri) {
        (Some(i), Some(j)) => i == j,
        (None, None) => a == b,
        _ => false,
    }
}

fn alpha_eq(
    f: &Formula,
    g: &Formula,
    vars: &mut Vec<(Var, Var)>,
    rels: &mut Vec<(String, String)>,
) -> bool {
    match (f, g) {
        (Formula::Const(a), Formula::Const(b)) => a == b,
        (Formula::Eq(a1, a2), Formula::Eq(b1, b2)) => {
            term_eq(a1, b1, vars) && term_eq(a2, b2, vars)
        }
        (Formula::Atom(a), Formula::Atom(b)) => {
            let rel_ok = match (&a.rel, &b.rel) {
                (bvq_logic::RelRef::Db(x), bvq_logic::RelRef::Db(y)) => x == y,
                (bvq_logic::RelRef::Bound(x), bvq_logic::RelRef::Bound(y)) => rel_eq(x, y, rels),
                _ => false,
            };
            rel_ok
                && a.args.len() == b.args.len()
                && a.args.iter().zip(&b.args).all(|(x, y)| term_eq(x, y, vars))
        }
        (Formula::Not(a), Formula::Not(b)) => alpha_eq(a, b, vars, rels),
        (Formula::And(a1, a2), Formula::And(b1, b2))
        | (Formula::Or(a1, a2), Formula::Or(b1, b2)) => {
            alpha_eq(a1, b1, vars, rels) && alpha_eq(a2, b2, vars, rels)
        }
        (Formula::Exists(v, a), Formula::Exists(w, b))
        | (Formula::Forall(v, a), Formula::Forall(w, b)) => {
            vars.push((*v, *w));
            let ok = alpha_eq(a, b, vars, rels);
            vars.pop();
            ok
        }
        (
            Formula::Fix {
                kind: ka,
                rel: ra,
                bound: ba,
                body: fa,
                args: aa,
            },
            Formula::Fix {
                kind: kb,
                rel: rb,
                bound: bb,
                body: fb,
                args: ab,
            },
        ) => {
            if ka != kb || ba.len() != bb.len() || aa.len() != ab.len() {
                return false;
            }
            if !aa.iter().zip(ab).all(|(x, y)| term_eq(x, y, vars)) {
                return false;
            }
            rels.push((ra.clone(), rb.clone()));
            for (x, y) in ba.iter().zip(bb) {
                vars.push((*x, *y));
            }
            let ok = alpha_eq(fa, fb, vars, rels);
            for _ in ba {
                vars.pop();
            }
            rels.pop();
            ok
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvq_logic::parser::parse;

    #[test]
    fn alpha_equivalence_respects_binders() {
        let a = parse("exists x2. E(x1,x2)").unwrap();
        let b = parse("exists x5. E(x1,x5)").unwrap();
        assert!(alpha_equivalent(&a, &b));
        // Free variables must match exactly.
        let c = parse("exists x2. E(x3,x2)").unwrap();
        assert!(!alpha_equivalent(&a, &c));
        // Capture: the bound slot collides with the free variable.
        let d = parse("exists x1. E(x1,x1)").unwrap();
        assert!(!alpha_equivalent(&a, &d));
    }

    #[test]
    fn alpha_equivalence_handles_fixpoints_and_shadowing() {
        let a = parse("[lfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)").unwrap();
        let b = parse("[lfp R(x1). (x1 = 0 | exists x3. (R(x3) & E(x3,x1)))](x1)").unwrap();
        assert!(alpha_equivalent(&a, &b));
        let c = parse("[gfp S(x1). (x1 = 0 | exists x2. (S(x2) & E(x2,x1)))](x1)").unwrap();
        assert!(!alpha_equivalent(&a, &c));
        // Nested shadowing of the same slot on one side only.
        let d = parse("exists x2. (E(x1,x2) & exists x2. P(x2))").unwrap();
        let e = parse("exists x2. (E(x1,x2) & exists x3. P(x3))").unwrap();
        assert!(alpha_equivalent(&d, &e));
    }

    #[test]
    fn validate_accepts_an_honest_certificate() {
        let f = parse("exists x2. exists x3. exists x4. (E(x1,x2) & E(x2,x3) & E(x3,x4))").unwrap();
        let rw = f.minimize_width().unwrap();
        let core = conjunctive_core(&rw).unwrap();
        let g = core.hypergraph();
        let (order, _) = g.best_order(&core.free);
        let (bags, _) = g.elimination_bags(&order);
        let cert = WidthCertificate {
            k_min: rw.width().max(1),
            order,
            bags,
            rewritten: rw,
        };
        assert_eq!(validate(&f, &cert), Ok(()));
    }

    #[test]
    fn validate_rejects_forged_certificates() {
        let f = parse("exists x2. exists x3. exists x4. (E(x1,x2) & E(x2,x3) & E(x3,x4))").unwrap();
        let rw = f.minimize_width().unwrap();
        let core = conjunctive_core(&rw).unwrap();
        let g = core.hypergraph();
        let (order, _) = g.best_order(&core.free);
        let (bags, _) = g.elimination_bags(&order);
        let honest = WidthCertificate {
            k_min: rw.width().max(1),
            order,
            bags,
            rewritten: rw,
        };
        // Under-claimed width.
        let mut forged = honest.clone();
        forged.k_min = 1;
        assert!(matches!(
            validate(&f, &forged),
            Err(CertError::WidthClaim { .. }) | Err(CertError::BadBag { .. })
        ));
        // A different formula entirely.
        let mut wrong = honest.clone();
        wrong.rewritten = parse("E(x1,x1)").unwrap();
        assert!(validate(&f, &wrong).is_err());
        // Tampered bag.
        let mut tampered = honest.clone();
        if let Some(bag) = tampered.bags.first_mut() {
            bag.push(99);
        }
        assert_eq!(validate(&f, &tampered), Err(CertError::BadBag { step: 0 }));
        // Truncated order.
        let mut short = honest.clone();
        short.order.pop();
        short.bags.pop();
        assert_eq!(validate(&f, &short), Err(CertError::OrderMismatch));
    }

    #[test]
    fn validate_rejects_free_variable_changes() {
        let f = parse("exists x2. E(x1,x2)").unwrap();
        let cert = WidthCertificate {
            k_min: 2,
            order: vec![],
            bags: vec![],
            rewritten: parse("exists x1. E(x2,x1)").unwrap(),
        };
        assert_eq!(validate(&f, &cert), Err(CertError::FreeVarsChanged));
    }
}
